// Command cascade-bench regenerates the paper's tables and figures.
//
//	cascade-bench -exp fig10          # one experiment
//	cascade-bench -exp all            # the whole evaluation
//	cascade-bench -list               # available experiment ids
//
// Scale knobs (-events, -epochs, -memdim) trade fidelity for runtime; the
// defaults finish each figure in seconds to minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cascade-ml/cascade/internal/experiments"
)

func main() {
	set := experiments.DefaultSettings()
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.IntVar(&set.EventTarget, "events", set.EventTarget, "events per moderate dataset")
	flag.IntVar(&set.LargeEventTarget, "large-events", set.LargeEventTarget, "events per large dataset (fig14)")
	flag.IntVar(&set.BaseBatch, "base", set.BaseBatch, "base batch size (0 = proportional analog of the paper's 900)")
	flag.IntVar(&set.Epochs, "epochs", set.Epochs, "training epochs per run")
	flag.IntVar(&set.MemoryDim, "memdim", set.MemoryDim, "node memory width")
	flag.IntVar(&set.TimeDim, "timedim", set.TimeDim, "time encoding width")
	flag.IntVar(&set.FeatDim, "featdim", set.FeatDim, "edge feature width override")
	flag.IntVar(&set.Staleness, "staleness", set.Staleness, "bounded-staleness budget for every run (0 = exact; the 'staleness' experiment sweeps its own)")
	flag.Int64Var(&set.Seed, "seed", set.Seed, "random seed")
	flag.IntVar(&set.Workers, "workers", set.Workers, "CPU workers (0 = all cores)")
	compile := flag.Bool("compile", true, "capture and replay shape-cached fused execution plans (bitwise-identical to eager; disable for A/B timing)")
	flag.Parse()
	set.DisableCompile = !*compile

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}

	r := experiments.New(set, os.Stdout)
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs
	}
	for _, id := range ids {
		start := time.Now()
		if err := r.Run(id); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
