// Command cascade-router fronts a sharded cascade-serve cluster: it spreads
// node pairs over N shards by rendezvous hashing, health-checks every shard
// member, promotes a standby when a primary goes quiet, and buffers writes
// as hinted handoff while a shard has no writable member. Clients speak the
// same /ingest and /score API a solo cascade-serve exposes.
//
//	cascade-serve -addr :8081 -wal-dir /tmp/s0p -repl-target 127.0.0.1:9081 &
//	cascade-serve -addr :8082 -wal-dir /tmp/s0s -repl-listen 127.0.0.1:9081 &
//	cascade-router -addr :8080 -shard http://127.0.0.1:8081,http://127.0.0.1:8082
//	curl -X POST localhost:8080/ingest -d '{"events":[{"src":1,"dst":2,"time":1e6}]}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/cluster"
	"github.com/cascade-ml/cascade/internal/serve"
)

// shardFlags collects repeatable -shard flags ("primaryURL[,standbyURL]").
type shardFlags []cluster.ShardSpec

func (s *shardFlags) String() string { return fmt.Sprintf("%d shards", len(*s)) }

func (s *shardFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) < 1 || len(parts) > 2 || parts[0] == "" {
		return fmt.Errorf("want primaryURL or primaryURL,standbyURL, got %q", v)
	}
	spec := cluster.ShardSpec{Primary: strings.TrimSpace(parts[0])}
	if len(parts) == 2 {
		spec.Standby = strings.TrimSpace(parts[1])
	}
	*s = append(*s, spec)
	return nil
}

func main() {
	var shards shardFlags
	flag.Var(&shards, "shard", "one shard's members as primaryURL[,standbyURL]; repeat per shard — order and count fix pair placement, so keep them stable across router restarts")
	addr := flag.String("addr", ":8080", "listen address")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "health-probe cadence per shard member")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = half the interval)")
	probeMisses := flag.Int("probe-misses", 3, "consecutive probe misses before a member is declared dead (and a primary with a live standby is failed over)")
	hintDepth := flag.Int("hint-depth", 256, "max buffered batches per shard while it has no writable member; beyond it ingest sheds with 503")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline (503 beyond); 0 disables")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "drain deadline for in-flight requests on SIGINT/SIGTERM")
	logLevel := flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	traceChrome := flag.String("trace-chrome", "", "write a Chrome trace-event JSON file here (one root span per routed request, traceparent-propagated to the shards; merge with tools/tracemerge)")
	flag.Parse()

	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "cascade-router: at least one -shard is required")
		os.Exit(1)
	}
	reg := cascade.NewMetricsRegistry()
	var tracer *cascade.Tracer
	if *traceChrome != "" {
		f, err := os.Create(*traceChrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-router: trace-chrome: %v\n", err)
			os.Exit(1)
		}
		chrome := cascade.NewChromeTrace(f)
		defer chrome.Close()
		tracer = cascade.NewTracer(cascade.TracerOptions{Chrome: chrome, Registry: reg})
	}
	logger := cascade.NewLogger(os.Stderr, *logLevel, *logJSON, tracer.ID())
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Shards:         shards,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		ProbeMisses:    *probeMisses,
		HintDepth:      *hintDepth,
		RequestTimeout: *reqTimeout,
		Metrics:        reg,
		Tracer:         tracer,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-router: %v\n", err)
		os.Exit(1)
	}
	defer router.Stop()

	httpSrv := serve.NewHTTPServer(router.Handler(), serve.HTTPOptions{
		Addr: *addr, RequestTimeout: *reqTimeout,
	})
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	for i, s := range shards {
		fmt.Printf("shard %d: primary %s", i, s.Primary)
		if s.Standby != "" {
			fmt.Printf(", standby %s", s.Standby)
		}
		fmt.Println()
	}
	fmt.Printf("routing on %s (POST /ingest, POST /score, GET /stats, GET /metrics[?federate=1], GET /healthz, GET /readyz, GET /debug/cluster)\n", *addr)
	logger.Info("routing", "addr", *addr, "shards", len(shards))
	if err := serve.RunGraceful(httpSrv, nil, stop, *shutdownTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "cascade-router: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained, bye")
}
