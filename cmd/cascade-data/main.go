// Command cascade-data generates and inspects the synthetic CTDG datasets:
// Table 2-style statistics, per-batch degree distributions (Fig. 3) and
// dependency-table profiles.
//
//	cascade-data -dataset WIKI -events 10000
//	cascade-data -all -events 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/stats"
)

func main() {
	dataset := flag.String("dataset", "WIKI", "dataset profile name")
	all := flag.Bool("all", false, "inspect every profile")
	events := flag.Int("events", 5000, "approximate event count to scale to")
	base := flag.Int("base", 0, "batch size for degree/profile analysis (0 = proportional 900)")
	seed := flag.Int64("seed", 1, "random seed")
	outPath := flag.String("write", "", "write the generated dataset to this file (.csv or binary)")
	inPath := flag.String("read", "", "read a dataset from this file instead of generating")
	validate := flag.Bool("validate", false, "with -read: check stream invariants (sorted finite timestamps, node ids in range, feature table) and exit; bad records are reported with their line number")
	flag.Parse()

	if *validate {
		if *inPath == "" {
			fmt.Fprintln(os.Stderr, "cascade-data: -validate needs -read")
			os.Exit(1)
		}
		d, err := loadDataset(*inPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-data: invalid: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid CTDG stream (%d nodes, %d events, feat dim %d)\n",
			*inPath, d.NumNodes, d.NumEvents(), d.EdgeFeatDim)
		return
	}
	if *inPath != "" {
		inspectFile(*inPath, *base)
		return
	}

	names := []string{*dataset}
	if *all {
		names = cascade.DatasetNames
	}
	for _, name := range names {
		p, ok := datagen.ByName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "cascade-data: unknown dataset %q\n", name)
			os.Exit(1)
		}
		scale := float64(*events) / float64(p.Events)
		d := p.Generate(datagen.Options{Scale: scale, Seed: *seed})
		s := d.ComputeStats()
		b := *base
		if b <= 0 {
			b = int(900*scale + 0.5)
			if b < 10 {
				b = 10
			}
		}
		fmt.Printf("%s (profile %s at scale %.2e)\n", d.Name, name, scale)
		fmt.Printf("  paper scale: %d nodes, %d events, feat dim %d\n", p.Nodes, p.Events, p.FeatDim)
		fmt.Printf("  generated:   %d nodes, %d events, feat dim %d, avg degree %.1f, max degree %d, timespan %.0f\n",
			s.NumNodes, s.NumEvents, d.EdgeFeatDim, s.AvgDegree, s.MaxDegree, s.TimeSpan)

		// Fig. 3-style per-batch degree distribution: the paper's
		// 25/50/75/100 buckets for batch 900, scaled to b and kept integer
		// and strictly ascending.
		edges := make([]float64, 4)
		prev := 0.0
		for i, paperEdge := range []float64{25, 50, 75, 100} {
			v := float64(int(paperEdge*float64(b)/900 + 0.5))
			if v <= prev {
				v = prev + 1
			}
			edges[i] = v
			prev = v
		}
		h := stats.NewHistogram(edges...)
		d.DegreeInBatches(b, func(node int32, count int) { h.Add(float64(count)) })
		fmt.Printf("  degree within batches of %d:", b)
		labels := h.BucketLabels()
		for i, f := range h.Fractions() {
			fmt.Printf("  %s=%.1f%%", labels[i], 100*f)
		}
		fmt.Println()

		// Dependency-table profile (Algorithm 2 + Fig. 9 statistics).
		table := core.BuildDependencyTable(d.Events, d.NumNodes, 0)
		es := core.ProfileMaxEndurance(table, d.Events, b, 50, *seed)
		fmt.Printf("  dependency table: %.1f MiB; max endurance max/mean/min = %.0f/%.0f/%.0f over %d base batches\n\n",
			float64(table.MemoryBytes())/(1<<20), es.MrMax, es.MrMean, es.MrMin, es.NumBaseBatches)

		if *outPath != "" {
			if err := writeDataset(d, *outPath); err != nil {
				fmt.Fprintf(os.Stderr, "cascade-data: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  written to %s\n\n", *outPath)
		}
	}
}

// writeDataset persists a dataset; .csv extension selects the text format,
// anything else the binary format (which also carries edge features).
func writeDataset(d *graph.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return d.WriteCSV(f)
	}
	return d.WriteBinary(f)
}

// loadDataset reads a stored dataset; the reader validates the stream
// (sorted finite timestamps, node ids in range) as part of parsing.
func loadDataset(path string) (*graph.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return graph.ReadCSV(f)
	}
	return graph.ReadBinary(f)
}

// inspectFile loads a stored dataset and prints its statistics.
func inspectFile(path string, base int) {
	d, err := loadDataset(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-data: %v\n", err)
		os.Exit(1)
	}
	s := d.ComputeStats()
	if base <= 0 {
		base = 900 * d.NumEvents() / 157474
		if base < 10 {
			base = 10
		}
	}
	fmt.Printf("%s (from %s)\n", d.Name, path)
	fmt.Printf("  %d nodes, %d events, feat dim %d, avg degree %.1f, max degree %d\n",
		s.NumNodes, s.NumEvents, d.EdgeFeatDim, s.AvgDegree, s.MaxDegree)
	table := core.BuildDependencyTable(d.Events, d.NumNodes, 0)
	es := core.ProfileMaxEndurance(table, d.Events, base, 50, 1)
	fmt.Printf("  max endurance max/mean/min = %.0f/%.0f/%.0f over %d base batches of %d\n",
		es.MrMax, es.MrMean, es.MrMin, es.NumBaseBatches, base)
}
