// Command cascade-train trains one TGNN on one synthetic dataset under one
// batching policy and prints per-epoch statistics.
//
//	cascade-train -model TGN -dataset WIKI -scheduler Cascade -epochs 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/resilience"
	"github.com/cascade-ml/cascade/internal/train"
)

func main() {
	model := flag.String("model", "TGN", "model: "+strings.Join(cascade.ModelNames, ", "))
	dataset := flag.String("dataset", "WIKI", "dataset profile: "+strings.Join(cascade.DatasetNames, ", "))
	scheduler := flag.String("scheduler", "Cascade", "batching policy (TGL, TGLite, TGL-LB, NeutronStream, ETC, Cascade, Cascade-Lite, Cascade-TB, Cascade_EX)")
	events := flag.Int("events", 5000, "approximate event count (dataset is scaled to this)")
	base := flag.Int("base", 0, "base batch size (0 = proportional analog of the paper's 900)")
	epochs := flag.Int("epochs", 10, "training epochs")
	memdim := flag.Int("memdim", 64, "node memory width")
	timedim := flag.Int("timedim", 8, "time encoding width")
	lr := flag.Float64("lr", 1e-3, "Adam learning rate")
	theta := flag.Float64("theta", 0.9, "SG-Filter similarity threshold")
	seed := flag.Int64("seed", 1, "random seed")
	staleness := flag.Int("staleness", 0, "bounded-staleness budget: forward passes may read node memories up to this many update rounds behind (0 = exact schedule)")
	compile := flag.Bool("compile", true, "capture and replay shape-cached fused execution plans (bitwise-identical to eager; disable for A/B timing)")
	task := flag.String("task", "link", "task: link (edge prediction) or nodeclass (needs a labeled dataset, e.g. MOOC)")
	metrics := flag.Bool("metrics", false, "also report ROC-AUC and Average Precision")
	savePath := flag.String("save", "", "write a model checkpoint here after training")
	loadPath := flag.String("load", "", "restore a model checkpoint before training")
	tracePath := flag.String("trace", "", "write per-batch JSONL trace records here")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-format metrics dump here after training (\"-\" for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of training+validation here (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a post-run heap profile here (go tool pprof)")
	ckptDir := flag.String("checkpoint-dir", "", "write full-state checkpoints (weights, optimizer, memories, scheduler, RNG) into this directory")
	ckptEvery := flag.Int("checkpoint-every", 0, "mid-epoch checkpoint cadence in batches (0 = epoch boundaries only)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "on-disk checkpoint retention (newest N)")
	resume := flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint-dir")
	health := flag.Bool("health", false, "enable the numerical-health monitor (NaN/exploding-gradient rollback with LR backoff)")
	replicas := flag.Int("replicas", 1, "data-parallel replicas; >1 switches to distributed training with epoch-boundary weight averaging")
	epochTimeout := flag.Duration("epoch-timeout", 0, "distributed epoch-barrier deadline; stragglers past it are evicted (0 waits forever)")
	rejoin := flag.Bool("rejoin", false, "let evicted replicas rejoin from the latest averaged checkpoint (distributed mode; pairs with -checkpoint-dir for on-disk restore)")
	traceChrome := flag.String("trace-chrome", "", "write a Chrome trace-event JSON file here (open in Perfetto / chrome://tracing; one lane per pipeline phase)")
	flightDir := flag.String("flight-dir", "", "keep a flight recorder of recent batch span trees; dumps into this directory on health rollback / replica eviction")
	flightKeep := flag.Int("flight-keep", 64, "how many recent batch span trees the flight recorder retains")
	logLevel := flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	profileEvents := map[string]int{
		"WIKI": 157474, "REDDIT": 672447, "MOOC": 411749,
		"WIKI-TALK": 5021410, "SX-FULL": 63497050,
		"GDELT": 191290882, "MAG": 1297748926,
	}
	pe, ok := profileEvents[*dataset]
	if !ok {
		fmt.Fprintf(os.Stderr, "cascade-train: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	scale := float64(*events) / float64(pe)
	ds := cascade.GenerateDataset(*dataset, scale, *seed)
	if *base <= 0 {
		*base = int(900*scale + 0.5)
		if *base < 10 {
			*base = 10
		}
	}
	fmt.Printf("dataset %s: %d events, %d nodes, feat dim %d; base batch %d\n",
		ds.Name, ds.NumEvents(), ds.NumNodes, ds.EdgeFeatDim, *base)

	// Observability bundle shared by the single-process and distributed
	// paths. The registry exists whenever anything consumes it — the
	// -metrics-out dump, flight-recorder snapshots, or the tracer's phase
	// summaries.
	var reg *cascade.Registry
	if *metricsOut != "" || *traceChrome != "" || *flightDir != "" {
		reg = cascade.NewMetricsRegistry()
	}
	var (
		tracer *cascade.Tracer
		flight *cascade.FlightRecorder
	)
	if *traceChrome != "" || *flightDir != "" {
		topt := cascade.TracerOptions{Registry: reg}
		if *traceChrome != "" {
			f, err := os.Create(*traceChrome)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cascade-train: trace-chrome: %v\n", err)
				os.Exit(1)
			}
			chrome := cascade.NewChromeTrace(f)
			topt.Chrome = chrome
			// Close terminates the JSON array; skipped on os.Exit error
			// paths, which Perfetto tolerates (the ] is optional in the
			// trace-event format).
			defer func() {
				if err := chrome.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "cascade-train: trace-chrome: %v\n", err)
				} else {
					fmt.Printf("chrome trace written to %s\n", *traceChrome)
				}
			}()
		}
		if *flightDir != "" {
			flight = cascade.NewFlightRecorder(*flightDir, *flightKeep, reg)
			topt.Flight = flight
		}
		tracer = cascade.NewTracer(topt)
	}
	logger := cascade.NewLogger(os.Stderr, *logLevel, *logJSON, tracer.ID())

	if *replicas > 1 {
		runDistributed(ds, distFlags{
			replicas: *replicas, model: *model, useCascade: *scheduler == "Cascade",
			base: *base, epochs: *epochs, memdim: *memdim, timedim: *timedim,
			lr: float32(*lr), seed: *seed, epochTimeout: *epochTimeout,
			rejoin: *rejoin, ckptDir: *ckptDir, metricsOut: *metricsOut,
			reg: reg, tracer: tracer, flight: flight, logger: logger,
		})
		return
	}

	cfg := cascade.RunConfig{
		Dataset:        ds,
		Model:          *model,
		Scheduler:      cascade.SchedulerKind(*scheduler),
		BaseBatch:      *base,
		Epochs:         *epochs,
		MemoryDim:      *memdim,
		TimeDim:        *timedim,
		LR:             float32(*lr),
		ThetaSim:       *theta,
		Seed:           *seed,
		Staleness:      *staleness,
		DisableCompile: !*compile,
	}
	switch *task {
	case "link":
	case "nodeclass":
		cfg.Task = cascade.TaskNodeClassification
	default:
		fmt.Fprintf(os.Stderr, "cascade-train: unknown task %q\n", *task)
		os.Exit(1)
	}
	var traceFile *os.File
	if *tracePath != "" {
		var err error
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: trace: %v\n", err)
			os.Exit(1)
		}
		defer traceFile.Close()
		enc := json.NewEncoder(traceFile)
		cfg.OnBatch = func(bt cascade.BatchTrace) {
			if err := enc.Encode(bt); err != nil {
				fmt.Fprintf(os.Stderr, "cascade-train: trace: %v\n", err)
				os.Exit(1)
			}
		}
	}
	metricsFile := os.Stdout
	if *metricsOut != "" {
		// Open the dump target up front: failing after hours of training
		// would lose the run's metrics.
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cascade-train: metrics-out: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			metricsFile = f
		}
	}
	cfg.Obs = reg
	cfg.Tracer = tracer
	run, err := cascade.NewRun(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-train: %v\n", err)
		os.Exit(1)
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err == nil {
			err = run.LoadModel(f)
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("restored checkpoint %s\n", *loadPath)
	}

	// The CPU profile brackets exactly the hot path (training epochs +
	// validation), not dataset generation or model construction.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}

	logger.Info("training starting", "model", *model, "dataset", ds.Name,
		"scheduler", *scheduler, "epochs", *epochs, "base_batch", *base)
	printEpoch := func(st train.EpochStats) {
		fmt.Printf("%5d %8d %10.1f %12.5f %12v %8v %7.1f%% %7.1f%%",
			st.Epoch, st.Batches, st.MeanBatchSize, st.Loss,
			st.WallTime.Round(1e6), st.DeviceTime.Round(1e5),
			100*st.MeanOccupancy, 100*st.StableRatio)
		if *staleness > 0 {
			fmt.Printf("  stale served %d (max %d/%d), applied rounds %d",
				st.StaleServed, st.StaleMax, *staleness, st.StaleAppliedRounds)
		}
		fmt.Println()
		logger.Debug("epoch complete", "epoch", st.Epoch, "batches", st.Batches,
			"loss", st.Loss, "wall_ms", st.WallTime.Milliseconds())
	}
	printHeader := func() {
		fmt.Printf("%5s %8s %10s %12s %12s %8s %8s %8s\n",
			"epoch", "batches", "meanbatch", "trainloss", "wall", "device", "occ", "stable")
	}
	if *ckptDir != "" || *health {
		// Fault-tolerant path: the resilience manager owns the epoch loop —
		// checkpoints on cadence, health rollback with LR backoff, resume.
		mgr, err := resilience.NewManager(run.Trainer(), resilience.Options{
			Dir: *ckptDir, EveryBatches: *ckptEvery, Keep: *ckptKeep,
			Health: train.HealthConfig{Enabled: *health},
			Obs:    reg, Recorder: flight,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: %v\n", err)
			os.Exit(1)
		}
		if *resume {
			if *ckptDir == "" {
				fmt.Fprintln(os.Stderr, "cascade-train: -resume needs -checkpoint-dir")
				os.Exit(1)
			}
			ok, err := mgr.Resume()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cascade-train: resume: %v\n", err)
				os.Exit(1)
			}
			if ok {
				c := mgr.LastGood()
				at := "epoch boundary"
				if c.Batch >= 0 {
					at = fmt.Sprintf("batch %d", c.Batch)
				}
				fmt.Printf("resumed from checkpoint (epoch %d, %s)\n", c.Epoch, at)
			} else {
				fmt.Println("no checkpoint found; starting fresh")
			}
		}
		printHeader()
		stats, err := mgr.Run(*epochs)
		for _, st := range stats {
			printEpoch(st)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: %v\n", err)
			os.Exit(1)
		}
	} else {
		if *resume {
			fmt.Fprintln(os.Stderr, "cascade-train: -resume needs -checkpoint-dir")
			os.Exit(1)
		}
		printHeader()
		for e := 0; e < *epochs; e++ {
			printEpoch(run.Trainer().TrainEpoch())
		}
	}
	if cfg.Task == cascade.TaskNodeClassification {
		m := run.Trainer().ValidateClass()
		fmt.Printf("validation (batch %d): loss %.5f", *base, m.Loss)
		if *metrics {
			fmt.Printf("  AUC %.4f  AP %.4f", m.AUC, m.AP)
		}
		fmt.Println()
	} else if *metrics {
		m := run.Trainer().ValidateMetrics()
		fmt.Printf("validation (batch %d): loss %.5f  AUC %.4f  AP %.4f\n", *base, m.Loss, m.AUC, m.AP)
	} else {
		fmt.Printf("validation loss (batch %d): %.5f\n", *base, run.Trainer().Validate())
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("cpu profile written to %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // flush dead objects so the profile shows live bytes
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: memprofile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("heap profile written to %s\n", *memProfile)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err == nil {
			err = run.SaveModel(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
	if reg != nil && *metricsOut != "" {
		if err := reg.WritePrometheus(metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: metrics-out: %v\n", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
	}
	logger.Info("training complete", "epochs", *epochs)
	if cs := run.CascadeScheduler(); cs != nil {
		stats := cs.Sensor().Stats()
		fmt.Printf("cascade: Maxr=%d (profiled max/mean/min = %.0f/%.0f/%.0f over %d base batches), preprocess %v, lookup %v\n",
			cs.Sensor().Maxr(), stats.MrMax, stats.MrMean, stats.MrMin, stats.NumBaseBatches,
			cs.BuildTime().Round(1e5), cs.LookupTime().Round(1e5))
	}
}

// distFlags bundles the flag values the distributed branch consumes.
type distFlags struct {
	replicas        int
	model           string
	useCascade      bool
	base, epochs    int
	memdim, timedim int
	lr              float32
	seed            int64
	epochTimeout    time.Duration
	rejoin          bool
	ckptDir         string
	metricsOut      string
	reg             *cascade.Registry
	tracer          *cascade.Tracer
	flight          *cascade.FlightRecorder
	logger          *slog.Logger
}

// runDistributed is the -replicas>1 path: data-parallel training with
// epoch-boundary weight averaging, barrier eviction, and optional rejoin.
func runDistributed(ds *cascade.Dataset, f distFlags) {
	metricsFile := os.Stdout
	if f.metricsOut != "" {
		if f.metricsOut != "-" {
			out, err := os.Create(f.metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cascade-train: metrics-out: %v\n", err)
				os.Exit(1)
			}
			defer out.Close()
			metricsFile = out
		}
	}
	fmt.Printf("distributed: %d replicas, rejoin=%v\n", f.replicas, f.rejoin)
	f.logger.Info("distributed training starting", "replicas", f.replicas,
		"model", f.model, "epochs", f.epochs)
	res, err := cascade.TrainDistributed(cascade.DistributedConfig{
		Dataset: ds, Replicas: f.replicas, Model: f.model, UseCascade: f.useCascade,
		BaseBatch: f.base, Epochs: f.epochs, MemoryDim: f.memdim, TimeDim: f.timedim,
		LR: f.lr, Seed: f.seed, EpochTimeout: f.epochTimeout,
		Rejoin: f.rejoin, CheckpointDir: f.ckptDir,
		Obs: f.reg, Tracer: f.tracer, Recorder: f.flight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-train: %v\n", err)
		os.Exit(1)
	}
	for r, losses := range res.ReplicaLosses {
		fmt.Printf("replica %d losses: ", r)
		for _, l := range losses {
			fmt.Printf("%.5f ", l)
		}
		fmt.Println()
	}
	if len(res.Evicted) > 0 {
		fmt.Printf("evicted: %v, rejoined: %v\n", res.Evicted, res.Rejoined)
	}
	fmt.Printf("syncs %d, wall %v, validation loss %.5f\n",
		res.SyncCount, res.WallTime.Round(1e6), res.ValLoss)
	if f.reg != nil && f.metricsOut != "" {
		if err := f.reg.WritePrometheus(metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-train: metrics-out: %v\n", err)
			os.Exit(1)
		}
		if f.metricsOut != "-" {
			fmt.Printf("metrics written to %s\n", f.metricsOut)
		}
	}
}
