// Command cascade-serve trains a TGNN on a synthetic stream (or restores a
// checkpoint) and serves it for online inference: fresh events stream in
// via POST /ingest, candidate edges are scored via POST /score, counters at
// GET /stats, Prometheus metrics at GET /metrics — the continuous-deployment
// scenario the paper's introduction motivates.
//
//	cascade-serve -dataset WIKI -model TGN -epochs 5 -addr :8080
//	curl -X POST localhost:8080/score -d '{"pairs":[{"src":1,"dst":2}],"time":1e6}'
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/cluster"
	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/serve"
	"github.com/cascade-ml/cascade/internal/wal"
)

func main() {
	model := flag.String("model", "TGN", "TGNN model name")
	dataset := flag.String("dataset", "WIKI", "dataset profile for pre-training")
	events := flag.Int("events", 4000, "pre-training event count")
	epochs := flag.Int("epochs", 6, "pre-training epochs")
	memdim := flag.Int("memdim", 32, "node memory width")
	addr := flag.String("addr", ":8080", "listen address")
	loadPath := flag.String("load", "", "restore a checkpoint instead of pre-training from scratch")
	tracePath := flag.String("trace", "", "append one JSONL record per request (route, status, latency) here")
	seed := flag.Int64("seed", 1, "random seed")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline (503 beyond); 0 disables")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "drain deadline for in-flight requests on SIGINT/SIGTERM")
	maxInflight := flag.Int("max-inflight", 16, "concurrently admitted requests; more wait in the bounded queue")
	queueDepth := flag.Int("queue-depth", 64, "wait-queue bound behind -max-inflight; arrivals beyond it are shed with 429 + Retry-After")
	rate := flag.Float64("rate", 0, "sustained admission rate in requests/second (token bucket; 0 = unlimited)")
	staleOK := flag.Bool("stale-ok", false, "degrade /score to a stale-snapshot replica instead of shedding when the fresh path is saturated or its breaker is open")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long the scoring circuit breaker stays open before probing")
	traceChrome := flag.String("trace-chrome", "", "write a Chrome trace-event JSON file here (pre-training batches + per-request spans; open in Perfetto)")
	flightDir := flag.String("flight-dir", "", "flight-recorder dump directory; the span ring is dumped here when the scoring breaker opens")
	flightKeep := flag.Int("flight-keep", 64, "how many recent span trees the flight recorder retains")
	logLevel := flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory for /ingest durability; empty disables the WAL (crash loses ingested events)")
	walSync := flag.String("wal-sync", "batch", "WAL sync policy: always (fsync per record), batch (fsync per ingest request), interval (fsync on -wal-sync-interval; acks may precede durability)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment file size cap in bytes (0 = 4 MiB default)")
	walSyncInterval := flag.Duration("wal-sync-interval", 100*time.Millisecond, "flush cadence under -wal-sync interval")
	walCompactEvery := flag.Int("wal-compact-every", 0, "compact (snapshot + truncate) after this many ingest batches (0 = 256 default, negative disables)")
	replListen := flag.String("repl-listen", "", "run as a replication standby: accept the primary's WAL stream on this TCP address (requires -wal-dir; /ingest refuses writes until promoted)")
	replTarget := flag.String("repl-target", "", "run as a replication primary: stream committed WAL frames to the standby at this TCP address (requires -wal-dir)")
	replAckTimeout := flag.Duration("repl-ack-timeout", 5*time.Second, "how long /ingest waits for the standby's durable ack before degrading to async replication for that batch")
	replLagBound := flag.Uint64("repl-lag-bound", 1024, "committed-minus-acked record gap beyond which /readyz reports the standby as lagging")
	flag.Parse()

	if (*replListen != "" || *replTarget != "") && *walDir == "" {
		fmt.Fprintln(os.Stderr, "cascade-serve: -repl-listen / -repl-target require -wal-dir (replication ships WAL frames)")
		os.Exit(1)
	}
	if *replListen != "" && *replTarget != "" {
		fmt.Fprintln(os.Stderr, "cascade-serve: a process is either a primary (-repl-target) or a standby (-repl-listen), not both")
		os.Exit(1)
	}

	profileEvents := map[string]int{
		"WIKI": 157474, "REDDIT": 672447, "MOOC": 411749,
		"WIKI-TALK": 5021410, "SX-FULL": 63497050,
		"GDELT": 191290882, "MAG": 1297748926,
	}
	pe, ok := profileEvents[*dataset]
	if !ok {
		fmt.Fprintf(os.Stderr, "cascade-serve: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	ds := cascade.GenerateDataset(*dataset, float64(*events)/float64(pe), *seed)
	base := 900 * ds.NumEvents() / pe
	if base < 10 {
		base = 10
	}
	// One registry spans the whole process: pre-training metrics (train_*,
	// cascade_*, device_*) and serving metrics (serve_*) both land on
	// GET /metrics.
	reg := cascade.NewMetricsRegistry()
	var (
		tracer *cascade.Tracer
		flight *cascade.FlightRecorder
	)
	if *traceChrome != "" || *flightDir != "" {
		topt := cascade.TracerOptions{Registry: reg}
		if *traceChrome != "" {
			f, err := os.Create(*traceChrome)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cascade-serve: trace-chrome: %v\n", err)
				os.Exit(1)
			}
			chrome := cascade.NewChromeTrace(f)
			topt.Chrome = chrome
			defer chrome.Close()
		}
		if *flightDir != "" {
			flight = cascade.NewFlightRecorder(*flightDir, *flightKeep, reg)
			topt.Flight = flight
		}
		tracer = cascade.NewTracer(topt)
	}
	logger := cascade.NewLogger(os.Stderr, *logLevel, *logJSON, tracer.ID())
	run, err := cascade.NewRun(cascade.RunConfig{
		Dataset: ds, Model: *model, Scheduler: cascade.SchedCascade,
		BaseBatch: base, Epochs: *epochs, MemoryDim: *memdim, TimeDim: 8, Seed: *seed,
		Obs: reg, Tracer: tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
		os.Exit(1)
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err == nil {
			err = run.LoadModel(f)
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("restored checkpoint %s\n", *loadPath)
	} else {
		fmt.Printf("pre-training %s on %s (%d events, %d epochs)…\n", *model, ds.Name, ds.NumEvents(), *epochs)
		res, err := run.Execute()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pre-trained: val loss %.4f, mean batch %.0f\n", res.FinalValLoss, res.MeanBatchSize)
	}

	opts := []serve.Option{
		serve.WithRegistry(reg),
		serve.WithLimits(load.Limits{MaxInflight: *maxInflight, QueueDepth: *queueDepth, Rate: *rate}),
		serve.WithBreaker(load.BreakerConfig{Cooldown: *breakerCooldown}),
		serve.WithLogger(logger),
	}
	if tracer != nil {
		opts = append(opts, serve.WithTracer(tracer))
	}
	if flight != nil {
		opts = append(opts, serve.WithFlightRecorder(flight))
	}
	if *staleOK {
		sm, sp, err := run.NewScoringReplica()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: stale replica: %v\n", err)
			os.Exit(1)
		}
		// Re-sync the replica from the live model at most once per second:
		// Snapshot copies every node memory, so per-ingest refresh would
		// double ingest cost under sustained load.
		opts = append(opts, serve.WithStaleReplica(sm, sp, time.Second))
	}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink := obs.NewTrace(f)
		defer sink.Close()
		opts = append(opts, serve.WithTrace(sink))
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, serve.WithWAL(serve.WALConfig{
			Dir:          *walDir,
			SegmentBytes: *walSegmentBytes,
			Sync:         policy,
			SyncInterval: *walSyncInterval,
			CompactEvery: *walCompactEvery,
		}))
	}
	if *replListen != "" {
		opts = append(opts, serve.WithStandby())
	}
	srv := serve.New(run.Model(), run.Trainer().Predictor(), ds.NumNodes, opts...)
	if *walDir != "" {
		rec, err := srv.StartWAL()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: wal: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wal %s: snapshot %q, %d segments, replayed %d batches (%d events)",
			*walDir, rec.SnapshotPath, rec.Log.Segments, rec.ReplayedRecords, rec.ReplayedEvents)
		if rec.Log.TornBytes > 0 {
			fmt.Printf(", truncated %d torn bytes", rec.Log.TornBytes)
		}
		fmt.Println()
		logger.Info("wal recovered", "dir", *walDir, "snapshot", rec.SnapshotPath,
			"replayed_batches", rec.ReplayedRecords, "replayed_events", rec.ReplayedEvents,
			"torn_bytes", rec.Log.TornBytes)
	}
	// Replication wiring comes after WAL recovery: the stream positions
	// (standby's next seq, primary's committed frames) only exist once the
	// log is open and replayed.
	var stopRepl func()
	switch {
	case *replListen != "":
		recv, err := cluster.NewReceiver(cluster.ReceiverConfig{
			Addr: *replListen, State: srv, Metrics: reg, Logger: logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
			os.Exit(1)
		}
		stopRepl = recv.Stop
		fmt.Printf("standby: accepting WAL stream on %s (POST /admin/promote to take over)\n", recv.Addr())
		logger.Info("replication standby", "listen", recv.Addr())
	case *replTarget != "":
		sender, err := cluster.NewSender(cluster.SenderConfig{
			Target: *replTarget, Log: srv.WAL(), Snapshot: srv.ReplSnapshot,
			Metrics: reg, Logger: logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
			os.Exit(1)
		}
		if err := srv.SetReplicator(sender, serve.ReplOptions{
			AckTimeout: *replAckTimeout, LagBound: *replLagBound,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
			os.Exit(1)
		}
		stopRepl = sender.Stop
		fmt.Printf("primary: shipping WAL frames to %s\n", *replTarget)
		logger.Info("replication primary", "target", *replTarget)
	}
	httpSrv := serve.NewHTTPServer(srv.Handler(), serve.HTTPOptions{
		Addr: *addr, RequestTimeout: *reqTimeout,
	})
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("serving on %s (POST /ingest, POST /score, GET /stats, GET /metrics, GET /healthz, GET /readyz, GET /debug/pipeline)\n", *addr)
	logger.Info("serving", "addr", *addr)
	// StartDrain flips /readyz to 503 for the whole drain window, so load
	// balancers stop routing here while in-flight requests finish; the flush
	// hook fsyncs and closes the WAL after the drain, so a clean SIGTERM
	// never leans on replay.
	err = serve.RunGracefulFlush(httpSrv, nil, stop, *shutdownTimeout, srv.StartDrain, func() error {
		if stopRepl != nil {
			stopRepl()
		}
		if ferr := srv.FlushWAL(); ferr != nil {
			return ferr
		}
		return srv.CloseWAL()
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascade-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained, bye")
}
