// Command benchdiff compares two benchjson artifacts (see tools/benchjson)
// and fails when any op present in both regresses beyond the per-metric
// thresholds. It is the performance gate behind `make benchdiff`: the
// committed BENCH_pr2.json is the reference, a fresh short run is the
// candidate, and a tracing-disabled hot path must stay within noise.
//
// A regression on a metric means
//
//	new > old*(1 + pct/100) + slack
//
// where the absolute slack keeps tiny denominators (3 allocs/op, 32 B/op)
// from tripping the percentage test on noise. Ops present in only one file
// are reported but never fail the gate — the benchmark set is allowed to
// grow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Note    string   `json:"note,omitempty"`
	Results []result `json:"results"`
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	out := make(map[string]result, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Op] = r
	}
	return out, nil
}

// worse reports whether new regresses past old by more than pct percent
// plus slack absolute units.
func worse(oldV, newV, pct, slack float64) bool {
	return newV > oldV*(1+pct/100)+slack
}

func pctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

func main() {
	oldPath := flag.String("old", "", "reference benchjson artifact (required)")
	newPath := flag.String("new", "", "candidate benchjson artifact (required)")
	maxNsPct := flag.Float64("max-ns-pct", 50, "max ns/op regression in percent")
	maxBytesPct := flag.Float64("max-bytes-pct", 50, "max B/op regression in percent")
	maxAllocsPct := flag.Float64("max-allocs-pct", 25, "max allocs/op regression in percent")
	bytesSlack := flag.Float64("bytes-slack", 1024, "absolute B/op slack before the percentage test applies")
	allocsSlack := flag.Float64("allocs-slack", 8, "absolute allocs/op slack before the percentage test applies")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}

	oldRes, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	ops := make([]string, 0, len(oldRes))
	for op := range oldRes {
		ops = append(ops, op)
	}
	sort.Strings(ops)

	var regressions []string
	compared := 0
	for _, op := range ops {
		o := oldRes[op]
		n, ok := newRes[op]
		if !ok {
			fmt.Printf("  %-32s only in %s (skipped)\n", op, *oldPath)
			continue
		}
		compared++
		line := fmt.Sprintf("  %-32s ns %+7.1f%%  B %+7.1f%%  allocs %+7.1f%%",
			op, pctChange(o.NsPerOp, n.NsPerOp),
			pctChange(float64(o.BytesPerOp), float64(n.BytesPerOp)),
			pctChange(float64(o.AllocsPerOp), float64(n.AllocsPerOp)))
		bad := ""
		if worse(o.NsPerOp, n.NsPerOp, *maxNsPct, 0) {
			bad += fmt.Sprintf(" ns/op %v→%v", o.NsPerOp, n.NsPerOp)
		}
		if worse(float64(o.BytesPerOp), float64(n.BytesPerOp), *maxBytesPct, *bytesSlack) {
			bad += fmt.Sprintf(" B/op %d→%d", o.BytesPerOp, n.BytesPerOp)
		}
		if worse(float64(o.AllocsPerOp), float64(n.AllocsPerOp), *maxAllocsPct, *allocsSlack) {
			bad += fmt.Sprintf(" allocs/op %d→%d", o.AllocsPerOp, n.AllocsPerOp)
		}
		if bad != "" {
			line += "  REGRESSION:" + bad
			regressions = append(regressions, op+":"+bad)
		}
		fmt.Println(line)
	}
	for op := range newRes {
		if _, ok := oldRes[op]; !ok {
			fmt.Printf("  %-32s only in %s (new op, skipped)\n", op, *newPath)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no ops in common")
		os.Exit(1)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond thresholds (ns %.0f%%, B %.0f%%, allocs %.0f%%):\n",
			len(regressions), *maxNsPct, *maxBytesPct, *maxAllocsPct)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d ops compared, no regression beyond thresholds\n", compared)
}
