// Command tracemerge merges per-process -trace-chrome files onto one
// Perfetto/chrome://tracing timeline. Each input file becomes one process
// lane (pid), and per-process clock offsets are estimated from the
// distributed-trace spans the files share: a shard span carrying
// remote_parent nests inside the router span with the same trace_id, so
// aligning their midpoints recovers the epoch skew between the processes.
//
//	cascade-router -trace-chrome router.trace ... &
//	cascade-serve  -trace-chrome shard0.trace ... &
//	...
//	go run ./tools/tracemerge -o cluster.trace router.trace shard0.trace shard1.trace
//
// The merged file loads directly in Perfetto; search for a trace_id to see
// one request's spans across every process it touched.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/cascade-ml/cascade/internal/obs"
)

func main() {
	out := flag.String("o", "merged.trace", "output file for the merged Chrome trace")
	selftest := flag.Bool("selftest", false, "run the built-in merge/alignment check and exit")
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintln(os.Stderr, "tracemerge selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("tracemerge selftest ok")
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracemerge [-o merged.trace] file1.trace file2.trace ...")
		os.Exit(2)
	}
	var files []obs.TraceFile
	for _, name := range flag.Args() {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracemerge:", err)
			os.Exit(1)
		}
		files = append(files, obs.TraceFile{Name: name, Data: data})
	}
	merged, rep, err := obs.MergeChromeTraces(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracemerge:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, merged, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tracemerge:", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d events from %d processes into %s\n", rep.Events, len(rep.Processes), *out)
	fmt.Printf("distributed traces: %d\n", len(rep.Traces))
	cross := 0
	for _, procs := range rep.Traces {
		if len(procs) > 1 {
			cross++
		}
	}
	fmt.Printf("cross-process traces: %d\n", cross)
	for name, off := range rep.Offsets {
		fmt.Printf("clock offset %-30s %+.1fus\n", name, off)
	}
}

// runSelftest builds two synthetic traces with a known epoch skew — a
// "router" whose span covers a "shard" span continuing the same trace-id —
// merges them, and checks the estimated offset recovers the skew, the
// trace-id spans both processes, and the output stays valid JSON.
func runSelftest() error {
	const skew = 250_000.0 // µs: the shard's clock runs this far behind
	router := []byte(`[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"cascade"}},
{"name":"router_ingest","ph":"X","pid":1,"tid":8,"ts":1000,"dur":400,"args":{"trace_id":"aabbccddeeff00112233445566778899","span_id":1}},
{"name":"router_score","ph":"X","pid":1,"tid":8,"ts":2000,"dur":600,"args":{"trace_id":"99887766554433221100ffeeddccbbaa","span_id":2}}
]`)
	shard := []byte(fmt.Sprintf(`[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"cascade"}},
{"name":"serve_ingest","ph":"X","pid":1,"tid":8,"ts":%g,"dur":300,"args":{"trace_id":"aabbccddeeff00112233445566778899","remote_parent":"0102030405060708","span_id":9}},
{"name":"serve_score","ph":"X","pid":1,"tid":8,"ts":%g,"dur":500,"args":{"trace_id":"99887766554433221100ffeeddccbbaa","remote_parent":"1112131415161718","span_id":10}}
]`, 1050-skew, 2050-skew))

	merged, rep, err := obs.MergeChromeTraces([]obs.TraceFile{
		{Name: "router.trace", Data: router},
		{Name: "shard.trace", Data: shard},
	})
	if err != nil {
		return err
	}
	if got := rep.Offsets["router.trace"]; got != 0 {
		return fmt.Errorf("reference offset: got %g, want 0", got)
	}
	// Both synthetic child spans sit at the parent midpoint once shifted by
	// exactly skew, so the estimate should land on it to within rounding.
	if got := rep.Offsets["shard.trace"]; math.Abs(got-skew) > 1 {
		return fmt.Errorf("shard offset: got %g, want %g", got, skew)
	}
	for _, tid := range []string{"aabbccddeeff00112233445566778899", "99887766554433221100ffeeddccbbaa"} {
		procs := rep.Traces[tid]
		if len(procs) != 2 {
			return fmt.Errorf("trace %s spans %v, want both processes", tid, procs)
		}
	}
	if rep.Events != 4 {
		return fmt.Errorf("merged %d events, want 4", rep.Events)
	}
	// A truncated input (killed process) must still merge.
	if _, _, err := obs.MergeChromeTraces([]obs.TraceFile{
		{Name: "torn.trace", Data: router[:len(router)-3]},
		{Name: "shard.trace", Data: shard},
	}); err != nil {
		return fmt.Errorf("torn-input merge: %v", err)
	}
	if len(merged) == 0 || merged[0] != '[' {
		return fmt.Errorf("merged output is not a JSON array")
	}
	return nil
}
