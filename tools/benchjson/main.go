// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON artifact (one record per benchmark: op, ns/op, B/op,
// allocs/op). With -baseline it joins a previously captured run and
// records the before-number and speedup per op, which is how
// BENCH_pr2.json carries before/after pairs for the kernel rewrite.
//
// The raw bench output is echoed to stderr so piping through benchjson
// does not hide it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// BeforeNsPerOp / Speedup are filled from the -baseline file when it
	// has a record for the same op.
	BeforeNsPerOp float64 `json:"before_ns_per_op,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
}

type report struct {
	Note    string   `json:"note,omitempty"`
	Results []result `json:"results"`
}

// procSuffix strips the -GOMAXPROCS suffix the testing package appends to
// benchmark names (BenchmarkFoo/p1-8 → Foo/p1).
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkMatMul256/p1-8   100   13640102 ns/op   64 B/op   1 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Op: procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			ok = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, ok
}

func main() {
	out := flag.String("o", "", "output JSON path (required)")
	baseline := flag.String("baseline", "", "optional baseline JSON (same schema) to join as before/after")
	note := flag.String("note", "", "optional free-form note stored in the artifact")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o is required")
		os.Exit(2)
	}

	before := map[string]result{}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: read baseline: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline: %v\n", err)
			os.Exit(1)
		}
		for _, r := range base.Results {
			before[r.Op] = r
		}
	}

	// Later measurements of the same op (e.g. -count>1) overwrite earlier
	// ones; order of first appearance is kept.
	order := []string{}
	byOp := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		if _, seen := byOp[r.Op]; !seen {
			order = append(order, r.Op)
		}
		byOp[r.Op] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	rep := report{Note: *note}
	for _, op := range order {
		r := byOp[op]
		if b, ok := before[op]; ok && r.NsPerOp > 0 {
			r.BeforeNsPerOp = b.NsPerOp
			r.Speedup = b.NsPerOp / r.NsPerOp
		}
		rep.Results = append(rep.Results, r)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}
