// Command ckptcheck validates Cascade checkpoint files: magic, format
// version, CRC32 checksum and payload decodability, plus basic internal
// consistency of the decoded state. It exits nonzero when any argument
// fails, making it usable as a CI lint over checkpoint directories.
//
//	ckptcheck ckpt/ckpt-0000000003.ckpt
//	ckptcheck -dir ckpt/
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/memstore"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/resilience"
	"github.com/cascade-ml/cascade/internal/train"
)

func main() {
	dir := flag.String("dir", "", "validate every checkpoint in this directory (alternative to file arguments)")
	quiet := flag.Bool("q", false, "print failures only")
	strict := flag.Bool("strict", false, "additionally replay the restore path: decode every weight tensor (rejecting NaN/Inf values), rebuild the adjacency store, and restore memory/mailbox state into same-shape stores")
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		matches, err := filepath.Glob(filepath.Join(*dir, "ckpt-*.ckpt"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckptcheck: %v\n", err)
			os.Exit(2)
		}
		if len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "ckptcheck: no checkpoints in %s\n", *dir)
			os.Exit(2)
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ckptcheck [-q] [-dir DIR] [FILE...]")
		os.Exit(2)
	}

	failed := 0
	for _, path := range paths {
		c, err := resilience.ReadSnapshotFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckptcheck: FAIL %v\n", err)
			failed++
			continue
		}
		if err := describe(c); err != nil {
			fmt.Fprintf(os.Stderr, "ckptcheck: FAIL %s: %v\n", path, err)
			failed++
			continue
		}
		if *strict {
			if err := strictCheck(c); err != nil {
				fmt.Fprintf(os.Stderr, "ckptcheck: FAIL %s: %v\n", path, err)
				failed++
				continue
			}
		}
		if !*quiet {
			batch := "epoch-boundary"
			if c.Batch >= 0 {
				batch = fmt.Sprintf("batch %d", c.Batch)
			}
			fmt.Printf("ckptcheck: OK   %s (epoch %d, %s, %d weight bytes, scheduler %s)\n",
				path, c.Epoch, batch, len(c.Weights), c.SchedName)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ckptcheck: %d of %d files failed\n", failed, len(paths))
		os.Exit(1)
	}
}

// describe sanity-checks the decoded state beyond what the file checksum
// guarantees (a well-formed file can still carry an inconsistent payload).
func describe(c *train.CheckpointState) error {
	if c.Epoch < 0 {
		return fmt.Errorf("negative epoch %d", c.Epoch)
	}
	if c.Batch < -1 {
		return fmt.Errorf("invalid batch %d", c.Batch)
	}
	if len(c.Weights) == 0 {
		return fmt.Errorf("empty weights blob")
	}
	if c.Optimizer == nil {
		return fmt.Errorf("missing optimizer state")
	}
	if len(c.Optimizer.M) != len(c.Optimizer.V) {
		return fmt.Errorf("optimizer moment count mismatch: %d m vs %d v", len(c.Optimizer.M), len(c.Optimizer.V))
	}
	if c.Stream == nil {
		return fmt.Errorf("missing model stream state")
	}
	if c.SchedName == "" {
		return fmt.Errorf("missing scheduler name")
	}
	if c.Batch >= 0 && c.Sched == nil {
		return fmt.Errorf("mid-epoch checkpoint without scheduler state")
	}
	return nil
}

// strictCheck replays the actual restore machinery against the payload, so
// anything the training process would reject at resume time — shape
// mismatches, truncated tensors, poisoned values — fails the lint here,
// before an operator depends on the file in an outage.
func strictCheck(c *train.CheckpointState) error {
	if err := nn.ScanParams(bytes.NewReader(c.Weights), func(name string, rows, cols int, data []float32) error {
		for j, x := range data {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return fmt.Errorf("weight %q[%d] is %v", name, j, x)
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("strict: weights: %w", err)
	}
	mc := c.Stream.Memory
	if mc == nil {
		return fmt.Errorf("strict: stream state without node memory")
	}
	if mc.NumNodes <= 0 || mc.Dim <= 0 {
		return fmt.Errorf("strict: memory checkpoint shape %dx%d", mc.NumNodes, mc.Dim)
	}
	if err := memstore.NewMemoryStore(mc.NumNodes, mc.Dim).RestoreCheckpoint(mc); err != nil {
		return fmt.Errorf("strict: %w", err)
	}
	if _, err := graph.RestoreAdjacency(c.Stream.Adj); err != nil {
		return fmt.Errorf("strict: %w", err)
	}
	if bc := c.Stream.Mailbox; bc != nil {
		if bc.NumNodes <= 0 || bc.K <= 0 || bc.Dim <= 0 {
			return fmt.Errorf("strict: mailbox checkpoint shape nodes=%d k=%d dim=%d", bc.NumNodes, bc.K, bc.Dim)
		}
		if err := memstore.NewMailbox(bc.NumNodes, bc.K, bc.Dim).RestoreCheckpoint(bc); err != nil {
			return fmt.Errorf("strict: %w", err)
		}
	}
	return nil
}
