// Command chaos is the deterministic chaos harness: it drives the repo's
// fault-injection points against real components — an overloaded scoring
// server, a flapping training replica — and verifies the resilience
// contracts hold (shed-don't-collapse, evict-then-rejoin). Faults fire on
// exact hit counts, not timers or dice, so a failing scenario replays
// byte-for-byte.
//
//	chaos -scenario overload   # 10× burst against a saturated /score
//	chaos -scenario flap       # replica flaps, rejoins from checkpoint
//	chaos -scenario walfault   # injected fsync/disk-full → read-only /score, zero acked-but-lost
//	chaos -scenario crash      # SIGKILL cascade-serve mid-ingest, recover bitwise from the WAL
//	chaos -scenario failover   # SIGKILL a replicated primary behind the router; standby promoted, hints drained, zero lost
//	chaos -scenario all        # everything (the make chaossmoke gate)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/distributed"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/serve"
)

func main() {
	scenario := flag.String("scenario", "all", "overload, flap, walfault, crash, failover, or all")
	seed := flag.Int64("seed", 7, "random seed for dataset generation")
	flag.Parse()

	known := map[string]bool{"overload": true, "flap": true, "walfault": true, "crash": true, "failover": true}
	if *scenario != "all" && !known[*scenario] {
		fmt.Fprintf(os.Stderr, "chaos: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	failed := false
	runScenario := func(name string, fn func(int64) error) {
		if *scenario != "all" && *scenario != name {
			return
		}
		if err := fn(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: FAIL %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Printf("chaos: OK   %s\n", name)
	}
	runScenario("overload", overloadScenario)
	runScenario("flap", flapScenario)
	runScenario("walfault", walFaultScenario)
	runScenario("crash", crashScenario)
	runScenario("failover", failoverScenario)
	if failed {
		os.Exit(1)
	}
}

// overloadScenario saturates a tightly-limited scoring server with 10× its
// total admission capacity while every fresh score is artificially slow, and
// checks the shed-don't-collapse contract: every response is 200 or 429,
// both outcomes occur, 429s carry Retry-After, and admitted latency stays
// bounded by the queue depth times the injected service time.
func overloadScenario(seed int64) error {
	ds := cascade.GenerateDataset("WIKI", 0.002, seed)
	run, err := cascade.NewRun(cascade.RunConfig{
		Dataset: ds, Model: "JODIE", Scheduler: cascade.SchedTGL,
		BaseBatch: 50, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: seed,
	})
	if err != nil {
		return err
	}
	const (
		maxInflight = 2
		queueDepth  = 2
		serviceTime = 40 * time.Millisecond
	)
	inj := faultinject.New()
	inj.ArmDelay(faultinject.PointServeSlowScore, serviceTime) // every score is slow
	reg := obs.NewRegistry()
	srv := serve.New(run.Model(), run.Trainer().Predictor(), ds.NumNodes,
		serve.WithRegistry(reg),
		serve.WithLimits(load.Limits{MaxInflight: maxInflight, QueueDepth: queueDepth}),
		serve.WithInjector(inj),
	)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clients := 10 * (maxInflight + queueDepth) // the 10× burst
	type outcome struct {
		status  int
		latency time.Duration
		retry   string
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"pairs":[{"src":%d,"dst":%d}],"time":1e6}`, i%4, 4+i%4)
			t0 := time.Now()
			resp, err := http.Post(ts.URL+"/score", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				results[i] = outcome{status: -1}
				return
			}
			resp.Body.Close()
			results[i] = outcome{status: resp.StatusCode, latency: time.Since(t0), retry: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var ok200, shed429 int
	var admitted []time.Duration
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			ok200++
			admitted = append(admitted, r.latency)
		case http.StatusTooManyRequests:
			shed429++
			if r.retry == "" {
				return fmt.Errorf("client %d: 429 without Retry-After", i)
			}
		default:
			return fmt.Errorf("client %d: status %d (want 200 or 429)", i, r.status)
		}
	}
	if ok200 == 0 || shed429 == 0 {
		return fmt.Errorf("burst of %d: %d admitted, %d shed — overload must shed some and serve some", clients, ok200, shed429)
	}
	sort.Slice(admitted, func(a, b int) bool { return admitted[a] < admitted[b] })
	p99 := admitted[len(admitted)*99/100]
	// Worst admitted case: wait behind the full queue plus its own service.
	bound := time.Duration(maxInflight+queueDepth+1)*serviceTime + 2*time.Second
	if p99 > bound {
		return fmt.Errorf("admitted p99 %v exceeds bound %v", p99, bound)
	}
	if got := reg.Counter("load_shed_total").Value(); got != int64(shed429) {
		return fmt.Errorf("load_shed_total %d, clients saw %d sheds", got, shed429)
	}
	fmt.Printf("chaos: overload: %d clients → %d admitted (p99 %v), %d shed with Retry-After\n",
		clients, ok200, p99.Round(time.Millisecond), shed429)
	return nil
}

// flapScenario flaps one training replica during epoch 1 of a distributed
// run with rejoin and on-disk checkpoints enabled, and checks the
// self-healing contract: the replica is evicted, restores from the newest
// resilience checkpoint, rejoins the barrier, and the run converges.
func flapScenario(seed int64) error {
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: seed, FeatDimOverride: 8, MinEvents: 1200})
	dir, err := os.MkdirTemp("", "cascade-chaos-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	inj := faultinject.New()
	inj.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, 1), 1)
	reg := obs.NewRegistry()
	res, err := distributed.Train(distributed.Config{
		Dataset: ds, Replicas: 2, Model: "TGN", BaseBatch: 40, Epochs: 3,
		MemoryDim: 16, TimeDim: 4, Seed: seed, Workers: 1,
		Rejoin: true, CheckpointDir: dir,
		Injector: inj, Obs: reg,
	})
	if err != nil {
		return err
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		return fmt.Errorf("evicted %v, want [1]", res.Evicted)
	}
	if len(res.Rejoined) != 1 || res.Rejoined[0] != 1 {
		return fmt.Errorf("rejoined %v, want [1]", res.Rejoined)
	}
	if got := reg.Counter("dist_replica_rejoins_total").Value(); got != 1 {
		return fmt.Errorf("dist_replica_rejoins_total %d, want 1", got)
	}
	if res.ValLoss <= 0 || res.ValLoss != res.ValLoss {
		return fmt.Errorf("val loss %v", res.ValLoss)
	}
	fmt.Printf("chaos: flap: replica 1 evicted epoch 1, rejoined from %s, val loss %.4f, %d syncs\n",
		dir, res.ValLoss, res.SyncCount)
	return nil
}

// walFaultScenario is the disk-fault half of the durability contract: with
// the WAL under injected fsync failure, /ingest degrades to a typed 503
// (code "wal_unavailable") while /score keeps serving, and every batch that
// was acked before the fault is recoverable — zero acked-but-lost events.
func walFaultScenario(seed int64) error {
	dir, err := os.MkdirTemp("", "cascade-chaos-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	newServer := func(walDir string, inj *faultinject.Injector) (*serve.Server, *serve.WALRecovery, int, error) {
		ds := cascade.GenerateDataset("WIKI", 0.002, seed)
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset: ds, Model: "JODIE", Scheduler: cascade.SchedTGL,
			BaseBatch: 50, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: seed,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		var opts []serve.Option
		if walDir != "" {
			opts = append(opts, serve.WithWAL(serve.WALConfig{Dir: walDir}))
		}
		if inj != nil {
			opts = append(opts, serve.WithInjector(inj))
		}
		s := serve.New(run.Model(), run.Trainer().Predictor(), ds.NumNodes, opts...)
		var rec *serve.WALRecovery
		if walDir != "" {
			if rec, err = s.StartWAL(); err != nil {
				return nil, nil, 0, err
			}
		}
		return s, rec, ds.NumNodes, nil
	}

	inj := faultinject.New()
	srv, _, numNodes, err := newServer(dir, inj)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	const acked = 3
	for i := 0; i < acked; i++ {
		status, _, err := postJSON(ts.URL+"/ingest", chaosBatch(i, numNodes))
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("ingest %d: status %d err %v", i, status, err)
		}
	}
	fpBefore, appliedBefore, err := statsFingerprint(ts.URL)
	if err != nil {
		return err
	}
	if appliedBefore != acked {
		return fmt.Errorf("applied %d after %d acked batches", appliedBefore, acked)
	}

	// The disk starts refusing fsync: the next ingest must be rejected with
	// the typed 503 and must not mutate the model.
	inj.Arm(faultinject.PointWALSync)
	status, body, err := postJSON(ts.URL+"/ingest", chaosBatch(acked, numNodes))
	if err != nil {
		return err
	}
	if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"code":"wal_unavailable"`)) {
		return fmt.Errorf("ingest under fsync fault: status %d body %s", status, body)
	}
	// Sticky, still typed.
	if status, _, _ = postJSON(ts.URL+"/ingest", chaosBatch(acked, numNodes)); status != http.StatusServiceUnavailable {
		return fmt.Errorf("second ingest under fault: status %d", status)
	}
	// /score keeps serving read-only.
	scoreBody := []byte(`{"pairs":[{"src":0,"dst":33}],"time":2e9}`)
	if status, _, err = postJSON(ts.URL+"/score", scoreBody); err != nil || status != http.StatusOK {
		return fmt.Errorf("score while degraded: status %d err %v", status, err)
	}
	// /readyz reports the reason.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz while degraded: %d", resp.StatusCode)
	}
	fpAfter, appliedAfter, err := statsFingerprint(ts.URL)
	if err != nil {
		return err
	}
	if fpAfter != fpBefore || appliedAfter != appliedBefore {
		return fmt.Errorf("rejected batches mutated state: %s/%d → %s/%d", fpBefore, appliedBefore, fpAfter, appliedAfter)
	}
	ts.Close()
	srv.CloseWAL()

	// Recovery: a fresh identically-trained process replays the log. Every
	// acked batch must be there; the batch whose fsync failed was appended
	// but never acked, so the log may hold at most one extra record beyond
	// the acks — standard at-least-once for the unacked suffix.
	srv2, rec, _, err := newServer(dir, nil)
	if err != nil {
		return err
	}
	defer srv2.CloseWAL()
	if rec.ReplayedRecords < acked || rec.ReplayedRecords > acked+1 {
		return fmt.Errorf("recovery replayed %d batches, want %d or %d", rec.ReplayedRecords, acked, acked+1)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	fpRecovered, _, err := statsFingerprint(ts2.URL)
	if err != nil {
		return err
	}
	// Reference: a WAL-less server ingesting exactly the recovered prefix
	// must land on the identical state, bitwise.
	ref, _, _, err := newServer("", nil)
	if err != nil {
		return err
	}
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()
	for i := 0; i < int(rec.ReplayedRecords); i++ {
		if status, body, err := postJSON(tsRef.URL+"/ingest", chaosBatch(i, numNodes)); err != nil || status != http.StatusOK {
			return fmt.Errorf("reference ingest %d: status %d err %v body %s", i, status, err, body)
		}
	}
	fpRef, _, err := statsFingerprint(tsRef.URL)
	if err != nil {
		return err
	}
	if fpRecovered != fpRef {
		return fmt.Errorf("recovered fingerprint %s != reference %s over %d batches", fpRecovered, fpRef, rec.ReplayedRecords)
	}
	fmt.Printf("chaos: walfault: %d acked batches survived an fsync fault; degraded 503s typed, /score stayed up, recovered %d batches bitwise (%s)\n",
		acked, rec.ReplayedRecords, fpRecovered)
	return nil
}
