// crashScenario and the shared WAL-scenario helpers. The crash scenario is
// the only one that leaves the process: it SIGKILLs a real cascade-serve
// binary mid-ingest and proves the restarted process reconstructs node
// memories bitwise from the WAL.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/cascade-ml/cascade"
)

// postJSON posts body and returns (status, response body, transport error).
func postJSON(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out, nil
}

// chaosBatch is the deterministic ingest workload: batch i is always the
// same four events, so any two processes that ack the same prefix of
// batches must hold the same state. Nodes stay inside the lower/upper
// halves of the universe (no self-loops possible) and timestamps strictly
// increase across batches, far past any pre-training timestamp.
func chaosBatch(i, numNodes int) []byte {
	lo := numNodes / 2
	var sb strings.Builder
	sb.WriteString(`{"events":[`)
	for j := 0; j < 4; j++ {
		if j > 0 {
			sb.WriteByte(',')
		}
		src := (i*7 + j*3) % lo
		dst := lo + (i*5+j*11)%(numNodes-lo)
		fmt.Fprintf(&sb, `{"src":%d,"dst":%d,"time":%g}`, src, dst, 1e8+float64(i*8+j))
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// statsFingerprint reads /stats?full=1 and returns the node-memory state
// fingerprint plus the WAL applied sequence number.
func statsFingerprint(base string) (string, int, error) {
	resp, err := http.Get(base + "/stats?full=1")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var st struct {
		StateFingerprint string `json:"state_fingerprint"`
		WAL              struct {
			AppliedSeq int `json:"applied_seq"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", 0, err
	}
	if st.StateFingerprint == "" {
		return "", 0, fmt.Errorf("stats?full=1 returned no state_fingerprint")
	}
	return st.StateFingerprint, st.WAL.AppliedSeq, nil
}

// serveProc is one out-of-process cascade-serve instance under test.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
}

func startServe(bin, walDir string, seed int64, port int, extra ...string) (*serveProc, error) {
	p := &serveProc{base: fmt.Sprintf("http://127.0.0.1:%d", port), out: &bytes.Buffer{}}
	args := []string{
		"-dataset", "WIKI", "-events", "400", "-epochs", "1", "-memdim", "8",
		"-seed", fmt.Sprint(seed), "-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-wal-dir", walDir, "-wal-sync", "batch",
	}
	p.cmd = exec.Command(bin, append(args, extra...)...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	// Pre-training runs before the listener opens, so the readiness window
	// is generous.
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if p.cmd.ProcessState != nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	p.kill()
	return nil, fmt.Errorf("server on %s never became healthy; output:\n%s", p.base, p.out.String())
}

func (p *serveProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_ = p.cmd.Wait()
}

func (p *serveProc) stop() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	done := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		p.kill()
	}
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}

// crashScenario SIGKILLs a real cascade-serve process mid-ingest while a
// concurrent /score load loop is running, restarts it on the same WAL
// directory, and verifies the recovery contract: zero acked-but-lost
// batches (applied_seq ≥ acks seen by the client) and node-memory state
// bitwise-identical to a reference process that ingests the same acked
// prefix from scratch.
func crashScenario(seed int64) error {
	work, err := os.MkdirTemp("", "cascade-chaos-crash-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "cascade-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/cascade-serve")
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("build cascade-serve: %v\n%s", err, out)
	}
	// Same scale arithmetic as cascade-serve -events 400, so chaosBatch
	// stays inside the victim's node universe.
	numNodes := cascade.GenerateDataset("WIKI", 400.0/157474, seed).NumNodes
	walDir := filepath.Join(work, "wal")
	port, err := freePort()
	if err != nil {
		return err
	}

	victim, err := startServe(bin, walDir, seed, port)
	if err != nil {
		return err
	}
	defer victim.kill()

	// Concurrent read load: /score must be in flight when the kill lands.
	scoreBody := []byte(fmt.Sprintf(`{"pairs":[{"src":0,"dst":%d}],"time":3e9}`, numNodes/2))
	loadStop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-loadStop:
				return
			default:
			}
			if status, _, err := postJSON(victim.base+"/score", scoreBody); err != nil {
				return // the kill severed us, expected
			} else if status != http.StatusOK && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
				fmt.Fprintf(os.Stderr, "chaos: crash: /score under load returned %d\n", status)
			}
		}
	}()

	// Sequential ingest, counting acks; SIGKILL fires from a goroutine
	// after the 40th ack while this loop keeps hammering, so the kill lands
	// mid-ingest rather than between requests.
	const killAfter = 40
	killed := make(chan struct{})
	acked := 0
	for i := 0; ; i++ {
		status, body, err := postJSON(victim.base+"/ingest", chaosBatch(i, numNodes))
		if err != nil {
			break // process died mid-request
		}
		if status != http.StatusOK {
			return fmt.Errorf("ingest %d before kill: status %d body %s", i, status, body)
		}
		acked++
		if acked == killAfter {
			go func() {
				_ = victim.cmd.Process.Kill()
				close(killed)
			}()
		}
		if acked > killAfter+200 {
			return fmt.Errorf("server survived %d batches past the kill", acked-killAfter)
		}
	}
	<-killed
	close(loadStop)
	<-loadDone
	_ = victim.cmd.Wait()
	if acked < killAfter {
		return fmt.Errorf("only %d batches acked before the process died", acked)
	}

	// Restart on the same WAL directory: recovery must cover every ack.
	survivor, err := startServe(bin, walDir, seed, port)
	if err != nil {
		return fmt.Errorf("restart after SIGKILL: %w", err)
	}
	defer survivor.stop()
	fpRecovered, applied, err := statsFingerprint(survivor.base)
	if err != nil {
		return err
	}
	if applied < acked {
		return fmt.Errorf("acked-but-lost: client saw %d acks, recovery applied only %d", acked, applied)
	}

	// Reference: a fresh process (same seed, fresh WAL) that ingests exactly
	// the recovered prefix must land on the identical state.
	refPort, err := freePort()
	if err != nil {
		return err
	}
	ref, err := startServe(bin, filepath.Join(work, "wal-ref"), seed, refPort)
	if err != nil {
		return fmt.Errorf("reference process: %w", err)
	}
	defer ref.stop()
	for i := 0; i < applied; i++ {
		status, body, err := postJSON(ref.base+"/ingest", chaosBatch(i, numNodes))
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("reference ingest %d: status %d err %v body %s", i, status, err, body)
		}
	}
	fpRef, _, err := statsFingerprint(ref.base)
	if err != nil {
		return err
	}
	if fpRecovered != fpRef {
		return fmt.Errorf("recovered state %s != reference state %s after %d batches", fpRecovered, fpRef, applied)
	}
	// Same state must score the same.
	_, scoreRecovered, err := postJSON(survivor.base+"/score", scoreBody)
	if err != nil {
		return err
	}
	_, scoreRef, err := postJSON(ref.base+"/score", scoreBody)
	if err != nil {
		return err
	}
	if !bytes.Equal(scoreRecovered, scoreRef) {
		return fmt.Errorf("score divergence after recovery: %s vs %s", scoreRecovered, scoreRef)
	}
	fmt.Printf("chaos: crash: SIGKILL after %d acks under /score load; recovery applied %d batches, fingerprint %s bitwise-equal to reference\n",
		acked, applied, fpRecovered)
	return nil
}
