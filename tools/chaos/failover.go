// failoverScenario: SIGKILL a replicated shard's primary mid-ingest behind a
// live cascade-router and prove the cluster contract — the router promotes the
// standby without restarting, every acked batch (200 direct or 202 hinted)
// survives onto the promoted standby exactly once, and /score answers
// throughout the outage (stale is fine, 5xx is not).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/cascade-ml/cascade"
)

// routerProc is an out-of-process cascade-router. Unlike cascade-serve it has
// no pre-training phase, so the readiness window is short.
type routerProc struct {
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
}

func startRouter(bin string, port int, args ...string) (*routerProc, error) {
	p := &routerProc{base: fmt.Sprintf("http://127.0.0.1:%d", port), out: &bytes.Buffer{}}
	p.cmd = exec.Command(bin, append([]string{"-addr", fmt.Sprintf("127.0.0.1:%d", port)}, args...)...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	p.kill()
	return nil, fmt.Errorf("router on %s never became healthy; output:\n%s", p.base, p.out.String())
}

func (p *routerProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_ = p.cmd.Wait()
}

// routerStats is the slice of the router's /stats the scenario asserts on.
type routerStats struct {
	Shards []struct {
		Primary int `json:"primary"`
		Hints   int `json:"hints"`
	} `json:"shards"`
	Failovers    int64 `json:"failovers"`
	HintsDropped int64 `json:"hints_dropped"`
	HintsFlushed int64 `json:"hints_flushed"`
}

func fetchRouterStats(base string) (routerStats, error) {
	var st routerStats
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func failoverScenario(seed int64) error {
	work, err := os.MkdirTemp("", "cascade-chaos-failover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	serveBin := filepath.Join(work, "cascade-serve")
	routerBin := filepath.Join(work, "cascade-router")
	for bin, pkg := range map[string]string{serveBin: "./cmd/cascade-serve", routerBin: "./cmd/cascade-router"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("build %s: %v\n%s", pkg, err, out)
		}
	}
	numNodes := cascade.GenerateDataset("WIKI", 400.0/157474, seed).NumNodes

	ports := make([]int, 4) // standby, primary, repl, router
	for i := range ports {
		if ports[i], err = freePort(); err != nil {
			return err
		}
	}
	stbyPort, primPort, replPort, routerPort := ports[0], ports[1], ports[2], ports[3]
	replAddr := fmt.Sprintf("127.0.0.1:%d", replPort)

	// Standby first so its replication listener is up when the primary dials.
	// Same seed on both: replication apply assumes identical pre-trained state.
	standby, err := startServe(serveBin, filepath.Join(work, "wal-stby"), seed, stbyPort, "-repl-listen", replAddr)
	if err != nil {
		return fmt.Errorf("standby: %w", err)
	}
	defer standby.stop()
	primary, err := startServe(serveBin, filepath.Join(work, "wal-prim"), seed, primPort, "-repl-target", replAddr)
	if err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	defer primary.kill()

	router, err := startRouter(routerBin, routerPort,
		"-shard", fmt.Sprintf("%s,%s", primary.base, standby.base),
		"-probe-interval", "40ms", "-probe-misses", "3")
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	defer router.kill()

	// Client-side SLO tracker over every request the scenario sends through
	// the router: the scorecard printed at the end shows what the outage
	// cost in error budget as a client saw it.
	slo := cascade.NewSLO(cascade.SLOConfig{})

	// Concurrent /score load through the router for the whole scenario.
	// Availability is the contract: every response must be 2xx — the router
	// falls back to the standby (stale-ok) during the outage, never 5xx.
	scoreBody := []byte(fmt.Sprintf(`{"pairs":[{"src":0,"dst":%d}],"time":3e9}`, numNodes/2))
	var scoreCount, scoreBad atomic.Int64
	loadStop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-loadStop:
				return
			default:
			}
			begin := time.Now()
			status, body, err := postJSON(router.base+"/score", scoreBody)
			slo.Observe(err == nil && status < 500, time.Since(begin))
			if err != nil {
				scoreBad.Add(1)
				fmt.Fprintf(os.Stderr, "chaos: failover: /score transport error: %v\n", err)
				return
			}
			scoreCount.Add(1)
			if status != http.StatusOK {
				scoreBad.Add(1)
				fmt.Fprintf(os.Stderr, "chaos: failover: /score returned %d during outage: %s\n", status, body)
			}
		}
	}()

	// Sequential ingest through the router. Before the kill every batch must
	// land directly (200); after it, batches are hinted (202) until the
	// standby is promoted and the queue drains — never 5xx, never lost.
	const killAfter, total = 40, 70
	direct, hinted := 0, 0
	for i := 0; i < total; i++ {
		begin := time.Now()
		status, body, err := postJSON(router.base+"/ingest", chaosBatch(i, numNodes))
		slo.Observe(err == nil && status < 500, time.Since(begin))
		if err != nil {
			return fmt.Errorf("ingest %d through router: %w", i, err)
		}
		switch status {
		case http.StatusOK:
			direct++
		case http.StatusAccepted:
			hinted++
		default:
			return fmt.Errorf("ingest %d through router: status %d body %s", i, status, body)
		}
		if i == killAfter-1 {
			if hinted > 0 {
				return fmt.Errorf("%d batches hinted before the kill", hinted)
			}
			// SIGKILL, not SIGTERM: no drain, no flush — the in-flight
			// replication stream just stops.
			if err := primary.cmd.Process.Kill(); err != nil {
				return fmt.Errorf("kill primary: %w", err)
			}
		}
	}
	_ = primary.cmd.Wait()
	if hinted == 0 {
		return fmt.Errorf("no batch was hinted: the outage window was never observed (ingest too slow or failover too fast to exercise handoff)")
	}

	// The router must promote the standby and drain every hint on its own —
	// no router restart, no client retry.
	var st routerStats
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st, err = fetchRouterStats(router.base); err == nil &&
			st.Failovers >= 1 && len(st.Shards) == 1 && st.Shards[0].Hints == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router never finished failover+drain: stats %+v err %v; output:\n%s", st, err, router.out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(loadStop)
	<-loadDone
	if st.Failovers != 1 {
		return fmt.Errorf("want exactly 1 failover, got %d", st.Failovers)
	}
	if st.Shards[0].Primary != 1 {
		return fmt.Errorf("router still routes writes to the dead member (primary index %d)", st.Shards[0].Primary)
	}
	if st.HintsDropped != 0 {
		return fmt.Errorf("%d hinted batches dropped — acked-but-lost", st.HintsDropped)
	}
	if st.HintsFlushed < int64(hinted) {
		return fmt.Errorf("only %d of %d hinted batches flushed", st.HintsFlushed, hinted)
	}
	if bad := scoreBad.Load(); bad != 0 {
		return fmt.Errorf("%d /score responses were not 200 during the scenario (stale-ok is allowed, 5xx is not)", bad)
	}
	if scoreCount.Load() == 0 {
		return fmt.Errorf("/score load loop never completed a request")
	}

	// Exactly-once: the promoted standby must hold all `total` batches — the
	// replicated prefix plus the replayed hints, each applied once (bid dedup
	// swallows any batch that was both replicated and replayed).
	fpPromoted, applied, err := statsFingerprint(standby.base)
	if err != nil {
		return fmt.Errorf("promoted standby stats: %w", err)
	}
	if applied != total {
		return fmt.Errorf("promoted standby applied %d batches, want %d (lost or duplicated writes)", applied, total)
	}

	// Reference: a solo process ingesting the same batches in order must land
	// on the bitwise-identical state.
	refPort, err := freePort()
	if err != nil {
		return err
	}
	ref, err := startServe(serveBin, filepath.Join(work, "wal-ref"), seed, refPort)
	if err != nil {
		return fmt.Errorf("reference process: %w", err)
	}
	defer ref.stop()
	for i := 0; i < total; i++ {
		status, body, err := postJSON(ref.base+"/ingest", chaosBatch(i, numNodes))
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("reference ingest %d: status %d err %v body %s", i, status, err, body)
		}
	}
	fpRef, _, err := statsFingerprint(ref.base)
	if err != nil {
		return err
	}
	if fpPromoted != fpRef {
		return fmt.Errorf("promoted standby state %s != reference state %s after %d batches", fpPromoted, fpRef, total)
	}
	// Post-failover writes flow through the promoted standby directly.
	status, body, err := postJSON(router.base+"/ingest", chaosBatch(total, numNodes))
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("ingest after failover: status %d err %v body %s", status, err, body)
	}
	fmt.Print(slo.FormatScorecard("failover"))
	fmt.Printf("chaos: failover: SIGKILL primary after %d acks; %d batches hinted then flushed, 1 failover, %d /score responses all 200, promoted-standby fingerprint %s bitwise-equal to reference\n",
		killAfter, hinted, scoreCount.Load(), fpPromoted)
	return nil
}
