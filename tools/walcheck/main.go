// Command walcheck lints Cascade serve WAL directories: it scans every
// segment (header magic, firstSeq ordering, per-record CRC32C frames),
// reports record counts and torn-tail debris, and exits nonzero on
// corruption. A torn tail is crash debris the server truncates on the next
// open, so it is a warning by default and a failure only under -strict —
// use -strict over the WAL directory of a cleanly stopped server, where no
// debris is legitimate.
//
// With -prefix-of it additionally verifies a replication pair: the -dir log
// (a standby's) must be a byte-identical prefix of the -prefix-of log (its
// primary's), modulo records the primary has compacted away.
//
//	walcheck -dir wal/
//	walcheck -dir wal/ -strict
//	walcheck -dir standby-wal/ -prefix-of primary-wal/
//	walcheck -selftest
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/cascade-ml/cascade/internal/wal"
)

func main() {
	dir := flag.String("dir", "", "WAL directory to lint")
	quiet := flag.Bool("q", false, "print failures only")
	strict := flag.Bool("strict", false, "fail on torn tails too (use on cleanly-stopped WALs, where debris means a bug)")
	prefixOf := flag.String("prefix-of", "", "also verify -dir is a byte-identical prefix of this WAL directory (standby vs its primary)")
	selftest := flag.Bool("selftest", false, "build a synthetic WAL (including a torn tail and a mid-log corruption) in a temp dir and verify this linter classifies each case correctly")
	flag.Parse()

	if *selftest {
		if err := runSelftest(*quiet); err != nil {
			fmt.Fprintf(os.Stderr, "walcheck: SELFTEST FAIL: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Println("walcheck: selftest OK")
		}
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: walcheck [-q] [-strict] -dir DIR | walcheck -selftest")
		os.Exit(2)
	}
	rec, err := lint(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walcheck: FAIL %s: %v\n", *dir, err)
		os.Exit(1)
	}
	if rec.TornBytes > 0 || rec.TornSegment != "" {
		msg := fmt.Sprintf("torn tail: %d trailing bytes of %s are crash debris (the server truncates them on open)",
			rec.TornBytes, filepath.Base(rec.TornSegment))
		if *strict {
			fmt.Fprintf(os.Stderr, "walcheck: FAIL %s: %s\n", *dir, msg)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "walcheck: WARN %s: %s\n", *dir, msg)
	}
	if *prefixOf != "" {
		if err := wal.VerifyPrefix(*dir, *prefixOf); err != nil {
			fmt.Fprintf(os.Stderr, "walcheck: FAIL %s is not a prefix of %s: %v\n", *dir, *prefixOf, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("walcheck: OK   %s is a prefix of %s\n", *dir, *prefixOf)
		}
	}
	if !*quiet {
		fmt.Printf("walcheck: OK   %s (%d segments, %d records, seq %d..%d)\n",
			*dir, rec.Segments, rec.Records, rec.FirstSeq, rec.LastSeq)
	}
}

// lint scans the directory and additionally checks record payload sizes are
// visited consistently (Scan already verifies CRC and sequence ordering; a
// visit error from the callback would surface as corruption).
func lint(dir string) (*wal.Recovery, error) {
	var records uint64
	rec, err := wal.Scan(dir, 0, func(seq uint64, payload []byte) error {
		records++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if records != rec.Records {
		return nil, fmt.Errorf("visited %d records but scan reports %d", records, rec.Records)
	}
	return rec, nil
}

// runSelftest exercises the linter against the three disk states it exists
// to classify: a clean log, a torn tail, and corruption before the tail.
func runSelftest(quiet bool) error {
	dir, err := os.MkdirTemp("", "walcheck-selftest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Build a multi-segment log.
	l, _, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: wal.MinSegmentBytes})
	if err != nil {
		return err
	}
	payload := bytes.Repeat([]byte("w"), 700)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			return err
		}
	}
	if err := l.Close(); err != nil {
		return err
	}

	// Clean log lints clean.
	rec, err := lint(dir)
	if err != nil {
		return fmt.Errorf("clean log rejected: %w", err)
	}
	if rec.Records != 10 || rec.TornBytes != 0 {
		return fmt.Errorf("clean log misread: %+v", rec)
	}
	if !quiet {
		fmt.Printf("walcheck: selftest clean log OK (%d segments, %d records)\n", rec.Segments, rec.Records)
	}

	names, err := wal.ListSegments(dir)
	if err != nil || len(names) < 2 {
		return fmt.Errorf("selftest needs ≥2 segments, got %v (%v)", names, err)
	}

	// Prefix verification: an identical copy is a prefix; a log that extends
	// past its claimed superset is not.
	copyDir := filepath.Join(dir, "copy")
	if err := os.Mkdir(copyDir, 0o755); err != nil {
		return err
	}
	shortDir := filepath.Join(dir, "short")
	if err := os.Mkdir(shortDir, 0o755); err != nil {
		return err
	}
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(copyDir, name), data, 0o644); err != nil {
			return err
		}
		if i == 0 { // shortDir keeps only the first segment
			if err := os.WriteFile(filepath.Join(shortDir, name), data, 0o644); err != nil {
				return err
			}
		}
	}
	if err := wal.VerifyPrefix(copyDir, dir); err != nil {
		return fmt.Errorf("identical copy rejected as prefix: %w", err)
	}
	if err := wal.VerifyPrefix(dir, shortDir); err == nil {
		return fmt.Errorf("log extending past its superset passed the prefix check")
	} else if !quiet {
		fmt.Printf("walcheck: selftest prefix check OK (over-long log rejected: %v)\n", err)
	}
	if err := os.RemoveAll(copyDir); err != nil {
		return err
	}
	if err := os.RemoveAll(shortDir); err != nil {
		return err
	}

	// Torn tail: cut the last segment mid-record. Must lint as torn, not
	// corrupt.
	tail := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(tail)
	if err != nil {
		return err
	}
	if err := os.WriteFile(tail, data[:len(data)-100], 0o644); err != nil {
		return err
	}
	rec, err = lint(dir)
	if err != nil {
		return fmt.Errorf("torn tail misclassified as corrupt: %w", err)
	}
	if rec.TornBytes == 0 {
		return fmt.Errorf("torn tail not detected: %+v", rec)
	}
	if !quiet {
		fmt.Printf("walcheck: selftest torn tail detected (%d debris bytes)\n", rec.TornBytes)
	}
	if err := os.WriteFile(tail, data, 0o644); err != nil {
		return err
	}

	// Mid-log corruption: flip a payload byte in the FIRST segment. Must
	// fail the lint outright — this is not recoverable crash debris.
	first := filepath.Join(dir, names[0])
	data, err = os.ReadFile(first)
	if err != nil {
		return err
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		return err
	}
	if _, err := lint(dir); err == nil {
		return fmt.Errorf("mid-log corruption passed the lint")
	} else if !quiet {
		fmt.Printf("walcheck: selftest mid-log corruption rejected (%v)\n", err)
	}
	return nil
}
