module github.com/cascade-ml/cascade

go 1.22
