package cascade

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	ds := GenerateDataset("WIKI", 0.002, 42)
	run, err := NewRun(RunConfig{
		Dataset: ds, Model: "TGN", Scheduler: SchedCascade,
		BaseBatch: 60, Epochs: 2, MemoryDim: 16, TimeDim: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValLoss <= 0 || math.IsNaN(res.FinalValLoss) {
		t.Fatalf("val loss %v", res.FinalValLoss)
	}
	if res.MeanBatchSize <= 60 {
		t.Fatalf("Cascade batch size %.1f not above base", res.MeanBatchSize)
	}
	if res.PreprocessTime <= 0 || res.LookupTime <= 0 {
		t.Fatal("Cascade timings missing")
	}
	if run.CascadeScheduler() == nil {
		t.Fatal("no core scheduler exposed")
	}
}

func TestFacadeAllSchedulersConstruct(t *testing.T) {
	ds := GenerateDataset("WIKI", 0.001, 7)
	for _, kind := range SchedulerKinds {
		run, err := NewRun(RunConfig{
			Dataset: ds, Model: "JODIE", Scheduler: kind,
			BaseBatch: 50, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := run.Execute()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.FinalTrainLoss <= 0 || math.IsNaN(res.FinalTrainLoss) {
			t.Fatalf("%s: loss %v", kind, res.FinalTrainLoss)
		}
		if res.DeviceTime <= 0 {
			t.Fatalf("%s: no simulated device time", kind)
		}
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewRun(RunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	ds := GenerateDataset("WIKI", 0.001, 7)
	if _, err := NewRun(RunConfig{Dataset: ds, Model: "TGN", Scheduler: "Bogus", BaseBatch: 10}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := NewRun(RunConfig{Dataset: ds, Model: "Bogus", Scheduler: SchedTGL, BaseBatch: 10}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestGenerateDatasetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset name accepted")
		}
	}()
	GenerateDataset("NOPE", 1, 1)
}

func TestDevicePresets(t *testing.T) {
	if DevicePreset(SchedTGLite).Name == DevicePreset(SchedTGL).Name {
		t.Fatal("TGLite preset identical to TGL")
	}
	if DevicePreset(SchedCascadeLite).Name != DevicePreset(SchedTGLite).Name {
		t.Fatal("Cascade-Lite should use the TGLite preset")
	}
}

func TestSaveLoadModelRoundTrip(t *testing.T) {
	ds := GenerateDataset("WIKI", 0.001, 7)
	mk := func() *Run {
		run, err := NewRun(RunConfig{
			Dataset: ds, Model: "TGN", Scheduler: SchedTGL,
			BaseBatch: 40, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	trained := mk()
	if _, err := trained.Execute(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trained.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	// A second run with a different seed restores the trained weights and
	// must then score edges identically after identical state replay.
	restored, err := NewRun(RunConfig{
		Dataset: ds, Model: "TGN", Scheduler: SchedTGL,
		BaseBatch: 40, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range trained.Model().Params() {
		rp := restored.Model().Params()[i]
		for j := range p.T.Value.Data {
			if p.T.Value.Data[j] != rp.T.Value.Data[j] {
				t.Fatalf("param %s not restored", p.Name)
			}
		}
	}
	// Mismatched architecture must be rejected.
	other, err := NewRun(RunConfig{
		Dataset: ds, Model: "JODIE", Scheduler: SchedTGL,
		BaseBatch: 40, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := trained.SaveModel(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := other.LoadModel(&buf2); err == nil {
		t.Fatal("cross-architecture load accepted")
	}
}

func TestScoreEdges(t *testing.T) {
	ds := GenerateDataset("WIKI", 0.001, 7)
	run, err := NewRun(RunConfig{
		Dataset: ds, Model: "JODIE", Scheduler: SchedCascade,
		BaseBatch: 40, Epochs: 2, MemoryDim: 8, TimeDim: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	scores, err := run.ScoreEdges([]int32{0, 1}, []int32{2, 3}, []float64{1e6, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("got %d scores", len(scores))
	}
	for _, s := range scores {
		if math.IsNaN(float64(s)) {
			t.Fatal("NaN score")
		}
	}
	if _, err := run.ScoreEdges([]int32{0}, []int32{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if got, err := run.ScoreEdges(nil, nil, nil); err != nil || got != nil {
		t.Fatalf("empty scoring: %v %v", got, err)
	}
}

func TestTrainDistributedFacade(t *testing.T) {
	ds := GenerateDataset("WIKI", 0.002, 7)
	res, err := TrainDistributed(DistributedConfig{
		Dataset: ds, Replicas: 2, Model: "JODIE", UseCascade: true,
		BaseBatch: 40, Epochs: 2, MemoryDim: 8, TimeDim: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncCount != 2 || len(res.ReplicaLosses) != 2 {
		t.Fatalf("distributed result %+v", res)
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
	if _, err := TrainDistributed(DistributedConfig{}); err == nil {
		t.Fatal("empty distributed config accepted")
	}
}

func TestRunConfigNodeClassification(t *testing.T) {
	ds := GenerateDataset("MOOC", 1000.0/411749.0, 7)
	run, err := NewRun(RunConfig{
		Dataset: ds, Model: "TGN", Scheduler: SchedCascade,
		BaseBatch: 40, Epochs: 2, MemoryDim: 8, TimeDim: 4, Seed: 3,
		Task: TaskNodeClassification,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValLoss <= 0 || math.IsNaN(res.FinalValLoss) {
		t.Fatalf("val loss %v", res.FinalValLoss)
	}
	m := run.Trainer().ValidateClass()
	if m.Events == 0 {
		t.Fatal("no classified events")
	}
}

func TestOnBatchHookThroughFacade(t *testing.T) {
	ds := GenerateDataset("WIKI", 0.001, 7)
	count := 0
	run, err := NewRun(RunConfig{
		Dataset: ds, Model: "JODIE", Scheduler: SchedTGL,
		BaseBatch: 50, Epochs: 1, MemoryDim: 8, TimeDim: 4, Seed: 3,
		OnBatch: func(bt BatchTrace) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("OnBatch never fired")
	}
}

func TestHeadlineSpeedupRegression(t *testing.T) {
	// The paper's headline, as a regression guard at small scale: Cascade
	// must beat TGL-style fixed batching on simulated device time with
	// comparable validation loss (the observed margin is ~2.5x / ~1.0; the
	// thresholds leave room for seed noise).
	if testing.Short() {
		t.Skip("trains two models")
	}
	ds := GenerateDataset("WIKI", 2500.0/157474.0, 1)
	run := func(kind SchedulerKind) *Result {
		r, err := NewRun(RunConfig{
			Dataset: ds, Model: "TGN", Scheduler: kind,
			BaseBatch: 14, Epochs: 6, MemoryDim: 24, TimeDim: 8, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tgl := run(SchedTGL)
	casc := run(SchedCascade)
	total := func(r *Result) float64 {
		return (r.DeviceTime + r.PreprocessTime + r.LookupTime).Seconds()
	}
	speedup := total(tgl) / total(casc)
	if speedup < 1.3 {
		t.Fatalf("headline speedup regressed: %.2fx", speedup)
	}
	if casc.FinalValLoss > 1.3*tgl.FinalValLoss {
		t.Fatalf("Cascade degraded loss: %.4f vs %.4f", casc.FinalValLoss, tgl.FinalValLoss)
	}
	if casc.MeanBatchSize < 1.5*tgl.MeanBatchSize {
		t.Fatalf("Cascade batches barely grew: %.0f vs %.0f", casc.MeanBatchSize, tgl.MeanBatchSize)
	}
}
