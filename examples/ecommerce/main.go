// Ecommerce: the stable-node scenario of §1 and §3.3 — "a consistently
// popular product in an e-commerce graph may have stable states despite
// frequent purchases". The example hand-builds a custom CTDG (no generator
// profile): a few blockbuster products absorb a steady stream of purchases
// from loyal repeat buyers, while a long tail of products sells rarely.
// Under plain dependency analysis the blockbusters would cap every batch;
// the SG-Filter detects that their memories stabilize and unlocks the
// batches. The example contrasts Cascade-TB (no filter) with full Cascade.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/cascade-ml/cascade"
)

func main() {
	ds := buildPurchaseStream(6000, 400, 40, 99)
	fmt.Printf("purchase stream: %d purchases, %d customers+products\n\n", ds.NumEvents(), ds.NumNodes)

	base := 30
	type outcome struct {
		name        string
		meanBatch   float64
		deviceMs    float64
		stableRatio float64
		valLoss     float64
	}
	var results []outcome
	for _, kind := range []cascade.SchedulerKind{cascade.SchedTGL, cascade.SchedCascadeTB, cascade.SchedCascade} {
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset:   ds,
			Model:     "TGN",
			Scheduler: kind,
			BaseBatch: base,
			Epochs:    6,
			MemoryDim: 32,
			TimeDim:   8,
			Seed:      5,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := run.Execute()
		if err != nil {
			log.Fatal(err)
		}
		last := res.Epochs[len(res.Epochs)-1]
		results = append(results, outcome{
			name:        string(kind),
			meanBatch:   res.MeanBatchSize,
			deviceMs:    (res.DeviceTime + res.PreprocessTime + res.LookupTime).Seconds() * 1000,
			stableRatio: last.StableRatio,
			valLoss:     res.FinalValLoss,
		})
	}

	fmt.Printf("%-12s %12s %12s %10s %10s\n", "scheduler", "mean batch", "device ms", "stable", "val loss")
	for _, r := range results {
		fmt.Printf("%-12s %12.0f %12.1f %9.1f%% %10.4f\n",
			r.name, r.meanBatch, r.deviceMs, 100*r.stableRatio, r.valLoss)
	}
	fmt.Println("\nThe SG-Filter's win is the gap between Cascade-TB and Cascade:")
	fmt.Println("blockbuster products stabilize, their temporal dependencies break,")
	fmt.Println("and batches grow past the hot-node barrier (§3.3, Fig. 4b).")
}

// buildPurchaseStream constructs the custom CTDG directly with the public
// Dataset/Event types: customers [0, nCustomers) buy products
// [nCustomers, nCustomers+nProducts); 70% of purchases hit the top three
// blockbusters, and buyers re-purchase from their history 60% of the time.
func buildPurchaseStream(nPurchases, nCustomers, nProducts int, seed int64) *cascade.Dataset {
	rng := rand.New(rand.NewSource(seed))
	const featDim = 8
	feats := make([]float32, nProducts*featDim)
	for i := range feats {
		feats[i] = float32(rng.NormFloat64()) * 0.5
	}
	recent := make([][]int32, nCustomers)
	events := make([]cascade.Event, 0, nPurchases)
	t := 0.0
	for i := 0; i < nPurchases; i++ {
		t += rng.ExpFloat64()
		customer := int32(rng.Intn(nCustomers))
		var product int32
		switch {
		case len(recent[customer]) > 0 && rng.Float64() < 0.6:
			product = recent[customer][rng.Intn(len(recent[customer]))]
		case rng.Float64() < 0.7:
			product = int32(nCustomers + rng.Intn(3)) // blockbusters
		default:
			product = int32(nCustomers + rng.Intn(nProducts))
		}
		if len(recent[customer]) < 3 {
			recent[customer] = append(recent[customer], product)
		} else {
			recent[customer][i%3] = product
		}
		events = append(events, cascade.Event{
			Src: customer, Dst: product, Time: t,
			FeatIdx: product - int32(nCustomers),
		})
	}
	ds := &cascade.Dataset{
		Name:        "ecommerce",
		NumNodes:    nCustomers + nProducts,
		Events:      events,
		EdgeFeatDim: featDim,
		EdgeFeats:   feats,
	}
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	return ds
}
