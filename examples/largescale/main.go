// Largescale: the §4.2/§5.5 scalability story — on billion-event graphs the
// dependency-table build stops being negligible (up to 36.6% of execution
// time in the paper), so Cascade_EX splits the sequence into chunks, builds
// per-chunk tables with bounded working sets, and pipelines building with
// training. This example runs a GDELT-profile stream (scaled) under plain
// Cascade and Cascade_EX and prints the preprocessing breakdown.
//
//	go run ./examples/largescale
package main

import (
	"fmt"
	"log"

	"github.com/cascade-ml/cascade"
)

func main() {
	// GDELT profile: few nodes, enormous event count — the densest stream
	// in Table 2, which is exactly where table building hurts.
	ds := cascade.GenerateDataset("GDELT", 12000.0/191290882.0, 21)
	fmt.Printf("news-event stream (GDELT profile): %d events, %d nodes\n\n",
		ds.NumEvents(), ds.NumNodes)

	type outcome struct {
		name               string
		preprocMs, totalMs float64
		meanBatch          float64
		valLoss            float64
	}
	var results []outcome
	for _, kind := range []cascade.SchedulerKind{cascade.SchedTGL, cascade.SchedCascade, cascade.SchedCascadeEX} {
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset:   ds,
			Model:     "TGN",
			Scheduler: kind,
			BaseBatch: 56, // proportional analog of the paper's 900
			ChunkSize: 1500,
			Epochs:    4,
			MemoryDim: 32,
			TimeDim:   8,
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := run.Execute()
		if err != nil {
			log.Fatal(err)
		}
		total := res.DeviceTime + res.PreprocessTime + res.LookupTime
		results = append(results, outcome{
			name:      string(kind),
			preprocMs: res.PreprocessTime.Seconds() * 1000,
			totalMs:   total.Seconds() * 1000,
			meanBatch: res.MeanBatchSize,
			valLoss:   res.FinalValLoss,
		})
	}

	fmt.Printf("%-11s %12s %12s %12s %10s\n", "scheduler", "preproc ms", "total ms", "mean batch", "val loss")
	for _, r := range results {
		fmt.Printf("%-11s %12.1f %12.1f %12.0f %10.4f\n",
			r.name, r.preprocMs, r.totalMs, r.meanBatch, r.valLoss)
	}
	base := results[0].totalMs
	fmt.Printf("\nspeedup over TGL: Cascade %.2fx, Cascade_EX %.2fx\n",
		base/results[1].totalMs, base/results[2].totalMs)
	fmt.Println("Cascade_EX builds per-chunk tables lazily and pipelines the next")
	fmt.Println("chunk's build with the current chunk's training (§4.2), so its")
	fmt.Println("up-front preprocessing cost is a fraction of plain Cascade's.")
}
