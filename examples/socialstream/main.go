// Socialstream: the paper's motivating scenario (§1) — a social-media
// interaction stream (REDDIT profile: users × subreddits, heavy repeat
// affinity) where a JODIE model must be retrained continuously. The example
// trains under Cascade, prints the convergence trace alongside the batch
// sizes and stability ratios the scheduler achieves, and finishes with a
// link-prediction demo: scoring which destination a user is most likely to
// interact with next.
//
//	go run ./examples/socialstream
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/cascade-ml/cascade"
)

func main() {
	ds := cascade.GenerateDataset("REDDIT", 4000.0/672447.0, 11)
	fmt.Printf("social stream: %d interactions, %d entities\n\n", ds.NumEvents(), ds.NumNodes)

	run, err := cascade.NewRun(cascade.RunConfig{
		Dataset:   ds,
		Model:     "JODIE",
		Scheduler: cascade.SchedCascade,
		BaseBatch: 12,
		Epochs:    8,
		MemoryDim: 32,
		TimeDim:   8,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%5s %10s %12s %10s %8s\n", "epoch", "batches", "mean batch", "loss", "stable")
	for e := 0; e < 8; e++ {
		st := run.Trainer().TrainEpoch()
		fmt.Printf("%5d %10d %12.1f %10.4f %7.1f%%\n",
			st.Epoch, st.Batches, st.MeanBatchSize, st.Loss, 100*st.StableRatio)
	}
	fmt.Printf("\nvalidation loss: %.4f\n\n", run.Trainer().Validate())

	// Inference: for the most active user in the validation window, rank
	// candidate destinations by the trained predictor's edge score.
	_, val := ds.Split(0.8)
	counts := map[int32]int{}
	lastTime := map[int32]float64{}
	for _, e := range val.Events {
		counts[e.Src]++
		lastTime[e.Src] = e.Time
	}
	var user int32
	best := 0
	for n, c := range counts {
		if c > best {
			best, user = c, n
		}
	}
	t := lastTime[user]

	// Candidate destinations: the most popular nodes overall.
	pop := map[int32]int{}
	for _, e := range ds.Events {
		pop[e.Dst]++
	}
	type cand struct {
		node  int32
		count int
	}
	var cands []cand
	for n, c := range pop {
		if n != user {
			cands = append(cands, cand{n, c})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].count > cands[j].count })
	if len(cands) > 5 {
		cands = cands[:5]
	}

	src := make([]int32, len(cands))
	dst := make([]int32, len(cands))
	ts := make([]float64, len(cands))
	for i, c := range cands {
		src[i], dst[i], ts[i] = user, c.node, t
	}
	scores, err := run.ScoreEdges(src, dst, ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next-interaction scores for user %d (higher = more likely):\n", user)
	for i, c := range cands {
		fmt.Printf("  → node %5d (historical popularity %4d): %+.3f\n", c.node, c.count, scores[i])
	}
}
