// Distributed: DistTGL-style data-parallel training (related work, §6) —
// several trainer replicas consume disjoint temporal shards of an SX-FULL
// profile stream, averaging weights each epoch; every replica runs its own
// Cascade scheduler, showing that dependency-aware batching composes with
// data parallelism. The example compares 1, 2 and 4 replicas.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"github.com/cascade-ml/cascade"
)

func main() {
	ds := cascade.GenerateDataset("SX-FULL", 6000.0/63497050.0, 31)
	fmt.Printf("stream: %d events over %d nodes\n\n", ds.NumEvents(), ds.NumNodes)

	fmt.Printf("%9s %12s %12s %10s\n", "replicas", "wall", "val loss", "syncs")
	for _, replicas := range []int{1, 2, 4} {
		res, err := cascade.TrainDistributed(cascade.DistributedConfig{
			Dataset:    ds,
			Replicas:   replicas,
			Model:      "TGN",
			UseCascade: true,
			BaseBatch:  20,
			Epochs:     4,
			MemoryDim:  24,
			TimeDim:    8,
			Seed:       13,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d %12v %12.4f %10d\n",
			replicas, res.WallTime.Round(1e6), res.ValLoss, res.SyncCount)
	}
	fmt.Println("\nEach replica trains its shard under its own Cascade scheduler")
	fmt.Println("(per-shard dependency table + endurance profile); weights average")
	fmt.Println("synchronously at epoch boundaries (DistTGL-style data parallelism).")
	fmt.Println("Replicas run as goroutines, so wall time tracks the machine's core")
	fmt.Println("count; the validation column shows the accuracy cost of sharding.")
}
