// Quickstart: generate a Wikipedia-shaped dynamic graph, train the same TGN
// twice — once under TGL-style fixed batching, once under Cascade — and
// compare training latency, achieved batch sizes and validation loss.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/cascade-ml/cascade"
)

func main() {
	// A WIKI-profile stream scaled to ~4000 events (the profile keeps the
	// paper dataset's degree skew, repeat affinity and feature width).
	ds := cascade.GenerateDataset("WIKI", 4000.0/157474.0, 42)
	fmt.Printf("dataset: %d events over %d nodes, %d-dim edge features\n\n",
		ds.NumEvents(), ds.NumNodes, ds.EdgeFeatDim)

	// The proportional analog of the paper's base batch size 900.
	base := 900 * ds.NumEvents() / 157474
	if base < 10 {
		base = 10
	}

	type outcome struct {
		name      string
		valLoss   float64
		meanBatch float64
		deviceMs  float64
	}
	var results []outcome
	for _, kind := range []cascade.SchedulerKind{cascade.SchedTGL, cascade.SchedCascade} {
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset:   ds,
			Model:     "TGN",
			Scheduler: kind,
			BaseBatch: base,
			Epochs:    8,
			MemoryDim: 32,
			TimeDim:   8,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := run.Execute()
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{
			name:      string(kind),
			valLoss:   res.FinalValLoss,
			meanBatch: res.MeanBatchSize,
			deviceMs:  (res.DeviceTime + res.PreprocessTime + res.LookupTime).Seconds() * 1000,
		})
	}

	fmt.Printf("%-10s %12s %12s %14s\n", "scheduler", "mean batch", "device ms", "val loss")
	for _, r := range results {
		fmt.Printf("%-10s %12.0f %12.1f %14.4f\n", r.name, r.meanBatch, r.deviceMs, r.valLoss)
	}
	fmt.Printf("\nCascade speedup: %.2fx, loss ratio: %.1f%%\n",
		results[0].deviceMs/results[1].deviceMs, 100*results[1].valLoss/results[0].valLoss)
}
