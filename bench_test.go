package cascade_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, each regenerating the experiment through the drivers
// in internal/experiments, plus micro-benchmarks for the framework's hot
// paths (dependency-table build, last-tolerable-event lookup, GEMM, GRU).
//
// Run everything with
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks share one memoized runner, so the first benchmark
// touching a (model, dataset, scheduler) combination pays its training cost
// and later ones reuse the results — the suite as a whole regenerates every
// figure exactly once per `go test -bench` invocation.

import (
	"io"
	"os"
	"sync"
	"testing"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/experiments"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/tensor"
)

var (
	benchRunnerOnce sync.Once
	benchRunner     *experiments.Runner
)

// benchSettings are lighter than the cascade-bench CLI defaults so the
// whole `-bench=.` suite finishes in minutes.
func benchSettings() experiments.Settings {
	set := experiments.DefaultSettings()
	set.EventTarget = 1500
	set.LargeEventTarget = 4000
	set.Epochs = 6
	set.MemoryDim = 24
	return set
}

func sharedRunner() *experiments.Runner {
	benchRunnerOnce.Do(func() {
		out := io.Writer(io.Discard)
		if os.Getenv("CASCADE_BENCH_VERBOSE") != "" {
			out = os.Stdout
		}
		benchRunner = experiments.New(benchSettings(), out)
	})
	return benchRunner
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		if err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper tables.

func BenchmarkTable1Models(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2Datasets(b *testing.B) { benchExperiment(b, "table2") }

// Motivation figures (§3).

func BenchmarkFig2BatchSizeTradeoff(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3DegreeDistribution(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig5StableRatio(b *testing.B)        { benchExperiment(b, "fig5") }

// Overall performance (§5.2).

func BenchmarkFig10Speedup(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11Losses(b *testing.B)  { benchExperiment(b, "fig11") }

// Optimization analysis (§5.3).

func BenchmarkFig12aBatchSizes(b *testing.B)      { benchExperiment(b, "fig12a") }
func BenchmarkFig12bLargeBatchLoss(b *testing.B)  { benchExperiment(b, "fig12b") }
func BenchmarkFig12cAblationSpeedup(b *testing.B) { benchExperiment(b, "fig12c") }
func BenchmarkFig12dAblationLoss(b *testing.B)    { benchExperiment(b, "fig12d") }

// Overhead analysis (§5.4).

func BenchmarkFig13aThetaSweep(b *testing.B)       { benchExperiment(b, "fig13a") }
func BenchmarkFig13bLatencyBreakdown(b *testing.B) { benchExperiment(b, "fig13b") }
func BenchmarkFig13cSpaceBreakdown(b *testing.B)   { benchExperiment(b, "fig13c") }

// Scalability (§5.5).

func BenchmarkFig14LargeScale(b *testing.B) { benchExperiment(b, "fig14") }

// Prior dynamic batching (§5.6).

func BenchmarkFig15PriorDynamic(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16PriorDynamicLoss(b *testing.B) { benchExperiment(b, "fig16") }

// Design-choice ablations (beyond the paper's figures; DESIGN.md §3).

func BenchmarkAblationChunkSize(b *testing.B) { benchExperiment(b, "ablation-chunk") }
func BenchmarkAblationMaxr(b *testing.B)      { benchExperiment(b, "ablation-maxr") }
func BenchmarkConvergenceCurve(b *testing.B)  { benchExperiment(b, "convergence") }

// --- Micro-benchmarks for the framework's hot paths ---

func BenchmarkDependencyTableBuild(b *testing.B) {
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.02, Seed: 1, FeatDimOverride: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildDependencyTable(d.Events, d.NumNodes, 0)
	}
}

func BenchmarkDependencyTableBuildChunked(b *testing.B) {
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.02, Seed: 1, FeatDimOverride: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct := core.NewChunkedTable(d.Events, d.NumNodes, 0, 512, false)
		for c := 0; c < ct.NumChunks(); c++ {
			ct.Get(c)
		}
	}
}

func BenchmarkLastTolerableEventLookup(b *testing.B) {
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.02, Seed: 1, FeatDimOverride: 8})
	table := core.BuildDependencyTable(d.Events, d.NumNodes, 0)
	diff := core.NewTGDiffuser(table, 20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := diff.LastTolerableEvent(nil)
		if k == core.MaxEventIndex {
			diff.SetTable(table) // rewind for the next iteration
		} else {
			diff.AdvancePointers(k + 1)
		}
	}
}

func BenchmarkCascadeSchedulerEpoch(b *testing.B) {
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.02, Seed: 1, FeatDimOverride: 8})
	s := core.NewScheduler(d.Events, d.NumNodes, core.Options{BaseBatch: 18, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	m1 := tensor.NewMatrix(128, 128)
	m2 := tensor.NewMatrix(128, 128)
	for i := range m1.Data {
		m1.Data[i] = float32(i%7) * 0.1
		m2.Data[i] = float32(i%5) * 0.1
	}
	b.SetBytes(int64(4 * 128 * 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(m1, m2)
	}
}

// The TrainingStep benchmarks run one full TrainEpoch per iteration. The
// unsuffixed variants use the default configuration — plan capture/replay
// plus fused module kernels (-compile on) — while the Eager variants pin the
// pre-compile execution for A/B comparison; TGAT covers the attention-model
// path (two GAT layers) next to TGN's recurrent one.

func BenchmarkTrainingStepTGN(b *testing.B)       { benchTrainingStep(b, "TGN", false) }
func BenchmarkTrainingStepTGNEager(b *testing.B)  { benchTrainingStep(b, "TGN", true) }
func BenchmarkTrainingStepTGAT(b *testing.B)      { benchTrainingStep(b, "TGAT", false) }
func BenchmarkTrainingStepTGATEager(b *testing.B) { benchTrainingStep(b, "TGAT", true) }

func benchTrainingStep(b *testing.B, model string, disableCompile bool) {
	ds := cascade.GenerateDataset("WIKI", 0.01, 3)
	run, err := cascade.NewRun(cascade.RunConfig{
		Dataset: ds, Model: model, Scheduler: cascade.SchedTGL,
		BaseBatch: 100, Epochs: 1, MemoryDim: 32, TimeDim: 8, Seed: 1,
		DisableCompile: disableCompile,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Trainer().TrainEpoch()
	}
}
