// Package cascade is the public facade of the Cascade reproduction: a
// dependency-aware efficient training framework for Temporal Graph Neural
// Networks (Dai, Tang, Zhang — ASPLOS'25), built from scratch in pure Go.
//
// The facade wires the internal pieces — synthetic CTDG datasets, the five
// TGNN models of the paper's Table 1, the batching schedulers (TGL-style
// fixed batching, NeutronStream, ETC and Cascade itself), the trainer and
// the simulated-accelerator cost model — behind a small API:
//
//	ds := cascade.GenerateDataset("WIKI", 0.01, 42)
//	run, err := cascade.NewRun(cascade.RunConfig{
//		Dataset:   ds,
//		Model:     "TGN",
//		Scheduler: cascade.SchedCascade,
//		BaseBatch: 200,
//		Epochs:    5,
//	})
//	result, err := run.Execute()
//	fmt.Println(result.FinalValLoss, result.MeanBatchSize, result.DeviceTime)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure.
package cascade

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/device"
	"github.com/cascade-ml/cascade/internal/distributed"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/tensor"
	"github.com/cascade-ml/cascade/internal/train"
)

// SchedulerKind selects a batching policy.
type SchedulerKind string

// Available batching policies. TGL and TGLite batch identically (fixed
// size); they differ in the kernel-efficiency preset of the simulated
// device. Cascade-TB is the ablation without the SG-Filter; Cascade_EX
// enables chunked, pipelined preprocessing.
const (
	SchedTGL           SchedulerKind = "TGL"
	SchedTGLite        SchedulerKind = "TGLite"
	SchedTGLLB         SchedulerKind = "TGL-LB"
	SchedNeutronStream SchedulerKind = "NeutronStream"
	SchedETC           SchedulerKind = "ETC"
	SchedCascade       SchedulerKind = "Cascade"
	SchedCascadeLite   SchedulerKind = "Cascade-Lite"
	SchedCascadeTB     SchedulerKind = "Cascade-TB"
	SchedCascadeEX     SchedulerKind = "Cascade_EX"
)

// SchedulerKinds lists every policy in evaluation order.
var SchedulerKinds = []SchedulerKind{
	SchedTGL, SchedTGLite, SchedTGLLB, SchedNeutronStream, SchedETC,
	SchedCascade, SchedCascadeLite, SchedCascadeTB, SchedCascadeEX,
}

// ModelNames lists the five TGNNs of Table 1.
var ModelNames = models.Names

// DatasetNames lists the seven Table 2 dataset profiles.
var DatasetNames = append(append([]string{}, datagen.ModerateNames...), datagen.LargeNames...)

// GenerateDataset synthesizes a dataset matching the named paper profile
// (WIKI, REDDIT, MOOC, WIKI-TALK, SX-FULL, GDELT, MAG) at the given scale
// (1.0 = paper-scale counts). It panics on unknown names; use
// datagen.ByName for checked access.
func GenerateDataset(name string, scale float64, seed int64) *graph.Dataset {
	p, ok := datagen.ByName[name]
	if !ok {
		panic(fmt.Sprintf("cascade: unknown dataset %q (have %v)", name, DatasetNames))
	}
	return p.Generate(datagen.Options{Scale: scale, Seed: seed})
}

// RunConfig describes one training run.
type RunConfig struct {
	// Dataset is the full event sequence; it is split chronologically.
	Dataset *graph.Dataset
	// Model is one of ModelNames.
	Model string
	// Scheduler selects the batching policy.
	Scheduler SchedulerKind
	// BaseBatch is the pre-defined small batch size (the paper's 900);
	// required.
	BaseBatch int
	// LargeBatch is TGL-LB's enlarged size (defaults to 4×BaseBatch).
	LargeBatch int
	// Epochs of training (default 1).
	Epochs int
	// TrainFrac splits train/validation chronologically (default 0.8).
	TrainFrac float64
	// MemoryDim / TimeDim override the model defaults when > 0.
	MemoryDim, TimeDim int
	// LR is the Adam learning rate (default 1e-3).
	LR float32
	// ValBatch is the fixed evaluation batch size (default BaseBatch); the
	// paper evaluates every resulting model at 900 regardless of the
	// training batch policy.
	ValBatch int
	// ThetaSim overrides Cascade's similarity threshold (default 0.9).
	ThetaSim float64
	// ChunkSize overrides Cascade_EX's chunk size (default BaseBatch×8).
	ChunkSize int
	// Workers bounds CPU parallelism (≤0: all cores).
	Workers int
	// Seed drives model init, negative sampling and profiling.
	Seed int64
	// Task selects the prediction objective (default link prediction).
	Task TaskKind
	// OnBatch, when non-nil, receives a per-batch trace record during
	// training (convergence curves, scheduler behaviour over time).
	OnBatch func(BatchTrace)
	// FullHistory swaps the bounded temporal-neighbor ring for the exact
	// full-history store (TGL's uniform sampler semantics; memory grows
	// with the stream).
	FullHistory bool
	// SimulateDevice attaches the accelerator cost model (on by default
	// for NewRun; set SkipDevice to disable).
	SkipDevice bool
	// Obs, when non-nil, receives metrics from every layer of the run —
	// trainer (per-batch loss/timing), Cascade scheduler (maxr, stable
	// ratio, cut reasons) and simulated device (occupancy) — for Prometheus
	// export via obs.Registry.WritePrometheus.
	Obs *obs.Registry
	// Tracer, when non-nil, instruments the run with hierarchical spans: one
	// root span per batch with per-phase children (TG-Diffuser cut, SG-Filter
	// update, ABS decision, embed/forward, backward, optimizer step, memory
	// update). Build one with NewTracer, feeding it a Chrome trace writer
	// and/or flight recorder. Nil costs nothing on the hot path.
	Tracer *Tracer
	// Staleness is the bounded-staleness budget s: a training batch may
	// read node memories at most s memory-update rounds behind, letting
	// deferred updates collapse across batches instead of serializing
	// every batch behind the memory-update stage. 0 (default) is the exact
	// schedule, bitwise-identical to prior behavior. See DESIGN.md §12.
	Staleness int
	// DisableCompile turns off the plan capture/compile/execute pipeline
	// (on by default): with it off, every batch runs the eager tape instead
	// of replaying shape-cached fused plans. Compiled runs are
	// bitwise-identical to eager ones; the switch exists for debugging and
	// A/B timing. See DESIGN.md §13.
	DisableCompile bool
}

// Result summarizes a finished run.
type Result struct {
	Model, Dataset string
	Scheduler      SchedulerKind
	Epochs         []train.EpochStats
	// FinalTrainLoss is the last epoch's mean training loss.
	FinalTrainLoss float64
	// FinalValLoss is the validation loss at the fixed evaluation batch.
	FinalValLoss float64
	// MeanBatchSize averages over the last epoch.
	MeanBatchSize float64
	// WallTime and DeviceTime total all epochs.
	WallTime, DeviceTime time.Duration
	// PreprocessTime is scheduler preprocessing (zero for static policies).
	PreprocessTime time.Duration
	// LookupTime is cumulative scheduler batching work.
	LookupTime time.Duration
}

// Run is a configured, executable training run.
type Run struct {
	cfg     RunConfig
	model   models.TGNN
	sched   batching.Scheduler
	trainer *train.Trainer
	cascade *core.Scheduler // non-nil for Cascade variants
}

// NewRun validates the configuration and assembles model, scheduler and
// trainer.
func NewRun(cfg RunConfig) (*Run, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("cascade: RunConfig.Dataset required")
	}
	if cfg.BaseBatch <= 0 {
		return nil, fmt.Errorf("cascade: RunConfig.BaseBatch must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	if cfg.LargeBatch <= 0 {
		cfg.LargeBatch = 4 * cfg.BaseBatch
	}
	if cfg.ChunkSize <= 0 {
		// Default chunk: large enough not to fence the batches Cascade
		// reaches (the paper's 1M-event chunks sit far above its 4255-event
		// batches), small enough to keep per-chunk builds cache-friendly.
		cfg.ChunkSize = 8 * cfg.BaseBatch
		if byEvents := cfg.Dataset.NumEvents() / 8; byEvents > cfg.ChunkSize {
			cfg.ChunkSize = byEvents
		}
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, fmt.Errorf("cascade: invalid dataset: %w", err)
	}
	model, err := models.New(cfg.Model, cfg.Dataset, cfg.MemoryDim, cfg.TimeDim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.FullHistory {
		models.EnableFullHistory(model)
	}
	tr, val := cfg.Dataset.Split(cfg.TrainFrac)

	r := &Run{cfg: cfg, model: model}
	coreOpts := core.Options{
		BaseBatch: cfg.BaseBatch, ThetaSim: cfg.ThetaSim,
		Workers: cfg.Workers, Seed: cfg.Seed, Obs: cfg.Obs,
	}
	switch cfg.Scheduler {
	case SchedTGL, SchedTGLite:
		r.sched = batching.NewFixed(string(cfg.Scheduler), tr.NumEvents(), cfg.BaseBatch)
	case SchedTGLLB:
		r.sched = batching.NewFixed("TGL-LB", tr.NumEvents(), cfg.LargeBatch)
	case SchedNeutronStream:
		r.sched = batching.NewNeutronStream(tr.Events, cfg.BaseBatch)
	case SchedETC:
		r.sched = batching.NewETC(tr.Events, cfg.BaseBatch)
	case SchedCascade, SchedCascadeLite:
		coreOpts.Name = string(cfg.Scheduler)
		r.cascade = core.NewScheduler(tr.Events, cfg.Dataset.NumNodes, coreOpts)
		r.sched = r.cascade
	case SchedCascadeTB:
		coreOpts.Name = "Cascade-TB"
		coreOpts.DisableSGFilter = true
		r.cascade = core.NewScheduler(tr.Events, cfg.Dataset.NumNodes, coreOpts)
		r.sched = r.cascade
	case SchedCascadeEX:
		coreOpts.Name = "Cascade_EX"
		coreOpts.ChunkSize = cfg.ChunkSize
		coreOpts.Pipeline = true
		r.cascade = core.NewScheduler(tr.Events, cfg.Dataset.NumNodes, coreOpts)
		r.sched = r.cascade
	default:
		return nil, fmt.Errorf("cascade: unknown scheduler %q", cfg.Scheduler)
	}

	if cfg.ValBatch <= 0 {
		cfg.ValBatch = cfg.BaseBatch
	}
	tc := train.Config{
		Model: model, Sched: r.sched, Data: tr, Val: val,
		LR: cfg.LR, ValBatch: cfg.ValBatch, Seed: cfg.Seed,
		Task: cfg.Task, OnBatch: cfg.OnBatch, Obs: cfg.Obs,
		Tracer: cfg.Tracer, Staleness: cfg.Staleness,
		Compile: !cfg.DisableCompile,
	}
	if !cfg.SkipDevice {
		dev := DevicePreset(cfg.Scheduler)
		dev.Obs = cfg.Obs
		tc.Device = &dev
	}
	r.trainer, err = train.NewTrainer(tc)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// DevicePreset maps a scheduler to its simulated-device constants: the Lite
// variants run on TGLite's fused-kernel preset, everything else on the TGL
// preset.
func DevicePreset(kind SchedulerKind) device.Model {
	switch kind {
	case SchedTGLite, SchedCascadeLite:
		return device.A100TGLite()
	default:
		return device.A100TGL()
	}
}

// Model exposes the underlying TGNN (e.g. for Table 1 reporting).
func (r *Run) Model() models.TGNN { return r.model }

// Scheduler exposes the underlying batching policy.
func (r *Run) Scheduler() batching.Scheduler { return r.sched }

// CascadeScheduler returns the core scheduler for Cascade variants (nil
// otherwise) — useful for batch-size traces and breakdown instrumentation.
func (r *Run) CascadeScheduler() *core.Scheduler { return r.cascade }

// Trainer exposes the trainer (e.g. for custom epoch loops).
func (r *Run) Trainer() *train.Trainer { return r.trainer }

// Execute trains for the configured epochs and validates.
func (r *Run) Execute() (*Result, error) {
	epochs := r.trainer.Train(r.cfg.Epochs)
	res := &Result{
		Model:     r.model.Name(),
		Dataset:   r.cfg.Dataset.Name,
		Scheduler: r.cfg.Scheduler,
		Epochs:    epochs,
	}
	last := epochs[len(epochs)-1]
	res.FinalTrainLoss = last.Loss
	res.MeanBatchSize = last.MeanBatchSize
	res.WallTime = train.TotalWall(epochs)
	res.DeviceTime = train.TotalDevice(epochs)
	res.FinalValLoss = r.trainer.Validate()
	if r.cascade != nil {
		res.PreprocessTime = r.cascade.BuildTime()
		res.LookupTime = r.cascade.LookupTime()
	}
	return res, nil
}

// BatchTrace re-exports the per-batch instrumentation record delivered to
// RunConfig.OnBatch.
type BatchTrace = train.BatchTrace

// Registry re-exports the metrics registry so callers can pass one via
// RunConfig.Obs and render it with WritePrometheus without importing
// internal packages.
type Registry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry for RunConfig.Obs.
func NewMetricsRegistry() *Registry { return obs.NewRegistry() }

// Tracer re-exports the hierarchical span tracer for RunConfig.Tracer.
type Tracer = obs.Tracer

// TracerOptions re-exports the tracer's consumer wiring.
type TracerOptions = obs.TracerOptions

// ChromeTraceWriter re-exports the Chrome trace-event exporter (the
// -trace-chrome flag; load the output in Perfetto / chrome://tracing).
type ChromeTraceWriter = obs.ChromeTraceWriter

// FlightRecorder re-exports the always-on crash-evidence ring buffer (the
// -flight-dir flag; dumps on health rollback, replica eviction and breaker
// open).
type FlightRecorder = obs.FlightRecorder

// NewTracer builds a span tracer from its consumers.
func NewTracer(opt TracerOptions) *Tracer { return obs.NewTracer(opt) }

// NewChromeTrace starts a streaming Chrome trace-event export into w.
func NewChromeTrace(w io.Writer) *ChromeTraceWriter { return obs.NewChromeTrace(w) }

// NewFlightRecorder builds a flight recorder retaining roughly the last
// lastN batch span trees; dumps land in dir together with a snapshot of reg
// (nil reg omits the snapshot).
func NewFlightRecorder(dir string, lastN int, reg *Registry) *FlightRecorder {
	return obs.NewFlightRecorder(dir, lastN, reg)
}

// NewLogger builds the structured logger behind the -log-level/-log-json
// flags; a non-empty traceID is stamped onto every record.
func NewLogger(w io.Writer, level string, jsonOut bool, traceID string) *slog.Logger {
	return obs.NewLogger(w, level, jsonOut, traceID)
}

// SLO re-exports the multi-window error-budget burn tracker behind the
// slo_* gauges (DESIGN.md §16).
type SLO = obs.SLO

// SLOConfig re-exports the SLO objectives and window configuration.
type SLOConfig = obs.SLOConfig

// NewSLO builds an error-budget burn tracker; the zero config applies the
// default objectives (99.9% availability, 99% under 250ms) over 5m and 1h
// windows.
func NewSLO(cfg SLOConfig) *SLO { return obs.NewSLO(cfg) }

// TaskKind re-exports the training objective selector.
type TaskKind = train.Task

// Training objectives.
const (
	// TaskLinkPrediction scores true edges against corrupted negatives
	// (the paper's evaluation task).
	TaskLinkPrediction = train.TaskLinkPrediction
	// TaskNodeClassification predicts per-event binary labels from source
	// embeddings (MOOC-style drop-out prediction; needs Dataset.Labels).
	TaskNodeClassification = train.TaskNodeClassification
)

// Dataset re-exports the CTDG dataset type so downstream users can construct
// custom event streams (see examples/ecommerce) without reaching into
// internal packages.
type Dataset = graph.Dataset

// Event re-exports the CTDG event type: an edge Src→Dst at Time with an
// optional edge-feature row index.
type Event = graph.Event

// ScoreEdges embeds each (src[i], dst[i]) pair at time ts[i] with the
// trained model and returns the predictor head's logit per pair — higher
// means the edge is more likely. Pending messages are applied first, so
// scores reflect the latest node memories. Inference only: no weights move.
func (r *Run) ScoreEdges(src, dst []int32, ts []float64) ([]float32, error) {
	if len(src) != len(dst) || len(src) != len(ts) {
		return nil, fmt.Errorf("cascade: ScoreEdges needs equal-length src/dst/ts, got %d/%d/%d", len(src), len(dst), len(ts))
	}
	if len(src) == 0 {
		return nil, nil
	}
	r.model.BeginBatch()
	nodes := make([]int32, 0, 2*len(src))
	times := make([]float64, 0, 2*len(src))
	nodes = append(nodes, src...)
	nodes = append(nodes, dst...)
	times = append(times, ts...)
	times = append(times, ts...)
	emb := r.model.Embed(nodes, times)
	n := len(src)
	srcIdx := make([]int, n)
	dstIdx := make([]int, n)
	for i := 0; i < n; i++ {
		srcIdx[i] = i
		dstIdx[i] = n + i
	}
	pair := tensor.ConcatColsT(tensor.GatherRowsT(emb, srcIdx), tensor.GatherRowsT(emb, dstIdx))
	logits := r.trainer.Predictor().Forward(pair)
	return append([]float32(nil), logits.Value.Data...), nil
}

// SaveModel writes the trained model's parameters plus the predictor head
// to w (see internal/nn's checkpoint format).
func (r *Run) SaveModel(w io.Writer) error {
	params := nn.UniqueNames(append(r.model.Params(), prefixParams("predictor", r.trainer.Predictor().Params())...))
	return nn.SaveParams(w, params)
}

// LoadModel restores parameters previously written by SaveModel into this
// run's model and predictor (shapes and names must match — same model kind
// and dimensions).
func (r *Run) LoadModel(rd io.Reader) error {
	params := nn.UniqueNames(append(r.model.Params(), prefixParams("predictor", r.trainer.Predictor().Params())...))
	return nn.LoadParams(rd, params)
}

// NewScoringReplica builds an independent (model, predictor) pair with the
// same architecture and weights as this run — the contract of
// serve.WithStaleReplica: the copy answers /score under its own lock while
// the fresh path is saturated, trading staleness for availability. Weights
// are copied at call time; since serving never trains, the copy stays
// valid for the life of the process.
func (r *Run) NewScoringReplica() (models.TGNN, *nn.MLP, error) {
	m, err := models.New(r.cfg.Model, r.cfg.Dataset, r.cfg.MemoryDim, r.cfg.TimeDim, r.cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	embDim := m.EmbedDim()
	predIn := 2 * embDim // link prediction scores [h_src ‖ h_dst]
	if r.cfg.Task == TaskNodeClassification {
		predIn = embDim
	}
	p := nn.NewMLP(rand.New(rand.NewSource(r.cfg.Seed)), nn.ActReLU, predIn, embDim, 1)
	var buf bytes.Buffer
	if err := r.SaveModel(&buf); err != nil {
		return nil, nil, err
	}
	params := nn.UniqueNames(append(m.Params(), prefixParams("predictor", p.Params())...))
	if err := nn.LoadParams(&buf, params); err != nil {
		return nil, nil, fmt.Errorf("cascade: scoring-replica weight copy: %w", err)
	}
	return m, p, nil
}

func prefixParams(prefix string, params []nn.Param) []nn.Param {
	out := make([]nn.Param, len(params))
	for i, p := range params {
		out[i] = nn.Param{Name: prefix + "." + p.Name, T: p.T}
	}
	return out
}

// DistributedConfig configures data-parallel training (see
// internal/distributed): Replicas trainers consume disjoint temporal shards
// and average weights each epoch, DistTGL-style. UseCascade switches every
// replica from fixed batching to its own Cascade scheduler.
type DistributedConfig struct {
	Dataset            *Dataset
	Replicas           int
	Model              string
	UseCascade         bool
	BaseBatch          int
	Epochs             int
	MemoryDim, TimeDim int
	LR                 float32
	Seed               int64
	Workers            int
	// EpochTimeout bounds how long the epoch barrier waits for any replica;
	// slower replicas are evicted and the run degrades to the survivors.
	// 0 waits forever.
	EpochTimeout time.Duration
	// Rejoin lets an evicted replica re-enter the run at a later epoch
	// boundary by adopting the fleet's latest averaged checkpoint.
	Rejoin bool
	// CheckpointDir, when set, persists the post-averaging checkpoint there
	// each epoch (crash-safe files); rejoining replicas restore from the
	// newest file instead of process memory.
	CheckpointDir string
	// Obs, when non-nil, receives eviction/rejoin/sync metrics.
	Obs *Registry
	// Tracer, when non-nil, instruments every replica's batches plus the
	// epoch barrier and weight averaging with spans.
	Tracer *Tracer
	// Recorder, when non-nil, dumps the span ring on replica eviction.
	Recorder *FlightRecorder
}

// DistributedResult reports a distributed run.
type DistributedResult struct {
	ReplicaLosses [][]float64
	ValLoss       float64
	WallTime      time.Duration
	SyncCount     int
	// Evicted lists replicas dropped for dying or missing the epoch barrier.
	Evicted []int
	// Rejoined lists evicted replicas that re-entered via the rejoin path.
	Rejoined []int
}

// TrainDistributed runs synchronous data-parallel training.
func TrainDistributed(cfg DistributedConfig) (*DistributedResult, error) {
	kind := distributed.SchedFixed
	if cfg.UseCascade {
		kind = distributed.SchedCascade
	}
	res, err := distributed.Train(distributed.Config{
		Dataset: cfg.Dataset, Replicas: cfg.Replicas, Model: cfg.Model,
		Scheduler: kind, BaseBatch: cfg.BaseBatch, Epochs: cfg.Epochs,
		MemoryDim: cfg.MemoryDim, TimeDim: cfg.TimeDim,
		LR: cfg.LR, Seed: cfg.Seed, Workers: cfg.Workers,
		EpochTimeout: cfg.EpochTimeout,
		Rejoin:       cfg.Rejoin, CheckpointDir: cfg.CheckpointDir,
		Obs: cfg.Obs, Tracer: cfg.Tracer, Recorder: cfg.Recorder,
	})
	if err != nil {
		return nil, err
	}
	return &DistributedResult{
		ReplicaLosses: res.ReplicaLosses,
		ValLoss:       res.ValLoss,
		WallTime:      res.WallTime,
		SyncCount:     res.SyncCount,
		Evicted:       res.Evicted,
		Rejoined:      res.Rejoined,
	}, nil
}
