GO ?= go

# Packages whose tests exercise real concurrency; they get a second pass
# under the race detector.
RACE_PKGS = ./internal/parallel/... ./internal/serve/... ./internal/obs/...

.PHONY: check build test vet race bench clean

# check is the tier-1 gate: everything a PR must keep green.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
