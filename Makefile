GO ?= go

# Packages whose tests exercise real concurrency; they get a second pass
# under the race detector. tensor covers the parallel GEMM kernels, train
# the batch-prep prefetch pipeline.
RACE_PKGS = ./internal/parallel/... ./internal/serve/... ./internal/obs/... ./internal/tensor/... ./internal/train/...

# Hot-path micro-benchmarks captured in BENCH_pr2.json: the GEMM variants
# (plain / ᵀA / ᵀB, ragged shapes), the GRU training step, one full
# TrainEpoch, and the dependency-table build.
BENCH_RE = ^(BenchmarkMatMul|BenchmarkGRUStep|BenchmarkTrainingStepTGN|BenchmarkDependencyTableBuild)
BENCH_PKGS = . ./internal/tensor ./internal/nn

.PHONY: check build test vet race bench benchsmoke benchall clean

# check is the tier-1 gate: everything a PR must keep green.
check: vet build test race benchsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# bench regenerates BENCH_pr2.json: ns/op, B/op, allocs/op per hot-path op,
# joined with the committed pre-optimization baseline as before/after.
bench:
	$(GO) test -bench='$(BENCH_RE)' -benchmem -benchtime=2s -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./tools/benchjson -baseline BENCH_baseline.json -o BENCH_pr2.json \
			-note "make bench: blocked GEMM + tensor arena + prefetch pipeline"

# benchsmoke runs every captured benchmark once so check catches bit-rot in
# the harness (and the benchjson parser) without paying measurement time.
benchsmoke:
	$(GO) test -bench='$(BENCH_RE)' -benchmem -benchtime=1x -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./tools/benchjson -o /dev/null

# benchall runs the full experiment suite (every paper table/figure) once.
benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
