GO ?= go

# Packages whose tests exercise real concurrency; they get a second pass
# under the race detector. tensor covers the parallel GEMM kernels, train
# the batch-prep prefetch pipeline, distributed the replica barrier and
# eviction paths, resilience the checkpoint/rollback machinery, memstore
# the sharded mailbox under concurrent read/push, plan the captured
# execution plans replayed under the prefetch pipeline, wal the segmented
# ingest log's interval-sync goroutine against appends, cluster the
# replication sender/receiver goroutines and the router's probe loop
# against concurrent ingest/score traffic.
RACE_PKGS = ./internal/parallel/... ./internal/serve/... ./internal/obs/... ./internal/tensor/... ./internal/train/... ./internal/plan/... ./internal/distributed/... ./internal/resilience/... ./internal/load/... ./internal/memstore/... ./internal/wal/... ./internal/cluster/...

# The fault suite: injected NaN gradients with rollback, kill-and-resume
# equivalence (exact and bounded-staleness pipelines), checkpoint-write
# failures, replica death/hang eviction and flap-then-rejoin, dropped
# barrier reports, overload shedding, stale degradation, breaker trips,
# graceful drain, torn mailbox reads, WAL disk faults (short write, fsync
# error, rotate failure, snapshot failure) with read-only degradation and
# kill-at-random-offset recovery, replication stream faults (dropped send,
# suppressed ack) and router probe-timeout/promote faults driving failover
# with hinted handoff — all under the race detector.
FAULT_RE = ^(TestKillAndResume|TestStalenessKillAndResume|TestMailboxConcurrentReadPush|TestNaNRollback|TestRepeatedNaN|TestHealthGivesUp|TestCheckpointWriteFailure|TestInjectedWriteFailures|TestReplicaDeath|TestHungReplica|TestAllReplicasDead|TestErrorReturnJoinsPrefetch|TestGracefulShutdown|TestReplicaRejoins|TestRejoin|TestReportDrop|TestOverload|TestDrainZeroDropped|TestQueueFullDegrades|TestBreaker|TestRetry|TestStaleReplica|TestRateLimit|TestDeadlineExpires|TestInjectedWriteFailureBreaksLog|TestInjectedSyncFailureBreaksLog|TestInjectedRotateFailure|TestWALKillAtRandomOffset|TestWALFaultDegradesReadOnly|TestWALRotateFaultDegradesReadOnly|TestWALSnapshotFaultKeepsServing|TestReplicationFaultPoints|TestRouterProbeTimeoutFaultTriggersFailover|TestRouterFailoverAndHintedHandoff|TestRouterHintOverflowSheds)

# Hot-path micro-benchmarks captured in BENCH_pr7.json: the GEMM variants
# (plain / ᵀA / ᵀB, ragged shapes), the GRU training step (fused and eager),
# one full TrainEpoch for TGN and TGAT (compiled and eager), and the
# dependency-table build.
BENCH_RE = ^(BenchmarkMatMul|BenchmarkGRUStep|BenchmarkTrainingStep|BenchmarkDependencyTableBuild)
BENCH_PKGS = . ./internal/tensor ./internal/nn

.PHONY: check build test vet race bench benchdiff benchsmoke benchall faultsmoke chaossmoke stalesmoke plansmoke walsmoke replsmoke tracesmoke clean

# check is the tier-1 gate: everything a PR must keep green.
check: vet build test race benchsmoke benchdiff faultsmoke chaossmoke stalesmoke plansmoke walsmoke replsmoke tracesmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# bench regenerates BENCH_pr7.json: ns/op, B/op, allocs/op per hot-path op,
# joined with the committed BENCH_pr2.json (pre-plan-capture) artifact as
# before/after, so the record shows what plan replay + the AVX2 microkernels
# bought over the blocked-GEMM-era numbers.
bench:
	$(GO) test -bench='$(BENCH_RE)' -benchmem -benchtime=2s -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./tools/benchjson -baseline BENCH_pr2.json -o BENCH_pr7.json \
			-note "make bench: plan capture/replay + AVX2 FMA microkernels"

# benchdiff is the performance regression gate: a fresh run of the captured
# benchmarks against the committed BENCH_pr7.json artifact. The benchtime
# must match the baseline's (make bench uses 2s): the pool-backed
# benchmarks amortize a fixed warm-up allocation over the iteration count,
# so a shorter candidate run inflates B/op and trips the gate on nothing.
# Thresholds are generous but catch the failure mode that matters here:
# instrumentation leaking cost into the hot path when tracing is disabled.
benchdiff:
	$(GO) test -bench='$(BENCH_RE)' -benchmem -benchtime=2s -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./tools/benchjson -o /tmp/cascade-benchdiff.json -note "benchdiff candidate" 2>/dev/null
	$(GO) run ./tools/benchdiff -old BENCH_pr7.json -new /tmp/cascade-benchdiff.json

# benchsmoke runs every captured benchmark once so check catches bit-rot in
# the harness (and the benchjson parser) without paying measurement time.
benchsmoke:
	$(GO) test -bench='$(BENCH_RE)' -benchmem -benchtime=1x -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./tools/benchjson -o /dev/null

# faultsmoke proves the recovery paths end to end: the fault-injection test
# suite under -race, then a real checkpointed cascade-train run whose files
# must pass the ckptcheck linter.
faultsmoke:
	$(GO) test -race -count=1 -run '$(FAULT_RE)' ./internal/resilience/... ./internal/distributed/... ./internal/train/... ./internal/serve/... ./internal/load/... ./internal/memstore/... ./internal/wal/... ./internal/cluster/...
	rm -rf /tmp/cascade-faultsmoke-ckpt
	$(GO) run ./cmd/cascade-train -events 800 -epochs 2 -health \
		-checkpoint-dir /tmp/cascade-faultsmoke-ckpt -checkpoint-every 5 > /dev/null
	$(GO) run ./tools/ckptcheck -dir /tmp/cascade-faultsmoke-ckpt
	rm -rf /tmp/cascade-faultsmoke-ckpt

# stalesmoke gates the bounded-staleness pipeline: s=0 twice must agree
# bitwise, s=2 must actually serve stale reads within budget and diverge.
stalesmoke:
	$(GO) test -count=1 -run '^TestStaleSmoke$$' ./internal/train

# plansmoke gates the plan capture/replay subsystem: the plan package's own
# unit tests (fusion goldens, replay-vs-eager bitwise pins, the zero-alloc
# steady-state pin) plus the trainer-level smoke test that a compiled run
# hits the plan cache, fuses ops, never falls back, and reports it all
# through the train_plan_* metrics.
plansmoke:
	$(GO) test -count=1 ./internal/plan/...
	$(GO) test -count=1 -run '^TestPlanSmoke$$' ./internal/train

# chaossmoke drives the deterministic chaos harness end to end: a 10× burst
# against a saturated scoring server must shed-not-collapse, a flapping
# training replica must rejoin from the latest on-disk checkpoint, an
# fsync-faulted WAL must degrade to read-only with zero acked-but-lost
# events, a SIGKILLed cascade-serve must recover bitwise from its WAL, and a
# SIGKILLed replicated primary behind cascade-router must fail over to its
# standby with every hinted batch drained and zero acked-but-lost.
chaossmoke:
	$(GO) run ./tools/chaos -scenario all

# walsmoke gates the ingest write-ahead log: the wal package's own tests
# (framing, rotation, retention, torn-tail truncation at every byte offset)
# plus the walcheck linter's selftest over clean/torn/corrupt logs.
walsmoke:
	$(GO) test -count=1 ./internal/wal/...
	$(GO) run ./tools/walcheck -selftest

# replsmoke gates the serve cluster: the cluster package's own tests under
# the race detector — WAL-shipping replication end to end (semi-sync acks,
# snapshot catch-up, standby WALs verified as byte prefixes of the
# primary's), the rendezvous router's pair-aware split/merge, failover with
# hinted handoff, and the repl/probe/promote fault points.
replsmoke:
	$(GO) test -race -count=1 ./internal/cluster/...

# tracesmoke gates the observability plane: one request through a traced
# 2-shard router must yield a single distributed trace-id visible in the
# router's and both shards' Chrome traces once merged (trace propagation +
# clock-offset alignment), and the tracemerge tool's built-in synthetic
# skew/torn-input check must pass. The obs package's own tests (traceparent
# codec, SLO burn math, federation parser, flight-dump naming) ride the
# race pass — ./internal/obs/... is already in RACE_PKGS.
tracesmoke:
	$(GO) test -count=1 -run '^TestTraceSmoke$$' ./internal/cluster
	$(GO) run ./tools/tracemerge -selftest

# benchall runs the full experiment suite (every paper table/figure) once.
benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
