// Package resilience makes Cascade training survivable: versioned,
// checksummed full-state checkpoints written crash-safely on a cadence, a
// Manager that rolls training back to the last good checkpoint (with
// learning-rate backoff) when the trainer's numerical-health monitor trips,
// and resume-from-disk so a killed run continues bitwise-identically.
//
// The stakes are specific to temporal GNNs: node memories are built strictly
// sequentially over the event stream and the ABS profiles batch sizes across
// whole epochs, so a crash mid-epoch loses state that cannot be recomputed
// without replaying the stream from the start (PAPER.md §4–5).
package resilience

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

// Checkpoint-file format: magic, format version, payload length, gob-encoded
// train.CheckpointState, then a CRC32 (IEEE) over everything before it
// (magic through payload). The CRC makes torn or bit-rotted files detectable;
// the explicit length makes truncation distinguishable from corruption.
var snapshotMagic = [8]byte{'C', 'A', 'S', 'C', 'C', 'K', 'P', '2'}

// FormatVersion is the current checkpoint-file format version.
const FormatVersion uint32 = 1

// maxPayload bounds the declared payload length (a corrupted length field
// must not drive a multi-gigabyte allocation).
const maxPayload = 1 << 32

// Sentinel errors for the distinct ways a checkpoint file can be bad; match
// with errors.Is.
var (
	ErrBadMagic        = errors.New("resilience: not a checkpoint file (bad magic)")
	ErrVersionMismatch = errors.New("resilience: checkpoint format version mismatch")
	ErrTruncated       = errors.New("resilience: checkpoint file truncated")
	ErrCorrupt         = errors.New("resilience: checkpoint file corrupt (checksum mismatch)")
)

// EncodeSnapshot writes one checkpoint in the file format to w.
func EncodeSnapshot(w io.Writer, c *train.CheckpointState) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return fmt.Errorf("resilience: encoding checkpoint state: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	sum := crc32.ChecksumIEEE(buf.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	buf.Write(tail[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeSnapshot reads one checkpoint from r, verifying magic, version and
// checksum. Failures map onto the sentinel errors above.
func DecodeSnapshot(r io.Reader) (*train.CheckpointState, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersionMismatch, version, FormatVersion)
	}
	plen := binary.LittleEndian.Uint64(hdr[4:12])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: reading %d-byte payload: %v", ErrTruncated, plen, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: reading checksum: %v", ErrTruncated, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(magic[:])
	crc.Write(hdr[:])
	crc.Write(payload)
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrCorrupt, got, want)
	}
	var c train.CheckpointState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return &c, nil
}

// checkpointName formats the on-disk name for a sequence number. Fixed-width
// numbering makes lexicographic order the write order.
func checkpointName(seq int) string { return fmt.Sprintf("ckpt-%010d.ckpt", seq) }

// checkpointSeq parses a checkpoint file name; ok is false for foreign files.
func checkpointSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt"))
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// listCheckpoints returns the checkpoint file names in dir, oldest first.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := checkpointSeq(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// LatestCheckpoint returns the path of the newest checkpoint in dir, or ""
// when the directory holds none (a missing directory also counts as none).
func LatestCheckpoint(dir string) (string, error) {
	names, err := listCheckpoints(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", nil
	}
	return filepath.Join(dir, names[len(names)-1]), nil
}

// ReadSnapshotFile loads and verifies one checkpoint file.
func ReadSnapshotFile(path string) (*train.CheckpointState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WriteSnapshotFile writes one checkpoint crash-safely: the bytes go to a
// temp file in the same directory, are fsynced, and only then renamed onto
// the final name (with a directory fsync after). A crash or injected I/O
// error at any point leaves either the previous file or nothing at the
// target path — never a partial checkpoint. The injector (nil-safe) can fail
// the write, sync or rename steps deterministically.
func WriteSnapshotFile(dir string, seq int, c *train.CheckpointState, inj *faultinject.Injector) (string, error) {
	path := filepath.Join(dir, checkpointName(seq))
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("resilience: creating temp checkpoint: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := inj.Err(faultinject.PointCkptWrite); err != nil {
		return "", fmt.Errorf("resilience: writing checkpoint: %w", err)
	}
	if err := EncodeSnapshot(tmp, c); err != nil {
		return "", fmt.Errorf("resilience: writing checkpoint: %w", err)
	}
	if err := inj.Err(faultinject.PointCkptSync); err != nil {
		return "", fmt.Errorf("resilience: syncing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return "", fmt.Errorf("resilience: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return "", fmt.Errorf("resilience: closing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if err := inj.Err(faultinject.PointCkptRename); err != nil {
		os.Remove(tmpName)
		tmp = nil
		return "", fmt.Errorf("resilience: publishing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		tmp = nil
		return "", fmt.Errorf("resilience: publishing checkpoint: %w", err)
	}
	tmp = nil
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems refuse to sync directories, which must not fail the write.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return path, nil
}

// PruneCheckpoints keeps the newest `keep` checkpoints in dir and removes
// the rest (bounded retention). keep ≤ 0 disables pruning.
func PruneCheckpoints(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if rerr := os.Remove(filepath.Join(dir, name)); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
