package resilience

import (
	"errors"
	"fmt"
	"os"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

// Options configures a Manager.
type Options struct {
	// Dir is the checkpoint directory ("" keeps checkpoints in memory only —
	// rollback still works, resume-from-disk does not).
	Dir string
	// EveryBatches is the mid-epoch checkpoint cadence (≤ 0: epoch
	// boundaries only).
	EveryBatches int
	// Keep bounds on-disk retention to the newest N checkpoints (default 3).
	Keep int
	// Health configures the trainer's numerical-health monitor; zero value
	// enables it with defaults. Set Health.Enabled explicitly to tune.
	Health train.HealthConfig
	// MaxRollbacks bounds consecutive rollbacks before the run aborts with
	// diagnostics (default 3). A cleanly completed epoch resets the count.
	MaxRollbacks int
	// LRBackoff scales the learning rate down on every rollback (default
	// 0.5).
	LRBackoff float64
	// Obs receives recovery metrics; Trace receives recovery events. Both
	// optional.
	Obs   *obs.Registry
	Trace *obs.TraceSink
	// Recorder, when non-nil, dumps its flight ring (the last N batch span
	// trees plus a metrics snapshot) to disk on every health rollback, so the
	// offending batch's timeline survives the restore.
	Recorder *obs.FlightRecorder
	// Injector, when non-nil, is installed into the trainer and consulted by
	// the checkpoint writer (tests and chaos runs).
	Injector *faultinject.Injector
}

func (o *Options) fillDefaults() {
	if o.Keep <= 0 {
		o.Keep = 3
	}
	if o.MaxRollbacks <= 0 {
		o.MaxRollbacks = 3
	}
	if o.LRBackoff <= 0 || o.LRBackoff >= 1 {
		o.LRBackoff = 0.5
	}
}

// Manager drives fault-tolerant training: it installs the checkpoint cadence
// and health monitor into a trainer, persists checkpoints crash-safely,
// resumes from disk, and turns health violations into bounded
// rollback-with-backoff retries.
type Manager struct {
	opt Options
	tr  *train.Trainer

	seq       int // next on-disk sequence number
	lastGood  *train.CheckpointState
	completed int // epochs fully trained (advances on clean TrainEpochChecked returns)
	rollbacks int // consecutive rollbacks since the last clean epoch
}

// NewManager wires a trainer for fault tolerance: the checkpoint cadence,
// health monitor and fault injector from opt are installed into the trainer,
// and any checkpoints already in opt.Dir extend the sequence (call Resume to
// actually load one).
func NewManager(tr *train.Trainer, opt Options) (*Manager, error) {
	opt.fillDefaults()
	m := &Manager{opt: opt, tr: tr, completed: tr.Epoch()}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resilience: creating checkpoint dir: %w", err)
		}
		// Continue the sequence past any checkpoints already present.
		names, err := listCheckpoints(opt.Dir)
		if err != nil {
			return nil, err
		}
		if len(names) > 0 {
			last, _ := checkpointSeq(names[len(names)-1])
			m.seq = last + 1
		}
	}
	tr.SetHealth(opt.Health)
	tr.SetInjector(opt.Injector)
	tr.SetCheckpointCadence(opt.EveryBatches, m.onCheckpoint)
	return m, nil
}

// onCheckpoint is the trainer's cadence hook: retain the snapshot in memory
// as the rollback target, then persist it. Write failures are counted and
// traced but deliberately not fatal — losing a checkpoint must not kill the
// training run, and the atomic writer guarantees no partial file is visible.
func (m *Manager) onCheckpoint(c *train.CheckpointState) error {
	m.lastGood = c
	m.persist(c)
	return nil
}

func (m *Manager) persist(c *train.CheckpointState) {
	if m.opt.Dir == "" {
		return
	}
	path, err := WriteSnapshotFile(m.opt.Dir, m.seq, c, m.opt.Injector)
	if err != nil {
		m.count("resilience_checkpoint_write_failures_total")
		m.opt.Trace.Emit(map[string]any{
			"event": "checkpoint_write_failed", "epoch": c.Epoch, "batch": c.Batch, "error": err.Error(),
		})
		return
	}
	m.seq++
	m.count("resilience_checkpoints_written_total")
	m.opt.Trace.Emit(map[string]any{
		"event": "checkpoint_written", "path": path, "epoch": c.Epoch, "batch": c.Batch,
	})
	if err := PruneCheckpoints(m.opt.Dir, m.opt.Keep); err != nil {
		m.opt.Trace.Emit(map[string]any{"event": "checkpoint_prune_failed", "error": err.Error()})
	}
}

// Resume loads the newest checkpoint from the directory into the trainer.
// Returns false when the directory holds no checkpoint (fresh start).
func (m *Manager) Resume() (bool, error) {
	if m.opt.Dir == "" {
		return false, nil
	}
	path, err := LatestCheckpoint(m.opt.Dir)
	if err != nil || path == "" {
		return false, err
	}
	c, err := ReadSnapshotFile(path)
	if err != nil {
		return false, err
	}
	if err := m.tr.RestoreCheckpoint(c); err != nil {
		return false, err
	}
	m.lastGood = c
	m.completed = c.Epoch
	if c.Batch >= 0 {
		m.completed = c.Epoch - 1 // mid-epoch: that epoch still needs finishing
	}
	m.count("resilience_checkpoints_restored_total")
	m.opt.Trace.Emit(map[string]any{
		"event": "checkpoint_restored", "path": path, "epoch": c.Epoch, "batch": c.Batch,
	})
	return true, nil
}

// Run trains until `epochs` epochs have completed (counting epochs finished
// before a Resume), rolling back to the last good checkpoint with
// learning-rate backoff whenever the health monitor aborts an epoch. After
// MaxRollbacks consecutive rollbacks — or a health error with no checkpoint
// to roll back to — it gives up with diagnostics. Non-health errors (fault
// injection aborts, checkpoint-hook failures) propagate immediately.
func (m *Manager) Run(epochs int) ([]train.EpochStats, error) {
	var out []train.EpochStats
	for m.completed < epochs {
		st, err := m.tr.TrainEpochChecked()
		if err == nil {
			out = append(out, st)
			m.completed = st.Epoch
			m.rollbacks = 0
			// Epoch-boundary checkpoint: the natural resume point between
			// epochs, and the rollback target for the next one.
			if c, cerr := m.tr.CaptureCheckpoint(); cerr == nil {
				m.lastGood = c
				m.persist(c)
			}
			continue
		}
		var he *train.HealthError
		if !errors.As(err, &he) {
			return out, err
		}
		// Dump the flight ring before restoring: the offending batch's span
		// tree is still in the ring, and the metrics snapshot still reflects
		// the pre-rollback scheduler state (ABS, filter counters).
		if m.opt.Recorder != nil {
			if path, derr := m.opt.Recorder.Dump("health_rollback"); derr != nil {
				m.opt.Trace.Emit(map[string]any{"event": "flight_dump_failed", "error": derr.Error()})
			} else {
				m.count("resilience_flight_dumps_total")
				m.opt.Trace.Emit(map[string]any{"event": "flight_dump", "path": path, "reason": "health_rollback"})
			}
		}
		if m.lastGood == nil {
			return out, fmt.Errorf("resilience: %w; no checkpoint to roll back to", he)
		}
		if m.rollbacks >= m.opt.MaxRollbacks {
			return out, fmt.Errorf("resilience: giving up after %d rollbacks; last violation: %w (lr=%g)",
				m.rollbacks, he, m.tr.Optimizer().LR)
		}
		if rerr := m.tr.RestoreCheckpoint(m.lastGood); rerr != nil {
			return out, fmt.Errorf("resilience: rollback failed: %w", rerr)
		}
		m.rollbacks++
		// Backoff compounds across consecutive rollbacks: the restore put the
		// checkpointed LR back, so scale by backoff^rollbacks.
		lr := float64(m.tr.Optimizer().LR)
		for i := 0; i < m.rollbacks; i++ {
			lr *= m.opt.LRBackoff
		}
		m.tr.Optimizer().LR = float32(lr)
		m.count("resilience_rollbacks_total")
		m.opt.Trace.Emit(map[string]any{
			"event": "rollback", "kind": he.Kind, "epoch": he.Epoch, "batch": he.Batch,
			"loss": he.Loss, "grad_norm": he.GradNorm, "lr": lr, "rollbacks": m.rollbacks,
		})
	}
	return out, nil
}

// Rollbacks reports consecutive rollbacks since the last clean epoch.
func (m *Manager) Rollbacks() int { return m.rollbacks }

// LastGood exposes the current rollback target (nil before any checkpoint).
func (m *Manager) LastGood() *train.CheckpointState { return m.lastGood }

func (m *Manager) count(name string) {
	if m.opt.Obs != nil {
		m.opt.Obs.Counter(name).Inc()
	}
}
