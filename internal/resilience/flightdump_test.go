package resilience

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

// flightFiles lists the flight-recorder dump files in dir.
func flightFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "flight-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// dumpFile is the subset of the flight-dump schema the trigger tests read.
type dumpFile struct {
	Reason string `json:"reason"`
	Time   string `json:"time"`
	Spans  []struct {
		Name     string            `json:"name"`
		Phase    string            `json:"phase"`
		Attrs    map[string]any    `json:"attrs"`
		Children []json.RawMessage `json:"children"`
	} `json:"spans"`
	Metrics map[string]float64 `json:"metrics"`
}

func readFlightDump(t *testing.T, path string) dumpFile {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d dumpFile
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump %s not valid JSON: %v", path, err)
	}
	return d
}

// TestHealthRollbackFlightDump: an injected NaN gradient under a traced
// Cascade run must produce exactly one flight dump on the rollback, and the
// dump must hold the offending batch's span tree (the root carrying the
// health_error attribute, with phase children) plus the scheduler's ABS
// state in the metrics snapshot.
func TestHealthRollbackFlightDump(t *testing.T) {
	full, trd, val := resData(t)
	reg := obs.NewRegistry()
	dumpDir := t.TempDir()
	flight := obs.NewFlightRecorder(dumpDir, 16, reg)
	flight.SetClock(func() time.Time {
		return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	})
	tracer := obs.NewTracer(obs.TracerOptions{Flight: flight, Registry: reg})
	m := models.MustNew("TGN", full, 16, 4, 5)
	sched := core.NewScheduler(trd.Events, full.NumNodes,
		core.Options{BaseBatch: 50, Workers: 2, Seed: 1, Obs: reg})
	tt, err := train.NewTrainer(train.Config{
		Model: m, Sched: sched, Data: trd, Val: val, LR: 2e-3, ValBatch: 100, Seed: 9,
		Obs: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	inj.Arm(faultinject.PointTrainNaNGrad, 6)
	mgr, err := NewManager(tt, Options{
		Dir: t.TempDir(), EveryBatches: 3, Injector: inj, Obs: reg,
		Health: train.HealthConfig{Enabled: true}, Recorder: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(1); err != nil {
		t.Fatalf("run did not recover: %v", err)
	}
	if got := reg.Counter("resilience_rollbacks_total").Value(); got != 1 {
		t.Fatalf("rollbacks %d, want 1", got)
	}

	files := flightFiles(t, dumpDir)
	if len(files) != 1 {
		t.Fatalf("dump files %v, want exactly one", files)
	}
	if !strings.Contains(files[0], "health_rollback") {
		t.Fatalf("dump file %q does not carry the trigger reason", files[0])
	}
	d := readFlightDump(t, dumpDir+"/"+files[0])
	if d.Reason != "health_rollback" {
		t.Fatalf("reason %q", d.Reason)
	}
	if d.Time != "2026-08-05T12:00:00Z" {
		t.Fatalf("dump time %q not from the injected clock", d.Time)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump has no span trees")
	}
	// The offending batch must be in the ring: its root carries the
	// health_error attribute and a real span tree underneath.
	offending := -1
	for i, sp := range d.Spans {
		if _, ok := sp.Attrs["health_error"]; ok {
			offending = i
		}
	}
	if offending < 0 {
		t.Fatal("no span tree carries the health_error attribute")
	}
	if len(d.Spans[offending].Children) == 0 {
		t.Fatal("offending batch span has no phase children")
	}
	// ABS state rides along in the metrics snapshot.
	if _, ok := d.Metrics["cascade_maxr"]; !ok {
		t.Fatalf("metrics snapshot missing cascade_maxr (ABS state); have %d keys", len(d.Metrics))
	}
}
