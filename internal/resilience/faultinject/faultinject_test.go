package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Fire("x") || inj.Err("x") != nil || inj.Sleep("x") || inj.Fired("x") != 0 {
		t.Fatal("nil injector fired")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	inj := New()
	for i := 0; i < 5; i++ {
		if inj.Fire("never-armed") {
			t.Fatal("unarmed point fired")
		}
	}
}

func TestArmEveryHit(t *testing.T) {
	inj := New()
	inj.Arm("p")
	for i := 0; i < 3; i++ {
		if !errors.Is(inj.Err("p"), ErrInjected) {
			t.Fatalf("hit %d did not fire", i+1)
		}
	}
	if inj.Fired("p") != 3 {
		t.Fatalf("fired %d, want 3", inj.Fired("p"))
	}
}

func TestArmSpecificHits(t *testing.T) {
	inj := New()
	inj.Arm("p", 2, 4)
	var fires []bool
	for i := 0; i < 5; i++ {
		fires = append(fires, inj.Fire("p"))
	}
	want := []bool{false, true, false, true, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v", i+1, fires[i], want[i])
		}
	}
	if inj.Fired("p") != 2 {
		t.Fatalf("fired %d, want 2", inj.Fired("p"))
	}
}

func TestArmErrCarriesCustomError(t *testing.T) {
	inj := New()
	custom := errors.New("disk on fire")
	inj.ArmErr("p", custom, 1)
	if err := inj.Err("p"); !errors.Is(err, custom) {
		t.Fatalf("got %v, want custom error", err)
	}
	if err := inj.Err("p"); err != nil {
		t.Fatalf("hit 2 fired: %v", err)
	}
}

func TestArmDelaySleeps(t *testing.T) {
	inj := New()
	inj.ArmDelay("p", 30*time.Millisecond, 1)
	start := time.Now()
	if !inj.Sleep("p") {
		t.Fatal("armed sleep did not fire")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("slept only %v", elapsed)
	}
	if inj.Sleep("p") {
		t.Fatal("hit 2 fired")
	}
}

func TestRearmReplacesSchedule(t *testing.T) {
	inj := New()
	inj.Arm("p", 1)
	inj.Fire("p")
	inj.Arm("p", 1) // fresh hit counter
	if !inj.Fire("p") {
		t.Fatal("re-armed point did not fire on its first hit")
	}
}

func TestReplicaPoint(t *testing.T) {
	if got := ReplicaPoint(PointReplicaDie, 2); got != "dist/replica-die/2" {
		t.Fatalf("got %q", got)
	}
}
