// Package faultinject is a deterministic fault-injection harness for the
// resilience test suite (and for manual chaos runs via cmd flags). Code
// under test declares named fault points and consults the injector at each;
// tests arm a point to fire on specific hit indices. With a nil injector —
// the production default — every call is a no-op, so call sites can be
// unconditional and cost one nil check.
//
// Determinism is the design goal: a point fires on its Nth evaluation, not
// on a timer or a random draw, so a failing recovery test replays exactly.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fault point names used across the repo. Keeping them here (rather than as
// loose strings at call sites) makes the harness greppable.
const (
	// PointTrainNaNGrad poisons one parameter gradient with NaN after the
	// backward pass (internal/train).
	PointTrainNaNGrad = "train/nan-grad"
	// PointTrainAbort aborts TrainEpochChecked at a batch boundary — the
	// kill-and-resume tests' stand-in for a crash (internal/train).
	PointTrainAbort = "train/abort"
	// PointCkptWrite / PointCkptSync / PointCkptRename fail the atomic
	// checkpoint writer at the corresponding syscall (internal/resilience).
	PointCkptWrite  = "ckpt/write"
	PointCkptSync   = "ckpt/sync"
	PointCkptRename = "ckpt/rename"
	// PointReplicaDie kills replica r before its epoch (internal/distributed);
	// format with ReplicaPoint.
	PointReplicaDie = "dist/replica-die"
	// PointReplicaHang stalls replica r for the armed delay, simulating a
	// wedged worker the epoch barrier must time out on.
	PointReplicaHang = "dist/replica-hang"
	// PointReplicaFlap kills replica r's epoch like PointReplicaDie, but
	// models a transient crash: with rejoin enabled the replica comes back
	// from the latest checkpoint instead of staying evicted
	// (internal/distributed).
	PointReplicaFlap = "dist/replica-flap"
	// PointReportDrop drops replica r's epoch report on the way to the
	// barrier; the retry layer re-delivers it (internal/distributed).
	PointReportDrop = "dist/report-drop"
	// PointServeSlowScore stalls the scoring critical section for the armed
	// delay (internal/serve) — drives deadline misses and breaker trips in
	// the chaos suite.
	PointServeSlowScore = "serve/slow-score"
	// PointServeRefuse makes the fresh scoring path refuse a request
	// outright, as a crashed upstream would (internal/serve).
	PointServeRefuse = "serve/refuse"
	// PointWALWrite fails a WAL record append after a deliberate short
	// write, leaving a torn frame on disk — the recovery path must truncate
	// it (internal/wal).
	PointWALWrite = "wal/write"
	// PointWALSync fails the WAL fsync, the way a dying disk surfaces: data
	// accepted by the kernel but durability refused (internal/wal).
	PointWALSync = "wal/sync"
	// PointWALRotate fails segment creation at rotation — the disk-full
	// case (internal/wal).
	PointWALRotate = "wal/rotate"
	// PointWALSnapshot fails the compaction snapshot write; the server must
	// keep serving (the log is still intact) and retry later
	// (internal/serve).
	PointWALSnapshot = "wal/snapshot"
	// PointWALTruncate fails segment retention after the compaction snapshot
	// is durable — the crash-window between snapshot rename and segment
	// delete; recovery must tolerate the surviving overlap (internal/wal).
	PointWALTruncate = "wal/truncate"
	// PointReplSend fails a replication frame write on the primary's sender,
	// forcing a reconnect + re-handshake (internal/cluster).
	PointReplSend = "repl/send"
	// PointReplAck suppresses a standby ack, driving the primary's
	// ack-timeout degradation path (internal/cluster).
	PointReplAck = "repl/ack"
	// PointProbeTimeout turns a router health probe into a timeout, the way
	// a hung primary looks from outside (internal/cluster).
	PointProbeTimeout = "probe/timeout"
	// PointPromote fails the router's standby-promotion request; failover
	// must retry, not wedge (internal/cluster).
	PointPromote = "promote"
)

// ReplicaPoint names a per-replica fault point ("dist/replica-die/2").
func ReplicaPoint(base string, r int) string { return fmt.Sprintf("%s/%d", base, r) }

// ErrInjected is the default error returned by firing points armed without
// an explicit error.
var ErrInjected = errors.New("faultinject: injected fault")

// arm is one armed fault point.
type arm struct {
	hits  int           // evaluations so far
	at    map[int]bool  // 1-based hit indices that fire; nil = every hit
	err   error         // error to return from Err-style points
	delay time.Duration // sleep duration for Sleep-style points
}

// Injector tracks armed fault points. The zero value and nil are inert; use
// New and Arm in tests. Safe for concurrent use (replicas fire points from
// their own goroutines).
type Injector struct {
	mu    sync.Mutex
	arms  map[string]*arm
	fired map[string]int
}

// New returns an empty injector (nothing armed — all points inert until
// Arm is called).
func New() *Injector { return &Injector{arms: map[string]*arm{}, fired: map[string]int{}} }

// Arm schedules point to fire on the given 1-based hit indices (every hit
// when none are given). Re-arming a point replaces its schedule.
func (i *Injector) Arm(point string, hits ...int) { i.arm(point, ErrInjected, 0, hits) }

// ArmErr is Arm with an explicit error for Err-consuming call sites.
func (i *Injector) ArmErr(point string, err error, hits ...int) { i.arm(point, err, 0, hits) }

// ArmDelay arms a Sleep-consuming point (replica hang) with its stall
// duration.
func (i *Injector) ArmDelay(point string, d time.Duration, hits ...int) {
	i.arm(point, ErrInjected, d, hits)
}

func (i *Injector) arm(point string, err error, d time.Duration, hits []int) {
	a := &arm{err: err, delay: d}
	if len(hits) > 0 {
		a.at = make(map[int]bool, len(hits))
		for _, h := range hits {
			a.at[h] = true
		}
	}
	i.mu.Lock()
	i.arms[point] = a
	i.mu.Unlock()
}

// Fire evaluates point once and reports whether it fires this hit. Nil-safe.
func (i *Injector) Fire(point string) bool { return i.Err(point) != nil }

// Err evaluates point once; when it fires, the armed error is returned
// (ErrInjected by default). Nil-safe: a nil injector never fires.
func (i *Injector) Err(point string) error {
	a, fires := i.eval(point)
	if !fires {
		return nil
	}
	return a.err
}

// Sleep evaluates point once and, when it fires, blocks for the armed
// delay. Returns whether it fired. Nil-safe.
func (i *Injector) Sleep(point string) bool {
	a, fires := i.eval(point)
	if !fires {
		return false
	}
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	return true
}

func (i *Injector) eval(point string) (*arm, bool) {
	if i == nil {
		return nil, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	a, ok := i.arms[point]
	if !ok {
		return nil, false
	}
	a.hits++
	if a.at != nil && !a.at[a.hits] {
		return nil, false
	}
	i.fired[point]++
	return a, true
}

// Fired reports how many times point actually fired (tests assert recovery
// paths really ran). Nil-safe.
func (i *Injector) Fired(point string) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[point]
}
