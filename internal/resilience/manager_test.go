package resilience

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

func resData(t testing.TB) (*graph.Dataset, *graph.Dataset, *graph.Dataset) {
	t.Helper()
	full := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 61, FeatDimOverride: 8, MinNodes: 96, MinEvents: 900})
	tr, val := full.Split(0.8)
	return full, tr, val
}

// newResTrainer builds a trainer the way production runs do; every call with
// the same arguments yields an identically-initialized trainer (the
// fresh-process stand-in for resume tests).
func newResTrainer(t testing.TB, modelName string, useCascade bool) *train.Trainer {
	t.Helper()
	full, tr, val := resData(t)
	m := models.MustNew(modelName, full, 16, 4, 5)
	var sched batching.Scheduler
	if useCascade {
		sched = core.NewScheduler(tr.Events, full.NumNodes, core.Options{BaseBatch: 50, Workers: 2, Seed: 1})
	} else {
		sched = batching.NewFixed("TGL", tr.NumEvents(), 60)
	}
	tt, err := train.NewTrainer(train.Config{
		Model: m, Sched: sched, Data: tr, Val: val, LR: 2e-3, ValBatch: 100, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

// finalState reduces a trainer's end-of-run state to one comparable blob
// (weights, optimizer moments, node memories, adjacency, pending messages,
// RNG positions, scheduler state) plus the validation loss.
func finalState(t testing.TB, tr *train.Trainer) ([]byte, float64) {
	t.Helper()
	c, err := tr.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr.Validate()
}

// TestKillAndResumeBitwiseIdentical is the headline acceptance criterion: a
// run killed mid-epoch and resumed from its on-disk checkpoint by a fresh
// trainer must end with bitwise-identical weights, optimizer moments, node
// memories, scheduler adaptation state, RNG positions and validation loss.
// Every Table 1 model goes through the full cycle; TGN additionally runs
// under the adaptive Cascade scheduler (the hardest state to reproduce, since
// ABS feedback shifts batch boundaries).
func TestKillAndResumeBitwiseIdentical(t *testing.T) {
	for _, tc := range []struct {
		model      string
		useCascade bool
	}{
		{"TGN", true},
		{"TGAT", false},
		{"JODIE", false},
		{"APAN", false},
		{"DySAT", false},
	} {
		t.Run(tc.model, func(t *testing.T) {
			const epochs = 2
			opts := func(dir string, inj *faultinject.Injector) Options {
				return Options{Dir: dir, EveryBatches: 3, Injector: inj}
			}

			// Baseline: the same fault-tolerant setup, never interrupted.
			baseTr := newResTrainer(t, tc.model, tc.useCascade)
			baseMgr, err := NewManager(baseTr, opts(t.TempDir(), nil))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := baseMgr.Run(epochs); err != nil {
				t.Fatal(err)
			}
			wantBlob, wantVal := finalState(t, baseTr)

			// Interrupted: a crash (injected abort) mid-run.
			dir := t.TempDir()
			inj := faultinject.New()
			inj.Arm(faultinject.PointTrainAbort, 16)
			killedTr := newResTrainer(t, tc.model, tc.useCascade)
			killedMgr, err := NewManager(killedTr, opts(dir, inj))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := killedMgr.Run(epochs); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("expected injected crash, got %v", err)
			}

			// Fresh process: brand-new trainer, resume from disk, finish.
			resumedTr := newResTrainer(t, tc.model, tc.useCascade)
			resumedMgr, err := NewManager(resumedTr, opts(dir, nil))
			if err != nil {
				t.Fatal(err)
			}
			ok, err := resumedMgr.Resume()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("no checkpoint to resume from")
			}
			if _, err := resumedMgr.Run(epochs); err != nil {
				t.Fatal(err)
			}
			gotBlob, gotVal := finalState(t, resumedTr)

			if !bytes.Equal(wantBlob, gotBlob) {
				t.Errorf("resumed state differs from uninterrupted run (%d vs %d bytes)", len(gotBlob), len(wantBlob))
			}
			if wantVal != gotVal {
				t.Errorf("validation loss diverged: uninterrupted %v, resumed %v", wantVal, gotVal)
			}
		})
	}
}

// TestNaNRollbackRecovers pins the numerical-health loop: an injected NaN
// gradient must trigger a rollback to the last good checkpoint with the
// learning rate backed off, after which the run completes with finite loss.
func TestNaNRollbackRecovers(t *testing.T) {
	tr := newResTrainer(t, "TGN", false)
	inj := faultinject.New()
	inj.Arm(faultinject.PointTrainNaNGrad, 15) // mid epoch 2 (12 batches/epoch)
	reg := obs.NewRegistry()
	const lr0 = 2e-3
	mgr, err := NewManager(tr, Options{
		Dir: t.TempDir(), EveryBatches: 4, Injector: inj, Obs: reg,
		Health: train.HealthConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mgr.Run(2)
	if err != nil {
		t.Fatalf("run did not recover: %v", err)
	}
	if len(stats) != 2 {
		t.Fatalf("completed %d clean epochs, want 2", len(stats))
	}
	for _, st := range stats {
		if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
			t.Fatalf("epoch %d loss %v not finite", st.Epoch, st.Loss)
		}
	}
	if got := inj.Fired(faultinject.PointTrainNaNGrad); got != 1 {
		t.Fatalf("NaN injected %d times, want 1", got)
	}
	if got := reg.Counter("resilience_rollbacks_total").Value(); got != 1 {
		t.Fatalf("rollbacks %d, want 1", got)
	}
	if got := tr.Optimizer().LR; got >= lr0 {
		t.Fatalf("LR %v not backed off from %v", got, lr0)
	}
	if val := tr.Validate(); math.IsNaN(val) || math.IsInf(val, 0) {
		t.Fatalf("validation loss %v not finite", val)
	}
}

// TestHealthGivesUpWithoutCheckpoint: a health trip before any checkpoint
// exists must abort cleanly (diagnostic error), not loop.
func TestHealthGivesUpWithoutCheckpoint(t *testing.T) {
	tr := newResTrainer(t, "TGN", false)
	inj := faultinject.New()
	inj.Arm(faultinject.PointTrainNaNGrad, 2)
	mgr, err := NewManager(tr, Options{
		// No Dir, cadence 0: nothing ever checkpointed before the trip.
		Injector: inj, Health: train.HealthConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Run(1)
	var he *train.HealthError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want HealthError", err)
	}
	if he.Kind != train.HealthNonFiniteGrad {
		t.Fatalf("kind %q", he.Kind)
	}
}

// TestRepeatedNaNExhaustsRollbacks: a fault that reappears after every
// rollback must hit the MaxRollbacks bound, not retry forever.
func TestRepeatedNaNExhaustsRollbacks(t *testing.T) {
	tr := newResTrainer(t, "TGN", false)
	inj := faultinject.New()
	// Epoch 1 (12 batches) is clean; from epoch 2 on, every batch poisons a
	// gradient, so each rollback replays straight into the same fault.
	hits := make([]int, 0, 88)
	for h := 13; h <= 100; h++ {
		hits = append(hits, h)
	}
	inj.Arm(faultinject.PointTrainNaNGrad, hits...)
	mgr, err := NewManager(tr, Options{
		Dir: t.TempDir(), EveryBatches: 0, Injector: inj,
		Health: train.HealthConfig{Enabled: true}, MaxRollbacks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Run(2)
	if err == nil {
		t.Fatal("run succeeded despite persistent NaN source")
	}
	var he *train.HealthError
	if !errors.As(err, &he) {
		t.Fatalf("diagnostics lost: %v", err)
	}
	if mgr.Rollbacks() != 2 {
		t.Fatalf("rollbacks %d, want 2", mgr.Rollbacks())
	}
}

// TestCheckpointWriteFailureIsNonFatal: persistent checkpoint-write I/O
// errors must not kill training, must leave no partial files, and must be
// counted.
func TestCheckpointWriteFailureIsNonFatal(t *testing.T) {
	tr := newResTrainer(t, "TGN", false)
	inj := faultinject.New()
	inj.Arm(faultinject.PointCkptWrite) // every write fails
	reg := obs.NewRegistry()
	dir := t.TempDir()
	mgr, err := NewManager(tr, Options{Dir: dir, EveryBatches: 4, Injector: inj, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(1); err != nil {
		t.Fatalf("write failures killed the run: %v", err)
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("files appeared despite injected write failures: %v", names)
	}
	if got := reg.Counter("resilience_checkpoint_write_failures_total").Value(); got == 0 {
		t.Fatal("write failures not counted")
	}
	// Rollback target still works from memory.
	if mgr.LastGood() == nil {
		t.Fatal("in-memory checkpoint lost")
	}
}

// TestResumeOnFreshDirIsFreshStart: Resume with nothing on disk reports
// false and leaves the trainer untouched.
func TestResumeOnFreshDirIsFreshStart(t *testing.T) {
	tr := newResTrainer(t, "TGN", false)
	mgr, err := NewManager(tr, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := mgr.Resume()
	if err != nil || ok {
		t.Fatalf("resume on empty dir: ok=%v err=%v", ok, err)
	}
	if tr.Epoch() != 0 {
		t.Fatalf("trainer advanced to epoch %d", tr.Epoch())
	}
}
