package resilience

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

// testState builds a small but fully-populated checkpoint payload.
func testState() *train.CheckpointState {
	return &train.CheckpointState{
		Epoch:    2,
		Batch:    7,
		RNGDraws: 12345,
		Weights:  []byte{1, 2, 3, 4, 5},
		Optimizer: &nn.AdamCheckpoint{
			Step: 42, LR: 1e-3,
			M: [][]float32{{0.1, 0.2}}, V: [][]float32{{0.3, 0.4}},
		},
		Stream:    &models.StreamCheckpoint{Model: "TGN", RNG: 99},
		SchedName: "Cascade",
		Sched:     []byte{9, 8, 7},
		LossSum:   3.5,
		EventSum:  420,
		OccSum:    1.25,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := testState()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

// encodeToBytes is a test helper producing one well-formed snapshot blob.
func encodeToBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, testState()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	blob := encodeToBytes(t)
	blob[0] = 'X'
	if _, err := DecodeSnapshot(bytes.NewReader(blob)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	blob := encodeToBytes(t)
	blob[8] = byte(FormatVersion + 1) // version field follows the 8-byte magic
	if _, err := DecodeSnapshot(bytes.NewReader(blob)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob := encodeToBytes(t)
	// Every strict prefix must fail as truncated (the magic/version checks
	// win for very short prefixes that still parse those fields).
	for _, cut := range []int{0, 4, 8, 15, len(blob) / 2, len(blob) - 1} {
		_, err := DecodeSnapshot(bytes.NewReader(blob[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded", cut)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob := encodeToBytes(t)
	blob[25] ^= 0xff // inside the gob payload
	if _, err := DecodeSnapshot(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestWriteReadSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteSnapshotFile(dir, 3, testState(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "ckpt-0000000003.ckpt" {
		t.Fatalf("unexpected name %s", path)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, testState()) {
		t.Fatal("file round trip mismatch")
	}
	latest, err := LatestCheckpoint(dir)
	if err != nil || latest != path {
		t.Fatalf("latest = %q, %v; want %q", latest, err, path)
	}
}

func TestLatestCheckpointEmptyAndMissing(t *testing.T) {
	if p, err := LatestCheckpoint(t.TempDir()); err != nil || p != "" {
		t.Fatalf("empty dir: %q, %v", p, err)
	}
	if p, err := LatestCheckpoint(filepath.Join(t.TempDir(), "nope")); err != nil || p != "" {
		t.Fatalf("missing dir: %q, %v", p, err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for seq := 0; seq < 5; seq++ {
		if _, err := WriteSnapshotFile(dir, seq, testState(), nil); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign file must survive pruning untouched.
	foreign := filepath.Join(dir, "notes.txt")
	os.WriteFile(foreign, []byte("keep me"), 0o644)
	if err := PruneCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "ckpt-0000000003.ckpt" || names[1] != "ckpt-0000000004.ckpt" {
		t.Fatalf("kept %v", names)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}
}

// TestInjectedWriteFailuresLeaveNoPartialFile is the acceptance criterion for
// crash-safe writes: whichever stage fails, the target path either holds the
// previous intact checkpoint or nothing, and no temp litter remains.
func TestInjectedWriteFailuresLeaveNoPartialFile(t *testing.T) {
	for _, point := range []string{
		faultinject.PointCkptWrite, faultinject.PointCkptSync, faultinject.PointCkptRename,
	} {
		t.Run(strings.ReplaceAll(point, "/", "_"), func(t *testing.T) {
			dir := t.TempDir()
			// Seed a previous checkpoint that must survive the failed write.
			prevPath, err := WriteSnapshotFile(dir, 0, testState(), nil)
			if err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New()
			inj.Arm(point)
			if _, err := WriteSnapshotFile(dir, 1, testState(), inj); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("got %v, want injected failure", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if e.Name() != filepath.Base(prevPath) {
					t.Fatalf("leftover file %s after failed write", e.Name())
				}
			}
			if _, err := ReadSnapshotFile(prevPath); err != nil {
				t.Fatalf("previous checkpoint damaged: %v", err)
			}
		})
	}
}
