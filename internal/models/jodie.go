package models

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// JODIE (Kumar et al., KDD'19) per Table 1: most_recent(1) sampling, an MLP
// message module, a vanilla RNN memory updater, and an Identity embedder
// scaled by JODIE's signature time-decay projection (1 + Δt·w) ⊙ s.
type JODIE struct {
	base
	timeEnc *nn.TimeEncoder
	msg     *nn.MLP
	updater *nn.RNNCell
	decayW  *tensor.Tensor // scalar time-decay coefficient
}

// NewJODIE builds a JODIE model over the dataset.
func NewJODIE(ds *graph.Dataset, memoryDim, timeDim int, seed int64) *JODIE {
	cfg := Config{
		Name: "JODIE", Sampling: SampleMostRecent, NumNeighbors: 1,
		Message: "MLP", Updater: "RNN", Embedder: "Identity+time-decay",
		MemoryDim: memoryDim, TimeDim: timeDim,
	}
	mustMemDim(cfg)
	rng := rand.New(rand.NewSource(seed))
	msgIn := memoryDim + timeDim + ds.EdgeFeatDim
	m := &JODIE{
		base:    newBase(cfg, ds, seed+1),
		timeEnc: nn.NewTimeEncoder(rng, timeDim),
		msg:     nn.NewMLP(rng, nn.ActReLU, msgIn, memoryDim, memoryDim),
		updater: nn.NewRNNCell(rng, memoryDim, memoryDim),
		decayW:  tensor.Var(tensor.NewMatrix(1, 1)),
	}
	return m
}

// Name implements TGNN.
func (m *JODIE) Name() string { return "JODIE" }

// SetCompile implements Compilable: fused time encoder, message MLP, and RNN
// updater.
func (m *JODIE) SetCompile(on bool) {
	m.timeEnc.SetFused(on)
	m.msg.SetFused(on)
	m.updater.SetFused(on)
}

// Reset implements TGNN.
func (m *JODIE) Reset() { m.resetBase() }

// BeginBatch applies pending messages: mem' = RNN(msg([s_other ‖ φ(Δt) ‖ e]), mem).
func (m *JODIE) BeginBatch() *MemoryUpdate {
	return m.applyPending(m.takePending())
}

// BeginBatchWhere applies only the pending messages whose node satisfies
// need (bounded-staleness partial apply); the rest stay queued.
func (m *JODIE) BeginBatchWhere(need func(int32) bool) *MemoryUpdate {
	return m.applyPending(m.takePendingWhere(need))
}

func (m *JODIE) applyPending(nodes []int32, msgs []pendingMsg) *MemoryUpdate {
	if len(nodes) == 0 {
		return &MemoryUpdate{}
	}
	x, times := m.buildMessageInput(nodes, msgs)
	pre := m.mem.Gather(nodes)
	post := m.updater.Forward(m.msg.Forward(x), tensor.Const(pre))
	return m.commit(nodes, pre, post, times)
}

// buildMessageInput assembles [s_other ‖ φ(Δt) ‖ e] rows for the pending
// messages (Eq. 2) with Δt measured from the node's last memory update.
func (m *JODIE) buildMessageInput(nodes []int32, msgs []pendingMsg) (*tensor.Tensor, []float64) {
	others := make([]int32, len(nodes))
	dts := make([]float32, len(nodes))
	times := make([]float64, len(nodes))
	featDim := m.ds.EdgeFeatDim
	feats := tensor.NewMatrix(len(nodes), max(featDim, 1))
	for i, n := range nodes {
		p := msgs[i]
		others[i] = p.other
		dts[i] = float32(p.time - m.mem.LastUpdate(n))
		times[i] = p.time
		if featDim > 0 {
			m.edgeFeatRow(feats.Row(i), p.featIdx)
		}
	}
	parts := []*tensor.Tensor{
		tensor.ConstScratch(m.mem.Gather(others)),
		m.timeEnc.Forward(dts),
	}
	if featDim > 0 {
		parts = append(parts, tensor.ConstScratch(feats))
	}
	return tensor.ConcatColsT(parts...), times
}

// Embed projects memories with the time-decay coefficient:
// h = (1 + Δt·w) ⊙ s.
func (m *JODIE) Embed(nodes []int32, ts []float64) *tensor.Tensor {
	mem := m.view.Gather(nodes)
	dts := tensor.NewMatrix(len(nodes), 1)
	for i, n := range nodes {
		dts.Data[i] = float32(ts[i] - m.mem.LastUpdate(n))
	}
	factor := tensor.AddScalarT(tensor.MatMulT(tensor.ConstScratch(dts), m.decayW), 1)
	return tensor.MulT(mem, tensor.ColBroadcastT(factor, m.cfg.MemoryDim))
}

// EmbedDim implements TGNN.
func (m *JODIE) EmbedDim() int { return m.cfg.MemoryDim }

// EndBatch implements TGNN.
func (m *JODIE) EndBatch(events []graph.Event) {
	for _, e := range events {
		m.notePending(e)
		m.adj.AddEvent(e)
	}
}

// Params implements nn.Module.
func (m *JODIE) Params() []nn.Param {
	out := nn.CollectParams(m.timeEnc, m.msg, m.updater)
	out = append(out, nn.Param{Name: "decayW", T: m.decayW})
	return out
}

// MemoryBytes implements TGNN.
func (m *JODIE) MemoryBytes() map[string]int64 { return m.baseMemoryBytes(m) }
