package models

import (
	"testing"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

func testDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 1, FeatDimOverride: 8, MinNodes: 64, MinEvents: 400})
	if err := d.Validate(); err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return d
}

func runBatches(t testing.TB, m TGNN, d *graph.Dataset, batch, n int) {
	t.Helper()
	for b := 0; b < n; b++ {
		lo, hi := b*batch, (b+1)*batch
		if hi > d.NumEvents() {
			return
		}
		upd := m.BeginBatch()
		if b > 0 && upd.Empty() {
			t.Fatalf("%s: batch %d had no memory updates", m.Name(), b)
		}
		events := d.Events[lo:hi]
		nodes := make([]int32, 0, 2*len(events))
		ts := make([]float64, 0, 2*len(events))
		for _, e := range events {
			nodes = append(nodes, e.Src, e.Dst)
			ts = append(ts, e.Time, e.Time)
		}
		emb := m.Embed(nodes, ts)
		if emb.Rows() != len(nodes) || emb.Cols() != m.EmbedDim() {
			t.Fatalf("%s: embed %dx%d, want %dx%d", m.Name(), emb.Rows(), emb.Cols(), len(nodes), m.EmbedDim())
		}
		for _, v := range emb.Value.Data {
			if v != v { // NaN
				t.Fatalf("%s: NaN embedding at batch %d", m.Name(), b)
			}
		}
		m.EndBatch(events)
	}
}

func TestAllModelsRunBatches(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, d, 16, 4, 7)
			if m.Name() != name {
				t.Fatalf("name %q", m.Name())
			}
			runBatches(t, m, d, 20, 8)
		})
	}
}

func TestMemoryUpdateRecordsPrePost(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 16, 4, 3)
		m.EndBatch(d.Events[:50])
		upd := m.BeginBatch()
		if upd.Empty() {
			t.Fatalf("%s: no updates after 50 events", name)
		}
		if upd.Pre.Rows != len(upd.Nodes) || upd.Post.Rows != len(upd.Nodes) {
			t.Fatalf("%s: pre/post rows %d/%d for %d nodes", name, upd.Pre.Rows, upd.Post.Rows, len(upd.Nodes))
		}
		// Pre memories start at zero; at least one post memory should move
		// (identity models blend features in, learned models transform).
		moved := false
		for i := range upd.Post.Data {
			if upd.Post.Data[i] != upd.Pre.Data[i] {
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("%s: update was a no-op", name)
		}
	}
}

func TestGradientsReachUpdaterWeights(t *testing.T) {
	// For models with learned updaters, a loss over embeddings of freshly
	// updated nodes must produce gradients in the updater parameters.
	d := testDataset(t)
	for _, name := range []string{"JODIE", "TGN", "APAN", "DySAT"} {
		m := MustNew(name, d, 16, 4, 11)
		m.EndBatch(d.Events[:40])
		upd := m.BeginBatch()
		ts := make([]float64, len(upd.Nodes))
		for i := range ts {
			ts[i] = 1e6
		}
		emb := m.Embed(upd.Nodes, ts)
		loss := tensor.SumT(tensor.MulT(emb, emb))
		loss.Backward()
		got := false
		for _, p := range m.Params() {
			if p.T.Grad != nil {
				for _, g := range p.T.Grad.Data {
					if g != 0 {
						got = true
						break
					}
				}
			}
			if got {
				break
			}
		}
		if !got {
			t.Fatalf("%s: no parameter received gradient", name)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 16, 4, 5)
		m.EndBatch(d.Events[:30])
		m.BeginBatch()
		m.Reset()
		upd := m.BeginBatch()
		if !upd.Empty() {
			t.Fatalf("%s: pending survived Reset", name)
		}
	}
}

func TestEmbedOnTapeForUpdatedNodes(t *testing.T) {
	// Embeddings of nodes updated this batch must flow gradients into the
	// on-tape post-update tensor (the lazy-update mechanism).
	d := testDataset(t)
	m := NewTGN(d, 16, 4, 13)
	m.EndBatch(d.Events[:30])
	upd := m.BeginBatch()
	if upd.Empty() {
		t.Fatal("no update")
	}
	ts := []float64{1e6}
	emb := m.Embed(upd.Nodes[:1], ts)
	loss := tensor.SumT(emb)
	loss.Backward()
	// GRU weights must have gradients because embedding consumed on-tape
	// memories.
	gotGRU := false
	for _, p := range m.updater.Params() {
		if p.T.Grad != nil {
			for _, g := range p.T.Grad.Data {
				if g != 0 {
					gotGRU = true
				}
			}
		}
	}
	if !gotGRU {
		t.Fatal("embedding of updated node did not backprop into GRU")
	}
}

func TestRegistryRejectsUnknown(t *testing.T) {
	d := testDataset(t)
	if _, err := New("GPT", d, 0, 0, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRegistryDefaults(t *testing.T) {
	d := testDataset(t)
	m := MustNew("TGN", d, 0, 0, 1)
	if m.Config().MemoryDim != DefaultMemoryDim || m.Config().TimeDim != DefaultTimeDim {
		t.Fatalf("defaults not applied: %+v", m.Config())
	}
}

func TestTable1Configs(t *testing.T) {
	d := testDataset(t)
	wantSampling := map[string]Sampling{
		"JODIE": SampleMostRecent, "TGN": SampleMostRecent, "APAN": SampleMostRecent,
		"DySAT": SampleUniform, "TGAT": SampleUniform,
	}
	wantNum := map[string]int{"JODIE": 1, "TGN": 1, "APAN": 10, "DySAT": 10, "TGAT": 10}
	for _, name := range Names {
		m := MustNew(name, d, 0, 0, 1)
		c := m.Config()
		if c.Sampling != wantSampling[name] || c.NumNeighbors != wantNum[name] {
			t.Fatalf("%s config mismatch with Table 1: %+v", name, c)
		}
		if row := Table1Row(m); row == "" {
			t.Fatalf("%s empty table row", name)
		}
	}
}

func TestMemoryBytesBreakdown(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 16, 4, 1)
		mb := m.MemoryBytes()
		for _, key := range []string{"model", "memory", "graph", "edge_feature"} {
			if mb[key] <= 0 {
				t.Fatalf("%s: component %q = %d", name, key, mb[key])
			}
		}
		if name == "APAN" {
			if _, ok := mb["mailbox"]; !ok {
				t.Fatal("APAN missing mailbox accounting")
			}
		}
		if TotalMemoryBytes(m) <= 0 {
			t.Fatalf("%s: non-positive total", name)
		}
		if len(MemoryBreakdownKeys(m)) != len(mb) {
			t.Fatalf("%s: key listing mismatch", name)
		}
	}
}

func TestParamsNonEmptyAndNamed(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 16, 4, 1)
		ps := m.Params()
		if len(ps) == 0 {
			t.Fatalf("%s: no parameters", name)
		}
		for _, p := range ps {
			if p.Name == "" || p.T == nil {
				t.Fatalf("%s: anonymous or nil param", name)
			}
			if !p.T.RequiresGrad() {
				t.Fatalf("%s: param %s does not require grad", name, p.Name)
			}
		}
		_ = nn.NumParams(m)
	}
}

func TestMemViewRoutesUpdatedNodes(t *testing.T) {
	d := testDataset(t)
	m := NewJODIE(d, 8, 4, 1)
	m.EndBatch(d.Events[:10])
	upd := m.BeginBatch()
	// The view's value for an updated node must equal the committed post
	// memory, and a never-touched node must read zeros from the store.
	got := m.view.Gather([]int32{upd.Nodes[0]})
	for j := 0; j < 8; j++ {
		if got.Value.At(0, j) != upd.Post.At(0, j) {
			t.Fatal("view row != post memory")
		}
	}
	// Find an untouched node.
	touched := map[int32]bool{}
	for _, n := range upd.Nodes {
		touched[n] = true
	}
	var cold int32 = -1
	for n := int32(0); int(n) < d.NumNodes; n++ {
		if !touched[n] {
			cold = n
			break
		}
	}
	if cold >= 0 {
		g := m.view.Gather([]int32{cold})
		for _, v := range g.Value.Data {
			if v != 0 {
				t.Fatal("cold node memory not zero")
			}
		}
	}
}

func TestTGAT2HopRunsAndDiffersFromStacked(t *testing.T) {
	d := testDataset(t)
	stacked := MustNew("TGAT", d, 16, 4, 7)
	twoHop := MustNew("TGAT-2hop", d, 16, 4, 7)
	if twoHop.Name() != "TGAT-2hop" {
		t.Fatalf("name %q", twoHop.Name())
	}
	runBatches(t, twoHop, d, 20, 6)
	// Same seed, same events: the variants share layer-1/-2 parameters but
	// route differently, so embeddings of warm nodes must differ.
	stacked.Reset()
	twoHop.Reset()
	for _, m := range []TGNN{stacked, twoHop} {
		m.EndBatch(d.Events[:60])
		m.BeginBatch()
	}
	nodes := []int32{d.Events[0].Src, d.Events[10].Src}
	ts := []float64{1e6, 1e6}
	a := stacked.Embed(nodes, ts)
	b := twoHop.Embed(nodes, ts)
	same := true
	for i := range a.Value.Data {
		if a.Value.Data[i] != b.Value.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("2-hop embedding identical to stacked variant")
	}
}

func TestModelsDeterministicGivenSeed(t *testing.T) {
	// Two identically seeded instances must produce bit-identical
	// embeddings after identical event streams (models with uniform
	// sampling draw from their own seeded rng, so this also pins the
	// sampling path).
	d := testDataset(t)
	for _, name := range Names {
		a := MustNew(name, d, 16, 4, 17)
		b := MustNew(name, d, 16, 4, 17)
		for _, m := range []TGNN{a, b} {
			m.EndBatch(d.Events[:40])
			m.BeginBatch()
		}
		nodes := []int32{d.Events[0].Src, d.Events[5].Dst}
		ts := []float64{1e5, 1e5}
		ea := a.Embed(nodes, ts)
		eb := b.Embed(nodes, ts)
		for i := range ea.Value.Data {
			if ea.Value.Data[i] != eb.Value.Data[i] {
				t.Fatalf("%s: nondeterministic embedding at %d", name, i)
			}
		}
	}
}

func TestEnableFullHistory(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 16, 4, 7)
		if !EnableFullHistory(m) {
			t.Fatalf("%s: full history not supported", name)
		}
		runBatches(t, m, d, 20, 5)
	}
}

// TestBeginBatchWhereDefersUnselected covers the bounded-staleness partial
// apply on every model: a need predicate selecting a subset applies exactly
// that subset (in arrival order), keeps the rest queued, and a later
// unrestricted BeginBatch drains the survivors. BeginBatchWhere(all) must
// behave exactly like BeginBatch.
func TestBeginBatchWhereDefersUnselected(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 16, 4, 21)
		pb, ok := m.(PartialBeginner)
		if !ok {
			t.Fatalf("%s does not implement PartialBeginner", name)
		}
		events := d.Events[:40]
		m.EndBatch(events)
		pendingSet := map[int32]bool{}
		var pendingOrder []int32
		for _, e := range events {
			for _, n := range []int32{e.Src, e.Dst} {
				if !pendingSet[n] {
					pendingSet[n] = true
					pendingOrder = append(pendingOrder, n)
				}
			}
		}
		upd := pb.BeginBatchWhere(func(n int32) bool { return n%2 == 0 })
		applied := map[int32]bool{}
		for i, n := range upd.Nodes {
			if n%2 != 0 {
				t.Fatalf("%s: applied unselected node %d", name, n)
			}
			applied[n] = true
			_ = i
		}
		upd.FreeTape()
		// The survivors must drain on the next full BeginBatch, in order.
		var wantRest []int32
		for _, n := range pendingOrder {
			if n%2 != 0 {
				wantRest = append(wantRest, n)
			}
		}
		rest := m.BeginBatch()
		if len(rest.Nodes) != len(wantRest) {
			t.Fatalf("%s: %d deferred nodes drained, want %d", name, len(rest.Nodes), len(wantRest))
		}
		for i, n := range rest.Nodes {
			if n != wantRest[i] {
				t.Fatalf("%s: deferred drain order %v, want %v", name, rest.Nodes, wantRest)
			}
		}
		rest.FreeTape()
		if third := m.BeginBatch(); !third.Empty() {
			t.Fatalf("%s: pending queue not empty after full drain", name)
		}
	}
}
