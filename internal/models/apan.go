package models

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/memstore"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// APAN (Wang et al., SIGMOD'21) per Table 1: an asynchronous mailbox keeps
// each node's 10 most recent messages (most_recent, num = 10); the memory
// updater is a transformer attention over the mailbox; node embedding is
// Identity (memories are used directly for predictions).
type APAN struct {
	base
	timeEnc *nn.TimeEncoder
	inProj  *nn.Linear // mailbox entry → model width
	updater *nn.TransformerLayer
	mailbox *memstore.Mailbox
	readBuf []memstore.MailEntry
}

// NewAPAN builds an APAN model over the dataset.
func NewAPAN(ds *graph.Dataset, memoryDim, timeDim int, seed int64) *APAN {
	cfg := Config{
		Name: "APAN", Sampling: SampleMostRecent, NumNeighbors: 10,
		Message: "Identity(mailbox)", Updater: "Transformer", Embedder: "Identity",
		MemoryDim: memoryDim, TimeDim: timeDim,
	}
	mustMemDim(cfg)
	rng := rand.New(rand.NewSource(seed))
	entryDim := memoryDim + ds.EdgeFeatDim
	return &APAN{
		base:    newBase(cfg, ds, seed+1),
		timeEnc: nn.NewTimeEncoder(rng, timeDim),
		inProj:  nn.NewLinear(rng, entryDim+timeDim, memoryDim),
		updater: nn.NewTransformerLayer(rng, memoryDim),
		mailbox: memstore.NewMailbox(ds.NumNodes, cfg.NumNeighbors, entryDim),
		readBuf: make([]memstore.MailEntry, cfg.NumNeighbors),
	}
}

// Name implements TGNN.
func (m *APAN) Name() string { return "APAN" }

// SetCompile implements Compilable: fused time encoder, mailbox projection,
// and transformer updater.
func (m *APAN) SetCompile(on bool) {
	m.timeEnc.SetFused(on)
	m.inProj.SetFused(on)
	m.updater.SetFused(on)
}

// Reset implements TGNN.
func (m *APAN) Reset() {
	m.resetBase()
	m.mailbox.Reset()
}

// BeginBatch applies pending updates: each touched node attends over its
// mailbox (projected entries + time encodings) with its memory as query.
func (m *APAN) BeginBatch() *MemoryUpdate {
	return m.applyPending(m.takePending())
}

// BeginBatchWhere applies only the pending updates whose node satisfies
// need (bounded-staleness partial apply); the rest stay queued. A deferred
// node's mailbox keeps accumulating in the meantime, so its eventual apply
// attends over everything it missed.
func (m *APAN) BeginBatchWhere(need func(int32) bool) *MemoryUpdate {
	return m.applyPending(m.takePendingWhere(need))
}

func (m *APAN) applyPending(nodes []int32, msgs []pendingMsg) *MemoryUpdate {
	if len(nodes) == 0 {
		return &MemoryUpdate{}
	}
	k := m.cfg.NumNeighbors
	entryDim := m.mailbox.Dim
	kv := tensor.NewMatrix(len(nodes)*k, entryDim)
	mask := tensor.NewMatrix(len(nodes), k)
	dts := make([]float32, len(nodes)*k)
	times := make([]float64, len(nodes))
	for i, n := range nodes {
		times[i] = msgs[i].time
		got := m.mailbox.Read(n, m.readBuf)
		for j := 0; j < got; j++ {
			copy(kv.Row(i*k+j), m.readBuf[j].Vec)
			dts[i*k+j] = float32(msgs[i].time - m.readBuf[j].Time)
			mask.Set(i, j, 1)
		}
	}
	proj := m.inProj.Forward(tensor.ConcatColsT(tensor.ConstScratch(kv), m.timeEnc.Forward(dts)))
	pre := m.mem.Gather(nodes)
	post := m.updater.Forward(tensor.Const(pre), proj, k, mask)
	return m.commit(nodes, pre, post, times)
}

// Embed is Identity: memories are the embeddings.
func (m *APAN) Embed(nodes []int32, ts []float64) *tensor.Tensor {
	return m.view.Gather(nodes)
}

// EmbedDim implements TGNN.
func (m *APAN) EmbedDim() int { return m.cfg.MemoryDim }

// EndBatch pushes each event into both endpoints' mailboxes (the message is
// the counterpart's current memory plus the edge feature) and records the
// adjacency.
func (m *APAN) EndBatch(events []graph.Event) {
	entry := make([]float32, m.mailbox.Dim)
	memDim := m.cfg.MemoryDim
	for _, e := range events {
		m.notePending(e)
		m.adj.AddEvent(e)
		for _, pair := range [2][2]int32{{e.Src, e.Dst}, {e.Dst, e.Src}} {
			node, other := pair[0], pair[1]
			copy(entry[:memDim], m.mem.Row(other))
			if m.ds.EdgeFeatDim > 0 {
				m.edgeFeatRow(entry[memDim:], e.FeatIdx)
			}
			m.mailbox.Push(node, entry, e.Time)
		}
	}
}

// Params implements nn.Module.
func (m *APAN) Params() []nn.Param {
	return nn.CollectParams(m.timeEnc, m.inProj, m.updater)
}

// MemoryBytes implements TGNN.
func (m *APAN) MemoryBytes() map[string]int64 {
	out := m.baseMemoryBytes(m)
	out["mailbox"] = m.mailbox.MemoryBytes()
	return out
}

// Snapshot implements TGNN, additionally capturing the mailbox.
func (m *APAN) Snapshot() *State {
	return m.snapshotBase(m.mailbox.Clone())
}

// Restore implements TGNN.
func (m *APAN) Restore(s *State) {
	m.restoreBase(s)
	if mb, ok := s.extra.(*memstore.Mailbox); ok {
		m.mailbox = mb.Clone()
	}
}
