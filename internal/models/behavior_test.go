package models

import (
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Behavioral tests pinning each model's signature mechanism from Table 1.

func TestJODIETimeDecayScalesEmbedding(t *testing.T) {
	// JODIE: h = (1 + Δt·w) ⊙ s. With w forced nonzero, the embedding of
	// the same node at two query times must differ by exactly the scalar
	// factor ratio.
	d := testDataset(t)
	m := NewJODIE(d, 8, 4, 3)
	m.decayW.Value.Data[0] = 0.001
	m.EndBatch(d.Events[:20])
	m.BeginBatch()
	node := []int32{d.Events[0].Src}
	last := m.mem.LastUpdate(node[0])
	e1 := m.Embed(node, []float64{last + 100})
	e2 := m.Embed(node, []float64{last + 1000})
	f1 := 1 + 0.001*100
	f2 := 1 + 0.001*1000
	for j := 0; j < 8; j++ {
		a, b := e1.Value.At(0, j), e2.Value.At(0, j)
		if a == 0 {
			continue
		}
		ratio := float64(b / a)
		want := f2 / f1
		if math.Abs(ratio-want) > 1e-3 {
			t.Fatalf("decay ratio %v, want %v (dim %d)", ratio, want, j)
		}
	}
}

func TestTGNMemoryUpdatedOnlyForTouchedNodes(t *testing.T) {
	d := testDataset(t)
	m := NewTGN(d, 8, 4, 3)
	m.EndBatch(d.Events[:10])
	upd := m.BeginBatch()
	touched := map[int32]bool{}
	for _, e := range d.Events[:10] {
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	if len(upd.Nodes) != len(touched) {
		t.Fatalf("updated %d nodes, %d touched", len(upd.Nodes), len(touched))
	}
	for _, n := range upd.Nodes {
		if !touched[n] {
			t.Fatalf("untouched node %d updated", n)
		}
	}
	// Untouched nodes keep zero memories.
	for n := int32(0); int(n) < d.NumNodes; n++ {
		if touched[n] {
			continue
		}
		for _, v := range m.mem.Row(n) {
			if v != 0 {
				t.Fatalf("untouched node %d memory moved", n)
			}
		}
	}
}

func TestAPANMailboxDrivesUpdates(t *testing.T) {
	// APAN's update attends over the mailbox: a node whose mailbox holds
	// different messages must update to a different memory.
	d := testDataset(t)
	m1 := NewAPAN(d, 8, 4, 3)
	m2 := NewAPAN(d, 8, 4, 3)
	// Same pending event for both, but m2's mailbox carries extra mail.
	ev := d.Events[0]
	m1.EndBatch(d.Events[:1])
	m2.EndBatch(d.Events[:1])
	extra := make([]float32, m2.mailbox.Dim)
	for i := range extra {
		extra[i] = 3
	}
	m2.mailbox.Push(ev.Src, extra, ev.Time)
	u1 := m1.BeginBatch()
	u2 := m2.BeginBatch()
	row1, row2 := findNodeRow(t, u1, ev.Src), findNodeRow(t, u2, ev.Src)
	same := true
	for j := 0; j < 8; j++ {
		if u1.Post.At(row1, j) != u2.Post.At(row2, j) {
			same = false
		}
	}
	if same {
		t.Fatal("mailbox contents did not influence APAN's update")
	}
}

func findNodeRow(t *testing.T, u *MemoryUpdate, node int32) int {
	t.Helper()
	for i, n := range u.Nodes {
		if n == node {
			return i
		}
	}
	t.Fatalf("node %d not in update", node)
	return -1
}

func TestTGATIdentityUpdateHasNoParamsInPath(t *testing.T) {
	// TGAT's memory update is Identity: the post memory must not require
	// grad (no learned transform touched it).
	d := testDataset(t)
	m := NewTGAT(d, 8, 4, 3)
	m.EndBatch(d.Events[:10])
	m.BeginBatch()
	if m.view.upd != nil && m.view.upd.RequiresGrad() {
		t.Fatal("TGAT identity update produced an on-tape gradient path")
	}
}

func TestDySATStructuralAttentionUsesNeighbors(t *testing.T) {
	// Zeroing a trained DySAT's neighbor memories must change the update
	// of a touched node (structural attention reads them).
	d := testDataset(t)
	m := NewDySAT(d, 8, 4, 3)
	// Warm up so neighbor memories are nonzero.
	m.EndBatch(d.Events[:60])
	m.BeginBatch()
	m.EndBatch(d.Events[60:80])
	snap := m.Snapshot()
	u1 := m.BeginBatch()
	m.Restore(snap)
	// Kill all memories except the pending nodes' own rows.
	pendingSet := map[int32]bool{}
	for _, n := range m.pendingNodes {
		pendingSet[n] = true
	}
	for n := int32(0); int(n) < d.NumNodes; n++ {
		if !pendingSet[n] {
			row := m.mem.Row(n)
			for j := range row {
				row[j] = 0
			}
		}
	}
	u2 := m.BeginBatch()
	if len(u1.Nodes) != len(u2.Nodes) {
		t.Fatalf("node sets differ: %d vs %d", len(u1.Nodes), len(u2.Nodes))
	}
	same := true
	for i := range u1.Post.Data {
		if u1.Post.Data[i] != u2.Post.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("zeroing neighbor memories did not change DySAT's update")
	}
}

func TestMemoryUpdateEmptyHelper(t *testing.T) {
	var u *MemoryUpdate
	if !u.Empty() {
		t.Fatal("nil update not empty")
	}
	if !(&MemoryUpdate{}).Empty() {
		t.Fatal("zero update not empty")
	}
	full := &MemoryUpdate{Nodes: []int32{1}, Pre: tensor.NewMatrix(1, 2), Post: tensor.NewMatrix(1, 2)}
	if full.Empty() {
		t.Fatal("populated update empty")
	}
}

func TestSnapshotRestoreRoundTripAllModels(t *testing.T) {
	d := testDataset(t)
	for _, name := range Names {
		m := MustNew(name, d, 8, 4, 3)
		m.EndBatch(d.Events[:30])
		m.BeginBatch()
		m.EndBatch(d.Events[30:50])
		snap := m.Snapshot()
		// Mutate heavily, then restore.
		m.BeginBatch()
		m.EndBatch(d.Events[50:90])
		m.BeginBatch()
		m.Restore(snap)
		// The pending set must be exactly the pre-snapshot one.
		upd := m.BeginBatch()
		touched := map[int32]bool{}
		for _, e := range d.Events[30:50] {
			touched[e.Src] = true
			touched[e.Dst] = true
		}
		if len(upd.Nodes) != len(touched) {
			t.Fatalf("%s: restored pending %d nodes, want %d", name, len(upd.Nodes), len(touched))
		}
		for _, n := range upd.Nodes {
			if !touched[n] {
				t.Fatalf("%s: restored pending has foreign node %d", name, n)
			}
		}
	}
}
