package models

import (
	"fmt"
	"sort"

	"github.com/cascade-ml/cascade/internal/graph"
)

// Defaults from the paper's configuration (Table 1: out size 100 for every
// module).
const (
	DefaultMemoryDim = 100
	DefaultTimeDim   = 16
)

// Names lists the five models in the paper's evaluation order.
var Names = []string{"JODIE", "TGN", "APAN", "DySAT", "TGAT"}

// New constructs a model by its paper name. memoryDim/timeDim ≤ 0 select the
// defaults.
func New(name string, ds *graph.Dataset, memoryDim, timeDim int, seed int64) (TGNN, error) {
	if memoryDim <= 0 {
		memoryDim = DefaultMemoryDim
	}
	if timeDim <= 0 {
		timeDim = DefaultTimeDim
	}
	switch name {
	case "JODIE":
		return NewJODIE(ds, memoryDim, timeDim, seed), nil
	case "TGN":
		return NewTGN(ds, memoryDim, timeDim, seed), nil
	case "APAN":
		return NewAPAN(ds, memoryDim, timeDim, seed), nil
	case "DySAT":
		return NewDySAT(ds, memoryDim, timeDim, seed), nil
	case "TGAT":
		return NewTGAT(ds, memoryDim, timeDim, seed), nil
	case "TGAT-2hop":
		return NewTGAT2Hop(ds, memoryDim, timeDim, 0, seed), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names)
	}
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(name string, ds *graph.Dataset, memoryDim, timeDim int, seed int64) TGNN {
	m, err := New(name, ds, memoryDim, timeDim, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Table1Row formats a model's configuration like the paper's Table 1.
func Table1Row(m TGNN) string {
	c := m.Config()
	return fmt.Sprintf("%-6s | %s (num=%d) | msg=%s | update=%s | embed=%s | out=%d",
		c.Name, c.Sampling, c.NumNeighbors, c.Message, c.Updater, c.Embedder, c.MemoryDim)
}

// EnableFullHistory switches a model's temporal-neighbor store from the
// bounded ring to the exact full-history store (see
// graph.FullAdjacencyStore). Returns false if the model does not expose the
// switch.
func EnableFullHistory(m TGNN) bool {
	fh, ok := m.(interface{ UseFullHistory() })
	if ok {
		fh.UseFullHistory()
	}
	return ok
}

// TotalMemoryBytes sums a model's MemoryBytes map.
func TotalMemoryBytes(m TGNN) int64 {
	var total int64
	for _, v := range m.MemoryBytes() {
		total += v
	}
	return total
}

// MemoryBreakdownKeys returns the model's space-accounting component names
// in stable order.
func MemoryBreakdownKeys(m TGNN) []string {
	mb := m.MemoryBytes()
	keys := make([]string, 0, len(mb))
	for k := range mb {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
