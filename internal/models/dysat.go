package models

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// DySAT (Sankar et al., WSDM'20) per Table 1: uniform(10) sampling, a GAT
// structural-attention module updating node state, and an RNN combining
// states across time steps. DySAT is a DTDG model; in this event-streaming
// substrate each training batch plays the role of a snapshot (the paper
// evaluates DTDG models under the same event batching, treating DTDGs as
// CTDGs with uniform intervals, §2.1). The structural attention consumes
// [state ‖ φ(Δt) ‖ edge features], the role node/edge snapshot features play
// in the original.
type DySAT struct {
	base
	timeEnc    *nn.TimeEncoder
	structural *nn.GATLayer // per-snapshot structural attention
	temporal   *nn.RNNCell  // cross-snapshot combiner
}

// NewDySAT builds a DySAT model over the dataset.
func NewDySAT(ds *graph.Dataset, memoryDim, timeDim int, seed int64) *DySAT {
	cfg := Config{
		Name: "DySAT", Sampling: SampleUniform, NumNeighbors: 10,
		Message: "Identity", Updater: "GAT", Embedder: "RNN",
		MemoryDim: memoryDim, TimeDim: timeDim,
	}
	mustMemDim(cfg)
	rng := rand.New(rand.NewSource(seed))
	in := memoryDim + timeDim + ds.EdgeFeatDim
	return &DySAT{
		base:       newBase(cfg, ds, seed+1),
		timeEnc:    nn.NewTimeEncoder(rng, timeDim),
		structural: nn.NewGATLayer(rng, in, memoryDim),
		temporal:   nn.NewRNNCell(rng, memoryDim, memoryDim),
	}
}

// Name implements TGNN.
func (m *DySAT) Name() string { return "DySAT" }

// SetCompile implements Compilable: fused time encoder, structural GAT, and
// temporal RNN (whose fused step handles the x==h aliasing of Embed).
func (m *DySAT) SetCompile(on bool) {
	m.timeEnc.SetFused(on)
	m.structural.SetFused(on)
	m.temporal.SetFused(on)
}

// Reset implements TGNN.
func (m *DySAT) Reset() { m.resetBase() }

// BeginBatch recomputes each touched node's state with structural attention
// over its (uniformly sampled) neighborhood:
// mem' = GAT([mem ‖ φ(Δt) ‖ e], neighbors' inputs).
func (m *DySAT) BeginBatch() *MemoryUpdate {
	return m.applyPending(m.takePending())
}

// BeginBatchWhere applies only the pending messages whose node satisfies
// need (bounded-staleness partial apply); the rest stay queued.
func (m *DySAT) BeginBatchWhere(need func(int32) bool) *MemoryUpdate {
	return m.applyPending(m.takePendingWhere(need))
}

func (m *DySAT) applyPending(nodes []int32, msgs []pendingMsg) *MemoryUpdate {
	if len(nodes) == 0 {
		return &MemoryUpdate{}
	}
	k := m.cfg.NumNeighbors
	featDim := m.ds.EdgeFeatDim
	times := make([]float64, len(nodes))
	selfDts := make([]float32, len(nodes))
	selfFeats := tensor.NewMatrix(len(nodes), max(featDim, 1))
	for i, n := range nodes {
		p := msgs[i]
		times[i] = p.time
		selfDts[i] = float32(p.time - m.mem.LastUpdate(n))
		if featDim > 0 {
			m.edgeFeatRow(selfFeats.Row(i), p.featIdx)
		}
	}
	recs, mask := m.sampleNeighbors(nodes, k)
	neighNodes, neighDts := neighborNodesTimes(recs, times, k)
	neighFeats := tensor.NewMatrix(len(recs), max(featDim, 1))
	if featDim > 0 {
		for i, r := range recs {
			m.edgeFeatRow(neighFeats.Row(i), r.FeatIdx)
		}
	}

	pre := m.mem.Gather(nodes)
	selfParts := []*tensor.Tensor{tensor.Const(pre), m.timeEnc.Forward(selfDts)}
	neighParts := []*tensor.Tensor{tensor.ConstScratch(m.mem.Gather(neighNodes)), m.timeEnc.Forward(neighDts)}
	if featDim > 0 {
		selfParts = append(selfParts, tensor.ConstScratch(selfFeats))
		neighParts = append(neighParts, tensor.ConstScratch(neighFeats))
	}
	post := m.structural.Forward(tensor.ConcatColsT(selfParts...), tensor.ConcatColsT(neighParts...), k, mask)
	return m.commit(nodes, pre, post, times)
}

// Embed combines the structural state across time with the temporal RNN:
// h = RNN(x = mem, h = mem), the cross-snapshot recurrence applied to the
// node's current state.
func (m *DySAT) Embed(nodes []int32, ts []float64) *tensor.Tensor {
	mem := m.view.Gather(nodes)
	return m.temporal.Forward(mem, mem)
}

// EmbedDim implements TGNN.
func (m *DySAT) EmbedDim() int { return m.cfg.MemoryDim }

// EndBatch implements TGNN.
func (m *DySAT) EndBatch(events []graph.Event) {
	for _, e := range events {
		m.notePending(e)
		m.adj.AddEvent(e)
	}
}

// Params implements nn.Module.
func (m *DySAT) Params() []nn.Param {
	return nn.CollectParams(m.timeEnc, m.structural, m.temporal)
}

// MemoryBytes implements TGNN.
func (m *DySAT) MemoryBytes() map[string]int64 { return m.baseMemoryBytes(m) }
