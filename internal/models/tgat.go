package models

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// TGAT (Xu et al., ICLR'20) per Table 1: uniform(10) sampling, Identity
// memory update (the "memory" is just the most recent raw interaction
// features — TGAT carries no learned recurrent state), and a 2-layer GAT
// node embedder with positional (Bochner) time encoding. The two attention
// layers are stacked over the sampled 1-hop temporal neighborhood; true
// 2-hop expansion costs K² neighbor embeds per node and changes none of the
// scheduler-facing behaviour this reproduction studies, so the second layer
// re-attends over first-layer-projected neighbor features (documented
// substitution, DESIGN.md §1).
type TGAT struct {
	base
	timeEnc   *nn.TimeEncoder
	gat1      *nn.GATLayer
	neighProj *nn.Linear // first-layer projection for second-layer keys
	gat2      *nn.GATLayer
	// twoHop switches Embed to a true two-hop expansion: each sampled
	// neighbor is itself embedded by the first layer over its own hopK2
	// sampled neighbors before the second layer attends over the results.
	// Costs K·K2 extra rows per target; constructed by NewTGAT2Hop.
	twoHop bool
	hopK2  int
}

// NewTGAT builds a TGAT model over the dataset.
func NewTGAT(ds *graph.Dataset, memoryDim, timeDim int, seed int64) *TGAT {
	cfg := Config{
		Name: "TGAT", Sampling: SampleUniform, NumNeighbors: 10,
		Message: "Identity", Updater: "Identity", Embedder: "2-layer GAT",
		MemoryDim: memoryDim, TimeDim: timeDim,
	}
	mustMemDim(cfg)
	rng := rand.New(rand.NewSource(seed))
	in := memoryDim + timeDim
	return &TGAT{
		base:      newBase(cfg, ds, seed+1),
		timeEnc:   nn.NewTimeEncoder(rng, timeDim),
		gat1:      nn.NewGATLayer(rng, in, memoryDim),
		neighProj: nn.NewLinear(rng, in, memoryDim),
		gat2:      nn.NewGATLayer(rng, memoryDim, memoryDim),
	}
}

// NewTGAT2Hop builds the true two-hop variant (the original TGAT's
// recursive temporal attention): the second attention layer consumes
// first-layer embeddings of the sampled neighbors, each computed over the
// neighbor's own k2-sampled neighborhood.
func NewTGAT2Hop(ds *graph.Dataset, memoryDim, timeDim, k2 int, seed int64) *TGAT {
	m := NewTGAT(ds, memoryDim, timeDim, seed)
	if k2 <= 0 {
		k2 = 3
	}
	m.cfg.Name = "TGAT-2hop"
	m.cfg.Embedder = "2-hop GAT"
	m.twoHop = true
	m.hopK2 = k2
	return m
}

// Name implements TGNN.
func (m *TGAT) Name() string { return m.cfg.Name }

// SetCompile implements Compilable: fused time encoder, both GAT layers, and
// the inter-layer neighbor projection.
func (m *TGAT) SetCompile(on bool) {
	m.timeEnc.SetFused(on)
	m.gat1.SetFused(on)
	m.neighProj.SetFused(on)
	m.gat2.SetFused(on)
}

// Reset implements TGNN.
func (m *TGAT) Reset() { m.resetBase() }

// BeginBatch performs the Identity update: the node's memory becomes the
// raw interaction features of its latest event (edge feature projected into
// the memory width with no learned transform). No parameters participate,
// but the pre/post record still drives the SG-Filter.
func (m *TGAT) BeginBatch() *MemoryUpdate {
	return m.applyPending(m.takePending())
}

// BeginBatchWhere applies only the pending messages whose node satisfies
// need (bounded-staleness partial apply); the rest stay queued.
func (m *TGAT) BeginBatchWhere(need func(int32) bool) *MemoryUpdate {
	return m.applyPending(m.takePendingWhere(need))
}

func (m *TGAT) applyPending(nodes []int32, msgs []pendingMsg) *MemoryUpdate {
	if len(nodes) == 0 {
		return &MemoryUpdate{}
	}
	pre := m.mem.Gather(nodes)
	postM := tensor.NewMatrix(len(nodes), m.cfg.MemoryDim)
	times := make([]float64, len(nodes))
	featDim := m.ds.EdgeFeatDim
	featBuf := make([]float32, max(featDim, 1))
	for i := range nodes {
		p := msgs[i]
		times[i] = p.time
		row := postM.Row(i)
		if featDim > 0 {
			m.edgeFeatRow(featBuf, p.featIdx)
			copy(row, featBuf) // truncates or leaves zero padding
		}
		// Identity update keeps a trace of history: blend the previous
		// state in so memory is the running raw-feature signal rather than
		// a pure overwrite (TGAT's feature cache behaves the same way).
		prev := pre.Row(i)
		for j := range row {
			row[j] = 0.7*row[j] + 0.3*prev[j]
		}
	}
	post := tensor.ConstScratch(postM)
	return m.commit(nodes, pre, post, times)
}

// Embed runs the two stacked attention layers with time encodings; the
// two-hop variant recursively embeds the sampled neighbors first.
func (m *TGAT) Embed(nodes []int32, ts []float64) *tensor.Tensor {
	k := m.cfg.NumNeighbors
	recs, mask := m.sampleNeighbors(nodes, k)
	neighNodes, dts := neighborNodesTimes(recs, ts, k)

	selfMem := m.view.Gather(nodes)
	zeroDts := make([]float32, len(nodes))
	selfIn := tensor.ConcatColsT(selfMem, m.timeEnc.Forward(zeroDts))

	neighMem := m.view.Gather(neighNodes)
	neighIn := tensor.ConcatColsT(neighMem, m.timeEnc.Forward(dts))

	h1 := m.gat1.Forward(selfIn, neighIn, k, mask)
	if !m.twoHop {
		return m.gat2.Forward(h1, m.neighProj.Forward(neighIn), k, mask)
	}

	// True two-hop: layer-1 embeddings of the B·K neighbors over their own
	// k2-sampled neighborhoods (timestamps relative to the neighbor's own
	// interaction time).
	neighTs := make([]float64, len(recs))
	for i, r := range recs {
		neighTs[i] = r.Time
	}
	recs2, mask2 := m.sampleNeighbors(neighNodes, m.hopK2)
	hop2Nodes, hop2Dts := neighborNodesTimes(recs2, neighTs, m.hopK2)
	hop2In := tensor.ConcatColsT(m.view.Gather(hop2Nodes), m.timeEnc.Forward(hop2Dts))
	h1Neigh := m.gat1.Forward(neighIn, hop2In, m.hopK2, mask2)
	return m.gat2.Forward(h1, h1Neigh, k, mask)
}

// EmbedDim implements TGNN.
func (m *TGAT) EmbedDim() int { return m.cfg.MemoryDim }

// EndBatch implements TGNN.
func (m *TGAT) EndBatch(events []graph.Event) {
	for _, e := range events {
		m.notePending(e)
		m.adj.AddEvent(e)
	}
}

// Params implements nn.Module.
func (m *TGAT) Params() []nn.Param {
	return nn.CollectParams(m.timeEnc, m.gat1, m.neighProj, m.gat2)
}

// MemoryBytes implements TGNN.
func (m *TGAT) MemoryBytes() map[string]int64 { return m.baseMemoryBytes(m) }
