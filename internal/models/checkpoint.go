package models

import (
	"fmt"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/memstore"
)

// PendingMsgRecord is one queued Eq. 2 message in serializable form,
// preserving the insertion order takePending relies on.
type PendingMsgRecord struct {
	Node, Other int32
	Time        float64
	FeatIdx     int32
}

// StreamCheckpoint is the serializable deep copy of a model's stream state —
// everything TGNN.Snapshot captures (node memories, temporal adjacency,
// pending messages, sampling RNG, APAN's mailbox), but in exported structs a
// gob encoder can write to disk. Weights are deliberately excluded: they are
// serialized by nn.SaveParams and travel in a separate checkpoint section.
type StreamCheckpoint struct {
	Model   string
	Memory  *memstore.MemoryCheckpoint
	Adj     *graph.AdjacencyCheckpoint
	Pending []PendingMsgRecord
	RNG     uint64
	Mailbox *memstore.MailboxCheckpoint // APAN only; nil otherwise
}

// streamBase exposes the embedded base to the checkpoint helpers through the
// TGNN interface without widening the public contract.
func (b *base) streamBase() *base { return b }

type baseAccessor interface{ streamBase() *base }

// mailboxStore gives the checkpoint helpers the mailbox (the field name is
// taken, hence the accessor).
func (m *APAN) mailboxStore() *memstore.Mailbox { return m.mailbox }

type mailboxAccessor interface{ mailboxStore() *memstore.Mailbox }

// CheckpointStream captures m's stream state for a full-state training
// checkpoint.
func CheckpointStream(m TGNN) (*StreamCheckpoint, error) {
	ba, ok := m.(baseAccessor)
	if !ok {
		return nil, fmt.Errorf("models: %s does not expose stream state for checkpointing", m.Name())
	}
	b := ba.streamBase()
	c := &StreamCheckpoint{
		Model:   m.Name(),
		Memory:  b.mem.Checkpoint(),
		Adj:     b.adj.Checkpoint(),
		Pending: make([]PendingMsgRecord, 0, len(b.pendingNodes)),
		RNG:     b.src.state,
	}
	for _, n := range b.pendingNodes {
		p := b.pending[n]
		c.Pending = append(c.Pending, PendingMsgRecord{Node: n, Other: p.other, Time: p.time, FeatIdx: p.featIdx})
	}
	if ma, ok := m.(mailboxAccessor); ok {
		c.Mailbox = ma.mailboxStore().Checkpoint()
	}
	return c, nil
}

// RestoreStream reinstates a CheckpointStream snapshot into m, which must be
// the same architecture over the same dataset the checkpoint was taken from.
func RestoreStream(m TGNN, c *StreamCheckpoint) error {
	if c == nil {
		return fmt.Errorf("models: nil stream checkpoint")
	}
	if c.Model != m.Name() {
		return fmt.Errorf("models: stream checkpoint is for %s, model is %s", c.Model, m.Name())
	}
	ba, ok := m.(baseAccessor)
	if !ok {
		return fmt.Errorf("models: %s does not expose stream state for checkpointing", m.Name())
	}
	b := ba.streamBase()
	if err := b.mem.RestoreCheckpoint(c.Memory); err != nil {
		return err
	}
	adj, err := graph.RestoreAdjacency(c.Adj)
	if err != nil {
		return err
	}
	b.adj = adj
	b.pendingNodes = b.pendingNodes[:0]
	clear(b.pending)
	for _, p := range c.Pending {
		b.pendingNodes = append(b.pendingNodes, p.Node)
		b.pending[p.Node] = pendingMsg{other: p.Other, time: p.Time, featIdx: p.FeatIdx}
	}
	b.src.state = c.RNG
	// Any on-tape view is stale relative to the restored store.
	b.view = memView{store: b.mem}
	ma, hasMailbox := m.(mailboxAccessor)
	switch {
	case hasMailbox && c.Mailbox != nil:
		if err := ma.mailboxStore().RestoreCheckpoint(c.Mailbox); err != nil {
			return err
		}
	case hasMailbox != (c.Mailbox != nil):
		return fmt.Errorf("models: mailbox presence mismatch restoring %s checkpoint", c.Model)
	}
	return nil
}
