package models

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// TGN (Rossi et al., 2020) per Table 1: most_recent(1) message aggregation,
// identity message function, a GRU memory updater (Eq. 3) and a GAT node
// embedder (Eq. 4) over sampled temporal neighbors.
type TGN struct {
	base
	timeEnc *nn.TimeEncoder
	updater *nn.GRUCell
	embed   *nn.GATLayer
	// embedNeighbors is the GAT fan-in; Table 1's num=1 governs message
	// aggregation (most recent message), while the GAT samples a small
	// neighborhood as in the TGL reference configuration.
	embedNeighbors int
}

// NewTGN builds a TGN model over the dataset.
func NewTGN(ds *graph.Dataset, memoryDim, timeDim int, seed int64) *TGN {
	cfg := Config{
		Name: "TGN", Sampling: SampleMostRecent, NumNeighbors: 1,
		Message: "Identity", Updater: "GRU", Embedder: "GAT",
		MemoryDim: memoryDim, TimeDim: timeDim,
	}
	mustMemDim(cfg)
	rng := rand.New(rand.NewSource(seed))
	msgIn := memoryDim + timeDim + ds.EdgeFeatDim
	m := &TGN{
		base:           newBase(cfg, ds, seed+1),
		timeEnc:        nn.NewTimeEncoder(rng, timeDim),
		updater:        nn.NewGRUCell(rng, msgIn, memoryDim),
		embed:          nn.NewGATLayer(rng, memoryDim, memoryDim),
		embedNeighbors: 10,
	}
	return m
}

// Name implements TGNN.
func (m *TGN) Name() string { return "TGN" }

// SetCompile implements Compilable: fused time encoder, GRU updater, and GAT
// embedder.
func (m *TGN) SetCompile(on bool) {
	m.timeEnc.SetFused(on)
	m.updater.SetFused(on)
	m.embed.SetFused(on)
}

// Reset implements TGNN.
func (m *TGN) Reset() { m.resetBase() }

// BeginBatch applies pending messages: mem' = GRU([s_other ‖ φ(Δt) ‖ e], mem).
func (m *TGN) BeginBatch() *MemoryUpdate {
	return m.applyPending(m.takePending())
}

// BeginBatchWhere applies only the pending messages whose node satisfies
// need (bounded-staleness partial apply); the rest stay queued.
func (m *TGN) BeginBatchWhere(need func(int32) bool) *MemoryUpdate {
	return m.applyPending(m.takePendingWhere(need))
}

func (m *TGN) applyPending(nodes []int32, msgs []pendingMsg) *MemoryUpdate {
	if len(nodes) == 0 {
		return &MemoryUpdate{}
	}
	others := make([]int32, len(nodes))
	dts := make([]float32, len(nodes))
	times := make([]float64, len(nodes))
	featDim := m.ds.EdgeFeatDim
	feats := tensor.NewMatrix(len(nodes), max(featDim, 1))
	for i, n := range nodes {
		p := msgs[i]
		others[i] = p.other
		dts[i] = float32(p.time - m.mem.LastUpdate(n))
		times[i] = p.time
		if featDim > 0 {
			m.edgeFeatRow(feats.Row(i), p.featIdx)
		}
	}
	parts := []*tensor.Tensor{
		tensor.ConstScratch(m.mem.Gather(others)),
		m.timeEnc.Forward(dts),
	}
	if featDim > 0 {
		parts = append(parts, tensor.ConstScratch(feats))
	}
	x := tensor.ConcatColsT(parts...)
	pre := m.mem.Gather(nodes)
	post := m.updater.Forward(x, tensor.Const(pre))
	return m.commit(nodes, pre, post, times)
}

// Embed runs the GAT over each node's sampled temporal neighborhood.
func (m *TGN) Embed(nodes []int32, ts []float64) *tensor.Tensor {
	k := m.embedNeighbors
	recs, mask := m.sampleNeighbors(nodes, k)
	neighNodes, _ := neighborNodesTimes(recs, ts, k)
	self := m.view.Gather(nodes)
	neigh := m.view.Gather(neighNodes)
	return m.embed.Forward(self, neigh, k, mask)
}

// EmbedDim implements TGNN.
func (m *TGN) EmbedDim() int { return m.cfg.MemoryDim }

// EndBatch implements TGNN.
func (m *TGN) EndBatch(events []graph.Event) {
	for _, e := range events {
		m.notePending(e)
		m.adj.AddEvent(e)
	}
}

// Params implements nn.Module.
func (m *TGN) Params() []nn.Param {
	return nn.CollectParams(m.timeEnc, m.updater, m.embed)
}

// MemoryBytes implements TGNN.
func (m *TGN) MemoryBytes() map[string]int64 { return m.baseMemoryBytes(m) }
