package experiments

import (
	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/stats"
)

// Beyond the paper's figures, two ablation sweeps probe the design choices
// DESIGN.md calls out: the chunk size of Cascade_EX's divide-and-conquer
// preprocessing (§4.2 fixes one million events without a sweep) and the
// Maximum Revisit Endurance the ABS controls (§4.4 fixes 2·mrMean without a
// sweep).

// AblationChunkSize sweeps Cascade_EX's chunk size on a GDELT-profile
// stream, reporting preprocessing latency, achieved batch size and end
// metric. Small chunks build fast but fence batches at their boundaries;
// huge chunks converge to plain Cascade's monolithic build.
func (r *Runner) AblationChunkSize() error {
	r.printf("Ablation A: Cascade_EX chunk-size sweep (GDELT profile)\n")
	ds := r.dataset("GDELT")
	base := r.baseFor("GDELT")
	r.printf("  %8s | %12s %12s %10s\n", "chunk", "preproc ms", "mean batch", "val loss")
	for _, mult := range []int{2, 8, 32, 128} {
		chunk := base * mult
		if chunk > ds.NumEvents() {
			chunk = ds.NumEvents()
		}
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset: ds, Model: "TGN", Scheduler: cascade.SchedCascadeEX,
			BaseBatch: base, ChunkSize: chunk, Epochs: r.Set.Epochs,
			MemoryDim: r.Set.MemoryDim, TimeDim: r.Set.TimeDim,
			Workers: r.Set.Workers, Seed: r.Set.Seed,
		})
		if err != nil {
			return err
		}
		res, err := run.Execute()
		if err != nil {
			return err
		}
		r.printf("  %8d | %12.1f %12.0f %10.4f\n",
			chunk, res.PreprocessTime.Seconds()*1000, res.MeanBatchSize, res.FinalValLoss)
	}
	return nil
}

// AblationMaxr pins Maxr at fixed multiples of the profiled mean endurance
// (bypassing the ABS) and reports the latency/accuracy frontier — the
// justification for the 2·mrMean seed.
func (r *Runner) AblationMaxr() error {
	r.printf("Ablation B: fixed Maxr sweep vs the ABS policy (WIKI, TGN)\n")
	ds := r.dataset("WIKI")
	base := r.baseFor("WIKI")
	tgl := r.run("TGN", "WIKI", cascade.SchedTGL, 0, 0)
	abs := r.run("TGN", "WIKI", cascade.SchedCascade, 0, 0)

	table := core.BuildDependencyTable(ds.Events, ds.NumNodes, r.Set.Workers)
	prof := core.ProfileMaxEndurance(table, ds.Events, base, 50, r.Set.Seed)
	r.printf("  profiled endurance: max %.0f mean %.0f min %.0f\n", prof.MrMax, prof.MrMean, prof.MrMin)
	r.printf("  %10s | %10s %12s %10s\n", "Maxr", "speedup", "mean batch", "norm loss")
	for _, mult := range []float64{0.5, 1, 2, 4} {
		maxr := int(prof.MrMean * mult)
		if maxr < 1 {
			maxr = 1
		}
		out := r.runFixedMaxr(ds, base, maxr)
		r.printf("  %4.1f·mean | %9.2fx %12.0f %9.1f%%\n",
			mult, stats.Speedup(tgl.DeviceSec, out.DeviceSec), out.MeanBatch,
			100*safeDiv(out.ValLoss, tgl.ValLoss))
	}
	r.printf("  ABS policy | %9.2fx %12.0f %9.1f%%  (2·mean seed + decay)\n",
		stats.Speedup(tgl.DeviceSec, abs.DeviceSec), abs.MeanBatch,
		100*safeDiv(abs.ValLoss, tgl.ValLoss))
	return nil
}

// runFixedMaxr trains TGN under a Cascade scheduler whose endurance is
// pinned via core.Scheduler.PinMaxr (the ABS is bypassed).
func (r *Runner) runFixedMaxr(ds *graph.Dataset, base, maxr int) runOut {
	run, err := cascade.NewRun(cascade.RunConfig{
		Dataset: ds, Model: "TGN", Scheduler: cascade.SchedCascade,
		BaseBatch: base, Epochs: r.Set.Epochs,
		MemoryDim: r.Set.MemoryDim, TimeDim: r.Set.TimeDim,
		Workers: r.Set.Workers, Seed: r.Set.Seed,
	})
	if err != nil {
		panic(err)
	}
	sched := run.CascadeScheduler()
	sched.PinMaxr(maxr)
	var deviceSec float64
	var lastBatch float64
	for e := 0; e < r.Set.Epochs; e++ {
		st := run.Trainer().TrainEpoch()
		deviceSec += st.DeviceTime.Seconds()
		lastBatch = st.MeanBatchSize
	}
	return runOut{
		DeviceSec: deviceSec + sched.BuildTime().Seconds() + sched.LookupTime().Seconds(),
		ValLoss:   run.Trainer().Validate(),
		MeanBatch: lastBatch,
	}
}

// Convergence plots the time-to-accuracy story behind the whole paper:
// training loss against cumulative simulated device time for TGL vs
// Cascade on the same model and dataset. Cascade's curve must reach any
// given loss level earlier.
func (r *Runner) Convergence() error {
	r.printf("Convergence: training loss vs cumulative device time (WIKI, TGN)\n")
	ds := r.dataset("WIKI")
	base := r.baseFor("WIKI")
	epochs := r.Set.Epochs
	if epochs < 4 {
		epochs = 4
	}
	r.printf("  %-9s |", "scheduler")
	for e := 1; e <= epochs; e++ {
		r.printf("   epoch%-2d       ", e)
	}
	r.printf("\n")
	for _, kind := range []cascade.SchedulerKind{cascade.SchedTGL, cascade.SchedCascade} {
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset: ds, Model: "TGN", Scheduler: kind,
			BaseBatch: base, Epochs: epochs,
			MemoryDim: r.Set.MemoryDim, TimeDim: r.Set.TimeDim,
			Workers: r.Set.Workers, Seed: r.Set.Seed,
		})
		if err != nil {
			return err
		}
		r.printf("  %-9s |", kind)
		cum := 0.0
		for e := 0; e < epochs; e++ {
			st := run.Trainer().TrainEpoch()
			cum += st.DeviceTime.Seconds()
			r.printf(" %6.0fms %.4f |", cum*1000, st.Loss)
		}
		r.printf("\n")
	}
	r.printf("  (Cascade reaches each loss level at a fraction of the device time.)\n")
	return nil
}
