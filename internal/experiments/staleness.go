package experiments

import (
	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/stats"
)

// Staleness sweeps the bounded-staleness budget s ∈ {0, 1, 2, 4} on the
// TGL-style fixed schedule (WIKI, TGN) and reports the accuracy-vs-
// throughput frontier: wall-clock speedup over the exact pipeline against
// normalized validation loss, plus the ledger's stale-served/applied
// accounting. The Cascade (ABS) row anchors the comparison — Cascade buys
// its speedup by reordering independent events so every read stays exact,
// while the staleness pipeline buys throughput by serving bounded-stale
// memories on the unmodified order. s=0 is the exactness baseline and must
// serve zero stale reads (TestStalenessZeroMatchesSerial pins it bitwise).
func (r *Runner) Staleness() error {
	r.printf("Staleness: bounded-staleness sweep vs exact pipelines (WIKI, TGN)\n")
	ds := r.dataset("WIKI")
	base := r.baseFor("WIKI")
	r.printf("  %-12s | %10s %8s %10s %10s | %9s %9s %5s\n",
		"pipeline", "wall ms", "speedup", "train loss", "norm vloss", "served", "rounds", "max")

	var exactWall, exactVal float64
	for _, s := range []int{0, 1, 2, 4} {
		run, err := cascade.NewRun(cascade.RunConfig{
			Dataset: ds, Model: "TGN", Scheduler: cascade.SchedTGL,
			BaseBatch: base, Epochs: r.Set.Epochs, Staleness: s,
			MemoryDim: r.Set.MemoryDim, TimeDim: r.Set.TimeDim,
			Workers: r.Set.Workers, Seed: r.Set.Seed,
		})
		if err != nil {
			return err
		}
		res, err := run.Execute()
		if err != nil {
			return err
		}
		var served, rounds int64
		maxSt := 0
		for _, ep := range res.Epochs {
			served += ep.StaleServed
			rounds += ep.StaleAppliedRounds
			if ep.StaleMax > maxSt {
				maxSt = ep.StaleMax
			}
		}
		wall := res.WallTime.Seconds()
		if s == 0 {
			exactWall, exactVal = wall, res.FinalValLoss
		}
		r.printf("  TGL s=%-5d | %10.1f %7.2fx %10.4f %9.1f%% | %9d %9d %5d\n",
			s, wall*1000, stats.Speedup(exactWall, wall), res.FinalTrainLoss,
			100*safeDiv(res.FinalValLoss, exactVal), served, rounds, maxSt)
	}

	abs := r.run("TGN", "WIKI", cascade.SchedCascade, 0, 0)
	r.printf("  Cascade ABS  | %10.1f %7.2fx %10.4f %9.1f%% | %9s %9s %5s  (exact reads, reordered)\n",
		abs.WallSec*1000, stats.Speedup(exactWall, abs.WallSec), abs.TrainLoss,
		100*safeDiv(abs.ValLoss, exactVal), "-", "-", "-")
	return nil
}
