package experiments

import (
	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/stats"
)

// fig14Models follows §5.5: JODIE, TGN and DySAT run on both large graphs;
// APAN OOMs on MAG in the paper (its per-node ten-message mailbox), which
// this harness reports rather than silently skipping.
var fig14Models = []string{"JODIE", "TGN", "DySAT", "APAN"}

// Fig14 regenerates Figure 14: scalability on the billion-edge GDELT/MAG
// profiles (scaled) — (a) speedups of Cascade and chunk-pipelined
// Cascade_EX over TGL, (b) normalized validation losses, (c) the
// preprocessing-dominated latency breakdown that motivates Cascade_EX.
func (r *Runner) Fig14() error {
	r.printf("Fig 14: large-scale graphs (GDELT/MAG profiles)\n")
	r.printf("  (a) speedup over TGL and (b) normalized val loss\n")
	r.printf("  %-7s %-6s | %9s %11s | %9s %11s\n",
		"dataset", "model", "Cascade", "Cascade_EX", "loss", "loss_EX")
	var spC, spEX []float64
	for _, dsName := range []string{"GDELT", "MAG"} {
		for _, model := range fig14Models {
			if model == "APAN" && dsName == "MAG" {
				r.printf("  %-7s %-6s | %9s %11s | %9s %11s\n", dsName, model, "OOM", "OOM", "OOM", "OOM")
				continue
			}
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			ex := r.run(model, dsName, cascade.SchedCascadeEX, 0, 0)
			s1 := stats.Speedup(tgl.DeviceSec, c.DeviceSec)
			s2 := stats.Speedup(tgl.DeviceSec, ex.DeviceSec)
			spC = append(spC, s1)
			spEX = append(spEX, s2)
			r.printf("  %-7s %-6s | %8.2fx %10.2fx | %8.1f%% %10.1f%%\n",
				dsName, model, s1, s2,
				100*safeDiv(c.ValLoss, tgl.ValLoss), 100*safeDiv(ex.ValLoss, tgl.ValLoss))
		}
	}
	r.printf("  geomean speedup: Cascade %.2fx, Cascade_EX %.2fx (paper GDELT: 1.7x→2.0x, MAG: 1.3x→1.7x)\n",
		stats.GeoMean(spC), stats.GeoMean(spEX))

	r.printf("  (c) latency breakdown (build table / lookup+update / training)\n")
	for _, dsName := range []string{"GDELT", "MAG"} {
		for _, kind := range []cascade.SchedulerKind{cascade.SchedCascade, cascade.SchedCascadeEX} {
			c := r.run("TGN", dsName, kind, 0, 0)
			total := c.DeviceSec
			if total == 0 {
				total = 1
			}
			train := total - c.PreprocSec - c.LookupSec
			r.printf("  %-7s %-11s | build %6.2f%%  lookup %6.2f%%  training %6.2f%%\n",
				dsName, kind, 100*c.PreprocSec/total, 100*c.LookupSec/total, 100*train/total)
		}
	}
	return nil
}
