package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinySettings keep every driver fast enough for `go test`.
func tinySettings() Settings {
	return Settings{
		EventTarget:      600,
		LargeEventTarget: 900,
		BaseBatch:        40,
		Epochs:           1,
		MemoryDim:        8,
		TimeDim:          4,
		FeatDim:          4,
		Seed:             1,
		Workers:          2,
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	var buf bytes.Buffer
	r := New(tinySettings(), &buf)
	for _, id := range IDs {
		before := buf.Len()
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() <= before {
			t.Fatalf("%s produced no output", id)
		}
	}
	out := buf.String()
	for _, marker := range []string{
		"Table 1", "Table 2", "Fig 2", "Fig 3", "Fig 5", "Fig 10", "Fig 11",
		"Fig 12a", "Fig 12b", "Fig 12c", "Fig 12d", "Fig 13a", "Fig 13b",
		"Fig 13c", "Fig 14", "Fig 15", "Fig 16", "Ablation A", "Ablation B",
	} {
		if !strings.Contains(out, marker) {
			t.Fatalf("output missing %q", marker)
		}
	}
	// The OOM marker for APAN on MAG must appear (§5.5).
	if !strings.Contains(out, "OOM") {
		t.Fatal("Fig 14 missing the APAN/MAG OOM report")
	}
}

func TestUnknownIDRejected(t *testing.T) {
	var buf bytes.Buffer
	r := New(tinySettings(), &buf)
	if err := r.Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunMemoization(t *testing.T) {
	var buf bytes.Buffer
	r := New(tinySettings(), &buf)
	a := r.run("JODIE", "WIKI", "TGL", 0, 0)
	n := len(r.runs)
	b := r.run("JODIE", "WIKI", "TGL", 0, 0)
	if len(r.runs) != n {
		t.Fatal("second identical run not memoized")
	}
	if a != b {
		t.Fatal("memoized result differs")
	}
}

func TestDatasetScaling(t *testing.T) {
	var buf bytes.Buffer
	r := New(tinySettings(), &buf)
	d := r.dataset("WIKI")
	if d.NumEvents() < 600 || d.NumEvents() > 1500 {
		t.Fatalf("scaled WIKI has %d events, want ≈600", d.NumEvents())
	}
	if r.dataset("WIKI") != d {
		t.Fatal("dataset not memoized")
	}
}
