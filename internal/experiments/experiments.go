// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3 motivation + §5). Each driver regenerates the
// figure's rows/series — workload, parameter sweep, baselines and all —
// at a configurable scale, printing the same quantities the paper plots
// (normalized latency, normalized validation loss, speedups, breakdowns).
//
// Because the substrate is a simulator rather than the authors' A100
// testbed, absolute numbers differ; EXPERIMENTS.md records paper-reported
// vs measured values and verifies the qualitative shape.
package experiments

import (
	"fmt"
	"io"

	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
)

// Settings size the experiment suite. Defaults keep every driver in the
// seconds-to-minutes range on a laptop; raise EventTarget/Epochs to approach
// paper-scale behaviour.
type Settings struct {
	// EventTarget is the approximate event count every moderate dataset is
	// scaled to (profiles keep their node/event ratios).
	EventTarget int
	// LargeEventTarget sizes the GDELT/MAG profiles (Fig. 14).
	LargeEventTarget int
	// BaseBatch, when > 0, forces one base batch size everywhere. When 0
	// (the default) each dataset gets the proportional analog of the
	// paper's 900 — round(900 × scale), floored at MinBase — so per-batch
	// node-degree profiles match the paper's (Fig. 3).
	BaseBatch int
	// MinBase floors the proportional base batch (default 10).
	MinBase int
	// Epochs per training run.
	Epochs int
	// MemoryDim / TimeDim for every model (paper: 100; smaller defaults
	// keep the pure-Go grid tractable).
	MemoryDim, TimeDim int
	// FeatDim overrides dataset edge-feature width (0 keeps profile
	// widths, which dominate runtime at small scales).
	FeatDim int
	// Staleness is the bounded-staleness budget every training run is
	// executed under (0, the default, keeps every pipeline exact; the
	// dedicated "staleness" experiment sweeps its own budgets regardless).
	Staleness int
	// DisableCompile turns off plan capture/replay for every training run
	// (compiled execution is the default and is bitwise-identical to eager).
	DisableCompile bool
	// Seed drives everything.
	Seed int64
	// Workers bounds CPU parallelism (≤0: all cores).
	Workers int
}

// DefaultSettings returns the standard harness configuration.
func DefaultSettings() Settings {
	return Settings{
		EventTarget:      2500,
		LargeEventTarget: 8000,
		BaseBatch:        0, // proportional per dataset
		MinBase:          10,
		Epochs:           10,
		MemoryDim:        32,
		TimeDim:          8,
		FeatDim:          16,
		Seed:             1,
		Workers:          0,
	}
}

// Runner executes experiment drivers, memoizing datasets and training runs
// so composite figures (e.g. Fig. 10 and Fig. 11 share a grid) pay once.
type Runner struct {
	Set Settings
	Out io.Writer

	datasets map[string]*graph.Dataset
	runs     map[runKey]runOut
}

// New builds a runner writing results to out.
func New(set Settings, out io.Writer) *Runner {
	return &Runner{
		Set:      set,
		Out:      out,
		datasets: make(map[string]*graph.Dataset),
		runs:     make(map[runKey]runOut),
	}
}

// IDs lists every experiment in paper order.
var IDs = []string{
	"table1", "table2",
	"fig2", "fig3", "fig5",
	"fig10", "fig11",
	"fig12a", "fig12b", "fig12c", "fig12d",
	"fig13a", "fig13b", "fig13c",
	"fig14", "fig15", "fig16",
	"ablation-chunk", "ablation-maxr", "convergence", "staleness",
}

// Run dispatches one experiment by id.
func (r *Runner) Run(id string) error {
	switch id {
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "fig2":
		return r.Fig2()
	case "fig3":
		return r.Fig3()
	case "fig5":
		return r.Fig5()
	case "fig10":
		return r.Fig10()
	case "fig11":
		return r.Fig11()
	case "fig12a":
		return r.Fig12a()
	case "fig12b":
		return r.Fig12b()
	case "fig12c":
		return r.Fig12c()
	case "fig12d":
		return r.Fig12d()
	case "fig13a":
		return r.Fig13a()
	case "fig13b":
		return r.Fig13b()
	case "fig13c":
		return r.Fig13c()
	case "fig14":
		return r.Fig14()
	case "fig15":
		return r.Fig15()
	case "fig16":
		return r.Fig16()
	case "ablation-chunk":
		return r.AblationChunkSize()
	case "ablation-maxr":
		return r.AblationMaxr()
	case "convergence":
		return r.Convergence()
	case "staleness":
		return r.Staleness()
	default:
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs)
	}
}

func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.Out, format, args...)
}

// dataset returns the (memoized) scaled dataset for a paper profile name.
func (r *Runner) dataset(name string) *graph.Dataset {
	if d, ok := r.datasets[name]; ok {
		return d
	}
	p, ok := datagen.ByName[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	target := r.Set.EventTarget
	for _, large := range datagen.LargeNames {
		if name == large {
			target = r.Set.LargeEventTarget
		}
	}
	scale := float64(target) / float64(p.Events)
	d := p.Generate(datagen.Options{
		Scale:           scale,
		Seed:            r.Set.Seed,
		FeatDimOverride: r.Set.FeatDim,
		MinNodes:        64,
		MinEvents:       target,
	})
	r.datasets[name] = d
	return d
}

// baseFor returns the dataset's base batch size: the proportional analog of
// the paper's 900 at the generated scale (so batch/node density profiles
// match Fig. 3), unless Settings.BaseBatch forces one size.
func (r *Runner) baseFor(dsName string) int {
	if r.Set.BaseBatch > 0 {
		return r.Set.BaseBatch
	}
	p := datagen.ByName[dsName]
	d := r.dataset(dsName)
	base := int(900*float64(d.NumEvents())/float64(p.Events) + 0.5)
	min := r.Set.MinBase
	if min <= 0 {
		min = 10
	}
	if base < min {
		base = min
	}
	if cap := d.NumEvents() / 10; base > cap && cap > 0 {
		base = cap
	}
	return base
}

type runKey struct {
	model, dataset string
	sched          cascade.SchedulerKind
	batchOverride  int
	theta          float64
}

// runOut captures the metrics the figures consume.
type runOut struct {
	DeviceSec, WallSec    float64
	ValLoss, TrainLoss    float64
	MeanBatch             float64
	PreprocSec, LookupSec float64
	Occupancy             float64
	StableRatio           float64
}

// run executes (or returns the memoized) training run for a combination.
// batchOverride replaces BaseBatch for fixed-size sweeps; theta overrides
// the SG-Filter threshold (0 = default).
func (r *Runner) run(model, dsName string, kind cascade.SchedulerKind, batchOverride int, theta float64) runOut {
	key := runKey{model, dsName, kind, batchOverride, theta}
	if out, ok := r.runs[key]; ok {
		return out
	}
	ds := r.dataset(dsName)
	base := r.baseFor(dsName)
	valBatch := base
	if batchOverride > 0 {
		base = batchOverride
	}
	cfg := cascade.RunConfig{
		Dataset:   ds,
		Model:     model,
		Scheduler: kind,
		BaseBatch: base,
		ValBatch:  valBatch,
		Epochs:    r.Set.Epochs,
		MemoryDim: r.Set.MemoryDim,
		TimeDim:   r.Set.TimeDim,
		ThetaSim:  theta,
		Staleness: r.Set.Staleness,
		Workers:   r.Set.Workers,
		Seed:      r.Set.Seed,

		DisableCompile: r.Set.DisableCompile,
	}
	run, err := cascade.NewRun(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s/%s: %v", model, dsName, kind, err))
	}
	res, err := run.Execute()
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s/%s: %v", model, dsName, kind, err))
	}
	last := res.Epochs[len(res.Epochs)-1]
	out := runOut{
		DeviceSec:   res.DeviceTime.Seconds() + res.PreprocessTime.Seconds() + res.LookupTime.Seconds(),
		WallSec:     res.WallTime.Seconds(),
		ValLoss:     res.FinalValLoss,
		TrainLoss:   res.FinalTrainLoss,
		MeanBatch:   res.MeanBatchSize,
		PreprocSec:  res.PreprocessTime.Seconds(),
		LookupSec:   res.LookupTime.Seconds(),
		Occupancy:   last.MeanOccupancy,
		StableRatio: last.StableRatio,
	}
	r.runs[key] = out
	return out
}

// moderate returns the five moderate dataset names in paper order.
func moderate() []string { return datagen.ModerateNames }
