package experiments

import (
	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/stats"
)

// Fig15 regenerates Figure 15: speedups of the prior dynamic-batching
// systems (NeutronStream, ETC) and Cascade over TGL, all starting from the
// same base batch size (§5.6).
func (r *Runner) Fig15() error {
	r.printf("Fig 15: speedups over TGL — prior dynamic batching vs Cascade\n")
	r.printf("  %-9s %-6s | %14s %8s %9s\n", "dataset", "model", "NeutronStream", "ETC", "Cascade")
	var ns, etc, casc []float64
	for _, dsName := range moderate() {
		for _, model := range models.Names {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			n := r.run(model, dsName, cascade.SchedNeutronStream, 0, 0)
			e := r.run(model, dsName, cascade.SchedETC, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			s1 := stats.Speedup(tgl.DeviceSec, n.DeviceSec)
			s2 := stats.Speedup(tgl.DeviceSec, e.DeviceSec)
			s3 := stats.Speedup(tgl.DeviceSec, c.DeviceSec)
			ns = append(ns, s1)
			etc = append(etc, s2)
			casc = append(casc, s3)
			r.printf("  %-9s %-6s | %13.2fx %7.2fx %8.2fx\n", dsName, model, s1, s2, s3)
		}
	}
	r.printf("  geomean: NeutronStream %.2fx, ETC %.2fx, Cascade %.2fx"+
		" (paper: Cascade 3.8x over NeutronStream, 1.9x over ETC)\n",
		stats.GeoMean(ns), stats.GeoMean(etc), stats.GeoMean(casc))
	// The batch-size comparison §5.6 quotes (ETC 900→1123 vs Cascade 4255).
	eb := r.run("TGN", "WIKI", cascade.SchedETC, 0, 0)
	cb := r.run("TGN", "WIKI", cascade.SchedCascade, 0, 0)
	r.printf("  mean batch (TGN/WIKI): base %d, ETC %.0f, Cascade %.0f\n",
		r.baseFor("WIKI"), eb.MeanBatch, cb.MeanBatch)
	return nil
}

// Fig16 regenerates Figure 16: validation losses for the Fig. 15 grid,
// normalized to TGL.
func (r *Runner) Fig16() error {
	r.printf("Fig 16: normalized validation losses — prior dynamic batching vs Cascade\n")
	r.printf("  %-9s %-6s | %14s %8s %9s\n", "dataset", "model", "NeutronStream", "ETC", "Cascade")
	for _, dsName := range moderate() {
		for _, model := range models.Names {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			n := r.run(model, dsName, cascade.SchedNeutronStream, 0, 0)
			e := r.run(model, dsName, cascade.SchedETC, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			r.printf("  %-9s %-6s | %13.1f%% %7.1f%% %8.1f%%\n", dsName, model,
				100*safeDiv(n.ValLoss, tgl.ValLoss),
				100*safeDiv(e.ValLoss, tgl.ValLoss),
				100*safeDiv(c.ValLoss, tgl.ValLoss))
		}
	}
	return nil
}
