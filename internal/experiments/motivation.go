package experiments

import (
	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/stats"
	"github.com/cascade-ml/cascade/internal/train"
)

// fig2Multipliers are the batch-size sweep points relative to the base
// batch, the analog of the paper's 900 → 6000 sweep (×1 … ×6.7).
var fig2Multipliers = []float64{1, 2, 4, 6.7}

// Fig2 regenerates Figure 2: normalized training latency and validation
// loss of TGN and JODIE across batch sizes, on all five moderate datasets,
// plus the §3.1 device-utilization observation.
func (r *Runner) Fig2() error {
	r.printf("Fig 2: normalized latency & validation loss vs batch size (baseline = BS×1)\n")
	r.printf("  %-9s %-6s %8s | %10s %10s %8s\n", "dataset", "model", "batch", "norm lat", "norm loss", "occup")
	for _, dsName := range moderate() {
		for _, model := range []string{"TGN", "JODIE"} {
			var baseLat, baseLoss float64
			for i, mult := range fig2Multipliers {
				bs := int(float64(r.baseFor(dsName)) * mult)
				out := r.run(model, dsName, cascade.SchedTGL, bs, 0)
				if i == 0 {
					baseLat, baseLoss = out.DeviceSec, out.ValLoss
				}
				r.printf("  %-9s %-6s %8d | %10.3f %10.3f %7.1f%%\n",
					dsName, model, bs,
					safeDiv(out.DeviceSec, baseLat), safeDiv(out.ValLoss, baseLoss),
					100*out.Occupancy)
			}
		}
	}
	return nil
}

// Fig3 regenerates Figure 3: the distribution of per-node event counts
// within base-size batches for each dataset (buckets ≤25/≤50/≤75/≤100/>100
// scaled to the batch ratio).
func (r *Runner) Fig3() error {
	r.printf("Fig 3: distribution of node degree within base-size batches\n")
	for _, dsName := range moderate() {
		d := r.dataset(dsName)
		base := r.baseFor(dsName)
		// The paper buckets per-batch node degrees at 0/25/50/75/100 for
		// batch size 900; scale edges by each dataset's base batch so the
		// shape reads the same, kept integer and strictly ascending.
		edges := make([]float64, 4)
		prev := 0.0
		for i, paperEdge := range []float64{25, 50, 75, 100} {
			v := float64(int(paperEdge*float64(base)/900 + 0.5))
			if v <= prev {
				v = prev + 1
			}
			edges[i] = v
			prev = v
		}
		h := stats.NewHistogram(edges...)
		maxDeg := 0
		d.DegreeInBatches(base, func(node int32, count int) {
			h.Add(float64(count))
			if count > maxDeg {
				maxDeg = count
			}
		})
		r.printf("  %-9s (base %3d):", dsName, base)
		labels := h.BucketLabels()
		for i, f := range h.Fractions() {
			r.printf("  %s=%5.1f%%", labels[i], 100*f)
		}
		r.printf("  (max in-batch degree %d)\n", maxDeg)
	}
	return nil
}

// Fig5 regenerates Figure 5: the ratio of stable node updates (cosine
// similarity of pre/post memories ≥ 0.9) at increasing epochs for TGN and
// JODIE on every dataset. Training runs under plain fixed batching — the
// figure motivates the SG-Filter, so stability is observed, not exploited.
func (r *Runner) Fig5() error {
	r.printf("Fig 5: ratio of stable node updates by epoch (θsim = 0.9)\n")
	epochs := r.Set.Epochs
	if epochs < 3 {
		epochs = 3
	}
	checkpoints := []int{0, epochs / 2, epochs - 1}
	r.printf("  %-9s %-6s |", "dataset", "model")
	for _, c := range checkpoints {
		r.printf(" epoch%-3d", c)
	}
	r.printf("\n")
	for _, dsName := range moderate() {
		for _, modelName := range []string{"TGN", "JODIE"} {
			ratios, err := r.stableRatioTrace(dsName, modelName, epochs, checkpoints)
			if err != nil {
				return err
			}
			r.printf("  %-9s %-6s |", dsName, modelName)
			for _, v := range ratios {
				r.printf("  %5.1f%% ", 100*v)
			}
			r.printf("\n")
		}
	}
	return nil
}

// stableRatioTrace trains under fixed batching while observing memory
// updates with a standalone SG-Filter, returning the stable-update ratio at
// the requested epochs.
func (r *Runner) stableRatioTrace(dsName, modelName string, epochs int, checkpoints []int) ([]float64, error) {
	ds := r.dataset(dsName)
	tr, val := ds.Split(0.8)
	model := models.MustNew(modelName, ds, r.Set.MemoryDim, r.Set.TimeDim, r.Set.Seed)
	base := r.baseFor(dsName)
	sched := &observedScheduler{
		Scheduler: batching.NewFixed("TGL", tr.NumEvents(), base),
		filter:    core.NewSGFilter(ds.NumNodes, 0.9),
	}
	trainer, err := train.NewTrainer(train.Config{
		Model: model, Sched: sched, Data: tr, Val: val,
		ValBatch: base, Seed: r.Set.Seed,
	})
	if err != nil {
		return nil, err
	}
	want := make(map[int]bool, len(checkpoints))
	for _, c := range checkpoints {
		want[c] = true
	}
	var ratios []float64
	for e := 0; e < epochs; e++ {
		sched.filter.Reset()
		trainer.TrainEpoch()
		if want[e] {
			ratios = append(ratios, sched.filter.StableUpdateRatio())
		}
	}
	return ratios, nil
}

// observedScheduler wraps a static policy with a passive SG-Filter so
// stability can be measured without influencing batching.
type observedScheduler struct {
	batching.Scheduler
	filter *core.SGFilter
}

func (o *observedScheduler) OnBatchEnd(fb batching.Feedback) {
	if len(fb.Nodes) > 0 && fb.PreMem != nil && fb.PostMem != nil {
		o.filter.Update(fb.Nodes, fb.PreMem, fb.PostMem)
	}
	o.Scheduler.OnBatchEnd(fb)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
