package experiments

import (
	"github.com/cascade-ml/cascade"
)

// Fig13a regenerates Figure 13(a): Cascade latency and validation loss
// under different SG-Filter similarity thresholds, normalized to TGL.
func (r *Runner) Fig13a() error {
	r.printf("Fig 13a: θsim sensitivity (normalized to TGL)\n")
	r.printf("  %-9s %-6s %6s | %10s %10s\n", "dataset", "model", "θsim", "norm lat", "norm loss")
	for _, dsName := range []string{"WIKI", "REDDIT", "WIKI-TALK"} {
		for _, model := range fig12Models {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			for _, theta := range []float64{0.85, 0.9, 0.95} {
				c := r.run(model, dsName, cascade.SchedCascade, 0, theta)
				r.printf("  %-9s %-6s %6.2f | %10.3f %10.3f\n", dsName, model, theta,
					safeDiv(c.DeviceSec, tgl.DeviceSec), safeDiv(c.ValLoss, tgl.ValLoss))
			}
		}
	}
	return nil
}

// Fig13b regenerates Figure 13(b): Cascade's latency breakdown — dependency
// table building, event lookup & pointer updating, and model training.
func (r *Runner) Fig13b() error {
	r.printf("Fig 13b: Cascade latency breakdown\n")
	r.printf("  %-9s %-6s | %11s %13s %10s\n", "dataset", "model", "build table", "lookup+update", "training")
	for _, dsName := range []string{"WIKI", "REDDIT", "WIKI-TALK"} {
		for _, model := range fig12Models {
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			total := c.DeviceSec
			if total == 0 {
				total = 1
			}
			train := total - c.PreprocSec - c.LookupSec
			r.printf("  %-9s %-6s | %10.2f%% %12.2f%% %9.2f%%\n", dsName, model,
				100*c.PreprocSec/total, 100*c.LookupSec/total, 100*train/total)
		}
	}
	return nil
}

// Fig13c regenerates Figure 13(c): the space-consumption ratio of Cascade's
// structures (dependency table DT, stable flags SF) against the training
// state (graph adjacency, edge features, model weights, mailbox).
func (r *Runner) Fig13c() error {
	r.printf("Fig 13c: space breakdown (DT = dependency table, SF = stable flags)\n")
	r.printf("  %-9s %-6s | %7s %7s %7s %9s %7s %8s\n",
		"dataset", "model", "DT", "SF", "graph", "edgefeat", "model", "mailbox")
	for _, dsName := range []string{"WIKI", "REDDIT", "WIKI-TALK"} {
		ds := r.dataset(dsName)
		for _, modelName := range fig12Models {
			// Build the Cascade structures and model state directly; the
			// byte accounting needs instances, not training.
			run, err := cascade.NewRun(cascade.RunConfig{
				Dataset: ds, Model: modelName, Scheduler: cascade.SchedCascade,
				BaseBatch: r.baseFor(dsName), Epochs: 1,
				MemoryDim: r.Set.MemoryDim, TimeDim: r.Set.TimeDim,
				Workers: r.Set.Workers, Seed: r.Set.Seed,
			})
			if err != nil {
				return err
			}
			comp := run.Model().MemoryBytes()
			dt := run.CascadeScheduler().TableMemoryBytes()
			sf := run.CascadeScheduler().FlagMemoryBytes()
			total := float64(dt + sf)
			for _, v := range comp {
				total += float64(v)
			}
			pct := func(v int64) float64 { return 100 * float64(v) / total }
			r.printf("  %-9s %-6s | %6.2f%% %6.2f%% %6.2f%% %8.2f%% %6.2f%% %7.2f%%\n",
				dsName, modelName, pct(dt), pct(sf),
				pct(comp["graph"]+comp["memory"]), pct(comp["edge_feature"]),
				pct(comp["model"]), pct(comp["mailbox"]))
		}
	}
	return nil
}
