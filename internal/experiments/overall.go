package experiments

import (
	"github.com/cascade-ml/cascade"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/stats"
)

// Fig10 regenerates Figure 10: training speedups of Cascade over TGL and
// Cascade-Lite over TGLite, for the five models on the five moderate
// datasets (all latencies include scheduler preprocessing, as the paper's
// end-to-end numbers do).
func (r *Runner) Fig10() error {
	r.printf("Fig 10: training speedups (Cascade vs TGL, Cascade-Lite vs TGLite)\n")
	r.printf("  %-9s %-6s | %9s %14s\n", "dataset", "model", "Cascade", "Cascade-Lite")
	var casc, lite []float64
	for _, dsName := range moderate() {
		for _, model := range models.Names {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			tglite := r.run(model, dsName, cascade.SchedTGLite, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			cl := r.run(model, dsName, cascade.SchedCascadeLite, 0, 0)
			s1 := stats.Speedup(tgl.DeviceSec, c.DeviceSec)
			s2 := stats.Speedup(tglite.DeviceSec, cl.DeviceSec)
			casc = append(casc, s1)
			lite = append(lite, s2)
			r.printf("  %-9s %-6s | %8.2fx %13.2fx\n", dsName, model, s1, s2)
		}
	}
	r.printf("  geomean speedup: Cascade %.2fx, Cascade-Lite %.2fx (paper: avg 2.3x, up to 5.1x)\n",
		stats.GeoMean(casc), stats.GeoMean(lite))
	return nil
}

// Fig11 regenerates Figure 11: validation losses of models trained under
// Cascade / Cascade-Lite, normalized to TGL / TGLite respectively.
func (r *Runner) Fig11() error {
	r.printf("Fig 11: validation losses normalized to the fixed-batching baseline\n")
	r.printf("  %-9s %-6s | %9s %14s\n", "dataset", "model", "Cascade", "Cascade-Lite")
	var casc, lite []float64
	for _, dsName := range moderate() {
		for _, model := range models.Names {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			tglite := r.run(model, dsName, cascade.SchedTGLite, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			cl := r.run(model, dsName, cascade.SchedCascadeLite, 0, 0)
			n1 := safeDiv(c.ValLoss, tgl.ValLoss)
			n2 := safeDiv(cl.ValLoss, tglite.ValLoss)
			casc = append(casc, n1)
			lite = append(lite, n2)
			r.printf("  %-9s %-6s | %8.1f%% %13.1f%%\n", dsName, model, 100*n1, 100*n2)
		}
	}
	r.printf("  mean normalized loss: Cascade %.1f%%, Cascade-Lite %.1f%% (paper: 99.4%% / 97.9%%)\n",
		100*stats.Summarize(casc).Mean, 100*stats.Summarize(lite).Mean)
	return nil
}

// fig12Models are the CTDG models §5.3's ablation focuses on.
var fig12Models = []string{"APAN", "JODIE", "TGN"}

// Fig12a regenerates Figure 12(a): achieved batch sizes, TGL vs Cascade.
func (r *Runner) Fig12a() error {
	r.printf("Fig 12a: mean batch sizes (TGL fixed = per-dataset base)\n")
	r.printf("  %-9s %-6s | %8s %10s\n", "dataset", "model", "TGL", "Cascade")
	for _, dsName := range []string{"WIKI", "REDDIT", "WIKI-TALK"} {
		for _, model := range fig12Models {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			r.printf("  %-9s %-6s | %8.0f %10.0f\n", dsName, model, tgl.MeanBatch, c.MeanBatch)
		}
	}
	return nil
}

// Fig12b regenerates Figure 12(b): validation losses of TGL, TGL-LB
// (fixed batching at Cascade's achieved size) and Cascade, normalized to
// TGL — showing that batch growth alone hurts accuracy while Cascade's
// dependency-aware growth does not.
func (r *Runner) Fig12b() error {
	r.printf("Fig 12b: normalized validation loss — TGL vs TGL-LB vs Cascade\n")
	r.printf("  %-9s %-6s | %8s %8s %9s\n", "dataset", "model", "TGL", "TGL-LB", "Cascade")
	for _, dsName := range []string{"WIKI", "REDDIT"} {
		for _, model := range fig12Models {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			// TGL-LB: fixed batching at Cascade's achieved mean size.
			lb := r.run(model, dsName, cascade.SchedTGL, int(c.MeanBatch), 0)
			r.printf("  %-9s %-6s | %7.1f%% %7.1f%% %8.1f%%\n", dsName, model,
				100.0, 100*safeDiv(lb.ValLoss, tgl.ValLoss), 100*safeDiv(c.ValLoss, tgl.ValLoss))
		}
	}
	return nil
}

// Fig12c regenerates Figure 12(c): the ablation speedups of Cascade-TB
// (TG-Diffuser + ABS only) and full Cascade over TGL.
func (r *Runner) Fig12c() error {
	r.printf("Fig 12c: ablation speedups over TGL (Cascade-TB = no SG-Filter)\n")
	r.printf("  %-9s %-6s | %11s %9s\n", "dataset", "model", "Cascade-TB", "Cascade")
	for _, dsName := range []string{"WIKI", "REDDIT"} {
		for _, model := range fig12Models {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			tb := r.run(model, dsName, cascade.SchedCascadeTB, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			r.printf("  %-9s %-6s | %10.2fx %8.2fx\n", dsName, model,
				stats.Speedup(tgl.DeviceSec, tb.DeviceSec), stats.Speedup(tgl.DeviceSec, c.DeviceSec))
		}
	}
	return nil
}

// Fig12d regenerates Figure 12(d): validation losses of Cascade-TB and
// Cascade normalized to TGL.
func (r *Runner) Fig12d() error {
	r.printf("Fig 12d: normalized validation loss — Cascade-TB vs Cascade\n")
	r.printf("  %-9s %-6s | %11s %9s\n", "dataset", "model", "Cascade-TB", "Cascade")
	for _, dsName := range []string{"WIKI", "REDDIT"} {
		for _, model := range fig12Models {
			tgl := r.run(model, dsName, cascade.SchedTGL, 0, 0)
			tb := r.run(model, dsName, cascade.SchedCascadeTB, 0, 0)
			c := r.run(model, dsName, cascade.SchedCascade, 0, 0)
			r.printf("  %-9s %-6s | %10.1f%% %8.1f%%\n", dsName, model,
				100*safeDiv(tb.ValLoss, tgl.ValLoss), 100*safeDiv(c.ValLoss, tgl.ValLoss))
		}
	}
	return nil
}
