package experiments

import (
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
)

// Table1 prints the model-configuration table (paper Table 1): sampling
// strategy, module choices and output sizes for the five TGNNs, as actually
// instantiated by the registry.
func (r *Runner) Table1() error {
	r.printf("Table 1: Details of TGNN models (as instantiated)\n")
	ds := r.dataset("WIKI")
	for _, name := range models.Names {
		m := models.MustNew(name, ds, r.Set.MemoryDim, r.Set.TimeDim, r.Set.Seed)
		r.printf("  %s\n", models.Table1Row(m))
	}
	return nil
}

// Table2 prints dataset statistics (paper Table 2): the full-scale profile
// counts alongside the scaled instantiation this harness trains on.
func (r *Runner) Table2() error {
	r.printf("Table 2: Statistics of datasets (profile = paper scale, generated = this run)\n")
	r.printf("  %-10s %12s %14s %6s | %9s %10s %8s %8s\n",
		"dataset", "#nodes", "#edges", "#feat", "gen nodes", "gen edges", "avgdeg", "maxdeg")
	names := append(append([]string{}, datagen.ModerateNames...), datagen.LargeNames...)
	for _, name := range names {
		p := datagen.ByName[name]
		d := r.dataset(name)
		s := d.ComputeStats()
		r.printf("  %-10s %12d %14d %6d | %9d %10d %8.1f %8d\n",
			name, p.Nodes, p.Events, p.FeatDim, s.NumNodes, s.NumEvents, s.AvgDegree, s.MaxDegree)
	}
	return nil
}
