// Package memstore holds the stateful per-node storage TGNNs maintain across
// batches: the node memory matrix (§2.2), and APAN's bounded asynchronous
// mailbox of recent messages.
package memstore

import (
	"fmt"
	"sync"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// MemoryStore is the node-memory table: one Dim-wide state vector per node
// plus its last-update timestamp (needed for the Δt term of Eq. 2).
type MemoryStore struct {
	NumNodes, Dim int
	mem           *tensor.Matrix
	lastUpdate    []float64
}

// NewMemoryStore builds a zero-initialized store (TGNNs start every epoch
// from zero memories).
func NewMemoryStore(numNodes, dim int) *MemoryStore {
	if numNodes <= 0 || dim <= 0 {
		panic(fmt.Sprintf("memstore: store %d nodes × %d dims", numNodes, dim))
	}
	return &MemoryStore{
		NumNodes:   numNodes,
		Dim:        dim,
		mem:        tensor.NewMatrix(numNodes, dim),
		lastUpdate: make([]float64, numNodes),
	}
}

// Row returns node's memory vector, aliasing the store (do not mutate
// through it unless you are the updater).
func (s *MemoryStore) Row(node int32) []float32 { return s.mem.Row(int(node)) }

// Gather copies the memories of nodes into a fresh (len(nodes) × Dim)
// matrix.
func (s *MemoryStore) Gather(nodes []int32) *tensor.Matrix {
	out := tensor.NewMatrix(len(nodes), s.Dim)
	for i, n := range nodes {
		copy(out.Row(i), s.mem.Row(int(n)))
	}
	return out
}

// Write stores vals row i into node nodes[i] and stamps its last-update
// time. The stamp is clamped to the monotonic max: out-of-timestamp-order
// updates (shuffled schedulers, deferred staleness applies) overwrite the
// vector but may not make a node's clock run backwards — Δt features
// (Eq. 2) and the staleness ledger both assume non-negative elapsed time.
func (s *MemoryStore) Write(nodes []int32, vals *tensor.Matrix, t float64) {
	if vals.Rows != len(nodes) || vals.Cols != s.Dim {
		panic(fmt.Sprintf("memstore: write %dx%d for %d nodes × %d dims", vals.Rows, vals.Cols, len(nodes), s.Dim))
	}
	for i, n := range nodes {
		copy(s.mem.Row(int(n)), vals.Row(i))
		if t > s.lastUpdate[n] {
			s.lastUpdate[n] = t
		}
	}
}

// LastUpdate returns the node's last memory-update timestamp.
func (s *MemoryStore) LastUpdate(node int32) float64 { return s.lastUpdate[node] }

// Reset zeroes all memories and timestamps (epoch start).
func (s *MemoryStore) Reset() {
	s.mem.Zero()
	for i := range s.lastUpdate {
		s.lastUpdate[i] = 0
	}
}

// MemoryBytes reports the resident size for the space-breakdown experiment.
func (s *MemoryStore) MemoryBytes() int64 {
	return int64(len(s.mem.Data))*4 + int64(len(s.lastUpdate))*8
}

// MailEntry is one stored message in a Mailbox.
type MailEntry struct {
	Vec  []float32
	Time float64
}

// Mailbox is APAN's asynchronous mailbox: a bounded ring of the K most
// recent message vectors per node (Table 1: most_recent, num = 10). Memory
// updates attend over the mailbox contents instead of a single message.
//
// Push/Read/Count are safe for concurrent use: per-node state is guarded by
// a shard of mailShards mutexes keyed by node id, so readers on one node
// never observe a half-written vector from a concurrent Push to the same
// node, and pushes to distinct nodes rarely contend. Whole-mailbox
// operations (Reset, Clone, Checkpoint, Restore, MemoryBytes) take every
// shard and must not run concurrently with each other.
type Mailbox struct {
	NumNodes, K, Dim int
	rings            [][]MailEntry
	counts, heads    []int
	locks            [mailShards]sync.Mutex
}

// mailShards is the number of lock shards guarding per-node mailbox state.
// 64 keeps contention negligible at trainer concurrency (one pusher, a few
// readers) without a per-node mutex footprint.
const mailShards = 64

func (m *Mailbox) lockNode(node int32) *sync.Mutex {
	return &m.locks[uint32(node)%mailShards]
}

func (m *Mailbox) lockAll() {
	for i := range m.locks {
		m.locks[i].Lock()
	}
}

func (m *Mailbox) unlockAll() {
	for i := len(m.locks) - 1; i >= 0; i-- {
		m.locks[i].Unlock()
	}
}

// NewMailbox builds an empty mailbox keeping k messages of width dim per
// node.
func NewMailbox(numNodes, k, dim int) *Mailbox {
	if k <= 0 || dim <= 0 {
		panic(fmt.Sprintf("memstore: mailbox k=%d dim=%d", k, dim))
	}
	return &Mailbox{
		NumNodes: numNodes, K: k, Dim: dim,
		rings:  make([][]MailEntry, numNodes),
		counts: make([]int, numNodes),
		heads:  make([]int, numNodes),
	}
}

// Push appends a message for node, evicting the oldest beyond K. The vector
// is copied. Ring order is push-arrival order, not timestamp order: callers
// pushing out of time order (deferred batches) still get coherent reads
// because every entry carries its own Time and consumers (APAN's mailbox
// attention) weight entries by that Time, never by ring position.
func (m *Mailbox) Push(node int32, vec []float32, t float64) {
	if len(vec) != m.Dim {
		panic(fmt.Sprintf("memstore: mailbox push %d-dim vec, want %d", len(vec), m.Dim))
	}
	mu := m.lockNode(node)
	mu.Lock()
	defer mu.Unlock()
	ring := m.rings[node]
	if ring == nil {
		ring = make([]MailEntry, m.K)
		m.rings[node] = ring
	}
	h := m.heads[node]
	if ring[h].Vec == nil {
		ring[h].Vec = make([]float32, m.Dim)
	}
	copy(ring[h].Vec, vec)
	ring[h].Time = t
	m.heads[node] = (h + 1) % m.K
	if m.counts[node] < m.K {
		m.counts[node]++
	}
}

// Read fills out (pre-sized ≥ K entries) with the node's messages, newest
// pushed first, and returns the count. Each entry's vector is copied into
// out[i].Vec — the caller owns the result and a later Push cannot mutate it.
// out[i].Vec buffers are reused when already Dim-capacity (so a warmed
// caller-held scratch slice keeps the read allocation-free) and allocated
// on first use otherwise.
func (m *Mailbox) Read(node int32, out []MailEntry) int {
	mu := m.lockNode(node)
	mu.Lock()
	defer mu.Unlock()
	n := m.counts[node]
	ring := m.rings[node]
	h := m.heads[node]
	for i := 0; i < n; i++ {
		idx := (h - 1 - i + 2*m.K) % m.K
		if cap(out[i].Vec) < m.Dim {
			out[i].Vec = make([]float32, m.Dim)
		}
		out[i].Vec = out[i].Vec[:m.Dim]
		copy(out[i].Vec, ring[idx].Vec)
		out[i].Time = ring[idx].Time
	}
	return n
}

// Count returns the number of stored messages for node.
func (m *Mailbox) Count(node int32) int {
	mu := m.lockNode(node)
	mu.Lock()
	defer mu.Unlock()
	return m.counts[node]
}

// Reset clears all messages.
func (m *Mailbox) Reset() {
	m.lockAll()
	defer m.unlockAll()
	for i := range m.counts {
		m.counts[i] = 0
		m.heads[i] = 0
	}
}

// MemoryBytes reports resident size for the space-breakdown experiment. It
// counts allocated rings only (nodes that never received mail cost nothing).
func (m *Mailbox) MemoryBytes() int64 {
	m.lockAll()
	defer m.unlockAll()
	var b int64
	for _, ring := range m.rings {
		for _, e := range ring {
			b += int64(len(e.Vec))*4 + 8
		}
	}
	b += int64(len(m.counts)+len(m.heads)) * 8
	return b
}

// WriteEach stores vals row i into node nodes[i], stamping each node with
// its own timestamp (events within a batch update different nodes at
// different times). Like Write, timestamps clamp to the monotonic max so a
// node's last-update clock never regresses.
func (s *MemoryStore) WriteEach(nodes []int32, vals *tensor.Matrix, times []float64) {
	if vals.Rows != len(nodes) || vals.Cols != s.Dim || len(times) != len(nodes) {
		panic(fmt.Sprintf("memstore: WriteEach %dx%d, %d nodes, %d times", vals.Rows, vals.Cols, len(nodes), len(times)))
	}
	for i, n := range nodes {
		copy(s.mem.Row(int(n)), vals.Row(i))
		if times[i] > s.lastUpdate[n] {
			s.lastUpdate[n] = times[i]
		}
	}
}

// Clone returns a deep copy of the store (state snapshots for isolated
// validation).
func (s *MemoryStore) Clone() *MemoryStore {
	out := NewMemoryStore(s.NumNodes, s.Dim)
	copy(out.mem.Data, s.mem.Data)
	copy(out.lastUpdate, s.lastUpdate)
	return out
}

// CopyFrom overwrites this store's contents with other's (must be same
// shape).
func (s *MemoryStore) CopyFrom(other *MemoryStore) {
	if s.NumNodes != other.NumNodes || s.Dim != other.Dim {
		panic(fmt.Sprintf("memstore: CopyFrom %dx%d into %dx%d", other.NumNodes, other.Dim, s.NumNodes, s.Dim))
	}
	copy(s.mem.Data, other.mem.Data)
	copy(s.lastUpdate, other.lastUpdate)
}

// Clone returns a deep copy of the mailbox.
func (m *Mailbox) Clone() *Mailbox {
	m.lockAll()
	defer m.unlockAll()
	out := NewMailbox(m.NumNodes, m.K, m.Dim)
	copy(out.counts, m.counts)
	copy(out.heads, m.heads)
	for n, ring := range m.rings {
		if ring == nil {
			continue
		}
		nr := make([]MailEntry, m.K)
		for i, e := range ring {
			if e.Vec != nil {
				nr[i] = MailEntry{Vec: append([]float32(nil), e.Vec...), Time: e.Time}
			}
		}
		out.rings[n] = nr
	}
	return out
}

// MemoryCheckpoint is the serializable deep copy of a MemoryStore — the
// node-memory section of a full-state training checkpoint
// (internal/resilience). Fields are exported for gob.
type MemoryCheckpoint struct {
	NumNodes, Dim int
	Mem           []float32
	LastUpdate    []float64
}

// Checkpoint captures the store's full state.
func (s *MemoryStore) Checkpoint() *MemoryCheckpoint {
	return &MemoryCheckpoint{
		NumNodes:   s.NumNodes,
		Dim:        s.Dim,
		Mem:        append([]float32(nil), s.mem.Data...),
		LastUpdate: append([]float64(nil), s.lastUpdate...),
	}
}

// RestoreCheckpoint overwrites the store with a checkpoint of the same
// shape.
func (s *MemoryStore) RestoreCheckpoint(c *MemoryCheckpoint) error {
	if c == nil {
		return fmt.Errorf("memstore: nil memory checkpoint")
	}
	if c.NumNodes != s.NumNodes || c.Dim != s.Dim {
		return fmt.Errorf("memstore: checkpoint shape %dx%d, store is %dx%d", c.NumNodes, c.Dim, s.NumNodes, s.Dim)
	}
	if len(c.Mem) != len(s.mem.Data) || len(c.LastUpdate) != len(s.lastUpdate) {
		return fmt.Errorf("memstore: checkpoint payload %d/%d values, store holds %d/%d", len(c.Mem), len(c.LastUpdate), len(s.mem.Data), len(s.lastUpdate))
	}
	copy(s.mem.Data, c.Mem)
	copy(s.lastUpdate, c.LastUpdate)
	return nil
}

// MailboxCheckpoint is the serializable deep copy of a Mailbox (APAN's
// stream state beyond the common base).
type MailboxCheckpoint struct {
	NumNodes, K, Dim int
	Counts, Heads    []int
	// Rings[n] is nil for nodes that never received mail.
	Rings [][]MailEntry
}

// Checkpoint captures the mailbox's full state.
func (m *Mailbox) Checkpoint() *MailboxCheckpoint {
	m.lockAll()
	defer m.unlockAll()
	c := &MailboxCheckpoint{
		NumNodes: m.NumNodes, K: m.K, Dim: m.Dim,
		Counts: append([]int(nil), m.counts...),
		Heads:  append([]int(nil), m.heads...),
		Rings:  make([][]MailEntry, len(m.rings)),
	}
	for n, ring := range m.rings {
		if ring == nil {
			continue
		}
		nr := make([]MailEntry, len(ring))
		for i, e := range ring {
			if e.Vec != nil {
				nr[i] = MailEntry{Vec: append([]float32(nil), e.Vec...), Time: e.Time}
			}
		}
		c.Rings[n] = nr
	}
	return c
}

// RestoreCheckpoint overwrites the mailbox with a same-shape checkpoint.
func (m *Mailbox) RestoreCheckpoint(c *MailboxCheckpoint) error {
	if c == nil {
		return fmt.Errorf("memstore: nil mailbox checkpoint")
	}
	if c.NumNodes != m.NumNodes || c.K != m.K || c.Dim != m.Dim {
		return fmt.Errorf("memstore: mailbox checkpoint %d nodes k=%d dim=%d, mailbox is %d/%d/%d", c.NumNodes, c.K, c.Dim, m.NumNodes, m.K, m.Dim)
	}
	if len(c.Counts) != len(m.counts) || len(c.Heads) != len(m.heads) || len(c.Rings) != len(m.rings) {
		return fmt.Errorf("memstore: mailbox checkpoint arrays do not match node count %d", m.NumNodes)
	}
	m.lockAll()
	defer m.unlockAll()
	copy(m.counts, c.Counts)
	copy(m.heads, c.Heads)
	for n := range m.rings {
		if c.Rings[n] == nil {
			m.rings[n] = nil
			continue
		}
		ring := make([]MailEntry, m.K)
		for i, e := range c.Rings[n] {
			if i >= m.K {
				break
			}
			if e.Vec != nil {
				if len(e.Vec) != m.Dim {
					return fmt.Errorf("memstore: mailbox checkpoint node %d entry %d has dim %d, mailbox carries %d", n, i, len(e.Vec), m.Dim)
				}
				ring[i] = MailEntry{Vec: append([]float32(nil), e.Vec...), Time: e.Time}
			}
		}
		m.rings[n] = ring
	}
	return nil
}
