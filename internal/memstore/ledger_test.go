package memstore

import "testing"

func TestStalenessLedgerRounds(t *testing.T) {
	l := NewStalenessLedger(4)
	l.NoteQueued([]int32{0, 1, 2})
	l.NoteQueued([]int32{1, 2})
	if l.Rounds(0) != 1 || l.Rounds(1) != 2 || l.Rounds(3) != 0 {
		t.Fatalf("rounds %d %d %d", l.Rounds(0), l.Rounds(1), l.Rounds(3))
	}
	if got := l.NoteServed(1); got != 2 {
		t.Fatalf("served staleness %d, want 2", got)
	}
	l.NoteServed(3)
	l.NoteApplied([]int32{1, 3})
	if l.Rounds(1) != 0 {
		t.Fatal("apply must clear rounds")
	}
	queued, applied, stale, fresh, maxServed := l.Counters()
	if queued != 5 || applied != 2 || stale != 1 || fresh != 1 || maxServed != 2 {
		t.Fatalf("counters %d %d %d %d %d", queued, applied, stale, fresh, maxServed)
	}
	l.Reset()
	if l.Rounds(2) != 0 {
		t.Fatal("reset incomplete")
	}
	if q, _, _, _, _ := l.Counters(); q != 0 {
		t.Fatal("counters survive reset")
	}
}

func TestStalenessLedgerCheckpointRoundTrip(t *testing.T) {
	l := NewStalenessLedger(3)
	l.NoteQueued([]int32{0, 2})
	l.NoteServed(2)
	c := l.Checkpoint()
	l.NoteQueued([]int32{0, 1, 2}) // diverge after the snapshot
	l.NoteApplied([]int32{0})
	if err := l.RestoreCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	if l.Rounds(0) != 1 || l.Rounds(1) != 0 || l.Rounds(2) != 1 {
		t.Fatalf("restored rounds %d %d %d", l.Rounds(0), l.Rounds(1), l.Rounds(2))
	}
	queued, applied, stale, fresh, maxServed := l.Counters()
	if queued != 2 || applied != 0 || stale != 1 || fresh != 0 || maxServed != 1 {
		t.Fatalf("restored counters %d %d %d %d %d", queued, applied, stale, fresh, maxServed)
	}
	// Checkpoint must be a deep copy: mutating the ledger after capture
	// cannot corrupt the snapshot.
	c2 := l.Checkpoint()
	l.NoteQueued([]int32{1})
	if c2.Rounds[1] != 0 {
		t.Fatal("checkpoint aliases ledger rounds")
	}
	if err := l.RestoreCheckpoint(&LedgerCheckpoint{Rounds: make([]int32, 99)}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := l.RestoreCheckpoint(nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
}
