package memstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/tensor"
)

func TestMemoryStoreReadWrite(t *testing.T) {
	s := NewMemoryStore(5, 3)
	vals := tensor.FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	s.Write([]int32{1, 4}, vals, 7.5)
	if got := s.Row(4); got[0] != 4 || got[2] != 6 {
		t.Fatalf("row 4 = %v", got)
	}
	if s.LastUpdate(1) != 7.5 || s.LastUpdate(0) != 0 {
		t.Fatalf("timestamps %v %v", s.LastUpdate(1), s.LastUpdate(0))
	}
	g := s.Gather([]int32{4, 1, 0})
	if g.At(0, 1) != 5 || g.At(1, 0) != 1 || g.At(2, 2) != 0 {
		t.Fatalf("gather = %v", g.Data)
	}
	// Gather copies: mutating the copy must not touch the store.
	g.Set(0, 0, 99)
	if s.Row(4)[0] == 99 {
		t.Fatal("gather aliases store")
	}
}

func TestMemoryStoreReset(t *testing.T) {
	s := NewMemoryStore(2, 2)
	s.Write([]int32{0}, tensor.FromSlice(1, 2, []float32{1, 2}), 3)
	s.Reset()
	if s.Row(0)[0] != 0 || s.LastUpdate(0) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMemoryStoreValidation(t *testing.T) {
	s := NewMemoryStore(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	s.Write([]int32{0}, tensor.NewMatrix(2, 2), 0)
}

func TestMailboxNewestFirstAndEviction(t *testing.T) {
	mb := NewMailbox(3, 2, 2)
	mb.Push(0, []float32{1, 1}, 1)
	mb.Push(0, []float32{2, 2}, 2)
	mb.Push(0, []float32{3, 3}, 3) // evicts the first
	out := make([]MailEntry, 2)
	n := mb.Read(0, out)
	if n != 2 {
		t.Fatalf("count %d", n)
	}
	if out[0].Vec[0] != 3 || out[1].Vec[0] != 2 {
		t.Fatalf("order: %v %v", out[0].Vec, out[1].Vec)
	}
	if mb.Count(1) != 0 {
		t.Fatal("untouched node has mail")
	}
}

func TestMailboxPushCopies(t *testing.T) {
	mb := NewMailbox(1, 1, 2)
	v := []float32{1, 2}
	mb.Push(0, v, 1)
	v[0] = 99
	out := make([]MailEntry, 1)
	mb.Read(0, out)
	if out[0].Vec[0] != 1 {
		t.Fatal("mailbox aliased caller slice")
	}
}

func TestMailboxReset(t *testing.T) {
	mb := NewMailbox(2, 2, 1)
	mb.Push(0, []float32{5}, 1)
	mb.Reset()
	if mb.Count(0) != 0 {
		t.Fatal("reset incomplete")
	}
	if mb.MemoryBytes() <= 0 {
		t.Fatal("memory accounting after reset")
	}
}

// Property: mailbox count is min(pushes, K) and reads return newest-first
// times.
func TestMailboxProperties(t *testing.T) {
	f := func(seed int64, pushes uint8, kRaw uint8) bool {
		k := int(kRaw)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		mb := NewMailbox(1, k, 1)
		t0 := 0.0
		for i := 0; i < int(pushes); i++ {
			t0 += rng.Float64() + 0.01
			mb.Push(0, []float32{float32(i)}, t0)
		}
		want := int(pushes)
		if want > k {
			want = k
		}
		if mb.Count(0) != want {
			return false
		}
		out := make([]MailEntry, k)
		n := mb.Read(0, out)
		for i := 1; i < n; i++ {
			if out[i].Time >= out[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMailboxReadCopies pins the aliasing fix: entries handed out by Read
// must be caller-owned copies — a later Push to the same node (which reuses
// the ring's backing buffers in place) may not mutate data a reader already
// holds.
func TestMailboxReadCopies(t *testing.T) {
	mb := NewMailbox(1, 2, 2)
	mb.Push(0, []float32{1, 1}, 1)
	out := make([]MailEntry, 2)
	mb.Read(0, out)
	mb.Push(0, []float32{7, 7}, 2)
	mb.Push(0, []float32{8, 8}, 3) // wraps: overwrites the slot entry 1 lived in
	if out[0].Vec[0] != 1 || out[0].Vec[1] != 1 {
		t.Fatalf("read result mutated by later push: %v", out[0].Vec)
	}
}

// TestMailboxReadZeroAllocSteadyState pins the hot-path contract: once the
// caller's scratch buffers are warmed (first read allocates them), repeated
// reads allocate nothing.
func TestMailboxReadZeroAllocSteadyState(t *testing.T) {
	mb := NewMailbox(1, 4, 8)
	for i := 0; i < 6; i++ {
		mb.Push(0, make([]float32, 8), float64(i))
	}
	out := make([]MailEntry, 4)
	mb.Read(0, out) // warm the scratch vectors
	allocs := testing.AllocsPerRun(100, func() {
		mb.Read(0, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Read allocates %v times per call", allocs)
	}
}

// TestMailboxConcurrentReadPush drives concurrent Push and Read traffic on
// the same node. Under -race this reproduced the pre-fix aliasing bug
// (readers held slices the pusher wrote in place); now it must run clean,
// and every vector a reader observes must be internally consistent (each
// push writes a uniform vector, so a torn read shows mixed values).
func TestMailboxConcurrentReadPush(t *testing.T) {
	const dim = 16
	mb := NewMailbox(2, 4, dim)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		vec := make([]float32, dim)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range vec {
				vec[j] = float32(i)
			}
			mb.Push(0, vec, float64(i))
			if i%3 == 0 {
				mb.Push(1, vec, float64(i))
			}
		}
	}()
	out := make([]MailEntry, 4)
	for r := 0; r < 2000; r++ {
		n := mb.Read(0, out)
		for i := 0; i < n; i++ {
			v := out[i].Vec
			for j := 1; j < dim; j++ {
				if v[j] != v[0] {
					t.Fatalf("torn read: entry %d = %v", i, v)
				}
			}
		}
		mb.Count(1)
	}
	close(stop)
	<-done
}

// TestMemoryStoreMonotonicLastUpdate pins the timestamp-regression fix:
// writes landing out of timestamp order update the vector but clamp the
// last-update stamp to the monotonic max.
func TestMemoryStoreMonotonicLastUpdate(t *testing.T) {
	s := NewMemoryStore(3, 2)
	s.Write([]int32{1}, tensor.FromSlice(1, 2, []float32{1, 1}), 10)
	s.Write([]int32{1}, tensor.FromSlice(1, 2, []float32{2, 2}), 4) // late arrival
	if s.Row(1)[0] != 2 {
		t.Fatalf("late write must still land: %v", s.Row(1))
	}
	if got := s.LastUpdate(1); got != 10 {
		t.Fatalf("lastUpdate regressed to %v, want clamp at 10", got)
	}
	s.WriteEach([]int32{1, 2}, tensor.FromSlice(2, 2, []float32{3, 3, 4, 4}), []float64{6, 5})
	if got := s.LastUpdate(1); got != 10 {
		t.Fatalf("WriteEach regressed lastUpdate to %v", got)
	}
	if got := s.LastUpdate(2); got != 5 {
		t.Fatalf("fresh node stamp %v, want 5", got)
	}
	s.Write([]int32{1}, tensor.FromSlice(1, 2, []float32{5, 5}), 12)
	if got := s.LastUpdate(1); got != 12 {
		t.Fatalf("forward stamp not taken: %v", got)
	}
}
