package memstore

import "fmt"

// StalenessLedger tracks, per node, how many memory-update rounds have been
// queued against the node but not yet applied to its memory vector — the
// unit the bounded-staleness pipeline (MSPipe, PAPERS.md) budgets on. The
// trainer bumps a node's round count when a batch's EndBatch queues a
// message for it (NoteQueued), zeroes it when a BeginBatch applies the
// node's pending update (NoteApplied), and records every anchor read
// (NoteServed) so /metrics can report how stale served memories actually
// were. Not safe for concurrent use: the trainer drives it from the
// single-goroutine batch loop.
type StalenessLedger struct {
	rounds []int32

	// Cumulative counters since the last Reset (epoch start).
	queued      int64 // node-rounds queued by EndBatch
	applied     int64 // node-rounds cleared by partial applies
	servedStale int64 // anchor reads that saw ≥1 unapplied round
	servedFresh int64 // anchor reads that saw fully-applied memory
	maxServed   int32 // worst staleness any read was served at
}

// NewStalenessLedger builds a zeroed ledger for numNodes nodes.
func NewStalenessLedger(numNodes int) *StalenessLedger {
	if numNodes <= 0 {
		panic(fmt.Sprintf("memstore: staleness ledger for %d nodes", numNodes))
	}
	return &StalenessLedger{rounds: make([]int32, numNodes)}
}

// NumNodes reports the ledger's capacity.
func (l *StalenessLedger) NumNodes() int { return len(l.rounds) }

// Rounds returns how many queued-but-unapplied update rounds node n has.
func (l *StalenessLedger) Rounds(n int32) int { return int(l.rounds[n]) }

// NoteQueued records one new pending update round for each node (a batch's
// unique event endpoints after EndBatch).
func (l *StalenessLedger) NoteQueued(nodes []int32) {
	for _, n := range nodes {
		l.rounds[n]++
	}
	l.queued += int64(len(nodes))
}

// NoteApplied clears the listed nodes' pending rounds (their memories are
// now fully up to date) and accounts the drained rounds.
func (l *StalenessLedger) NoteApplied(nodes []int32) {
	for _, n := range nodes {
		l.applied += int64(l.rounds[n])
		l.rounds[n] = 0
	}
}

// NoteServed records that node n's memory was read at its current staleness
// and returns that staleness in rounds.
func (l *StalenessLedger) NoteServed(n int32) int {
	r := l.rounds[n]
	if r > 0 {
		l.servedStale++
	} else {
		l.servedFresh++
	}
	if r > l.maxServed {
		l.maxServed = r
	}
	return int(r)
}

// Counters returns the cumulative accounting since the last Reset.
func (l *StalenessLedger) Counters() (queued, applied, servedStale, servedFresh int64, maxServed int) {
	return l.queued, l.applied, l.servedStale, l.servedFresh, int(l.maxServed)
}

// Reset zeroes all per-node rounds and counters (epoch start).
func (l *StalenessLedger) Reset() {
	for i := range l.rounds {
		l.rounds[i] = 0
	}
	l.queued, l.applied, l.servedStale, l.servedFresh, l.maxServed = 0, 0, 0, 0, 0
}

// MemoryBytes reports the ledger's resident size.
func (l *StalenessLedger) MemoryBytes() int64 { return int64(len(l.rounds)) * 4 }

// LedgerCheckpoint is the serializable deep copy of a StalenessLedger — the
// staleness section of a full-state training checkpoint. Checkpoints taken
// mid-epoch under s>0 must carry the ledger: the restored trainer owes the
// deferred nodes exactly the rounds the original one did, or the resumed
// run's apply schedule (and therefore its numerics) would diverge.
type LedgerCheckpoint struct {
	Rounds                                    []int32
	Queued, Applied, ServedStale, ServedFresh int64
	MaxServed                                 int32
}

// Checkpoint captures the ledger's full state.
func (l *StalenessLedger) Checkpoint() *LedgerCheckpoint {
	return &LedgerCheckpoint{
		Rounds:      append([]int32(nil), l.rounds...),
		Queued:      l.queued,
		Applied:     l.applied,
		ServedStale: l.servedStale,
		ServedFresh: l.servedFresh,
		MaxServed:   l.maxServed,
	}
}

// RestoreCheckpoint overwrites the ledger with a same-shape checkpoint.
func (l *StalenessLedger) RestoreCheckpoint(c *LedgerCheckpoint) error {
	if c == nil {
		return fmt.Errorf("memstore: nil ledger checkpoint")
	}
	if len(c.Rounds) != len(l.rounds) {
		return fmt.Errorf("memstore: ledger checkpoint has %d nodes, ledger holds %d", len(c.Rounds), len(l.rounds))
	}
	copy(l.rounds, c.Rounds)
	l.queued, l.applied = c.Queued, c.Applied
	l.servedStale, l.servedFresh = c.ServedStale, c.ServedFresh
	l.maxServed = c.MaxServed
	return nil
}
