package batching

import (
	"bytes"
	"encoding/gob"
)

// Checkpointable is the optional scheduler extension full-state training
// checkpoints use: a scheduler that implements it can have its mid-epoch walk
// position (and any adaptive state) captured and reinstated, so a resumed run
// produces exactly the batch cuts the interrupted run would have. Schedulers
// that don't implement it can only be checkpointed at epoch boundaries.
type Checkpointable interface {
	// CheckpointState serializes the scheduler's mutable state.
	CheckpointState() ([]byte, error)
	// RestoreCheckpointState reinstates state captured by CheckpointState on
	// an identically-configured scheduler.
	RestoreCheckpointState(data []byte) error
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

type fixedState struct{ Cursor int }

// CheckpointState implements Checkpointable.
func (f *Fixed) CheckpointState() ([]byte, error) {
	return gobEncode(fixedState{Cursor: f.cursor})
}

// RestoreCheckpointState implements Checkpointable.
func (f *Fixed) RestoreCheckpointState(data []byte) error {
	var s fixedState
	if err := gobDecode(data, &s); err != nil {
		return err
	}
	f.cursor = s.Cursor
	return nil
}

type etcState struct{ Cursor int }

// CheckpointState implements Checkpointable (the loss threshold is derived
// from configuration, so only the cursor is state).
func (e *ETC) CheckpointState() ([]byte, error) {
	return gobEncode(etcState{Cursor: e.cursor})
}

// RestoreCheckpointState implements Checkpointable.
func (e *ETC) RestoreCheckpointState(data []byte) error {
	var s etcState
	if err := gobDecode(data, &s); err != nil {
		return err
	}
	e.cursor = s.Cursor
	return nil
}

type neutronState struct {
	Cursor  int
	Pending []int
}

// CheckpointState implements Checkpointable: the window cursor plus the
// unscheduled remainder of the current window.
func (n *NeutronStream) CheckpointState() ([]byte, error) {
	return gobEncode(neutronState{Cursor: n.cursor, Pending: append([]int(nil), n.pending...)})
}

// RestoreCheckpointState implements Checkpointable.
func (n *NeutronStream) RestoreCheckpointState(data []byte) error {
	var s neutronState
	if err := gobDecode(data, &s); err != nil {
		return err
	}
	n.cursor = s.Cursor
	n.pending = append(n.pending[:0], s.Pending...)
	return nil
}
