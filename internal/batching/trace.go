package batching

import "github.com/cascade-ml/cascade/internal/obs"

// SpanScheduler is the optional tracing-aware extension of Scheduler.
// Schedulers that can attribute their internal phases (Cascade's TG-Diffuser
// boundary lookup, SG-Filter update, ABS decay decision) implement it; the
// trainer duck-types for it exactly like the maxr/stable reporters and falls
// back to plain Next/OnBatchEnd otherwise. parent may be nil (tracing
// disabled) — implementations must tolerate that, which the nil-safe span
// API makes free.
type SpanScheduler interface {
	Scheduler
	// NextSpanned is Next with the decision recorded as child spans of
	// parent (phase lanes + cut/boundary attrs).
	NextSpanned(parent *obs.Span) (Batch, bool)
	// OnBatchEndSpanned is OnBatchEnd with the filter/sensor updates
	// recorded as child spans of parent.
	OnBatchEndSpanned(fb Feedback, parent *obs.Span)
}
