package batching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
)

func genEvents(t testing.TB) []graph.Event {
	t.Helper()
	d := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 21, FeatDimOverride: 1, MinEvents: 1500})
	return d.Events
}

func assertPartition(t *testing.T, name string, batches []Batch, n int) {
	t.Helper()
	seen := make([]int, n)
	for _, b := range batches {
		if b.Indices != nil {
			for _, idx := range b.Indices {
				seen[idx]++
			}
			continue
		}
		for i := b.St; i < b.Ed; i++ {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("%s: event %d scheduled %d times", name, i, c)
		}
	}
}

func TestFixedPartition(t *testing.T) {
	for _, size := range []int{1, 7, 100, 1499, 1500, 9999} {
		f := NewFixed("TGL", 1500, size)
		batches := CollectBatches(f)
		assertPartition(t, "fixed", batches, 1500)
		for i, b := range batches {
			if b.Size() != size && i != len(batches)-1 {
				t.Fatalf("size %d: non-final batch of %d", size, b.Size())
			}
		}
	}
}

func TestFixedResetRestarts(t *testing.T) {
	f := NewFixed("TGL", 10, 4)
	b1, _ := f.Next()
	f.Reset()
	b2, _ := f.Next()
	if b1.St != b2.St || b1.Ed != b2.Ed {
		t.Fatalf("reset did not restart: %+v vs %+v", b1, b2)
	}
}

func TestNeutronStreamPartitionAndIndependence(t *testing.T) {
	events := genEvents(t)
	ns := NewNeutronStream(events, 200)
	batches := CollectBatches(ns)
	assertPartition(t, "neutronstream", batches, len(events))
	for bi, b := range batches {
		nodes := make(map[int32]bool)
		for _, idx := range b.Indices {
			e := events[idx]
			if nodes[e.Src] || nodes[e.Dst] {
				t.Fatalf("batch %d: dependent events share node", bi)
			}
			nodes[e.Src] = true
			nodes[e.Dst] = true
		}
	}
}

func TestNeutronStreamPreservesPerNodeOrder(t *testing.T) {
	events := genEvents(t)
	ns := NewNeutronStream(events, 300)
	lastIdx := make(map[int32]int)
	for _, b := range CollectBatches(ns) {
		// Within the whole schedule, any node's events must appear in
		// ascending event-index order across batches.
		for _, idx := range b.Indices {
			e := events[idx]
			for _, node := range []int32{e.Src, e.Dst} {
				if prev, ok := lastIdx[node]; ok && idx < prev {
					t.Fatalf("node %d: event %d scheduled after %d", node, idx, prev)
				}
				lastIdx[node] = idx
			}
		}
	}
}

func TestNeutronStreamFragmentsOnHotNodes(t *testing.T) {
	// A sequence where every event touches node 0 admits exactly one event
	// per layer.
	events := make([]graph.Event, 20)
	for i := range events {
		events[i] = graph.Event{Src: 0, Dst: int32(i + 1), Time: float64(i)}
	}
	ns := NewNeutronStream(events, 10)
	batches := CollectBatches(ns)
	if len(batches) != 20 {
		t.Fatalf("hot-node sequence gave %d layers, want 20", len(batches))
	}
}

func TestETCPartitionAndExpansion(t *testing.T) {
	events := genEvents(t)
	const base = 100
	etc := NewETC(events, base)
	if etc.Threshold() <= 0 {
		t.Fatalf("threshold %d", etc.Threshold())
	}
	batches := CollectBatches(etc)
	assertPartition(t, "etc", batches, len(events))
	mean := MeanBatchSize(batches)
	if mean < base {
		t.Fatalf("ETC mean batch %.0f below base %d", mean, base)
	}
	// The paper reports modest expansion (900 → ~1123); on skewed graphs
	// expansion must not run away.
	if mean > 10*base {
		t.Fatalf("ETC mean batch %.0f implausibly large", mean)
	}
}

func TestETCExpandsOnDisjointEvents(t *testing.T) {
	// Fully node-disjoint events have zero information loss: ETC should
	// produce batches above base size whenever the threshold allows it.
	events := make([]graph.Event, 100)
	for i := range events {
		events[i] = graph.Event{Src: int32(2 * i), Dst: int32(2*i + 1), Time: float64(i)}
	}
	// Profile threshold over a repeated-node prefix to make it positive.
	hot := make([]graph.Event, 10)
	for i := range hot {
		hot[i] = graph.Event{Src: 0, Dst: 1, Time: float64(i)}
	}
	all := append(hot, events...)
	etc := NewETC(all, 10)
	batches := CollectBatches(etc)
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	if batches[len(batches)-1].Size() == 10 && len(batches) == 11 {
		t.Fatal("ETC never expanded past base despite disjoint tail")
	}
	assertPartition(t, "etc-disjoint", batches, len(all))
}

func TestBatchEventsMaterialization(t *testing.T) {
	events := []graph.Event{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	r := Batch{St: 1, Ed: 3}
	if got := r.Events(events); len(got) != 2 || got[0].Src != 1 {
		t.Fatalf("range events %+v", got)
	}
	ix := Batch{Indices: []int{0, 2}}
	if got := ix.Events(events); len(got) != 2 || got[1].Src != 2 {
		t.Fatalf("indexed events %+v", got)
	}
	if ix.Size() != 2 || r.Size() != 2 {
		t.Fatal("sizes")
	}
}

func TestMeanBatchSizeEmpty(t *testing.T) {
	if MeanBatchSize(nil) != 0 {
		t.Fatal("mean of nothing")
	}
}

// Property: for random event streams, every scheduler partitions the
// sequence exactly.
func TestSchedulersPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, baseRaw uint8) bool {
		n := int(nRaw)%500 + 50
		base := int(baseRaw)%60 + 5
		rng := rand.New(rand.NewSource(seed))
		events := make([]graph.Event, n)
		for i := range events {
			s := int32(rng.Intn(40))
			d := int32(rng.Intn(40))
			if d == s {
				d = (d + 1) % 40
			}
			events[i] = graph.Event{Src: s, Dst: d, Time: float64(i)}
		}
		for _, s := range []Scheduler{
			NewFixed("TGL", n, base),
			NewNeutronStream(events, base),
			NewETC(events, base),
		} {
			count := make([]int, n)
			s.Reset()
			for {
				b, ok := s.Next()
				if !ok {
					break
				}
				if b.Indices != nil {
					for _, idx := range b.Indices {
						count[idx]++
					}
				} else {
					for i := b.St; i < b.Ed; i++ {
						count[i]++
					}
				}
				s.OnBatchEnd(Feedback{})
			}
			for _, c := range count {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledFixedPartition(t *testing.T) {
	s := NewShuffledFixed("TGL", 1000, 64, 7)
	s.Reset()
	var batches []Batch
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
	}
	assertPartition(t, "shuffled", batches, 1000)
	// Order must actually be shuffled (with 16 batches the identity
	// permutation is vanishingly unlikely over a few resets).
	identityEvery := true
	for trial := 0; trial < 3; trial++ {
		s.Reset()
		first, _ := s.Next()
		if first.St != 0 {
			identityEvery = false
		}
	}
	if identityEvery {
		t.Fatal("shuffle never moved the first batch")
	}
}

func TestShuffledFixedIntraBatchChronology(t *testing.T) {
	events := genEvents(t)
	s := NewShuffledFixed("TGL", len(events), 100, 3)
	s.Reset()
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		for i := b.St + 1; i < b.Ed; i++ {
			if events[i].Time < events[i-1].Time {
				t.Fatal("intra-batch order broken")
			}
		}
	}
}

// TestUniqueNodes pins the first-touch dedup the staleness ledger relies
// on: one entry per distinct endpoint, ordered by first appearance, for
// both contiguous and indexed batches.
func TestUniqueNodes(t *testing.T) {
	events := []graph.Event{
		{Src: 3, Dst: 1, Time: 1},
		{Src: 1, Dst: 2, Time: 2},
		{Src: 2, Dst: 3, Time: 3},
		{Src: 4, Dst: 4, Time: 4},
	}
	got := UniqueNodes(events, nil)
	want := []int32{3, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("unique nodes %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unique nodes %v, want %v", got, want)
		}
	}
	// Append-into-dst reuses the caller's slice.
	dst := make([]int32, 0, 8)
	if got := UniqueNodes(events[:1], dst); len(got) != 2 || &got[0] != &dst[:1][0] {
		t.Fatalf("dst reuse broken: %v", got)
	}
	b := Batch{Indices: []int{3, 0}}
	if got := b.Nodes(events); len(got) != 3 || got[0] != 4 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("indexed batch nodes %v", got)
	}
}
