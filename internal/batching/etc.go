package batching

import "github.com/cascade-ml/cascade/internal/graph"

// ETC reimplements the information-loss-bounded batching of ETC (Gao et
// al., VLDB'24) as the paper characterizes it (§5.1, §5.6): starting from a
// base batch, subsequent events are appended as long as the batch's
// information loss stays within a threshold auto-detected from the
// pre-defined small batch size.
//
// Information loss of a batch counts the expected stale node updates: a
// node appearing c times in a batch uses memories that miss c−1 of its own
// in-batch updates, so L(batch) = Σ_v max(0, c_v − 1). The threshold is the
// maximum L observed when cutting the sequence into base-size batches —
// "ensure the information loss of the enlarged batches is not worse than
// the baseline".
//
// The paper's criticism, which this implementation reproduces structurally,
// is that the bound is *global per batch*: one hot node drives L to the
// threshold and blocks further expansion even when pending events touch
// completely fresh nodes (§5.6).
type ETC struct {
	events    []graph.Event
	base      int
	threshold int

	cursor int
	counts map[int32]int
}

// NewETC builds the scheduler and profiles the information-loss threshold
// from the base batch size.
func NewETC(events []graph.Event, base int) *ETC {
	if base <= 0 {
		panic("batching: non-positive ETC base batch size")
	}
	e := &ETC{events: events, base: base, counts: make(map[int32]int)}
	e.threshold = e.profileThreshold()
	return e
}

// profileThreshold computes max L over base-size batches.
func (e *ETC) profileThreshold() int {
	maxL := 0
	counts := make(map[int32]int)
	flush := func() {
		l := 0
		for _, c := range counts {
			if c > 1 {
				l += c - 1
			}
		}
		if l > maxL {
			maxL = l
		}
		clear(counts)
	}
	for i, ev := range e.events {
		counts[ev.Src]++
		counts[ev.Dst]++
		if (i+1)%e.base == 0 {
			flush()
		}
	}
	if len(counts) > 0 {
		flush()
	}
	return maxL
}

// Threshold exposes the detected information-loss bound (for experiments).
func (e *ETC) Threshold() int { return e.threshold }

// Name implements Scheduler.
func (e *ETC) Name() string { return "ETC" }

// Reset implements Scheduler.
func (e *ETC) Reset() { e.cursor = 0 }

// Next implements Scheduler: expand beyond the base batch while information
// loss stays within the threshold.
func (e *ETC) Next() (Batch, bool) {
	n := len(e.events)
	if e.cursor >= n {
		return Batch{}, false
	}
	st := e.cursor
	ed := st
	clear(e.counts)
	loss := 0
	add := func(node int32) {
		e.counts[node]++
		if e.counts[node] > 1 {
			loss++
		}
	}
	// Base batch is always admitted (the baseline's own loss level).
	for ed < n && ed-st < e.base {
		ev := e.events[ed]
		add(ev.Src)
		add(ev.Dst)
		ed++
	}
	// Expansion: stop at the first event that would push L past the bound.
	for ed < n {
		ev := e.events[ed]
		delta := 0
		if e.counts[ev.Src] >= 1 {
			delta++
		}
		if e.counts[ev.Dst] >= 1 {
			delta++
		}
		if loss+delta > e.threshold {
			break
		}
		add(ev.Src)
		add(ev.Dst)
		ed++
	}
	e.cursor = ed
	return Batch{St: st, Ed: ed}, true
}

// OnBatchEnd implements Scheduler (ETC's bound is static after profiling).
func (e *ETC) OnBatchEnd(Feedback) {}
