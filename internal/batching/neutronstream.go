package batching

import "github.com/cascade-ml/cascade/internal/graph"

// NeutronStream reimplements the batching policy of NeutronStream (Chen et
// al., VLDB'23) as the paper characterizes it (§5.1, §5.6): a dependency
// graph is built over each window of input events; events that depend on
// one another (share a node, directly or through earlier window events)
// must be processed sequentially, and only mutually independent events are
// parallelized.
//
// Concretely, each base window of Window events is partitioned into
// independence layers by a greedy antichain sweep: walk the window in
// order, placing each event in the current layer unless it touches a node
// already touched by the layer, in which case it waits for a later layer.
// Each layer becomes one training batch. Layers preserve event order for
// any shared node, so memory-update semantics match sequential processing.
//
// The paper observes NeutronStream often runs *slower* than fixed batching:
// the dependency analysis adds overhead while the layers stay small on
// graphs with hot nodes. This implementation reproduces exactly that
// behaviour — the layering cost is real work, and hot nodes fragment
// windows into many small batches.
type NeutronStream struct {
	events []graph.Event
	window int

	cursor  int   // next unscheduled event
	pending []int // remaining event indices of the current window, in order
	touched map[int32]struct{}
}

// NewNeutronStream builds the scheduler over the full event sequence with
// the given base window (the paper uses the common base batch size 900).
func NewNeutronStream(events []graph.Event, window int) *NeutronStream {
	if window <= 0 {
		panic("batching: non-positive NeutronStream window")
	}
	return &NeutronStream{events: events, window: window, touched: make(map[int32]struct{})}
}

// Name implements Scheduler.
func (n *NeutronStream) Name() string { return "NeutronStream" }

// Reset implements Scheduler.
func (n *NeutronStream) Reset() {
	n.cursor = 0
	n.pending = n.pending[:0]
}

// Next implements Scheduler: returns the next independence layer.
func (n *NeutronStream) Next() (Batch, bool) {
	if len(n.pending) == 0 {
		if n.cursor >= len(n.events) {
			return Batch{}, false
		}
		// Load the next window (the dependency-graph construction step).
		end := n.cursor + n.window
		if end > len(n.events) {
			end = len(n.events)
		}
		for i := n.cursor; i < end; i++ {
			n.pending = append(n.pending, i)
		}
		n.cursor = end
	}
	// Greedy antichain: earliest-first, skipping events that conflict with
	// a node already claimed by this layer.
	clear(n.touched)
	layer := make([]int, 0, len(n.pending))
	rest := n.pending[:0]
	for _, idx := range n.pending {
		e := n.events[idx]
		_, srcBusy := n.touched[e.Src]
		_, dstBusy := n.touched[e.Dst]
		if srcBusy || dstBusy {
			rest = append(rest, idx)
			// The blocked event's nodes must also block later events —
			// otherwise a later event could overtake this one on a shared
			// node, violating per-node event order.
			n.touched[e.Src] = struct{}{}
			n.touched[e.Dst] = struct{}{}
			continue
		}
		n.touched[e.Src] = struct{}{}
		n.touched[e.Dst] = struct{}{}
		layer = append(layer, idx)
	}
	n.pending = rest
	return Batch{Indices: layer}, true
}

// OnBatchEnd implements Scheduler (NeutronStream is feedback-free).
func (n *NeutronStream) OnBatchEnd(Feedback) {}
