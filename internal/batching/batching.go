// Package batching defines the scheduler contract every batching policy in
// this repo implements — the paper's baseline (TGL-style fixed batching),
// the prior dynamic-batching systems it compares against (NeutronStream,
// ETC), and Cascade itself (internal/core) — plus the shared Batch type.
//
// A scheduler walks the training event sequence once per epoch and decides
// where each training batch ends. The trainer is policy-agnostic: it asks
// for the next batch, runs the three TGNN training steps on it (§2.3), and
// reports runtime feedback (training loss, memory-update record) that
// adaptive schedulers may use.
package batching

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// Batch identifies the events of one training iteration. Most schedulers
// produce contiguous ranges [St, Ed); NeutronStream-style independence
// layers carry explicit ascending Indices instead.
type Batch struct {
	St, Ed  int
	Indices []int
}

// Size returns the number of events in the batch.
func (b Batch) Size() int {
	if b.Indices != nil {
		return len(b.Indices)
	}
	return b.Ed - b.St
}

// Events materializes the batch's events from the full sequence. Contiguous
// batches alias the input slice; indexed batches allocate.
func (b Batch) Events(events []graph.Event) []graph.Event {
	if b.Indices == nil {
		return events[b.St:b.Ed]
	}
	out := make([]graph.Event, len(b.Indices))
	for i, idx := range b.Indices {
		out[i] = events[idx]
	}
	return out
}

// UniqueNodes returns the distinct endpoint nodes of events in first-touch
// order, appending to dst (pass nil, or a recycled slice to avoid the
// allocation). This is the per-node dependency set the bounded-staleness
// ledger budgets on: each listed node receives exactly one pending
// memory-update round from the batch (messages collapse most-recent per
// node).
func UniqueNodes(events []graph.Event, dst []int32) []int32 {
	seen := make(map[int32]struct{}, 2*len(events))
	for _, e := range events {
		for _, n := range [2]int32{e.Src, e.Dst} {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				dst = append(dst, n)
			}
		}
	}
	return dst
}

// Nodes returns the batch's unique endpoint nodes in first-touch order,
// materializing from the full event sequence.
func (b Batch) Nodes(events []graph.Event) []int32 {
	return UniqueNodes(b.Events(events), nil)
}

// Feedback is the runtime signal a trainer reports after finishing a batch.
type Feedback struct {
	// Loss is the batch's training loss.
	Loss float64
	// Nodes / PreMem / PostMem describe the memory updates the batch
	// triggered (inputs to Cascade's SG-Filter; ignored by static policies).
	Nodes   []int32
	PreMem  *tensor.Matrix
	PostMem *tensor.Matrix
}

// Scheduler is the batching-policy contract.
type Scheduler interface {
	// Name identifies the policy in experiment output ("TGL", "ETC", …).
	Name() string
	// Reset restarts the walk at event 0 (epoch start).
	Reset()
	// Next returns the next batch; ok == false when the sequence is
	// exhausted for this epoch.
	Next() (Batch, bool)
	// OnBatchEnd delivers runtime feedback for the batch most recently
	// returned by Next.
	OnBatchEnd(fb Feedback)
}

// Fixed is the TGL-style fixed-size batching baseline (§5.1): the event
// sequence is cut into consecutive chunks of exactly Size events. It also
// serves as TGL-LB (the "just use larger batches" control of Fig. 12b) with
// a larger Size.
type Fixed struct {
	name   string
	size   int
	n      int
	cursor int
}

// NewFixed builds a fixed-size scheduler named like the framework it stands
// in for ("TGL", "TGLite", "TGL-LB").
func NewFixed(name string, numEvents, size int) *Fixed {
	if size <= 0 {
		panic("batching: non-positive batch size")
	}
	return &Fixed{name: name, size: size, n: numEvents}
}

// Name implements Scheduler.
func (f *Fixed) Name() string { return f.name }

// Reset implements Scheduler.
func (f *Fixed) Reset() { f.cursor = 0 }

// Next implements Scheduler.
func (f *Fixed) Next() (Batch, bool) {
	if f.cursor >= f.n {
		return Batch{}, false
	}
	st := f.cursor
	ed := st + f.size
	if ed > f.n {
		ed = f.n
	}
	f.cursor = ed
	return Batch{St: st, Ed: ed}, true
}

// OnBatchEnd implements Scheduler (fixed batching ignores feedback).
func (f *Fixed) OnBatchEnd(Feedback) {}

// CollectBatches runs a scheduler to exhaustion and returns every batch; a
// test and experiment helper.
func CollectBatches(s Scheduler) []Batch {
	var out []Batch
	s.Reset()
	for {
		b, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, b)
		s.OnBatchEnd(Feedback{})
	}
}

// MeanBatchSize returns the average size of a batch list (0 when empty).
func MeanBatchSize(batches []Batch) float64 {
	if len(batches) == 0 {
		return 0
	}
	total := 0
	for _, b := range batches {
		total += b.Size()
	}
	return float64(total) / float64(len(batches))
}

// ShuffledFixed is fixed-size batching with TGL's random batch-shuffling
// strategy (§5.1: the baseline "introduces a random batch shuffling strategy
// to improve the resulting models' losses"): the event sequence is still cut
// into consecutive chronological chunks, but the order in which chunks are
// trained is re-permuted every epoch. Events inside a batch keep their
// order; only inter-batch scheduling randomizes, trading strict global
// chronology for gradient decorrelation.
type ShuffledFixed struct {
	name   string
	size   int
	n      int
	rng    *rand.Rand
	order  []int
	cursor int
}

// NewShuffledFixed builds the shuffled variant.
func NewShuffledFixed(name string, numEvents, size int, seed int64) *ShuffledFixed {
	if size <= 0 {
		panic("batching: non-positive batch size")
	}
	s := &ShuffledFixed{name: name, size: size, n: numEvents, rng: rand.New(rand.NewSource(seed))}
	batches := (numEvents + size - 1) / size
	s.order = make([]int, batches)
	for i := range s.order {
		s.order[i] = i
	}
	return s
}

// Name implements Scheduler.
func (s *ShuffledFixed) Name() string { return s.name }

// Reset implements Scheduler: re-permute the batch order.
func (s *ShuffledFixed) Reset() {
	s.cursor = 0
	s.rng.Shuffle(len(s.order), func(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] })
}

// Next implements Scheduler.
func (s *ShuffledFixed) Next() (Batch, bool) {
	if s.cursor >= len(s.order) {
		return Batch{}, false
	}
	b := s.order[s.cursor]
	s.cursor++
	st := b * s.size
	ed := st + s.size
	if ed > s.n {
		ed = s.n
	}
	return Batch{St: st, Ed: ed}, true
}

// OnBatchEnd implements Scheduler.
func (s *ShuffledFixed) OnBatchEnd(Feedback) {}
