package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(25, 50, 75, 100)
	for _, v := range []float64{0, 10, 25, 26, 60, 99, 100, 101, 500} {
		h.Add(v)
	}
	// ≤25: {0,10,25}=3; ≤50: {26}=1; ≤75: {60}=1; ≤100: {99,100}=2; >100: {101,500}=2
	want := []int64{3, 1, 1, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 9 {
		t.Fatalf("total %d", h.Total())
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum %v", sum)
	}
	labels := h.BucketLabels()
	if labels[0] != "≤25" || labels[4] != ">100" {
		t.Fatalf("labels %v", labels)
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending edges")
		}
	}()
	NewHistogram(10, 10)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
	if e := Summarize(nil); e.N != 0 || e.Mean != 0 {
		t.Fatalf("empty summary %+v", e)
	}
}

func TestNormalizeAndSpeedup(t *testing.T) {
	n := Normalize([]float64{2, 4, 6}, 2)
	if n[0] != 1 || n[2] != 3 {
		t.Fatalf("normalize %v", n)
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Fatal("zero base")
	}
	if Speedup(10, 5) != 2 {
		t.Fatal("speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("zero latency")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean %v", g)
	}
	if g := GeoMean([]float64{2, -1, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean with skip %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean empty")
	}
}

func TestFormatRow(t *testing.T) {
	row := FormatRow("WIKI", []float64{1.5, 2.25}, "%6.2f")
	if row == "" || len(row) < 20 {
		t.Fatalf("row %q", row)
	}
}

// Property: fractions are a probability distribution for any inputs.
func TestHistogramFractionsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(1, 2, 3)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		sum := 0.0
		for _, fr := range h.Fractions() {
			if fr < 0 || fr > 1 {
				return false
			}
			sum += fr
		}
		return h.Total() == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
