// Package stats provides the small statistical helpers the experiment
// drivers share: histograms with fixed bucket edges (Fig. 3), summary
// statistics, and baseline-normalized series (Figs. 2, 10–16 all report
// values normalized to TGL).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts values into buckets delimited by ascending upper edges;
// values above the last edge land in the overflow bucket.
type Histogram struct {
	Edges  []float64
	Counts []int64
	total  int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// edges (e.g. 25, 50, 75, 100 for Fig. 3's degree buckets).
func NewHistogram(edges ...float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("stats: histogram edges not ascending at %d", i))
		}
	}
	return &Histogram{Edges: edges, Counts: make([]int64, len(edges)+1)}
}

// Add counts one observation.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.Edges, v)
	h.Counts[i]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Fractions returns each bucket's share of observations.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BucketLabels names the buckets ("≤25", "≤50", …, ">100").
func (h *Histogram) BucketLabels() []string {
	out := make([]string, len(h.Counts))
	for i, e := range h.Edges {
		out[i] = fmt.Sprintf("≤%g", e)
	}
	if len(h.Edges) > 0 {
		out[len(h.Counts)-1] = fmt.Sprintf(">%g", h.Edges[len(h.Edges)-1])
	}
	return out
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Std            float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	return s
}

// Normalize divides each value by base, the "normalized to baseline"
// convention of every evaluation figure. A zero base yields zeros.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// Speedup returns baseLatency/latency — how many times faster the contender
// (latency) runs than the baseline (baseLatency).
func Speedup(baseLatency, latency float64) float64 {
	if latency == 0 {
		return 0
	}
	return baseLatency / latency
}

// GeoMean returns the geometric mean of positive values (the conventional
// "average speedup"); non-positive entries are skipped.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// FormatRow renders label + values as a fixed-width experiment output row.
func FormatRow(label string, values []float64, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", label)
	for _, v := range values {
		fmt.Fprintf(&b, " "+format, v)
	}
	return b.String()
}
