package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The vector microkernels fuse multiply-adds and reorder the reduction, so
// they are not bitwise against the scalar definitions — the contract is
// agreement within float32 rounding noise, checked over ragged lengths that
// exercise both the eight-lane body and the scalar tail. (Bitwise pins live
// one level up: fused-vs-eager and plan-vs-eager comparisons always run the
// same kernel choice on both sides.)
func TestSimdKernelsMatchPortable(t *testing.T) {
	if !useAVX2 {
		t.Skip("vector kernels not active on this host")
	}
	rng := rand.New(rand.NewSource(5))
	close := func(got, want float32) bool {
		return math.Abs(float64(got-want)) <= 1e-3*(1+math.Abs(float64(want)))
	}
	for _, n := range []int{1, 3, 7, 8, 9, 16, 33, 100, 257} {
		rows := make([][]float32, 4)
		for r := range rows {
			rows[r] = make([]float32, n)
			for j := range rows[r] {
				rows[r][j] = float32(rng.NormFloat64())
			}
		}
		d := make([]float32, n)
		want := make([]float32, n)
		for j := range d {
			v := float32(rng.NormFloat64())
			d[j], want[j] = v, v
		}
		a0, a1, a2, a3 := float32(0.3), float32(-1.2), float32(2.7), float32(0.05)
		axpy4(d, rows[0], rows[1], rows[2], rows[3], a0, a1, a2, a3)
		for j := range want {
			want[j] += a0*rows[0][j] + a1*rows[1][j] + a2*rows[2][j] + a3*rows[3][j]
			if !close(d[j], want[j]) {
				t.Fatalf("axpy4 n=%d j=%d: %v vs %v", n, j, d[j], want[j])
			}
		}
		s0, s1, s2, s3 := dot4(rows[0], rows[1], rows[2], rows[3], rows[0])
		var w0, w1, w2, w3 float32
		for k := 0; k < n; k++ {
			w0 += rows[0][k] * rows[1][k]
			w1 += rows[0][k] * rows[2][k]
			w2 += rows[0][k] * rows[3][k]
			w3 += rows[0][k] * rows[0][k]
		}
		for i, pair := range [][2]float32{{s0, w0}, {s1, w1}, {s2, w2}, {s3, w3}} {
			if !close(pair[0], pair[1]) {
				t.Fatalf("dot4 n=%d out%d: %v vs %v", n, i, pair[0], pair[1])
			}
		}
	}
}
