package tensor

import (
	"fmt"

	"github.com/cascade-ml/cascade/internal/parallel"
)

// Register-blocked GEMM kernels for the three products the autograd engine
// runs: forward a·b, input-grad a·bᵀ and weight-grad aᵀ·b. All three use a
// 2×4 register tile — two destination rows held against four streamed
// source rows — so the inner loop carries eight independent accumulator
// chains, enough to keep both FP ports busy (and to saturate the FMA units
// when built with GOAMD64 >= v3; see the Makefile). Matrices the models emit
// are at most a few hundred columns, so one row tile of b fits in L1 and the
// whole right-hand side fits in L2; no explicit cache packing is needed.
//
// The plain and ᵀB kernels parallelize over destination rows (disjoint
// writes, no synchronization). The ᵀA kernel is different: its output is a
// small weight-shaped matrix while the reduction dimension k runs over batch
// rows, so it fans out over k-chunks with a per-worker partial output
// (drawn from the tensor arena) and a final sum — that is what makes the
// backward pass scale with cores instead of serializing on weight grads.

// matmulParallelThreshold is the flop count above which the GEMM kernels fan
// out across cores. Below it the goroutine overhead outweighs the win.
const matmulParallelThreshold = 1 << 16

// MatMulInto computes dst = a·b. dst must be pre-shaped (a.Rows × b.Cols) and
// must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	if a.Rows*a.Cols*b.Cols >= matmulParallelThreshold {
		parallel.ForChunks(a.Rows, 0, func(lo, hi int) { gemmRows(dst, a, b, lo, hi) })
	} else {
		gemmRows(dst, a, b, 0, a.Rows)
	}
}

// MatMulTransBInto computes dst = a·bᵀ, used by autograd for input grads.
func MatMulTransBInto(dst, a, b *Matrix) {
	mustTransBShapes(dst, a, b)
	if a.Rows*a.Cols*b.Rows >= matmulParallelThreshold {
		parallel.ForChunks(a.Rows, 0, func(lo, hi int) { gemmTransB(dst, a, b, lo, hi, false) })
	} else {
		gemmTransB(dst, a, b, 0, a.Rows, false)
	}
}

// MatMulTransBAccum computes dst += a·bᵀ, fused: no temporary product
// matrix, the tile sums land directly in dst.
func MatMulTransBAccum(dst, a, b *Matrix) {
	mustTransBShapes(dst, a, b)
	if a.Rows*a.Cols*b.Rows >= matmulParallelThreshold {
		parallel.ForChunks(a.Rows, 0, func(lo, hi int) { gemmTransB(dst, a, b, lo, hi, true) })
	} else {
		gemmTransB(dst, a, b, 0, a.Rows, true)
	}
}

// MatMulTransAInto computes dst = aᵀ·b, used by autograd for weight grads.
func MatMulTransAInto(dst, a, b *Matrix) {
	mustTransAShapes(dst, a, b)
	dst.Zero()
	transAAccum(dst, a, b)
}

// MatMulTransAAccum computes dst += aᵀ·b, fused like MatMulTransBAccum.
func MatMulTransAAccum(dst, a, b *Matrix) {
	mustTransAShapes(dst, a, b)
	transAAccum(dst, a, b)
}

func transAAccum(dst, a, b *Matrix) {
	workers := parallel.Workers(a.Rows, 0)
	if workers <= 1 || a.Rows*a.Cols*b.Cols < matmulParallelThreshold {
		gemmTransA(dst, a, b, 0, a.Rows)
		return
	}
	// Fan out over k-chunks: each worker reduces its slice of the batch into
	// a private weight-shaped partial from the arena, summed at the end.
	partials := make([]*Matrix, workers)
	parallel.ForChunksWorker(a.Rows, workers, func(w, lo, hi int) {
		p := NewMatrix(dst.Rows, dst.Cols)
		partials[w] = p
		gemmTransA(p, a, b, lo, hi)
	})
	for _, p := range partials {
		if p != nil {
			AxpyInto(dst, p, 1)
			p.Release()
		}
	}
}

func mustTransAShapes(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTA shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTA dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
}

func mustTransBShapes(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTB shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTB dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
}

// gemmRows accumulates dst[lo:hi) += a[lo:hi)·b. The k loop is outermost in
// quads so the four streamed b rows stay hot in L1 across every destination
// row pair; each inner iteration performs eight multiply-adds against one
// destination load/store pair per row. (k-outer measures ~25% faster here
// than the i-outer variant: two L2 streams — destination rows in and out —
// instead of four concurrent b-row streams.)
func gemmRows(dst, a, b *Matrix, lo, hi int) {
	n, kd := dst.Cols, a.Cols
	k := 0
	for ; k+4 <= kd; k += 4 {
		b0 := b.Data[k*n : k*n+n]
		b1 := b.Data[(k+1)*n : (k+1)*n+n]
		b2 := b.Data[(k+2)*n : (k+2)*n+n]
		b3 := b.Data[(k+3)*n : (k+3)*n+n]
		if useAVX2 {
			for i := lo; i < hi; i++ {
				ar := a.Data[i*kd+k : i*kd+k+4]
				axpy4(dst.Data[i*n:i*n+n], b0, b1, b2, b3, ar[0], ar[1], ar[2], ar[3])
			}
			continue
		}
		i := lo
		for ; i+2 <= hi; i += 2 {
			ar0 := a.Data[i*kd+k : i*kd+k+4]
			ar1 := a.Data[(i+1)*kd+k : (i+1)*kd+k+4]
			a00, a01, a02, a03 := ar0[0], ar0[1], ar0[2], ar0[3]
			a10, a11, a12, a13 := ar1[0], ar1[1], ar1[2], ar1[3]
			d0 := dst.Data[i*n : i*n+n]
			d1 := dst.Data[(i+1)*n : (i+1)*n+n]
			for j, bv0 := range b0 {
				bv1, bv2, bv3 := b1[j], b2[j], b3[j]
				d0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
				d1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			}
		}
		if i < hi {
			ar0 := a.Data[i*kd+k : i*kd+k+4]
			a00, a01, a02, a03 := ar0[0], ar0[1], ar0[2], ar0[3]
			d0 := dst.Data[i*n : i*n+n]
			for j, bv0 := range b0 {
				d0[j] += a00*bv0 + a01*b1[j] + a02*b2[j] + a03*b3[j]
			}
		}
	}
	for ; k < kd; k++ {
		brow := b.Data[k*n : k*n+n]
		for i := lo; i < hi; i++ {
			av := a.Data[i*kd+k]
			if av == 0 {
				continue
			}
			d := dst.Data[i*n : i*n+n]
			for j, bv := range brow {
				d[j] += av * bv
			}
		}
	}
}

// gemmTransB computes (or accumulates into) dst rows [lo, hi) of a·bᵀ. Both
// operands are traversed along contiguous rows, so the tile is a pure
// dot-product block: 2 a-rows × 4 b-rows with eight register accumulators
// and no stores inside the k loop.
func gemmTransB(dst, a, b *Matrix, lo, hi int, accumulate bool) {
	n, kd := dst.Cols, a.Cols
	if useAVX2 {
		gemmTransBVec(dst, a, b, lo, hi, accumulate)
		return
	}
	i := lo
	for ; i+2 <= hi; i += 2 {
		ar0 := a.Data[i*kd : i*kd+kd]
		ar1 := a.Data[(i+1)*kd : (i+1)*kd+kd]
		d0 := dst.Data[i*n : i*n+n]
		d1 := dst.Data[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*kd : j*kd+kd]
			b1 := b.Data[(j+1)*kd : (j+1)*kd+kd]
			b2 := b.Data[(j+2)*kd : (j+2)*kd+kd]
			b3 := b.Data[(j+3)*kd : (j+3)*kd+kd]
			var c00, c01, c02, c03, c10, c11, c12, c13 float32
			for k, a0 := range ar0 {
				a1 := ar1[k]
				bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
				c00 += a0 * bv0
				c01 += a0 * bv1
				c02 += a0 * bv2
				c03 += a0 * bv3
				c10 += a1 * bv0
				c11 += a1 * bv1
				c12 += a1 * bv2
				c13 += a1 * bv3
			}
			if accumulate {
				d0[j] += c00
				d0[j+1] += c01
				d0[j+2] += c02
				d0[j+3] += c03
				d1[j] += c10
				d1[j+1] += c11
				d1[j+2] += c12
				d1[j+3] += c13
			} else {
				d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
				d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
			}
		}
		for ; j < n; j++ {
			brow := b.Data[j*kd : j*kd+kd]
			var c0, c1 float32
			for k, bv := range brow {
				c0 += ar0[k] * bv
				c1 += ar1[k] * bv
			}
			if accumulate {
				d0[j] += c0
				d1[j] += c1
			} else {
				d0[j], d1[j] = c0, c1
			}
		}
	}
	if i < hi {
		ar0 := a.Data[i*kd : i*kd+kd]
		d0 := dst.Data[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*kd : j*kd+kd]
			b1 := b.Data[(j+1)*kd : (j+1)*kd+kd]
			b2 := b.Data[(j+2)*kd : (j+2)*kd+kd]
			b3 := b.Data[(j+3)*kd : (j+3)*kd+kd]
			var c0, c1, c2, c3 float32
			for k, a0 := range ar0 {
				c0 += a0 * b0[k]
				c1 += a0 * b1[k]
				c2 += a0 * b2[k]
				c3 += a0 * b3[k]
			}
			if accumulate {
				d0[j] += c0
				d0[j+1] += c1
				d0[j+2] += c2
				d0[j+3] += c3
			} else {
				d0[j], d0[j+1], d0[j+2], d0[j+3] = c0, c1, c2, c3
			}
		}
		for ; j < n; j++ {
			brow := b.Data[j*kd : j*kd+kd]
			var c float32
			for k, bv := range brow {
				c += ar0[k] * bv
			}
			if accumulate {
				d0[j] += c
			} else {
				d0[j] = c
			}
		}
	}
}

// gemmTransBVec is gemmTransB on the vector microkernel: per destination
// row, four simultaneous eight-lane dot products against four b rows share
// one streamed read of the a row.
func gemmTransBVec(dst, a, b *Matrix, lo, hi int, accumulate bool) {
	n, kd := dst.Cols, a.Cols
	for i := lo; i < hi; i++ {
		ar := a.Data[i*kd : i*kd+kd]
		d := dst.Data[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			c0, c1, c2, c3 := dot4(ar,
				b.Data[j*kd:j*kd+kd], b.Data[(j+1)*kd:(j+1)*kd+kd],
				b.Data[(j+2)*kd:(j+2)*kd+kd], b.Data[(j+3)*kd:(j+3)*kd+kd])
			if accumulate {
				d[j] += c0
				d[j+1] += c1
				d[j+2] += c2
				d[j+3] += c3
			} else {
				d[j], d[j+1], d[j+2], d[j+3] = c0, c1, c2, c3
			}
		}
		for ; j < n; j++ {
			brow := b.Data[j*kd : j*kd+kd]
			var c float32
			for k, bv := range brow {
				c += ar[k] * bv
			}
			if accumulate {
				d[j] += c
			} else {
				d[j] = c
			}
		}
	}
}

// gemmTransA accumulates dst += aᵀ[kLo:kHi)·b: a rank-(kHi-kLo) update of
// the weight-shaped dst. The k loop is outermost in quads so the four b rows
// stay hot in L1 while every pair of destination rows takes its broadcast
// multiply-adds — the same 2×4 tile as gemmRows with the roles of a's axes
// swapped (a is read down columns, four strided loads per destination row
// pair, all hoisted out of the inner j loop).
func gemmTransA(dst, a, b *Matrix, kLo, kHi int) {
	n, ac := dst.Cols, a.Cols
	k := kLo
	for ; k+4 <= kHi; k += 4 {
		ar0 := a.Data[k*ac : k*ac+ac]
		ar1 := a.Data[(k+1)*ac : (k+1)*ac+ac]
		ar2 := a.Data[(k+2)*ac : (k+2)*ac+ac]
		ar3 := a.Data[(k+3)*ac : (k+3)*ac+ac]
		b0 := b.Data[k*n : k*n+n]
		b1 := b.Data[(k+1)*n : (k+1)*n+n]
		b2 := b.Data[(k+2)*n : (k+2)*n+n]
		b3 := b.Data[(k+3)*n : (k+3)*n+n]
		if useAVX2 {
			for i := 0; i < ac; i++ {
				axpy4(dst.Data[i*n:i*n+n], b0, b1, b2, b3, ar0[i], ar1[i], ar2[i], ar3[i])
			}
			continue
		}
		i := 0
		for ; i+2 <= ac; i += 2 {
			a00, a01, a02, a03 := ar0[i], ar1[i], ar2[i], ar3[i]
			a10, a11, a12, a13 := ar0[i+1], ar1[i+1], ar2[i+1], ar3[i+1]
			d0 := dst.Data[i*n : i*n+n]
			d1 := dst.Data[(i+1)*n : (i+1)*n+n]
			for j, bv0 := range b0 {
				bv1, bv2, bv3 := b1[j], b2[j], b3[j]
				d0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
				d1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			}
		}
		if i < ac {
			a00, a01, a02, a03 := ar0[i], ar1[i], ar2[i], ar3[i]
			d0 := dst.Data[i*n : i*n+n]
			for j, bv0 := range b0 {
				d0[j] += a00*bv0 + a01*b1[j] + a02*b2[j] + a03*b3[j]
			}
		}
	}
	for ; k < kHi; k++ {
		arow := a.Data[k*ac : k*ac+ac]
		brow := b.Data[k*n : k*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			d := dst.Data[i*n : i*n+n]
			for j, bv := range brow {
				d[j] += av * bv
			}
		}
	}
}
