package tensor

import "fmt"

// Tensor is a node in a dynamically built computation graph. Forward values
// are computed eagerly; Backward replays the tape in reverse topological
// order. This mirrors the define-by-run autograd of the PyTorch stack the
// paper's implementation uses, at the scale our models need (≤ a few thousand
// rows × a few hundred columns per op).
type Tensor struct {
	// Value holds the forward result. It is always non-nil.
	Value *Matrix
	// Grad accumulates ∂loss/∂Value during Backward. It is lazily
	// allocated for tensors that require grad.
	Grad *Matrix

	requiresGrad bool
	op           string
	inputs       []*Tensor
	backFn       func()

	// scratch marks a const leaf whose Value is tape-scoped (minted per batch,
	// e.g. an attention mask or a gathered-memory copy) and may be released by
	// FreeGraph. Ordinary Const leaves wrap caller-owned storage and are left
	// alone.
	scratch bool
	// scratchBufs holds auxiliary matrices an op retained for its backward
	// pass (e.g. LayerNorm's normalized activations); FreeGraph releases them
	// with the node.
	scratchBufs []*Matrix
	// freed makes FreeGraph idempotent per node.
	freed bool

	// planFast marks a rearm-able plan node (see NewPlanNode) whose backFn
	// covers the entire backward pass: Backward skips the topological sort
	// and runs the single closure. Only set when the node has no graph
	// inputs (the plan owns every upstream gradient).
	planFast bool

	// meta carries op-specific side data for tape inspectors (tapestats) and
	// the plan capturer: gather indices, slice offsets, activation kinds,
	// plan cost summaries. Nil for most nodes.
	meta any
}

// Var wraps m as a leaf tensor that participates in gradient computation
// (i.e. a trainable parameter or an input we want gradients for).
func Var(m *Matrix) *Tensor {
	return &Tensor{Value: m, requiresGrad: true, op: "var"}
}

// Const wraps m as a leaf tensor with no gradient (e.g. input features,
// detached node memories).
func Const(m *Matrix) *Tensor {
	return &Tensor{Value: m, op: "const"}
}

// ConstScratch wraps m as a constant leaf whose storage belongs to the tape:
// FreeGraph will release it along with the intermediate nodes. Use it for
// matrices minted fresh each batch (masks, time-delta columns, gathered
// memories) and never for caller-owned or long-lived storage.
func ConstScratch(m *Matrix) *Tensor {
	return &Tensor{Value: m, op: "const", scratch: true}
}

// retainScratch attaches aux to t so FreeGraph releases it with the node.
func (t *Tensor) retainScratch(aux ...*Matrix) {
	t.scratchBufs = append(t.scratchBufs, aux...)
}

// RequiresGrad reports whether gradients flow into this tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// Op returns the name of the operation that produced this tensor.
func (t *Tensor) Op() string { return t.op }

// Inputs returns the node's tape inputs. The slice is the tape's own edge
// list — callers (the plan capturer) must not mutate it.
func (t *Tensor) Inputs() []*Tensor { return t.inputs }

// Meta returns op-specific side data attached by the producing op (gather
// indices, slice offsets, activation kinds), or nil.
func (t *Tensor) Meta() any { return t.meta }

// SetMeta attaches op-specific side data for tape inspectors.
func (t *Tensor) SetMeta(m any) { t.meta = m }

// Rows returns the row count of the tensor's value.
func (t *Tensor) Rows() int { return t.Value.Rows }

// Cols returns the column count of the tensor's value.
func (t *Tensor) Cols() int { return t.Value.Cols }

// Detach returns a constant copy of t's value: gradients stop here. TGNN
// trainers detach node memories between batches so back-propagation stays
// within the current batch (§2.3). The copy is deliberate — a view sharing
// t's backing array would be poisoned when FreeGraph recycles t's slab
// through the arena (see pool.go).
func (t *Tensor) Detach() *Tensor { return Const(t.Value.Clone()) }

// Item returns the single element of a 1×1 tensor.
func (t *Tensor) Item() float32 {
	if t.Value.Rows != 1 || t.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Item on %dx%d tensor", t.Value.Rows, t.Value.Cols))
	}
	return t.Value.Data[0]
}

// ensureGrad allocates the gradient buffer on demand.
func (t *Tensor) ensureGrad() *Matrix {
	if t.Grad == nil {
		t.Grad = NewMatrix(t.Value.Rows, t.Value.Cols)
	}
	return t.Grad
}

// EnsureGrad exposes ensureGrad for external executors (internal/plan): a
// compiled plan's backward accumulates into boundary and parameter gradients
// exactly as eager backFns do, via the same on-demand pool-zeroed buffer.
func (t *Tensor) EnsureGrad() *Matrix { return t.ensureGrad() }

// RetainScratch exposes retainScratch for external executors: matrices the
// caller wants released with the node by FreeGraph (e.g. a replayed plan's
// per-batch target matrix).
func (t *Tensor) RetainScratch(aux ...*Matrix) { t.retainScratch(aux...) }

// newNode builds a non-leaf tensor. The node requires grad iff any input
// does; backFn is only retained in that case.
func newNode(op string, value *Matrix, backFn func(), inputs ...*Tensor) *Tensor {
	req := false
	for _, in := range inputs {
		if in.requiresGrad {
			req = true
			break
		}
	}
	n := &Tensor{Value: value, op: op, inputs: inputs, requiresGrad: req}
	if req {
		n.backFn = backFn
	}
	return n
}

// NewPlanNode builds an empty rearm-able tape node for a compiled plan. The
// plan executor Rearms it each step with the step's static loss value and a
// backward closure covering the whole captured program, so steady-state
// replay allocates no tape nodes.
func NewPlanNode(op string) *Tensor {
	return &Tensor{op: op, requiresGrad: true}
}

// Rearm resets a plan node for another replay: value becomes the forward
// result, inputs the graph tensors the plan's backward feeds gradients into
// (typically the model embedding), and back the plan's backward closure.
// fast marks a node with no live upstream tape, letting Backward skip the
// topological sort entirely.
func (t *Tensor) Rearm(value *Matrix, inputs []*Tensor, back func(), fast bool) {
	t.Value = value
	t.inputs = inputs
	t.backFn = back
	t.requiresGrad = true
	t.planFast = fast
	t.freed = false
}

// RearmConst resets a leaf const tensor with a new value so replay loops can
// reuse the node header instead of minting a fresh Const per step.
func (t *Tensor) RearmConst(m *Matrix) {
	t.Value = m
	t.freed = false
}

// Backward runs reverse-mode differentiation from t, which must be a scalar
// (1×1) tensor, typically a loss. Gradients accumulate into .Grad of every
// tensor on the tape that requires grad. Call Optimizer.ZeroGrad (or clear
// Grad fields) between steps.
func (t *Tensor) Backward() {
	if t.Value.Rows != 1 || t.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward on non-scalar %dx%d tensor", t.Value.Rows, t.Value.Cols))
	}
	if !t.requiresGrad {
		return // nothing on the tape requires grad; loss of constants
	}
	if t.planFast && len(t.inputs) == 0 {
		// Compiled plan with no upstream tape: the plan's backward closure is
		// the entire reverse pass, so skip the sort and its allocations.
		t.ensureGrad().Fill(1)
		if t.backFn != nil {
			t.backFn()
		}
		return
	}
	order := topoSort(t)
	t.ensureGrad().Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil && n.Grad != nil {
			n.backFn()
		}
	}
}

// topoSort returns the reachable requires-grad subgraph in topological order
// (inputs before outputs). Iterative DFS: tapes from large batches can be
// deep, and we must not blow the goroutine stack.
func topoSort(root *Tensor) []*Tensor {
	visited := make(map[*Tensor]bool)
	var order []*Tensor
	type frame struct {
		node *Tensor
		next int
	}
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.inputs) {
			child := f.node.inputs[f.next]
			f.next++
			if !visited[child] && child.requiresGrad {
				visited[child] = true
				stack = append(stack, frame{node: child})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}
