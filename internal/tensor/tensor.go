package tensor

import "fmt"

// Tensor is a node in a dynamically built computation graph. Forward values
// are computed eagerly; Backward replays the tape in reverse topological
// order. This mirrors the define-by-run autograd of the PyTorch stack the
// paper's implementation uses, at the scale our models need (≤ a few thousand
// rows × a few hundred columns per op).
type Tensor struct {
	// Value holds the forward result. It is always non-nil.
	Value *Matrix
	// Grad accumulates ∂loss/∂Value during Backward. It is lazily
	// allocated for tensors that require grad.
	Grad *Matrix

	requiresGrad bool
	op           string
	inputs       []*Tensor
	backFn       func()

	// scratch marks a const leaf whose Value is tape-scoped (minted per batch,
	// e.g. an attention mask or a gathered-memory copy) and may be released by
	// FreeGraph. Ordinary Const leaves wrap caller-owned storage and are left
	// alone.
	scratch bool
	// scratchBufs holds auxiliary matrices an op retained for its backward
	// pass (e.g. LayerNorm's normalized activations); FreeGraph releases them
	// with the node.
	scratchBufs []*Matrix
	// freed makes FreeGraph idempotent per node.
	freed bool
}

// Var wraps m as a leaf tensor that participates in gradient computation
// (i.e. a trainable parameter or an input we want gradients for).
func Var(m *Matrix) *Tensor {
	return &Tensor{Value: m, requiresGrad: true, op: "var"}
}

// Const wraps m as a leaf tensor with no gradient (e.g. input features,
// detached node memories).
func Const(m *Matrix) *Tensor {
	return &Tensor{Value: m, op: "const"}
}

// ConstScratch wraps m as a constant leaf whose storage belongs to the tape:
// FreeGraph will release it along with the intermediate nodes. Use it for
// matrices minted fresh each batch (masks, time-delta columns, gathered
// memories) and never for caller-owned or long-lived storage.
func ConstScratch(m *Matrix) *Tensor {
	return &Tensor{Value: m, op: "const", scratch: true}
}

// retainScratch attaches aux to t so FreeGraph releases it with the node.
func (t *Tensor) retainScratch(aux ...*Matrix) {
	t.scratchBufs = append(t.scratchBufs, aux...)
}

// RequiresGrad reports whether gradients flow into this tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// Op returns the name of the operation that produced this tensor.
func (t *Tensor) Op() string { return t.op }

// Rows returns the row count of the tensor's value.
func (t *Tensor) Rows() int { return t.Value.Rows }

// Cols returns the column count of the tensor's value.
func (t *Tensor) Cols() int { return t.Value.Cols }

// Detach returns a constant view of t's value: gradients stop here. TGNN
// trainers detach node memories between batches so back-propagation stays
// within the current batch (§2.3).
func (t *Tensor) Detach() *Tensor { return Const(t.Value) }

// Item returns the single element of a 1×1 tensor.
func (t *Tensor) Item() float32 {
	if t.Value.Rows != 1 || t.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Item on %dx%d tensor", t.Value.Rows, t.Value.Cols))
	}
	return t.Value.Data[0]
}

// ensureGrad allocates the gradient buffer on demand.
func (t *Tensor) ensureGrad() *Matrix {
	if t.Grad == nil {
		t.Grad = NewMatrix(t.Value.Rows, t.Value.Cols)
	}
	return t.Grad
}

// newNode builds a non-leaf tensor. The node requires grad iff any input
// does; backFn is only retained in that case.
func newNode(op string, value *Matrix, backFn func(), inputs ...*Tensor) *Tensor {
	req := false
	for _, in := range inputs {
		if in.requiresGrad {
			req = true
			break
		}
	}
	n := &Tensor{Value: value, op: op, inputs: inputs, requiresGrad: req}
	if req {
		n.backFn = backFn
	}
	return n
}

// Backward runs reverse-mode differentiation from t, which must be a scalar
// (1×1) tensor, typically a loss. Gradients accumulate into .Grad of every
// tensor on the tape that requires grad. Call Optimizer.ZeroGrad (or clear
// Grad fields) between steps.
func (t *Tensor) Backward() {
	if t.Value.Rows != 1 || t.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward on non-scalar %dx%d tensor", t.Value.Rows, t.Value.Cols))
	}
	if !t.requiresGrad {
		return // nothing on the tape requires grad; loss of constants
	}
	order := topoSort(t)
	t.ensureGrad().Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil && n.Grad != nil {
			n.backFn()
		}
	}
}

// topoSort returns the reachable requires-grad subgraph in topological order
// (inputs before outputs). Iterative DFS: tapes from large batches can be
// deep, and we must not blow the goroutine stack.
func topoSort(root *Tensor) []*Tensor {
	visited := make(map[*Tensor]bool)
	var order []*Tensor
	type frame struct {
		node *Tensor
		next int
	}
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.inputs) {
			child := f.node.inputs[f.next]
			f.next++
			if !visited[child] && child.requiresGrad {
				visited[child] = true
				stack = append(stack, frame{node: child})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}
