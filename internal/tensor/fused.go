package tensor

import "math"

// Fused single-loop kernels for the element-wise chains the models execute
// every batch: linear+bias+activation, the RNN/GRU cell gate chains, the
// Bochner time encoding, and the attention score→softmax pipelines. Each op
// collapses a run of eager tape nodes into ONE node whose forward is a
// single pass (plus the unavoidable GEMMs) and whose backward replays the
// eager chain's backward closures in the eager tape's exact reverse
// topological order — so fused and eager execution are bitwise identical
// (pinned by the golden tests in fused_test.go).
//
// Bit-exactness ground rules, shared with internal/plan:
//   - Every eager intermediate gradient is a pool-zeroed buffer accumulated
//     with `+=`; `0 + v` maps −0 to +0. Fused kernels either materialize the
//     same zero-then-accumulate buffer or skip the copy when the source is
//     already laundered (a zero-accumulated buffer never holds −0, so a
//     second launder is the identity).
//   - GEMM operands keep the eager kernel entry points (MatMulInto,
//     MatMulTransBAccum, MatMulTransAAccum) so blocking, zero-skipping and
//     parallel splits round identically.
//   - Accumulation ORDER into any gradient buffer shared with other tape
//     nodes matches the eager reversed-DFS schedule (derived per op below).

// Act selects the activation fused into LinearActT and the plan executor's
// linear kernels.
type Act int

// Fused activation kinds.
const (
	ActNone Act = iota
	ActReLU
	ActSigmoid
	ActTanh
)

// ActInto applies act elementwise; dst may alias src.
func ActInto(dst, src *Matrix, act Act) {
	switch act {
	case ActReLU:
		for i, x := range src.Data {
			if x > 0 {
				dst.Data[i] = x
			} else {
				dst.Data[i] = 0
			}
		}
	case ActSigmoid:
		for i, x := range src.Data {
			dst.Data[i] = sigmoid(x)
		}
	case ActTanh:
		for i, x := range src.Data {
			dst.Data[i] = float32(math.Tanh(float64(x)))
		}
	default:
		if dst != src {
			copy(dst.Data, src.Data)
		}
	}
}

// ActBackwardAccum accumulates ga += g ⊙ act'(y), where y is the POST-
// activation value (for ReLU, y > 0 ⟺ pre > 0, so the post-activation gate
// is exactly the eager pre-activation gate). Expressions mirror ops.go
// term for term.
func ActBackwardAccum(ga, g, y *Matrix, act Act) {
	switch act {
	case ActReLU:
		for i, yv := range y.Data {
			if yv > 0 {
				ga.Data[i] += g.Data[i]
			}
		}
	case ActSigmoid:
		for i, yv := range y.Data {
			ga.Data[i] += g.Data[i] * yv * (1 - yv)
		}
	case ActTanh:
		for i, yv := range y.Data {
			ga.Data[i] += g.Data[i] * (1 - yv*yv)
		}
	default:
		for i := range y.Data {
			ga.Data[i] += g.Data[i]
		}
	}
}

// ColSumsAccum accumulates the column sums of g into dst (1 × g.Cols), rows
// ascending — the bias-gradient kernel (AddRowT's v-side backward).
func ColSumsAccum(dst, g *Matrix) {
	for r := 0; r < g.Rows; r++ {
		grow := g.Row(r)
		for j := range grow {
			dst.Data[j] += grow[j]
		}
	}
}

// GatherRowsInto copies src rows selected by idx into dst (len(idx) × Cols).
func GatherRowsInto(dst, src *Matrix, idx []int) {
	for r, i := range idx {
		copy(dst.Row(r), src.Row(i))
	}
}

// ScatterRowsAccum accumulates dst.Row(idx[r]) += g.Row(r), r ascending —
// GatherRowsT's backward kernel (duplicate indices accumulate in row order).
func ScatterRowsAccum(dst, g *Matrix, idx []int) {
	for r, i := range idx {
		grow := g.Row(r)
		drow := dst.Row(i)
		for j := range grow {
			drow[j] += grow[j]
		}
	}
}

// BCEForward returns the mean stable binary cross-entropy of logits vs
// targets — the exact forward loop of BCEWithLogitsT.
func BCEForward(logits, targets *Matrix) float32 {
	n := float32(len(logits.Data))
	var total float32
	for i, x := range logits.Data {
		y := targets.Data[i]
		m := x
		if m < 0 {
			m = 0
		}
		ax := x
		if ax < 0 {
			ax = -ax
		}
		total += m - x*y + float32(math.Log1p(math.Exp(float64(-ax))))
	}
	return total / n
}

// BCEBackwardAccum accumulates gl += g·(σ(x) − y) with g already divided by
// the element count — the exact backward loop of BCEWithLogitsT.
func BCEBackwardAccum(gl, logits, targets *Matrix, g float32) {
	for i, x := range logits.Data {
		y := targets.Data[i]
		gl.Data[i] += g * (sigmoid(x) - y)
	}
}

// launder maps −0 to +0, replicating accumulation into a zeroed buffer
// (0 + −0 = +0) without materializing the buffer.
func launder(v float32) float32 {
	if v == 0 {
		return 0
	}
	return v
}

// LinearT is the fused AddRowT(MatMulT(x, w), b): one GEMM and an in-place
// bias pass instead of two matrices and three tape nodes.
func LinearT(x, w, b *Tensor) *Tensor {
	return LinearActT(x, w, b, ActNone)
}

// LinearActT fuses a Linear layer with its following activation:
// y = act(x·w + b). Backward replays act→addrow→matmul exactly; the eager
// intermediate gradient copies (laundered identities) are skipped, which the
// zero-skipping GEMM kernels make bitwise neutral.
func LinearActT(x, w, b *Tensor, act Act) *Tensor {
	val := NewMatrix(x.Value.Rows, w.Value.Cols)
	MatMulInto(val, x.Value, w.Value)
	AddRowInto(val, val, b.Value)
	ActInto(val, val, act)
	var out *Tensor
	out = newNode("linearact", val, func() {
		g := out.Grad
		gpre := g
		if act != ActNone {
			// act backward: gpre = 0 + g ⊙ act'(y), a zeroed-buffer accumulate
			// exactly as eager (NewMatrix pool-zeroes).
			gpre = NewMatrix(g.Rows, g.Cols)
			ActBackwardAccum(gpre, g, val, act)
		}
		// addrow backward: the a-side identity copy is skipped; bias colsums.
		if b.requiresGrad {
			ColSumsAccum(b.ensureGrad(), gpre)
		}
		// matmul backward, a-side then b-side as in ops.go.
		if x.requiresGrad {
			MatMulTransBAccum(x.ensureGrad(), gpre, w.Value)
		}
		if w.requiresGrad {
			MatMulTransAAccum(w.ensureGrad(), x.Value, gpre)
		}
		if act != ActNone {
			gpre.Release()
		}
	}, x, w, b)
	out.meta = act
	return out
}

// RNNStepT is the fused vanilla RNN cell tanh(x·wx + h·wh + b). Two GEMMs
// and one elementwise pass; h may alias x (DySAT feeds the same tensor as
// input and state), in which case the backward accumulates the h-side GEMM
// before the x-side into the shared gradient, matching the eager reversed
// tape (x·Wx is input[0] of the AddT, so its backward runs LAST).
func RNNStepT(x, h, wx, wh, b *Tensor) *Tensor {
	t1 := NewMatrix(x.Value.Rows, wx.Value.Cols)
	MatMulInto(t1, x.Value, wx.Value)
	t2 := NewMatrix(h.Value.Rows, wh.Value.Cols)
	MatMulInto(t2, h.Value, wh.Value)
	val := NewMatrix(t1.Rows, t1.Cols)
	bias := b.Value.Data
	cols := val.Cols
	for r := 0; r < val.Rows; r++ {
		a1, a2, vr := t1.Row(r), t2.Row(r), val.Row(r)
		for j := 0; j < cols; j++ {
			vr[j] = float32(math.Tanh(float64((a1[j] + a2[j]) + bias[j])))
		}
	}
	t1.Release()
	t2.Release()
	var out *Tensor
	out = newNode("rnnstep", val, func() {
		g := out.Grad
		// tanh backward into a zeroed buffer (launders g).
		gpre := NewMatrix(g.Rows, g.Cols)
		for i, y := range val.Data {
			gpre.Data[i] += g.Data[i] * (1 - y*y)
		}
		// addrow: identity copy skipped; bias colsums.
		if b.requiresGrad {
			ColSumsAccum(b.ensureGrad(), gpre)
		}
		// add: both identity copies skipped. Matmul backwards in eager
		// reverse order: h-side first, then x-side (critical when x == h).
		if h.requiresGrad {
			MatMulTransBAccum(h.ensureGrad(), gpre, wh.Value)
		}
		if wh.requiresGrad {
			MatMulTransAAccum(wh.ensureGrad(), h.Value, gpre)
		}
		if x.requiresGrad {
			MatMulTransBAccum(x.ensureGrad(), gpre, wx.Value)
		}
		if wx.requiresGrad {
			MatMulTransAAccum(wx.ensureGrad(), x.Value, gpre)
		}
		gpre.Release()
	}, x, wx, h, wh, b)
	return out
}

// GRUStepT is the fused GRU cell of GRUCell.Forward: two gate GEMMs, the
// candidate GEMM, and ONE elementwise pass per stage instead of the eager
// 14-node chain. Weight layout matches GRUCell: wf (In × 3H) = [z|r|h],
// uzr (H × 2H) = [z|r], uh (H × H).
func GRUStepT(x, h, wf, uzr, uh, bz, br, bh *Tensor) *Tensor {
	hd := uh.Value.Cols
	rows := x.Value.Rows
	xw := NewMatrix(rows, 3*hd)
	MatMulInto(xw, x.Value, wf.Value)
	hu := NewMatrix(rows, 2*hd)
	MatMulInto(hu, h.Value, uzr.Value)

	z := NewMatrix(rows, hd)
	r := NewMatrix(rows, hd)
	rh := NewMatrix(rows, hd)
	bzd, brd, bhd := bz.Value.Data, br.Value.Data, bh.Value.Data
	for i := 0; i < rows; i++ {
		xwr, hur, hr := xw.Row(i), hu.Row(i), h.Value.Row(i)
		zr, rr, rhr := z.Row(i), r.Row(i), rh.Row(i)
		for j := 0; j < hd; j++ {
			zr[j] = sigmoid((xwr[j] + hur[j]) + bzd[j])
			rv := sigmoid((xwr[hd+j] + hur[hd+j]) + brd[j])
			rr[j] = rv
			rhr[j] = rv * hr[j]
		}
	}
	m := NewMatrix(rows, hd)
	MatMulInto(m, rh, uh.Value)
	cand := NewMatrix(rows, hd)
	val := NewMatrix(rows, hd)
	for i := 0; i < rows; i++ {
		xwr, mr, hr := xw.Row(i), m.Row(i), h.Value.Row(i)
		cr, zr, vr := cand.Row(i), z.Row(i), val.Row(i)
		for j := 0; j < hd; j++ {
			c := float32(math.Tanh(float64((xwr[2*hd+j] + mr[j]) + bhd[j])))
			cr[j] = c
			vr[j] = hr[j] + zr[j]*(c-hr[j])
		}
	}
	xw.Release()
	hu.Release()
	m.Release()

	var out *Tensor
	out = newNode("grustep", val, func() {
		g := out.Grad
		hv := h.Value
		// Eager reversed-tape schedule (out, mul, sub, cand-chain, rh-chain,
		// r-chain, hu/xw slices, hu, xw). Shared-buffer write order that must
		// hold: h.Grad ← +g, −g⊙z, +grh⊙r, +ghu·Uzrᵀ.
		var hg *Matrix
		if h.requiresGrad {
			hg = h.ensureGrad()
			AxpyInto(hg, g, 1) // out = AddT(h, ·): h-side
		}
		// q = MulT(z, d), d = SubT(cand, h): gd = 0 + g⊙z (laundered).
		gd := NewMatrix(rows, hd)
		for i := range g.Data {
			gd.Data[i] += g.Data[i] * z.Data[i]
		}
		if hg != nil {
			AxpyInto(hg, gd, -1) // sub b-side: h.Grad += −gd
		}
		// cand = TanhT: gah = 0 + gd·(1 − cand²).
		gah := NewMatrix(rows, hd)
		for i, y := range cand.Data {
			gah.Data[i] += gd.Data[i] * (1 - y*y)
		}
		if bh.requiresGrad {
			ColSumsAccum(bh.ensureGrad(), gah)
		}
		// m = MatMulT(rh, uh): grh = 0 + gah·Uhᵀ; Uh.Grad += rhᵀ·gah.
		grh := NewMatrix(rows, hd)
		MatMulTransBAccum(grh, gah, uh.Value)
		if uh.requiresGrad {
			MatMulTransAAccum(uh.ensureGrad(), rh, gah)
		}
		// rh = MulT(r, h): gr = 0 + grh⊙h; h.Grad += grh⊙r.
		gr := NewMatrix(rows, hd)
		for i := range grh.Data {
			gr.Data[i] += grh.Data[i] * hv.Data[i]
		}
		if hg != nil {
			for i := range grh.Data {
				hg.Data[i] += grh.Data[i] * r.Data[i]
			}
		}
		// r = SigmoidT: gar = 0 + gr·r·(1−r).
		gar := NewMatrix(rows, hd)
		for i, y := range r.Data {
			gar.Data[i] += gr.Data[i] * y * (1 - y)
		}
		if br.requiresGrad {
			ColSumsAccum(br.ensureGrad(), gar)
		}
		// z gate: gz = 0 + g⊙d with d = cand − h (recomputed exactly);
		// gaz = 0 + gz·z·(1−z).
		gz := NewMatrix(rows, hd)
		for i := range g.Data {
			gz.Data[i] += g.Data[i] * (cand.Data[i] - hv.Data[i])
		}
		gaz := NewMatrix(rows, hd)
		for i, y := range z.Data {
			gaz.Data[i] += gz.Data[i] * y * (1 - y)
		}
		if bz.requiresGrad {
			ColSumsAccum(bz.ensureGrad(), gaz)
		}
		// hu = MatMulT(h, uzr): ghu = [gaz | gar] per the slice backward
		// scatters; h.Grad += ghu·Uzrᵀ; Uzr.Grad += hᵀ·ghu.
		ghu := NewMatrix(rows, 2*hd)
		for i := 0; i < rows; i++ {
			hur := ghu.Row(i)
			gzr, grr := gaz.Row(i), gar.Row(i)
			for j := 0; j < hd; j++ {
				hur[j] += gzr[j]
				hur[hd+j] += grr[j]
			}
		}
		if hg != nil {
			MatMulTransBAccum(hg, ghu, uzr.Value)
		}
		if uzr.requiresGrad {
			MatMulTransAAccum(uzr.ensureGrad(), h.Value, ghu)
		}
		// xw = MatMulT(x, wf): gxw = [gaz | gar | gah].
		gxw := NewMatrix(rows, 3*hd)
		for i := 0; i < rows; i++ {
			xwr := gxw.Row(i)
			gzr, grr, ghr := gaz.Row(i), gar.Row(i), gah.Row(i)
			for j := 0; j < hd; j++ {
				xwr[j] += gzr[j]
				xwr[hd+j] += grr[j]
				xwr[2*hd+j] += ghr[j]
			}
		}
		if x.requiresGrad {
			MatMulTransBAccum(x.ensureGrad(), gxw, wf.Value)
		}
		if wf.requiresGrad {
			MatMulTransAAccum(wf.ensureGrad(), x.Value, gxw)
		}
		gxw.Release()
		ghu.Release()
		gaz.Release()
		gz.Release()
		gar.Release()
		gr.Release()
		grh.Release()
		gah.Release()
		gd.Release()
	}, h, x, wf, uzr, bz, br, uh, bh)
	out.retainScratch(z, r, rh, cand)
	return out
}

// TimeEncodeT is the fused Bochner time encoding cos(Δt·ω + φ): the outer
// product keeps the eager GEMM (zero-Δt rows short-circuit identically),
// the phase add and cosine fuse into one pass. The pre-activation matrix is
// retained for the cos backward, the minted Δt column for the ω grad.
func TimeEncodeT(deltas []float32, omega, phase *Tensor) *Tensor {
	b := len(deltas)
	dim := omega.Value.Cols
	col := NewMatrix(b, 1)
	copy(col.Data, deltas)
	pre := NewMatrix(b, dim)
	MatMulInto(pre, col, omega.Value)
	AddRowInto(pre, pre, phase.Value)
	val := NewMatrix(b, dim)
	for i, x := range pre.Data {
		val.Data[i] = float32(math.Cos(float64(x)))
	}
	var out *Tensor
	out = newNode("timeenc", val, func() {
		g := out.Grad
		// cos backward into a zeroed buffer: ga −= g·sin(pre).
		ga := NewMatrix(g.Rows, g.Cols)
		for i, x := range pre.Data {
			ga.Data[i] -= g.Data[i] * float32(math.Sin(float64(x)))
		}
		// addrow: identity copy skipped; phase colsums, then ω grad.
		if phase.requiresGrad {
			ColSumsAccum(phase.ensureGrad(), ga)
		}
		if omega.requiresGrad {
			MatMulTransAAccum(omega.ensureGrad(), col, ga)
		}
		ga.Release()
	}, omega, phase)
	out.retainScratch(col, pre)
	return out
}

// GATScoresT fuses the GAT score pipeline — broadcast + reshape + add +
// LeakyReLU(slope) + additive mask + row softmax — into one pass per row,
// returning the (B × K) attention weights. sSelf is (B × 1), sNeigh is
// (B·K × 1); mask (0/1, may be nil) is read-only and NOT retained (TGAT
// shares one mask matrix across layers). For valid slots the eager chain
// adds an exact 0 to the score; skipping it can only flip a −0 score sign,
// and exp(±0) = 1 exactly, so the softmax output is bit-identical.
func GATScoresT(sSelf, sNeigh *Tensor, k int, slope float32, mask *Matrix) *Tensor {
	b := sSelf.Value.Rows
	s := NewMatrix(b, k) // pre-LeakyReLU scores, retained for the gate
	val := NewMatrix(b, k)
	tmp := NewMatrix(1, k)
	const negInf = float32(-1e9)
	for i := 0; i < b; i++ {
		si := sSelf.Value.Data[i]
		srow, trow := s.Row(i), tmp.Data
		for j := 0; j < k; j++ {
			sv := si + sNeigh.Value.Data[i*k+j]
			srow[j] = sv
			var l float32
			if sv > 0 {
				l = sv
			} else {
				l = slope * sv
			}
			if mask != nil && mask.Data[i*k+j] == 0 {
				l = l + negInf
			}
			trow[j] = l
		}
		softmaxRow(val.Row(i), tmp.Data)
	}
	tmp.Release()
	var out *Tensor
	out = newNode("gatscores", val, func() {
		g := out.Grad
		// softmax → mask-add (identity) → LeakyReLU, laundered as one pass.
		gs := NewMatrix(b, k)
		for i := 0; i < b; i++ {
			y, grow := val.Row(i), g.Row(i)
			var dot float32
			for j := range y {
				dot += y[j] * grow[j]
			}
			srow, gsrow := s.Row(i), gs.Row(i)
			for j := range y {
				p := y[j] * (grow[j] - dot)
				if srow[j] <= 0 {
					p = p * slope
				}
				gsrow[j] = launder(p)
			}
		}
		// Eager order: reshape backward (sNeigh) before broadcast backward
		// (sSelf); both buffers have a single writer.
		if sNeigh.requiresGrad {
			gn := sNeigh.ensureGrad()
			for i, v := range gs.Data {
				gn.Data[i] += v
			}
		}
		if sSelf.requiresGrad {
			gss := sSelf.ensureGrad()
			for i := 0; i < b; i++ {
				grow := gs.Row(i)
				var sum float32
				for _, v := range grow {
					sum += v
				}
				gss.Data[i] += sum
			}
		}
		gs.Release()
	}, sSelf, sNeigh)
	out.retainScratch(s)
	return out
}

// AttnScoresT fuses the scaled-dot-product score pipeline — grouped q·kᵀ,
// scale, additive mask, row softmax — returning (B × K) attention weights.
// q is (B × C), keys is (B·K × C); mask may be nil and is not retained.
func AttnScoresT(q, keys *Tensor, k int, scale float32, mask *Matrix) *Tensor {
	b, c := q.Value.Rows, q.Value.Cols
	val := NewMatrix(b, k)
	tmp := NewMatrix(1, k)
	const negInf = float32(-1e9)
	for i := 0; i < b; i++ {
		qrow := q.Value.Row(i)
		trow := tmp.Data
		for g := 0; g < k; g++ {
			krow := keys.Value.Row(i*k + g)
			var dot float32
			for j := 0; j < c; j++ {
				dot += qrow[j] * krow[j]
			}
			sv := scale * dot
			if mask != nil && mask.Data[i*k+g] == 0 {
				sv = sv + negInf
			}
			trow[g] = sv
		}
		softmaxRow(val.Row(i), tmp.Data)
	}
	tmp.Release()
	var out *Tensor
	out = newNode("attnscores", val, func() {
		gr := out.Grad
		// softmax → mask-add (identity) → scale, laundered via zeroed buffer
		// exactly like the eager AxpyInto(·, gmasked, scale).
		graw := NewMatrix(b, k)
		for i := 0; i < b; i++ {
			y, grow := val.Row(i), gr.Row(i)
			var dot float32
			for j := range y {
				dot += y[j] * grow[j]
			}
			grawRow := graw.Row(i)
			for j := range y {
				grawRow[j] += scale * launder(y[j]*(grow[j]-dot))
			}
		}
		// RowDotGroupsT backward: full q-side sweep, then k-side.
		if q.requiresGrad {
			gq := q.ensureGrad()
			for i := 0; i < b; i++ {
				grow := graw.Row(i)
				qrow := gq.Row(i)
				for g := 0; g < k; g++ {
					krow := keys.Value.Row(i*k + g)
					gg := grow[g]
					for j := range qrow {
						qrow[j] += gg * krow[j]
					}
				}
			}
		}
		if keys.requiresGrad {
			gk := keys.ensureGrad()
			for i := 0; i < b; i++ {
				grow := graw.Row(i)
				qrow := q.Value.Row(i)
				for g := 0; g < k; g++ {
					krow := gk.Row(i*k + g)
					gg := grow[g]
					for j := range qrow {
						krow[j] += gg * qrow[j]
					}
				}
			}
		}
		graw.Release()
	}, q, keys)
	return out
}

// AddReLUT is the fused ReLU(a + b) that closes a GAT layer. The sum is
// retained for the gate; the intermediate gradient is materialized (zeroed,
// then accumulated) so −0 entries of the output gradient launder exactly as
// in the eager two-node chain before reaching the shared input gradients.
func AddReLUT(a, b *Tensor) *Tensor {
	s := NewMatrix(a.Value.Rows, a.Value.Cols)
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i := range a.Value.Data {
		sv := a.Value.Data[i] + b.Value.Data[i]
		s.Data[i] = sv
		if sv > 0 {
			val.Data[i] = sv
		}
	}
	var out *Tensor
	out = newNode("addrelu", val, func() {
		g := out.Grad
		gs := NewMatrix(g.Rows, g.Cols)
		for i, sv := range s.Data {
			if sv > 0 {
				gs.Data[i] += g.Data[i]
			}
		}
		if a.requiresGrad {
			AxpyInto(a.ensureGrad(), gs, 1)
		}
		if b.requiresGrad {
			AxpyInto(b.ensureGrad(), gs, 1)
		}
		gs.Release()
	}, a, b)
	out.retainScratch(s)
	return out
}
