//go:build !amd64

package tensor

// Portable stand-ins for the amd64 vector microkernels. useAVX2 is a
// compile-time false on other architectures, so the GEMM drivers never take
// the vector branches; the bodies below keep the package buildable and the
// semantics documented.

const useAVX2 = false

func axpy4(d, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	for j := range d {
		d[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	for k, av := range a {
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
	}
	return
}
