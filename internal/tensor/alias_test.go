package tensor

import "testing"

// Regression tests for view-producing ops vs the arena: a tensor produced
// from another tensor's storage must not alias the parent's backing array,
// because releasing the parent recycles its slab through the pool and the
// next NewMatrix of the same size class would overwrite the "view" in
// place. ReshapeT, SliceColsT, GatherRowsT, and Detach must all COPY.

// poisonAfterRelease releases parent, then draws a same-class buffer from
// the pool and fills it with a sentinel. If child aliased parent's slab the
// sentinel (or the pool's zeroing) shows through child's data.
func poisonAfterRelease(parent, child *Matrix) {
	parent.Release()
	p := NewMatrix(parent.Rows, parent.Cols)
	p.Fill(999)
}

func TestReshapeDoesNotAliasReleasedSlab(t *testing.T) {
	src := Const(NewMatrix(4, 6))
	for i := range src.Value.Data {
		src.Value.Data[i] = float32(i + 1)
	}
	mid := AddT(src, Const(NewMatrix(4, 6))) // intermediate with pooled slab
	view := ReshapeT(mid, 6, 4)
	want := view.Value.Clone()
	poisonAfterRelease(mid.Value, view.Value)
	for i, v := range view.Value.Data {
		if v != want.Data[i] {
			t.Fatalf("reshape[%d] corrupted after parent release: got %v, want %v", i, v, want.Data[i])
		}
	}
}

func TestSliceColsDoesNotAliasReleasedSlab(t *testing.T) {
	src := Const(NewMatrix(5, 8))
	for i := range src.Value.Data {
		src.Value.Data[i] = float32(i + 1)
	}
	mid := AddT(src, Const(NewMatrix(5, 8)))
	view := SliceColsT(mid, 2, 6)
	want := view.Value.Clone()
	poisonAfterRelease(mid.Value, view.Value)
	for i, v := range view.Value.Data {
		if v != want.Data[i] {
			t.Fatalf("slicecols[%d] corrupted after parent release: got %v, want %v", i, v, want.Data[i])
		}
	}
}

func TestGatherRowsDoesNotAliasReleasedSlab(t *testing.T) {
	src := Const(NewMatrix(6, 7))
	for i := range src.Value.Data {
		src.Value.Data[i] = float32(i + 1)
	}
	mid := AddT(src, Const(NewMatrix(6, 7)))
	view := GatherRowsT(mid, []int{5, 0, 3, 3})
	want := view.Value.Clone()
	poisonAfterRelease(mid.Value, view.Value)
	for i, v := range view.Value.Data {
		if v != want.Data[i] {
			t.Fatalf("gather[%d] corrupted after parent release: got %v, want %v", i, v, want.Data[i])
		}
	}
}

// TestDetachCopies pins the Detach fix: the detached constant must survive
// the source tape being freed and its slab recycled.
func TestDetachCopies(t *testing.T) {
	a := Const(NewMatrix(3, 9))
	for i := range a.Value.Data {
		a.Value.Data[i] = float32(i) * 0.5
	}
	mid := AddT(a, Const(NewMatrix(3, 9)))
	d := mid.Detach()
	if d.RequiresGrad() {
		t.Fatal("Detach must not require grad")
	}
	want := d.Value.Clone()
	FreeGraph(mid)
	p := NewMatrix(3, 9)
	p.Fill(-777)
	for i, v := range d.Value.Data {
		if v != want.Data[i] {
			t.Fatalf("detach[%d] corrupted after FreeGraph: got %v, want %v", i, v, want.Data[i])
		}
	}
}

// TestStaticSlabSurvivesRelease pins the plan-slab contract: Release on a
// static matrix is a no-op (no pooling, no tripwire), so FreeGraph may walk
// a rearmed plan node every batch without poisoning plan storage.
func TestStaticSlabSurvivesRelease(t *testing.T) {
	m := NewStatic(2, 3)
	m.Fill(42)
	m.Release()
	if m.Released() {
		t.Fatal("static matrix must not report released")
	}
	m.Release() // second release must not panic either
	for _, v := range m.Data {
		if v != 42 {
			t.Fatalf("static slab corrupted: %v", v)
		}
	}
	w := WrapStatic(make([]float32, 6), 3, 2)
	w.Release()
	if w.Data == nil {
		t.Fatal("WrapStatic storage must survive Release")
	}
}
