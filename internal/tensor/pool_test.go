package tensor

import (
	"strings"
	"testing"
)

func TestPoolRecyclesReleasedStorage(t *testing.T) {
	PoolDrain()
	before := PoolSnapshot()
	m := NewMatrix(16, 16) // 256 elems → class for 256
	m.Fill(7)
	m.Release()
	n := NewMatrix(10, 20) // 200 elems → same 256-elem class
	d := PoolSnapshot().Sub(before)
	if d.Hits != 1 {
		t.Fatalf("pool hits = %d, want 1", d.Hits)
	}
	if d.FloatsRecycled != 200 {
		t.Fatalf("floats recycled = %d, want 200", d.FloatsRecycled)
	}
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolMissCountsAlloc(t *testing.T) {
	PoolDrain()
	beforeAlloc := AllocSnapshot()
	beforePool := PoolSnapshot()
	NewMatrix(8, 8)
	da := AllocSnapshot().Sub(beforeAlloc)
	dp := PoolSnapshot().Sub(beforePool)
	if dp.Misses != 1 || dp.Hits != 0 {
		t.Fatalf("pool misses/hits = %d/%d, want 1/0", dp.Misses, dp.Hits)
	}
	if da.Matrices != 1 || da.Floats != 64 {
		t.Fatalf("alloc delta = %+v, want 1 matrix / 64 floats", da)
	}
	// A pool hit must NOT move AllocStats.
	m := NewMatrix(8, 8)
	m.Release()
	beforeAlloc = AllocSnapshot()
	NewMatrix(8, 8)
	if d := AllocSnapshot().Sub(beforeAlloc); d.Matrices != 0 {
		t.Fatalf("pool hit moved AllocStats: %+v", d)
	}
}

func TestPoolOversizeBypasses(t *testing.T) {
	PoolDrain()
	huge := poolClassSize(poolNumClasses-1) + 1
	m := NewMatrix(1, huge)
	before := PoolSnapshot()
	m.Release() // must not land in any class
	n := NewMatrix(1, huge)
	if d := PoolSnapshot().Sub(before); d.Hits != 0 {
		t.Fatalf("oversize buffer was recycled: %+v", d)
	}
	_ = n
}

func TestDoubleReleasePanics(t *testing.T) {
	m := NewMatrix(4, 4)
	m.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Release()
}

func TestUseAfterReleasePanics(t *testing.T) {
	m := NewMatrix(4, 4)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("element access after Release did not panic")
		}
	}()
	_ = m.At(0, 0)
}

func TestFreeGraphReleasesIntermediates(t *testing.T) {
	PoolDrain()
	w := Var(benchMatrix(8, 8, 1))
	x := ConstScratch(benchMatrix(4, 8, 2))
	h := MatMulT(x, w)
	y := ReLUT(h)
	loss := MeanT(y)
	loss.Backward()

	before := PoolSnapshot()
	FreeGraph(loss)
	d := PoolSnapshot().Sub(before)
	// Intermediate values (h, y, loss), their grads, and the scratch input
	// must all have been returned.
	if d.Releases < 6 {
		t.Fatalf("FreeGraph returned %d buffers, want >= 6", d.Releases)
	}
	if !h.Value.Released() || !y.Value.Released() || !x.Value.Released() {
		t.Fatal("intermediate or scratch values not released")
	}
	if w.Value.Released() {
		t.Fatal("parameter value was released")
	}
	if w.Grad == nil || w.Grad.Released() {
		t.Fatal("parameter grad must survive FreeGraph")
	}
	// Idempotent: freeing again (or via a second root) must not panic.
	FreeGraph(loss, y)
}

func TestFreeGraphSharedSubtree(t *testing.T) {
	w := Var(benchMatrix(6, 6, 1))
	x := ConstScratch(benchMatrix(3, 6, 2))
	h := MatMulT(x, w)
	a := ReLUT(h)
	b := SigmoidT(h) // shares h
	loss := MeanT(AddT(a, b))
	loss.Backward()
	FreeGraph(loss)
	if !h.Value.Released() || !a.Value.Released() || !b.Value.Released() {
		t.Fatal("shared subtree not fully released")
	}
}
