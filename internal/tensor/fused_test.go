package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Golden tests for the fused kernels: each fused op must be BITWISE
// identical to the eager op chain it replaces — forward value, every
// parameter gradient, and every input gradient — across ragged shapes
// hitting every tile remainder. The only tolerated difference is the sign
// of a zero (eager launders −0 through zeroed buffers in a few spots the
// fused kernels provably cannot reach differently), so comparisons use
// float32 == with an explicit NaN tripwire.

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func mustEq(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got == nil || want == nil {
		if got != want {
			t.Fatalf("%s: one side nil (got %v, want %v)", name, got, want)
		}
		return
	}
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		g, w := got.Data[i], want.Data[i]
		if math.IsNaN(float64(g)) || math.IsNaN(float64(w)) {
			t.Fatalf("%s[%d]: NaN (got %v, want %v)", name, i, g, w)
		}
		if g != w {
			t.Fatalf("%s[%d]: got %x, want %x", name, i, math.Float32bits(g), math.Float32bits(w))
		}
	}
}

// scalarize reduces out to a scalar with non-uniform gradients: sum(out ⊙ c)
// for a fixed random c, so backward sees arbitrary per-element grads.
func scalarize(out *Tensor, c *Matrix) *Tensor {
	return SumT(MulT(out, Const(c)))
}

func TestLinearActGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{1, 1}, {3, 5}, {7, 13}, {17, 32}, {33, 9}}
	acts := []Act{ActNone, ActReLU, ActSigmoid, ActTanh}
	for _, sh := range shapes {
		for _, act := range acts {
			b, in := sh[0], sh[1]
			outDim := (in*2)%17 + 1
			xm := randMat(rng, b, in)
			wm := randMat(rng, in, outDim)
			bm := randMat(rng, 1, outDim)
			cm := randMat(rng, b, outDim)

			run := func(fused bool) (*Matrix, *Matrix, *Matrix, *Matrix) {
				x, w, bias := Var(xm.Clone()), Var(wm.Clone()), Var(bm.Clone())
				var y *Tensor
				if fused {
					y = LinearActT(x, w, bias, act)
				} else {
					y = AddRowT(MatMulT(x, w), bias)
					switch act {
					case ActReLU:
						y = ReLUT(y)
					case ActSigmoid:
						y = SigmoidT(y)
					case ActTanh:
						y = TanhT(y)
					}
				}
				val := y.Value.Clone()
				scalarize(y, cm).Backward()
				return val, x.Grad.Clone(), w.Grad.Clone(), bias.Grad.Clone()
			}
			ev, exg, ewg, ebg := run(false)
			fv, fxg, fwg, fbg := run(true)
			mustEq(t, "linearact value", fv, ev)
			mustEq(t, "linearact x.Grad", fxg, exg)
			mustEq(t, "linearact w.Grad", fwg, ewg)
			mustEq(t, "linearact b.Grad", fbg, ebg)
		}
	}
}

func TestRNNStepGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][2]int{{1, 1}, {4, 6}, {9, 13}, {21, 32}} {
		b, hd := sh[0], sh[1]
		in := hd + 3
		xm := randMat(rng, b, in)
		hm := randMat(rng, b, hd)
		wxm := randMat(rng, in, hd)
		whm := randMat(rng, hd, hd)
		bm := randMat(rng, 1, hd)
		cm := randMat(rng, b, hd)

		run := func(fused bool) (*Matrix, []*Matrix) {
			x, h := Var(xm.Clone()), Var(hm.Clone())
			wx, wh, bias := Var(wxm.Clone()), Var(whm.Clone()), Var(bm.Clone())
			var y *Tensor
			if fused {
				y = RNNStepT(x, h, wx, wh, bias)
			} else {
				y = TanhT(AddRowT(AddT(MatMulT(x, wx), MatMulT(h, wh)), bias))
			}
			val := y.Value.Clone()
			scalarize(y, cm).Backward()
			return val, []*Matrix{x.Grad, h.Grad, wx.Grad, wh.Grad, bias.Grad}
		}
		ev, eg := run(false)
		fv, fg := run(true)
		mustEq(t, "rnnstep value", fv, ev)
		for i, name := range []string{"x", "h", "wx", "wh", "b"} {
			mustEq(t, "rnnstep grad "+name, fg[i], eg[i])
		}
	}
}

// TestRNNStepGoldenAliased drives the DySAT pattern where the SAME tensor is
// both input and hidden state: the h-side and x-side GEMMs accumulate into
// one shared gradient buffer, so their order must match the eager tape.
func TestRNNStepGoldenAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][2]int{{3, 5}, {11, 16}} {
		b, hd := sh[0], sh[1]
		xm := randMat(rng, b, hd)
		wxm := randMat(rng, hd, hd)
		whm := randMat(rng, hd, hd)
		bm := randMat(rng, 1, hd)
		cm := randMat(rng, b, hd)

		run := func(fused bool) (*Matrix, *Matrix) {
			x := Var(xm.Clone())
			wx, wh, bias := Var(wxm.Clone()), Var(whm.Clone()), Var(bm.Clone())
			var y *Tensor
			if fused {
				y = RNNStepT(x, x, wx, wh, bias)
			} else {
				y = TanhT(AddRowT(AddT(MatMulT(x, wx), MatMulT(x, wh)), bias))
			}
			val := y.Value.Clone()
			scalarize(y, cm).Backward()
			return val, x.Grad
		}
		ev, eg := run(false)
		fv, fg := run(true)
		mustEq(t, "rnnstep aliased value", fv, ev)
		mustEq(t, "rnnstep aliased x.Grad", fg, eg)
	}
}

func TestGRUStepGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range [][2]int{{1, 1}, {4, 6}, {9, 13}, {21, 32}} {
		for _, hReq := range []bool{false, true} {
			b, hd := sh[0], sh[1]
			in := hd*2 + 1
			xm := randMat(rng, b, in)
			hm := randMat(rng, b, hd)
			wfm := randMat(rng, in, 3*hd)
			uzrm := randMat(rng, hd, 2*hd)
			uhm := randMat(rng, hd, hd)
			bzm, brm, bhm := randMat(rng, 1, hd), randMat(rng, 1, hd), randMat(rng, 1, hd)
			cm := randMat(rng, b, hd)

			run := func(fused bool) (*Matrix, []*Matrix) {
				x := Var(xm.Clone())
				var h *Tensor
				if hReq {
					h = Var(hm.Clone())
				} else {
					h = Const(hm.Clone())
				}
				wf, uzr, uh := Var(wfm.Clone()), Var(uzrm.Clone()), Var(uhm.Clone())
				bz, br, bh := Var(bzm.Clone()), Var(brm.Clone()), Var(bhm.Clone())
				var y *Tensor
				if fused {
					y = GRUStepT(x, h, wf, uzr, uh, bz, br, bh)
				} else {
					xw := MatMulT(x, wf)
					hu := MatMulT(h, uzr)
					xz := SliceColsT(xw, 0, hd)
					xr := SliceColsT(xw, hd, 2*hd)
					xh := SliceColsT(xw, 2*hd, 3*hd)
					hz := SliceColsT(hu, 0, hd)
					hhr := SliceColsT(hu, hd, 2*hd)
					z := SigmoidT(AddRowT(AddT(xz, hz), bz))
					r := SigmoidT(AddRowT(AddT(xr, hhr), br))
					rh := MulT(r, h)
					cand := TanhT(AddRowT(AddT(xh, MatMulT(rh, uh)), bh))
					y = AddT(h, MulT(z, SubT(cand, h)))
				}
				val := y.Value.Clone()
				scalarize(y, cm).Backward()
				return val, []*Matrix{x.Grad, h.Grad, wf.Grad, uzr.Grad, uh.Grad, bz.Grad, br.Grad, bh.Grad}
			}
			ev, eg := run(false)
			fv, fg := run(true)
			mustEq(t, "grustep value", fv, ev)
			for i, name := range []string{"x", "h", "wf", "uzr", "uh", "bz", "br", "bh"} {
				mustEq(t, "grustep grad "+name, fg[i], eg[i])
			}
		}
	}
}

func TestTimeEncodeGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, sh := range [][2]int{{1, 1}, {5, 8}, {13, 7}, {29, 16}} {
		b, dim := sh[0], sh[1]
		deltas := make([]float32, b)
		for i := range deltas {
			if i%4 == 0 {
				deltas[i] = 0 // exercise the zero-Δt GEMM short-circuit
			} else {
				deltas[i] = rng.Float32() * 10
			}
		}
		om := randMat(rng, 1, dim)
		ph := randMat(rng, 1, dim)
		cm := randMat(rng, b, dim)

		run := func(fused bool) (*Matrix, *Matrix, *Matrix) {
			omega, phase := Var(om.Clone()), Var(ph.Clone())
			var y *Tensor
			if fused {
				y = TimeEncodeT(deltas, omega, phase)
			} else {
				colm := NewMatrix(b, 1)
				copy(colm.Data, deltas)
				y = CosT(AddRowT(MatMulT(ConstScratch(colm), omega), phase))
			}
			val := y.Value.Clone()
			scalarize(y, cm).Backward()
			return val, omega.Grad, phase.Grad
		}
		ev, eog, epg := run(false)
		fv, fog, fpg := run(true)
		mustEq(t, "timeenc value", fv, ev)
		mustEq(t, "timeenc omega.Grad", fog, eog)
		mustEq(t, "timeenc phase.Grad", fpg, epg)
	}
}

func TestGATScoresGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range [][2]int{{1, 1}, {4, 3}, {9, 7}, {17, 10}} {
		for _, withMask := range []bool{false, true} {
			b, k := sh[0], sh[1]
			ssm := randMat(rng, b, 1)
			snm := randMat(rng, b*k, 1)
			var mask *Matrix
			if withMask {
				mask = NewMatrix(b, k)
				for i := range mask.Data {
					if rng.Intn(3) > 0 {
						mask.Data[i] = 1
					}
				}
				// keep at least one valid slot per row
				for i := 0; i < b; i++ {
					mask.Data[i*k] = 1
				}
			}
			cm := randMat(rng, b, k)

			run := func(fused bool) (*Matrix, *Matrix, *Matrix) {
				sSelf, sNeigh := Var(ssm.Clone()), Var(snm.Clone())
				var alpha *Tensor
				if fused {
					alpha = GATScoresT(sSelf, sNeigh, k, 0.2, mask)
				} else {
					scores := LeakyReLUT(AddT(ColBroadcastT(sSelf, k), ReshapeT(sNeigh, b, k)), 0.2)
					if mask != nil {
						neg := NewMatrix(b, k)
						for i, v := range mask.Data {
							if v == 0 {
								neg.Data[i] = -1e9
							}
						}
						scores = AddT(scores, ConstScratch(neg))
					}
					alpha = SoftmaxRowsT(scores)
				}
				val := alpha.Value.Clone()
				scalarize(alpha, cm).Backward()
				return val, sSelf.Grad, sNeigh.Grad
			}
			ev, esg, eng := run(false)
			fv, fsg, fng := run(true)
			mustEq(t, "gatscores value", fv, ev)
			mustEq(t, "gatscores sSelf.Grad", fsg, esg)
			mustEq(t, "gatscores sNeigh.Grad", fng, eng)
		}
	}
}

func TestAttnScoresGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, sh := range [][3]int{{1, 1, 1}, {4, 3, 6}, {9, 7, 13}, {15, 5, 32}} {
		for _, withMask := range []bool{false, true} {
			b, k, c := sh[0], sh[1], sh[2]
			qm := randMat(rng, b, c)
			km := randMat(rng, b*k, c)
			scale := float32(1 / math.Sqrt(float64(c)))
			var mask *Matrix
			if withMask {
				mask = NewMatrix(b, k)
				for i := range mask.Data {
					if rng.Intn(3) > 0 {
						mask.Data[i] = 1
					}
				}
				for i := 0; i < b; i++ {
					mask.Data[i*k] = 1
				}
			}
			cm := randMat(rng, b, k)

			run := func(fused bool) (*Matrix, *Matrix, *Matrix) {
				q, keys := Var(qm.Clone()), Var(km.Clone())
				var alpha *Tensor
				if fused {
					alpha = AttnScoresT(q, keys, k, scale, mask)
				} else {
					scores := ScaleT(RowDotGroupsT(q, keys, k), scale)
					if mask != nil {
						neg := NewMatrix(b, k)
						for i, v := range mask.Data {
							if v == 0 {
								neg.Data[i] = -1e9
							}
						}
						scores = AddT(scores, ConstScratch(neg))
					}
					alpha = SoftmaxRowsT(scores)
				}
				val := alpha.Value.Clone()
				scalarize(alpha, cm).Backward()
				return val, q.Grad, keys.Grad
			}
			ev, eqg, ekg := run(false)
			fv, fqg, fkg := run(true)
			mustEq(t, "attnscores value", fv, ev)
			mustEq(t, "attnscores q.Grad", fqg, eqg)
			mustEq(t, "attnscores keys.Grad", fkg, ekg)
		}
	}
}

func TestAddReLUGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sh := range [][2]int{{1, 1}, {6, 9}, {18, 24}} {
		b, c := sh[0], sh[1]
		am := randMat(rng, b, c)
		bm := randMat(rng, b, c)
		cm := randMat(rng, b, c)

		run := func(fused bool) (*Matrix, *Matrix, *Matrix) {
			a, bb := Var(am.Clone()), Var(bm.Clone())
			var y *Tensor
			if fused {
				y = AddReLUT(a, bb)
			} else {
				y = ReLUT(AddT(a, bb))
			}
			val := y.Value.Clone()
			scalarize(y, cm).Backward()
			return val, a.Grad, bb.Grad
		}
		ev, eag, ebg := run(false)
		fv, fag, fbg := run(true)
		mustEq(t, "addrelu value", fv, ev)
		mustEq(t, "addrelu a.Grad", fag, eag)
		mustEq(t, "addrelu b.Grad", fbg, ebg)
	}
}
