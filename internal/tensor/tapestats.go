package tensor

// TapeStats summarizes the computation graph reachable from a root tensor:
// how many kernels a GPU would launch for it, the floating-point work, and
// the row-parallelism it exposes. The device cost model (internal/device)
// converts these into simulated accelerator latency and occupancy — the
// quantities behind the paper's Figure 2 latency curve and its SM/memory
// utilization observations (§3.1).
type TapeStats struct {
	// Kernels counts computed nodes (each op is one kernel launch).
	Kernels int
	// Flops estimates forward floating-point operations.
	Flops float64
	// RowSum is the total row count across kernels (RowSum/Kernels is the
	// mean per-kernel parallelism).
	RowSum int64
	// MaxRows is the widest kernel.
	MaxRows int
}

// Add accumulates other into s.
func (s *TapeStats) Add(other TapeStats) {
	s.Kernels += other.Kernels
	s.Flops += other.Flops
	s.RowSum += other.RowSum
	if other.MaxRows > s.MaxRows {
		s.MaxRows = other.MaxRows
	}
}

// PlanCost is the pre-computed tape cost a compiled plan node carries as its
// meta: the plan executor runs a fixed instruction program, so its stats are
// computed once at compile time instead of per-batch graph walks.
type PlanCost struct {
	Kernels int
	Flops   float64
	RowSum  int64
	MaxRows int
}

// StatsOf walks the full forward tape (including constant-input subgraphs —
// those kernels run regardless of gradient requirements) and returns its
// statistics.
func StatsOf(root *Tensor) TapeStats {
	var s TapeStats
	visited := make(map[*Tensor]bool)
	stack := []*Tensor{root}
	visited[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.op == "plan" {
			if c, ok := n.meta.(PlanCost); ok {
				s.Add(TapeStats{Kernels: c.Kernels, Flops: c.Flops, RowSum: c.RowSum, MaxRows: c.MaxRows})
			}
		} else if n.op != "var" && n.op != "const" {
			s.Kernels++
			s.Flops += nodeFlops(n)
			rows := n.Value.Rows
			s.RowSum += int64(rows)
			if rows > s.MaxRows {
				s.MaxRows = rows
			}
		}
		for _, in := range n.inputs {
			if !visited[in] {
				visited[in] = true
				stack = append(stack, in)
			}
		}
	}
	return s
}

// nodeFlops estimates the forward work of one op.
func nodeFlops(n *Tensor) float64 {
	out := float64(len(n.Value.Data))
	switch n.op {
	case "matmul":
		// 2·M·K·N multiply-adds.
		return 2 * float64(n.inputs[0].Value.Rows) * float64(n.inputs[0].Value.Cols) * float64(n.inputs[1].Value.Cols)
	case "sigmoid", "tanh", "cos", "softmax", "bcelogits":
		return 8 * out // transcendental-heavy elementwise
	case "rowdotgroups", "weightedsumgroups":
		// group·cols multiply-adds per output row element.
		return 2 * float64(len(n.inputs[0].Value.Data))
	case "linearact":
		// GEMM + bias + activation in one node.
		return 2*float64(n.inputs[0].Value.Rows)*float64(n.inputs[0].Value.Cols)*float64(n.inputs[1].Value.Cols) + 9*out
	case "rnnstep":
		// two GEMMs + fused tanh pass. inputs: (x, wx, h, wh, b).
		x, wx, h, wh := n.inputs[0], n.inputs[1], n.inputs[2], n.inputs[3]
		return 2*float64(x.Value.Rows)*float64(x.Value.Cols)*float64(wx.Value.Cols) +
			2*float64(h.Value.Rows)*float64(h.Value.Cols)*float64(wh.Value.Cols) + 10*out
	case "grustep":
		// three GEMMs + fused gate passes. inputs: (h, x, wf, uzr, ...).
		h, x, wf := n.inputs[0], n.inputs[1], n.inputs[2]
		hd := float64(n.Value.Cols)
		return 2*float64(x.Value.Rows)*float64(x.Value.Cols)*float64(wf.Value.Cols) +
			2*float64(h.Value.Rows)*float64(h.Value.Cols)*(2*hd) +
			2*float64(h.Value.Rows)*hd*hd + 24*out
	case "timeenc":
		return 2*out + 8*out // outer product + fused cos pass
	case "gatscores", "attnscores":
		return 10 * out // scores + mask + softmax per slot
	case "addrelu":
		return 2 * out
	default:
		return out
	}
}
