package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Golden-value tests: every blocked kernel is checked against a naive
// triple-loop reference over shapes chosen to hit every tile remainder
// (degenerate vectors, odd rows, k not a multiple of 4, j not a multiple of
// 4, and sizes crossing the parallel threshold). Comparisons are tolerant:
// the blocked kernels sum in a different order than the reference, and FMA
// contraction (GOAMD64 >= v3) rounds differently again.

func naiveMatMul(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			dst.Set(i, j, float32(sum))
		}
	}
	return dst
}

func naiveMatMulTransA(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Rows; k++ {
				sum += float64(a.At(k, i)) * float64(b.At(k, j))
			}
			dst.Set(i, j, float32(sum))
		}
	}
	return dst
}

func naiveMatMulTransB(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += float64(a.At(i, k)) * float64(b.At(j, k))
			}
			dst.Set(i, j, float32(sum))
		}
	}
	return dst
}

func assertClose(t *testing.T, tag string, got, want *Matrix) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d, want %dx%d", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		tol := 1e-4 * math.Max(1, math.Abs(w))
		if math.Abs(g-w) > tol {
			t.Fatalf("%s: elem %d = %g, want %g (|Δ|=%g)", tag, i, g, w, math.Abs(g-w))
		}
	}
}

// gemmShapes covers the ragged cases: every combination of remainder paths
// in the 2×4 tiles, plus one shape big enough to take the parallel path.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 1, 9},
	{5, 1, 1},
	{2, 4, 4},
	{3, 5, 7},   // odd everything
	{4, 8, 4},   // exact tiles
	{5, 9, 6},   // odd rows, k%4=1
	{6, 10, 11}, // k%4=2, n%4=3
	{7, 11, 13},
	{64, 33, 17},
	{97, 64, 51},
	{130, 67, 33}, // crosses matmulParallelThreshold
}

func TestMatMulGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range gemmShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.k, s.n)
		got := MatMul(a, b)
		assertClose(t, fmt.Sprintf("matmul %dx%d·%dx%d", s.m, s.k, s.k, s.n), got, naiveMatMul(a, b))
	}
}

func TestMatMulTransAGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range gemmShapes {
		// aᵀ·b with a as (k × m): reduction runs over s.k rows.
		a := randMatrix(rng, s.k, s.m)
		b := randMatrix(rng, s.k, s.n)
		got := NewMatrix(s.m, s.n)
		MatMulTransAInto(got, a, b)
		assertClose(t, fmt.Sprintf("matmulTA %dx%dᵀ·%dx%d", s.k, s.m, s.k, s.n), got, naiveMatMulTransA(a, b))
	}
}

func TestMatMulTransBGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range gemmShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.n, s.k)
		got := NewMatrix(s.m, s.n)
		MatMulTransBInto(got, a, b)
		assertClose(t, fmt.Sprintf("matmulTB %dx%d·%dx%dᵀ", s.m, s.k, s.n, s.k), got, naiveMatMulTransB(a, b))
	}
}

// The fused accumulate variants must equal base + product.
func TestMatMulAccumGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, s := range gemmShapes {
		a := randMatrix(rng, s.m, s.k)
		bT := randMatrix(rng, s.n, s.k)
		base := randMatrix(rng, s.m, s.n)

		gotB := base.Clone()
		MatMulTransBAccum(gotB, a, bT)
		wantB := naiveMatMulTransB(a, bT)
		AxpyInto(wantB, base, 1)
		assertClose(t, fmt.Sprintf("accumTB %dx%d·%dx%dᵀ", s.m, s.k, s.n, s.k), gotB, wantB)

		aT := randMatrix(rng, s.k, s.m)
		b := randMatrix(rng, s.k, s.n)
		gotA := base.Clone()
		MatMulTransAAccum(gotA, aT, b)
		wantA := naiveMatMulTransA(aT, b)
		AxpyInto(wantA, base, 1)
		assertClose(t, fmt.Sprintf("accumTA %dx%dᵀ·%dx%d", s.k, s.m, s.k, s.n), gotA, wantA)
	}
}

// Property check across random shapes, exercising whatever tile remainders
// the fixed table missed.
func TestMatMulGoldenRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		m, k, n := rng.Intn(40)+1, rng.Intn(40)+1, rng.Intn(40)+1
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		assertClose(t, fmt.Sprintf("trial %d (%d,%d,%d)", trial, m, k, n), MatMul(a, b), naiveMatMul(a, b))
	}
}
