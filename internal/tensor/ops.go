package tensor

import (
	"fmt"
	"math"
)

// MatMulT returns a·b with gradients
//
//	∂/∂a = g·bᵀ, ∂/∂b = aᵀ·g.
func MatMulT(a, b *Tensor) *Tensor {
	val := MatMul(a.Value, b.Value)
	var out *Tensor
	out = newNode("matmul", val, func() {
		g := out.Grad
		if a.requiresGrad {
			MatMulTransBAccum(a.ensureGrad(), g, b.Value)
		}
		if b.requiresGrad {
			MatMulTransAAccum(b.ensureGrad(), a.Value, g)
		}
	}, a, b)
	return out
}

// AddT returns a + b elementwise.
func AddT(a, b *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	AddInto(val, a.Value, b.Value)
	var out *Tensor
	out = newNode("add", val, func() {
		if a.requiresGrad {
			AxpyInto(a.ensureGrad(), out.Grad, 1)
		}
		if b.requiresGrad {
			AxpyInto(b.ensureGrad(), out.Grad, 1)
		}
	}, a, b)
	return out
}

// SubT returns a - b elementwise.
func SubT(a, b *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	SubInto(val, a.Value, b.Value)
	var out *Tensor
	out = newNode("sub", val, func() {
		if a.requiresGrad {
			AxpyInto(a.ensureGrad(), out.Grad, 1)
		}
		if b.requiresGrad {
			AxpyInto(b.ensureGrad(), out.Grad, -1)
		}
	}, a, b)
	return out
}

// MulT returns a ⊙ b elementwise.
func MulT(a, b *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	MulInto(val, a.Value, b.Value)
	var out *Tensor
	out = newNode("mul", val, func() {
		g := out.Grad
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := range g.Data {
				ga.Data[i] += g.Data[i] * b.Value.Data[i]
			}
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			for i := range g.Data {
				gb.Data[i] += g.Data[i] * a.Value.Data[i]
			}
		}
	}, a, b)
	return out
}

// ScaleT returns s·a.
func ScaleT(a *Tensor, s float32) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	ScaleInto(val, a.Value, s)
	var out *Tensor
	out = newNode("scale", val, func() {
		if a.requiresGrad {
			AxpyInto(a.ensureGrad(), out.Grad, s)
		}
	}, a)
	return out
}

// AddRowT broadcasts the 1×C row vector v onto every row of a (bias add).
func AddRowT(a, v *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	AddRowInto(val, a.Value, v.Value)
	var out *Tensor
	out = newNode("addrow", val, func() {
		g := out.Grad
		if a.requiresGrad {
			AxpyInto(a.ensureGrad(), g, 1)
		}
		if v.requiresGrad {
			gv := v.ensureGrad()
			for r := 0; r < g.Rows; r++ {
				grow := g.Row(r)
				for j := range grow {
					gv.Data[j] += grow[j]
				}
			}
		}
	}, a, v)
	return out
}

// SigmoidT applies 1/(1+e^-x) elementwise.
func SigmoidT(a *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		val.Data[i] = sigmoid(x)
	}
	var out *Tensor
	out = newNode("sigmoid", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, y := range val.Data {
				ga.Data[i] += out.Grad.Data[i] * y * (1 - y)
			}
		}
	}, a)
	return out
}

// TanhT applies tanh elementwise.
func TanhT(a *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		val.Data[i] = float32(math.Tanh(float64(x)))
	}
	var out *Tensor
	out = newNode("tanh", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, y := range val.Data {
				ga.Data[i] += out.Grad.Data[i] * (1 - y*y)
			}
		}
	}, a)
	return out
}

// ReLUT applies max(0, x) elementwise.
func ReLUT(a *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if x > 0 {
			val.Data[i] = x
		}
	}
	var out *Tensor
	out = newNode("relu", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, x := range a.Value.Data {
				if x > 0 {
					ga.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}, a)
	return out
}

// LeakyReLUT applies x>0 ? x : slope·x elementwise (GAT uses slope 0.2).
func LeakyReLUT(a *Tensor, slope float32) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if x > 0 {
			val.Data[i] = x
		} else {
			val.Data[i] = slope * x
		}
	}
	var out *Tensor
	out = newNode("leakyrelu", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, x := range a.Value.Data {
				if x > 0 {
					ga.Data[i] += out.Grad.Data[i]
				} else {
					ga.Data[i] += out.Grad.Data[i] * slope
				}
			}
		}
	}, a)
	return out
}

// ConcatColsT concatenates tensors horizontally: all inputs share a row
// count; output has the summed column count. Used to build [s_u ‖ s_v ‖ Δt ‖ e]
// message inputs (Eq. 2) and GRU gate inputs.
func ConcatColsT(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Value.Rows
	cols := 0
	for _, t := range ts {
		if t.Value.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", t.Value.Rows, rows))
		}
		cols += t.Value.Cols
	}
	val := NewMatrix(rows, cols)
	off := 0
	for _, t := range ts {
		c := t.Value.Cols
		for r := 0; r < rows; r++ {
			copy(val.Row(r)[off:off+c], t.Value.Row(r))
		}
		off += c
	}
	var out *Tensor
	out = newNode("concat", val, func() {
		off := 0
		for _, t := range ts {
			c := t.Value.Cols
			if t.requiresGrad {
				gt := t.ensureGrad()
				for r := 0; r < rows; r++ {
					grow := out.Grad.Row(r)[off : off+c]
					trow := gt.Row(r)
					for j := range grow {
						trow[j] += grow[j]
					}
				}
			}
			off += c
		}
	}, ts...)
	return out
}

// SliceColsT returns columns [lo, hi) of a as a new tensor.
func SliceColsT(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Value.Cols || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", lo, hi, a.Value.Cols))
	}
	val := NewMatrix(a.Value.Rows, hi-lo)
	for r := 0; r < a.Value.Rows; r++ {
		copy(val.Row(r), a.Value.Row(r)[lo:hi])
	}
	var out *Tensor
	out = newNode("slicecols", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for r := 0; r < a.Value.Rows; r++ {
				grow := out.Grad.Row(r)
				arow := ga.Row(r)[lo:hi]
				for j := range grow {
					arow[j] += grow[j]
				}
			}
		}
	}, a)
	return out
}

// GatherRowsT selects rows of a by index (duplicates allowed); gradients
// scatter-add back. Used to expand per-node tensors to per-event rows.
func GatherRowsT(a *Tensor, idx []int) *Tensor {
	val := NewMatrix(len(idx), a.Value.Cols)
	for r, i := range idx {
		if i < 0 || i >= a.Value.Rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of %d rows", i, a.Value.Rows))
		}
		copy(val.Row(r), a.Value.Row(i))
	}
	var out *Tensor
	out = newNode("gather", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for r, i := range idx {
				grow := out.Grad.Row(r)
				arow := ga.Row(i)
				for j := range grow {
					arow[j] += grow[j]
				}
			}
		}
	}, a)
	out.meta = idx // the plan capturer (internal/plan) replays the gather
	return out
}

// SoftmaxRowsT applies a numerically stable softmax along each row.
func SoftmaxRowsT(a *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for r := 0; r < a.Value.Rows; r++ {
		softmaxRow(val.Row(r), a.Value.Row(r))
	}
	var out *Tensor
	out = newNode("softmax", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for r := 0; r < val.Rows; r++ {
				y := val.Row(r)
				g := out.Grad.Row(r)
				var dot float32
				for j := range y {
					dot += y[j] * g[j]
				}
				arow := ga.Row(r)
				for j := range y {
					arow[j] += y[j] * (g[j] - dot)
				}
			}
		}
	}, a)
	return out
}

func softmaxRow(dst, src []float32) {
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for j, v := range src {
		e := float32(math.Exp(float64(v - maxv)))
		dst[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// SumT reduces all elements to a 1×1 tensor.
func SumT(a *Tensor) *Tensor {
	var s float32
	for _, v := range a.Value.Data {
		s += v
	}
	val := NewMatrix(1, 1)
	val.Data[0] = s
	var out *Tensor
	out = newNode("sum", val, func() {
		if a.requiresGrad {
			g := out.Grad.Data[0]
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += g
			}
		}
	}, a)
	return out
}

// MeanT reduces all elements to their mean as a 1×1 tensor.
func MeanT(a *Tensor) *Tensor {
	n := float32(len(a.Value.Data))
	var s float32
	for _, v := range a.Value.Data {
		s += v
	}
	val := NewMatrix(1, 1)
	val.Data[0] = s / n
	var out *Tensor
	out = newNode("mean", val, func() {
		if a.requiresGrad {
			g := out.Grad.Data[0] / n
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += g
			}
		}
	}, a)
	return out
}

// RowMeanGroupsT averages consecutive groups of `group` rows:
// input (n·group × c) → output (n × c). Used for mean message aggregation
// and neighborhood pooling.
func RowMeanGroupsT(a *Tensor, group int) *Tensor {
	if group <= 0 || a.Value.Rows%group != 0 {
		panic(fmt.Sprintf("tensor: RowMeanGroups group %d over %d rows", group, a.Value.Rows))
	}
	n := a.Value.Rows / group
	val := NewMatrix(n, a.Value.Cols)
	inv := 1 / float32(group)
	for i := 0; i < n; i++ {
		drow := val.Row(i)
		for k := 0; k < group; k++ {
			srow := a.Value.Row(i*group + k)
			for j := range drow {
				drow[j] += srow[j] * inv
			}
		}
	}
	var out *Tensor
	out = newNode("rowmeangroups", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := 0; i < n; i++ {
				grow := out.Grad.Row(i)
				for k := 0; k < group; k++ {
					arow := ga.Row(i*group + k)
					for j := range grow {
						arow[j] += grow[j] * inv
					}
				}
			}
		}
	}, a)
	return out
}

// WeightedSumGroupsT computes, for each group i of `group` consecutive rows
// of a, the weighted sum Σ_k w[i,k]·a[i·group+k]. w must be (n × group),
// a must be (n·group × c); output is (n × c). This is the attention-weighted
// neighbor aggregation at the heart of GAT/attention embedding (Eq. 4).
func WeightedSumGroupsT(a, w *Tensor, group int) *Tensor {
	if a.Value.Rows%group != 0 {
		panic(fmt.Sprintf("tensor: WeightedSumGroups group %d over %d rows", group, a.Value.Rows))
	}
	n := a.Value.Rows / group
	if w.Value.Rows != n || w.Value.Cols != group {
		panic(fmt.Sprintf("tensor: WeightedSumGroups weights %dx%d, want %dx%d", w.Value.Rows, w.Value.Cols, n, group))
	}
	val := NewMatrix(n, a.Value.Cols)
	for i := 0; i < n; i++ {
		drow := val.Row(i)
		wrow := w.Value.Row(i)
		for k := 0; k < group; k++ {
			srow := a.Value.Row(i*group + k)
			wk := wrow[k]
			for j := range drow {
				drow[j] += wk * srow[j]
			}
		}
	}
	var out *Tensor
	out = newNode("weightedsumgroups", val, func() {
		g := out.Grad
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := 0; i < n; i++ {
				grow := g.Row(i)
				wrow := w.Value.Row(i)
				for k := 0; k < group; k++ {
					arow := ga.Row(i*group + k)
					wk := wrow[k]
					for j := range grow {
						arow[j] += wk * grow[j]
					}
				}
			}
		}
		if w.requiresGrad {
			gw := w.ensureGrad()
			for i := 0; i < n; i++ {
				grow := g.Row(i)
				gwrow := gw.Row(i)
				for k := 0; k < group; k++ {
					arow := a.Value.Row(i*group + k)
					var dot float32
					for j := range grow {
						dot += grow[j] * arow[j]
					}
					gwrow[k] += dot
				}
			}
		}
	}, a, w)
	return out
}

// RowDotGroupsT computes, for each group i, the dot products between row i of
// q (n × c) and each of the `group` consecutive rows of k (n·group × c),
// producing (n × group) scores. This is the q·kᵀ step of attention.
func RowDotGroupsT(q, k *Tensor, group int) *Tensor {
	n := q.Value.Rows
	if k.Value.Rows != n*group || k.Value.Cols != q.Value.Cols {
		panic(fmt.Sprintf("tensor: RowDotGroups q %dx%d k %dx%d group %d", q.Value.Rows, q.Value.Cols, k.Value.Rows, k.Value.Cols, group))
	}
	val := NewMatrix(n, group)
	for i := 0; i < n; i++ {
		qrow := q.Value.Row(i)
		drow := val.Row(i)
		for g := 0; g < group; g++ {
			krow := k.Value.Row(i*group + g)
			var dot float32
			for j := range qrow {
				dot += qrow[j] * krow[j]
			}
			drow[g] = dot
		}
	}
	var out *Tensor
	out = newNode("rowdotgroups", val, func() {
		gr := out.Grad
		if q.requiresGrad {
			gq := q.ensureGrad()
			for i := 0; i < n; i++ {
				grow := gr.Row(i)
				qrow := gq.Row(i)
				for g := 0; g < group; g++ {
					krow := k.Value.Row(i*group + g)
					gg := grow[g]
					for j := range qrow {
						qrow[j] += gg * krow[j]
					}
				}
			}
		}
		if k.requiresGrad {
			gk := k.ensureGrad()
			for i := 0; i < n; i++ {
				grow := gr.Row(i)
				qrow := q.Value.Row(i)
				for g := 0; g < group; g++ {
					krow := gk.Row(i*group + g)
					gg := grow[g]
					for j := range qrow {
						krow[j] += gg * qrow[j]
					}
				}
			}
		}
	}, q, k)
	return out
}

// BCEWithLogitsT returns the mean binary cross-entropy between logits and
// targets (same shape, targets in {0,1}), computed in the numerically stable
// fused form max(x,0) − x·y + log(1+e^{−|x|}). This is the link-prediction
// loss of §2.3.
func BCEWithLogitsT(logits, targets *Tensor) *Tensor {
	mustSameShape("BCEWithLogits", logits.Value, targets.Value)
	n := float32(len(logits.Value.Data))
	var total float32
	for i, x := range logits.Value.Data {
		y := targets.Value.Data[i]
		m := x
		if m < 0 {
			m = 0
		}
		ax := x
		if ax < 0 {
			ax = -ax
		}
		total += m - x*y + float32(math.Log1p(math.Exp(float64(-ax))))
	}
	val := NewMatrix(1, 1)
	val.Data[0] = total / n
	var out *Tensor
	out = newNode("bcelogits", val, func() {
		if logits.requiresGrad {
			g := out.Grad.Data[0] / n
			gl := logits.ensureGrad()
			for i, x := range logits.Value.Data {
				y := targets.Value.Data[i]
				gl.Data[i] += g * (sigmoid(x) - y)
			}
		}
	}, logits, targets)
	return out
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(float64(-x))))
}

// CosT applies cos elementwise. Together with a learnable frequency row this
// forms the Bochner time encoding used by TGAT-style models:
// φ(Δt) = cos(Δt·ω + b).
func CosT(a *Tensor) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		val.Data[i] = float32(math.Cos(float64(x)))
	}
	var out *Tensor
	out = newNode("cos", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, x := range a.Value.Data {
				ga.Data[i] -= out.Grad.Data[i] * float32(math.Sin(float64(x)))
			}
		}
	}, a)
	return out
}

// AddScalarT returns a + c elementwise.
func AddScalarT(a *Tensor, c float32) *Tensor {
	val := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		val.Data[i] = x + c
	}
	var out *Tensor
	out = newNode("addscalar", val, func() {
		if a.requiresGrad {
			AxpyInto(a.ensureGrad(), out.Grad, 1)
		}
	}, a)
	return out
}

// ColBroadcastT expands a column vector (n×1) to (n×cols) by repeating the
// column. Gradients sum back across the row. JODIE's time-decay projection
// (1 + Δt·w) ⊙ s uses this to scale every memory dimension by a per-row
// coefficient.
func ColBroadcastT(a *Tensor, cols int) *Tensor {
	if a.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: ColBroadcast of %dx%d, want column vector", a.Value.Rows, a.Value.Cols))
	}
	val := NewMatrix(a.Value.Rows, cols)
	for r := 0; r < a.Value.Rows; r++ {
		v := a.Value.Data[r]
		row := val.Row(r)
		for j := range row {
			row[j] = v
		}
	}
	var out *Tensor
	out = newNode("colbroadcast", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for r := 0; r < val.Rows; r++ {
				grow := out.Grad.Row(r)
				var s float32
				for _, g := range grow {
					s += g
				}
				ga.Data[r] += s
			}
		}
	}, a)
	return out
}

// ReshapeT returns a view of a with a new shape (same element count, row
// major order preserved). Gradients pass through unchanged.
func ReshapeT(a *Tensor, rows, cols int) *Tensor {
	if rows*cols != len(a.Value.Data) {
		panic(fmt.Sprintf("tensor: Reshape %dx%d of %d elements", rows, cols, len(a.Value.Data)))
	}
	val := NewMatrix(rows, cols)
	copy(val.Data, a.Value.Data)
	var out *Tensor
	out = newNode("reshape", val, func() {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, g := range out.Grad.Data {
				ga.Data[i] += g
			}
		}
	}, a)
	return out
}

// ConcatRowsT stacks tensors vertically: all inputs share a column count;
// the output has the summed row count. The trainer uses it to join on-tape
// freshly updated node memories with detached stored memories into one
// gatherable view.
func ConcatRowsT(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Value.Cols
	rows := 0
	for _, t := range ts {
		if t.Value.Cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", t.Value.Cols, cols))
		}
		rows += t.Value.Rows
	}
	val := NewMatrix(rows, cols)
	off := 0
	for _, t := range ts {
		copy(val.Data[off*cols:], t.Value.Data)
		off += t.Value.Rows
	}
	var out *Tensor
	out = newNode("concatrows", val, func() {
		off := 0
		for _, t := range ts {
			n := len(t.Value.Data)
			if t.requiresGrad {
				gt := t.ensureGrad()
				src := out.Grad.Data[off : off+n]
				for i, g := range src {
					gt.Data[i] += g
				}
			}
			off += n
		}
	}, ts...)
	return out
}

// LayerNormT normalizes each row to zero mean and unit variance, then
// applies the learnable per-column gain and bias (both 1×C):
// y = (x − μ)/σ ⊙ g + b. Transformer-style blocks need it to keep
// residual feedback loops (e.g. APAN's mailbox → memory → mailbox) bounded.
func LayerNormT(x, gain, bias *Tensor) *Tensor {
	rows, cols := x.Value.Rows, x.Value.Cols
	if gain.Value.Rows != 1 || gain.Value.Cols != cols || bias.Value.Rows != 1 || bias.Value.Cols != cols {
		panic(fmt.Sprintf("tensor: LayerNorm gain/bias must be 1x%d", cols))
	}
	const eps = 1e-5
	val := NewMatrix(rows, cols)
	xhat := NewMatrix(rows, cols) // retained for backward
	invStd := make([]float32, rows)
	for r := 0; r < rows; r++ {
		xr := x.Value.Row(r)
		var mean float64
		for _, v := range xr {
			mean += float64(v)
		}
		mean /= float64(cols)
		var varSum float64
		for _, v := range xr {
			d := float64(v) - mean
			varSum += d * d
		}
		is := float32(1 / math.Sqrt(varSum/float64(cols)+eps))
		invStd[r] = is
		hr := xhat.Row(r)
		vr := val.Row(r)
		for j, v := range xr {
			h := (v - float32(mean)) * is
			hr[j] = h
			vr[j] = h*gain.Value.Data[j] + bias.Value.Data[j]
		}
	}
	var out *Tensor
	out = newNode("layernorm", val, func() {
		g := out.Grad
		var dy []float32
		if gain.requiresGrad {
			gg := gain.ensureGrad()
			for r := 0; r < rows; r++ {
				grow, hrow := g.Row(r), xhat.Row(r)
				for j := range grow {
					gg.Data[j] += grow[j] * hrow[j]
				}
			}
		}
		if bias.requiresGrad {
			gb := bias.ensureGrad()
			for r := 0; r < rows; r++ {
				grow := g.Row(r)
				for j := range grow {
					gb.Data[j] += grow[j]
				}
			}
		}
		if x.requiresGrad {
			gx := x.ensureGrad()
			n := float32(cols)
			for r := 0; r < rows; r++ {
				grow, hrow := g.Row(r), xhat.Row(r)
				// dŷ = dy ⊙ g; dx = (dŷ − mean(dŷ) − x̂·mean(dŷ⊙x̂))·invStd
				var sumDy, sumDyH float32
				if dy == nil {
					dy = make([]float32, cols)
				}
				for j := range grow {
					dy[j] = grow[j] * gain.Value.Data[j]
					sumDy += dy[j]
					sumDyH += dy[j] * hrow[j]
				}
				mDy, mDyH := sumDy/n, sumDyH/n
				xrow := gx.Row(r)
				for j := range dy {
					xrow[j] += (dy[j] - mDy - hrow[j]*mDyH) * invStd[r]
				}
			}
		}
	}, x, gain, bias)
	out.retainScratch(xhat)
	return out
}
