// Package tensor implements the dense linear-algebra substrate the TGNN
// models are built on: a float32 matrix type with BLAS-like kernels and a
// tape-based reverse-mode autograd engine. It replaces the PyTorch/CUDA
// stack the paper's implementation sits on (see DESIGN.md §1).
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major float32 matrix. A Matrix with Rows == 1 acts
// as a row vector (e.g. a single node memory); batched node memories are
// (batch × dim) matrices.
type Matrix struct {
	Rows, Cols int
	Data       []float32

	// state tracks arena bookkeeping (pool.go): whether Data was minted by
	// the pool and whether Release has been called.
	state uint8
}

// NewMatrix returns a zeroed rows×cols matrix, recycling storage from the
// tensor arena when a released buffer of a fitting size class is available
// (fresh heap allocations are counted by AllocStats, pool hits by
// PoolStats).
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dims %dx%d", rows, cols))
	}
	n := rows * cols
	buf, recyclable := poolGet(n)
	m := &Matrix{Rows: rows, Cols: cols, Data: buf}
	if recyclable {
		m.state = matrixPooled
	}
	return m
}

// NewStatic returns a zeroed rows×cols matrix whose storage is owned by a
// compiled plan: it bypasses the arena entirely and Release on it is a no-op,
// so the same slab survives FreeGraph across replays (see pool.go).
func NewStatic(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols), state: matrixStatic}
}

// WrapStatic wraps data (row-major) as a plan-owned rows×cols matrix with the
// same no-op Release semantics as NewStatic. Plans carve several instruction
// outputs out of one slab with it.
func WrapStatic(data []float32, rows, cols int) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: WrapStatic got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data, state: matrixStatic}
}

// FromSlice wraps data (row-major) as a rows×cols matrix. The slice is used
// directly, not copied.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul allocates and returns a·b. (The GEMM kernels behind MatMulInto and
// the transpose variants live in gemm.go.)
func MatMul(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Cols)
	MatMulInto(dst, a, b)
	return dst
}

// AddInto computes dst = a + b elementwise; dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	mustSameShape("Add", a, b)
	mustSameShape("Add dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes dst = a - b elementwise; dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	mustSameShape("Sub", a, b)
	mustSameShape("Sub dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulInto computes dst = a ⊙ b elementwise; dst may alias a or b.
func MulInto(dst, a, b *Matrix) {
	mustSameShape("Mul", a, b)
	mustSameShape("Mul dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// ScaleInto computes dst = s·a; dst may alias a.
func ScaleInto(dst, a *Matrix, s float32) {
	mustSameShape("Scale dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// AddRowInto adds row vector v (1×Cols) to every row of a, writing into dst.
// This is the bias-broadcast used by Linear layers.
func AddRowInto(dst, a, v *Matrix) {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRow vector %dx%d for matrix %dx%d", v.Rows, v.Cols, a.Rows, a.Cols))
	}
	mustSameShape("AddRow dst", dst, a)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range arow {
			drow[j] = arow[j] + v.Data[j]
		}
	}
}

// AxpyInto computes dst += s·a.
func AxpyInto(dst, a *Matrix, s float32) {
	mustSameShape("Axpy", dst, a)
	for i := range a.Data {
		dst.Data[i] += s * a.Data[i]
	}
}

// Dot returns the Frobenius inner product of a and b.
func Dot(a, b *Matrix) float32 {
	mustSameShape("Dot", a, b)
	var sum float32
	for i := range a.Data {
		sum += a.Data[i] * b.Data[i]
	}
	return sum
}

// CosineSimilarityRows computes the per-row cosine similarity of two
// equally shaped matrices. This is the kernel behind the SG-Filter's
// stable-node detection (§4.3): rows are node memories before/after update.
// A pair of zero rows is defined as perfectly similar (similarity 1), since
// an untouched zero memory has not changed.
func CosineSimilarityRows(a, b *Matrix) []float32 {
	mustSameShape("CosineSimilarityRows", a, b)
	out := make([]float32, a.Rows)
	for r := 0; r < a.Rows; r++ {
		out[r] = CosineSimilarityVec(a.Row(r), b.Row(r))
	}
	return out
}

// CosineSimilarityVec returns the cosine similarity of two equal-length
// vectors with the same zero conventions as CosineSimilarityRows.
func CosineSimilarityVec(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: cosine of %d vs %d elems", len(a), len(b)))
	}
	// Accumulate in float64: node memories can carry large activations and
	// float32 squares overflow well before the similarity itself is
	// ill-defined.
	var dot, na, nb float64
	for j := range a {
		av, bv := float64(a[j]), float64(b[j])
		dot += av * bv
		na += av * av
		nb += bv * bv
	}
	switch {
	case na == 0 && nb == 0:
		return 1
	case na == 0 || nb == 0:
		return 0
	}
	return float32(dot / (math.Sqrt(na) * math.Sqrt(nb)))
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
