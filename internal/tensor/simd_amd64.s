//go:build amd64

#include "textflag.h"

// func hasAVX2FMA() bool
//
// CPUID leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28);
// XGETBV(0): XMM|YMM state enabled by the OS (bits 1,2);
// CPUID leaf 7 EBX: AVX2 (bit 5).
TEXT ·hasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DX
	ANDL $0x18001000, DX // FMA | OSXSAVE | AVX
	CMPL DX, $0x18001000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX // XMM and YMM state live across context switches
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func axpy4(d, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)
//
// d[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], eight lanes per FMA.
TEXT ·axpy4(SB), NOSPLIT, $0-136
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	VBROADCASTSS a0+120(FP), Y0
	VBROADCASTSS a1+124(FP), Y1
	VBROADCASTSS a2+128(FP), Y2
	VBROADCASTSS a3+132(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX // DX = len(d) rounded down to a lane multiple
vec:
	CMPQ AX, DX
	JGE  tail
	VMOVUPS     (DI)(AX*4), Y4
	VFMADD231PS (SI)(AX*4), Y0, Y4
	VFMADD231PS (R8)(AX*4), Y1, Y4
	VFMADD231PS (R9)(AX*4), Y2, Y4
	VFMADD231PS (R10)(AX*4), Y3, Y4
	VMOVUPS     Y4, (DI)(AX*4)
	ADDQ $8, AX
	JMP  vec
tail:
	CMPQ AX, CX
	JGE  done
	VMOVSS      (DI)(AX*4), X4
	VFMADD231SS (SI)(AX*4), X0, X4
	VFMADD231SS (R8)(AX*4), X1, X4
	VFMADD231SS (R9)(AX*4), X2, X4
	VFMADD231SS (R10)(AX*4), X3, X4
	VMOVSS      X4, (DI)(AX*4)
	INCQ AX
	JMP  tail
done:
	VZEROUPPER
	RET

// func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32)
//
// Four simultaneous dot products sharing one streamed read of a: eight-lane
// FMA accumulators, horizontally reduced, then a scalar tail folded into the
// reduced sums.
TEXT ·dot4(SB), NOSPLIT, $0-136
	MOVQ a_base+0(FP), DI
	MOVQ a_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
vec:
	CMPQ AX, DX
	JGE  reduce
	VMOVUPS     (DI)(AX*4), Y4
	VFMADD231PS (SI)(AX*4), Y4, Y0
	VFMADD231PS (R8)(AX*4), Y4, Y1
	VFMADD231PS (R9)(AX*4), Y4, Y2
	VFMADD231PS (R10)(AX*4), Y4, Y3
	ADDQ $8, AX
	JMP  vec
reduce:
	// Fold each YMM accumulator to a scalar in the low lane of its XMM.
	VEXTRACTF128 $1, Y0, X4
	VADDPS       X4, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPS       X4, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPS       X4, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPS       X4, X3, X3
	VHADDPS      X3, X3, X3
	VHADDPS      X3, X3, X3
tail:
	CMPQ AX, CX
	JGE  done
	VMOVSS      (DI)(AX*4), X4
	VFMADD231SS (SI)(AX*4), X4, X0
	VFMADD231SS (R8)(AX*4), X4, X1
	VFMADD231SS (R9)(AX*4), X4, X2
	VFMADD231SS (R10)(AX*4), X4, X3
	INCQ AX
	JMP  tail
done:
	VMOVSS X0, s0+120(FP)
	VMOVSS X1, s1+124(FP)
	VMOVSS X2, s2+128(FP)
	VMOVSS X3, s3+132(FP)
	VZEROUPPER
	RET
