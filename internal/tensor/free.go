package tensor

import "sync"

// freeStackPool recycles FreeGraph's DFS stack: the hot loop frees one tape
// per batch and the stack would otherwise be this file's only steady-state
// allocation.
var freeStackPool = sync.Pool{New: func() any { return new([]*Tensor) }}

// FreeGraph returns every tape-scoped matrix reachable from roots to the
// tensor arena: the Value and Grad of each non-leaf node, any scratch
// matrices ops retained for backward (Tensor.retainScratch), and the Value
// of ConstScratch leaves. Var and plain Const leaves — parameters, input
// features, anything with caller-owned storage — are never touched, and
// neither are their Grads (optimizers zero and reuse parameter gradients
// across steps).
//
// Call it once per tape, after Backward and the optimizer step have consumed
// the gradients and after every reader of intermediate values (metrics,
// feedback filters, response writers) is done. Freeing is idempotent per
// node, so overlapping graphs that share subtrees may be freed through
// multiple roots. After FreeGraph, touching a freed tensor's data panics on
// nil storage — the use-after-free tripwire.
func FreeGraph(roots ...*Tensor) {
	// Iterative DFS over ALL inputs — unlike topoSort this must not stop at
	// requiresGrad boundaries, because const subtrees (time encodings feeding
	// detached memories, scratch masks) also hold tape storage.
	stackp := freeStackPool.Get().(*[]*Tensor)
	stack := (*stackp)[:0]
	for _, r := range roots {
		if r != nil && !r.freed {
			r.freed = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range n.inputs {
			if !in.freed {
				in.freed = true
				stack = append(stack, in)
			}
		}
		leaf := len(n.inputs) == 0
		if !leaf || n.scratch {
			if n.Value != nil && !n.Value.Released() {
				n.Value.Release()
			}
			if n.Grad != nil && !n.Grad.Released() {
				n.Grad.Release()
			}
		}
		for _, m := range n.scratchBufs {
			if m != nil && !m.Released() {
				m.Release()
			}
		}
		// Drop tape edges so the GC can collect node headers even if the
		// caller keeps a reference to the root.
		n.inputs = nil
		n.backFn = nil
		n.scratchBufs = nil
	}
	// Clear node references before pooling so the stack does not pin freed
	// tape headers across batches.
	stack = stack[:cap(stack)]
	for i := range stack {
		stack[i] = nil
	}
	*stackp = stack[:0]
	freeStackPool.Put(stackp)
}
