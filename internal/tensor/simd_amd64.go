//go:build amd64

package tensor

// AVX2/FMA microkernels for the GEMM inner loops (simd_amd64.s). The Go
// drivers in gemm.go keep the loop structure — register tiling, k-quad
// blocking, parallel fan-out — and swap only the innermost row sweeps for
// these vector routines when the host supports them. Eight-lane FMA changes
// the order float32 products are rounded and summed in, so results differ
// in final bits from the scalar path — but every numerical pin in this
// repository (fused-vs-eager goldens, plan replay, staleness equivalence)
// compares two executions of the same build, which share one kernel choice.

// useAVX2 gates the vector kernels on AVX2 + FMA + OS support for YMM
// state, probed once at startup.
var useAVX2 = hasAVX2FMA()

// hasAVX2FMA reports CPUID AVX2 and FMA with XGETBV-confirmed YMM state.
func hasAVX2FMA() bool

// axpy4 computes d[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j] for
// j in [0, len(d)). b0..b3 must be at least len(d) long.
//
//go:noescape
func axpy4(d, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)

// dot4 returns the four dot products of a against b0..b3, which must be at
// least len(a) long.
//
//go:noescape
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32)
