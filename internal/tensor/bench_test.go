package tensor

import (
	"fmt"
	"runtime"
	"testing"
)

// GEMM micro-benchmarks for the three kernel variants the autograd engine
// runs (forward a·b, weight-grad aᵀ·b, input-grad a·bᵀ), each at
// GOMAXPROCS 1 and at the machine's parallelism. The p1/pN pair is the
// scaling regression harness: on a multicore machine pN must beat p1 for
// all three variants, not just the forward kernel.

func benchMatrix(rows, cols int, seed float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = seed * float32(i%13) * 0.25
	}
	return m
}

func withProcs(b *testing.B, procs int, fn func(b *testing.B)) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn(b)
}

func benchGemmVariant(b *testing.B, dim int, kernel func(dst, a, bm *Matrix)) {
	a := benchMatrix(dim, dim, 1)
	bm := benchMatrix(dim, dim, 2)
	dst := NewMatrix(dim, dim)
	procsList := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		procsList = procsList[:1]
	}
	for _, procs := range procsList {
		b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
			withProcs(b, procs, func(b *testing.B) {
				b.SetBytes(int64(4 * dim * dim))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kernel(dst, a, bm)
				}
			})
		})
	}
}

func BenchmarkMatMul256(b *testing.B) {
	benchGemmVariant(b, 256, func(dst, a, bm *Matrix) { MatMulInto(dst, a, bm) })
}

func BenchmarkMatMulTransA256(b *testing.B) {
	benchGemmVariant(b, 256, func(dst, a, bm *Matrix) { MatMulTransAInto(dst, a, bm) })
}

func BenchmarkMatMulTransB256(b *testing.B) {
	benchGemmVariant(b, 256, func(dst, a, bm *Matrix) { MatMulTransBInto(dst, a, bm) })
}

// BenchmarkMatMulRagged covers the shapes the models actually emit (tall
// activation × small weight), where tile remainders dominate.
func BenchmarkMatMulRagged(b *testing.B) {
	a := benchMatrix(900, 100, 1)
	w := benchMatrix(100, 300, 2)
	dst := NewMatrix(900, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, w)
	}
}
