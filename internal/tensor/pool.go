package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Tensor arena: a size-classed free list for matrix backing storage. The
// training hot loop builds and discards an autograd tape every batch with
// the same shapes batch after batch, so recycling tape storage converts the
// substrate's dominant allocation source into pool hits (see DESIGN.md,
// "Tensor memory model"). NewMatrix draws from the pool; Matrix.Release and
// FreeGraph hand storage back.
//
// Buffers are bucketed by power-of-two element counts so any request is
// served by the smallest class that fits. Each class keeps a bounded stack
// of free buffers behind its own mutex; beyond the bound, released buffers
// fall through to the garbage collector.

const (
	// poolMinElems is the smallest class; tinier requests round up to it.
	poolMinElems = 32
	// poolNumClasses spans 32 .. 32<<18 (8.4M floats, 32 MiB) — wider than
	// any matrix the models emit. Larger requests bypass the pool.
	poolNumClasses = 19
	// poolClassCap bounds the free buffers retained per class.
	poolClassCap = 64
)

type sizeClass struct {
	mu   sync.Mutex
	bufs [][]float32
}

var pool [poolNumClasses]sizeClass

// Pool accounting, exported via PoolSnapshot (the trainer publishes deltas
// next to AllocStats as tensor_pool_* metrics).
var (
	poolHits     atomic.Int64
	poolMisses   atomic.Int64
	poolReleases atomic.Int64
	poolRecycled atomic.Int64 // float32 elements served from the pool
)

// PoolStats is a snapshot of cumulative arena counters.
type PoolStats struct {
	// Hits / Misses count NewMatrix requests served from / missing the pool.
	Hits, Misses int64
	// Releases counts Matrix.Release calls that returned storage.
	Releases int64
	// FloatsRecycled counts float32 elements served from recycled buffers
	// (×4 for bytes the heap never saw).
	FloatsRecycled int64
}

// PoolSnapshot returns the cumulative arena counters; subtract two
// snapshots (Sub) for a per-phase delta.
func PoolSnapshot() PoolStats {
	return PoolStats{
		Hits:           poolHits.Load(),
		Misses:         poolMisses.Load(),
		Releases:       poolReleases.Load(),
		FloatsRecycled: poolRecycled.Load(),
	}
}

// Sub returns the component-wise difference a - b.
func (a PoolStats) Sub(b PoolStats) PoolStats {
	return PoolStats{
		Hits:           a.Hits - b.Hits,
		Misses:         a.Misses - b.Misses,
		Releases:       a.Releases - b.Releases,
		FloatsRecycled: a.FloatsRecycled - b.FloatsRecycled,
	}
}

// poolClass returns the class index serving n elements, or -1 when n is too
// large for the pool.
func poolClass(n int) int {
	size := poolMinElems
	for c := 0; c < poolNumClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

func poolClassSize(c int) int { return poolMinElems << c }

// poolGet returns a zeroed length-n buffer and whether its storage can be
// recycled through the pool when released.
func poolGet(n int) (buf []float32, recyclable bool) {
	c := poolClass(n)
	if c < 0 {
		poolMisses.Add(1)
		noteAlloc(n)
		return make([]float32, n), false
	}
	sc := &pool[c]
	sc.mu.Lock()
	if len(sc.bufs) > 0 {
		buf = sc.bufs[len(sc.bufs)-1]
		sc.bufs = sc.bufs[:len(sc.bufs)-1]
		sc.mu.Unlock()
		poolHits.Add(1)
		poolRecycled.Add(int64(n))
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
		return buf, true
	}
	sc.mu.Unlock()
	poolMisses.Add(1)
	noteAlloc(n)
	return make([]float32, n, poolClassSize(c)), true
}

// poolPut returns a buffer minted by poolGet to its class.
func poolPut(buf []float32) {
	c := poolClass(cap(buf))
	if c < 0 || poolClassSize(c) != cap(buf) {
		return // not a pool-minted buffer; let the GC have it
	}
	sc := &pool[c]
	sc.mu.Lock()
	if len(sc.bufs) < poolClassCap {
		sc.bufs = append(sc.bufs, buf[:cap(buf)])
	}
	sc.mu.Unlock()
}

// PoolDrain empties every size class (tests and benchmarks use it to reach
// a deterministic pool state). Counters are not reset.
func PoolDrain() {
	for c := range pool {
		sc := &pool[c]
		sc.mu.Lock()
		sc.bufs = nil
		sc.mu.Unlock()
	}
}

// Matrix arena state (see Matrix.state).
const (
	matrixPooled   uint8 = 1 << iota // storage may be returned to the pool
	matrixReleased                   // Release was called; Data is nil
	matrixStatic                     // plan-owned slab: Release is a no-op
)

// Release returns the matrix's storage to the arena. Only the owner of an
// intermediate (non-parameter) matrix may call it, and only once: a second
// Release panics, and any later element access panics on the nil Data (the
// use-after-release tripwire). Most code should not call Release directly —
// FreeGraph releases a whole tape.
func (m *Matrix) Release() {
	if m == nil {
		return
	}
	if m.state&matrixStatic != 0 {
		// Plan-owned slab assignment: storage lives for the plan's lifetime
		// and is reused bitwise-in-place every replay. FreeGraph may still
		// reach it through a rearmed plan node; releasing must neither pool
		// the slab nor trip the double-release tripwire on the next step.
		return
	}
	if m.state&matrixReleased != 0 {
		panic(fmt.Sprintf("tensor: double release of %dx%d matrix", m.Rows, m.Cols))
	}
	m.state |= matrixReleased
	if m.state&matrixPooled != 0 {
		poolReleases.Add(1)
		poolPut(m.Data)
	}
	m.Data = nil
}

// Released reports whether Release has been called on m.
func (m *Matrix) Released() bool { return m.state&matrixReleased != 0 }
