package tensor

import "testing"

func TestAllocSnapshotDelta(t *testing.T) {
	// AllocStats counts pool misses only; drain the arena so both NewMatrix
	// calls below are guaranteed misses regardless of test order.
	PoolDrain()
	before := AllocSnapshot()
	NewMatrix(3, 4)
	NewMatrix(2, 5)
	d := AllocSnapshot().Sub(before)
	if d.Matrices != 2 {
		t.Fatalf("matrices delta = %d, want 2", d.Matrices)
	}
	if d.Floats != 3*4+2*5 {
		t.Fatalf("floats delta = %d, want %d", d.Floats, 3*4+2*5)
	}
}
