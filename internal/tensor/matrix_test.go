package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := float32(1)
	if aa := float32(math.Abs(float64(a))); aa > scale {
		scale = aa
	}
	if bb := float32(math.Abs(float64(b))); bb > scale {
		scale = bb
	}
	return d <= tol*scale
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 5, 5)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEq(c.Data[i], a.Data[i], 1e-6) {
			t.Fatalf("A·I != A at %d: %v vs %v", i, c.Data[i], a.Data[i])
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// A matmul large enough to cross the parallel threshold must agree
	// with a naive triple loop.
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 64, 48)
	b := randMatrix(rng, 48, 40)
	got := MatMul(a, b)
	want := NewMatrix(64, 40)
	for i := 0; i < 64; i++ {
		for j := 0; j < 40; j++ {
			var s float32
			for k := 0; k < 48; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("parallel matmul mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransposeKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 7, 4)
	b := randMatrix(rng, 7, 5)
	// aᵀ·b via kernel vs explicit transpose.
	got := NewMatrix(4, 5)
	MatMulTransAInto(got, a, b)
	at := NewMatrix(4, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-5) {
			t.Fatalf("matmulTA mismatch at %d", i)
		}
	}

	c := randMatrix(rng, 6, 4)
	d := randMatrix(rng, 9, 4)
	got2 := NewMatrix(6, 9)
	MatMulTransBInto(got2, c, d)
	dt := NewMatrix(4, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 4; j++ {
			dt.Set(j, i, d.At(i, j))
		}
	}
	want2 := MatMul(c, dt)
	for i := range want2.Data {
		if !almostEq(got2.Data[i], want2.Data[i], 1e-5) {
			t.Fatalf("matmulTB mismatch at %d", i)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{5, 6, 7, 8})
	sum := NewMatrix(2, 2)
	AddInto(sum, a, b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("add = %v", sum.Data)
	}
	diff := NewMatrix(2, 2)
	SubInto(diff, b, a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("sub = %v", diff.Data)
	}
	prod := NewMatrix(2, 2)
	MulInto(prod, a, b)
	if prod.At(1, 0) != 21 {
		t.Fatalf("mul = %v", prod.Data)
	}
	sc := NewMatrix(2, 2)
	ScaleInto(sc, a, 2)
	if sc.At(0, 1) != 4 {
		t.Fatalf("scale = %v", sc.Data)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float32{10, 20, 30})
	out := NewMatrix(2, 3)
	AddRowInto(out, a, v)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("addrow[%d] = %v want %v", i, out.Data[i], w)
		}
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := FromSlice(3, 2, []float32{1, 0, 1, 1, 0, 0})
	b := FromSlice(3, 2, []float32{1, 0, -1, -1, 0, 0})
	sims := CosineSimilarityRows(a, b)
	if !almostEq(sims[0], 1, 1e-6) {
		t.Fatalf("identical rows sim = %v", sims[0])
	}
	if !almostEq(sims[1], -1, 1e-6) {
		t.Fatalf("opposite rows sim = %v", sims[1])
	}
	if sims[2] != 1 {
		t.Fatalf("zero rows sim = %v, want 1 (unchanged memory)", sims[2])
	}
	if s := CosineSimilarityVec([]float32{0, 0}, []float32{1, 2}); s != 0 {
		t.Fatalf("zero-vs-nonzero sim = %v, want 0", s)
	}
}

// Property: cosine similarity is symmetric and within [-1, 1].
func TestCosineSimilarityProperties(t *testing.T) {
	f := func(xs [6]float32) bool {
		a := []float32{xs[0], xs[1], xs[2]}
		b := []float32{xs[3], xs[4], xs[5]}
		s1 := CosineSimilarityVec(a, b)
		s2 := CosineSimilarityVec(b, a)
		if math.IsNaN(float64(s1)) || math.IsNaN(float64(s2)) {
			return false
		}
		return almostEq(s1, s2, 1e-5) && s1 <= 1.0001 && s1 >= -1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A+B)+C == A+(B+C) elementwise for float32 within tolerance.
func TestAddAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 50; iter++ {
		a := randMatrix(rng, 3, 4)
		b := randMatrix(rng, 3, 4)
		c := randMatrix(rng, 3, 4)
		ab := NewMatrix(3, 4)
		AddInto(ab, a, b)
		abc1 := NewMatrix(3, 4)
		AddInto(abc1, ab, c)
		bc := NewMatrix(3, 4)
		AddInto(bc, b, c)
		abc2 := NewMatrix(3, 4)
		AddInto(abc2, a, bc)
		for i := range abc1.Data {
			if !almostEq(abc1.Data[i], abc2.Data[i], 1e-5) {
				t.Fatalf("associativity broke at %d", i)
			}
		}
	}
}

// Property: matmul distributes over addition: A·(B+C) == A·B + A·C.
func TestMatMulDistributivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		a := randMatrix(rng, 4, 6)
		b := randMatrix(rng, 6, 3)
		c := randMatrix(rng, 6, 3)
		bc := NewMatrix(6, 3)
		AddInto(bc, b, c)
		lhs := MatMul(a, bc)
		ab := MatMul(a, b)
		ac := MatMul(a, c)
		rhs := NewMatrix(4, 3)
		AddInto(rhs, ab, ac)
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-4) {
				t.Fatalf("distributivity broke at %d: %v vs %v", i, lhs.Data[i], rhs.Data[i])
			}
		}
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad FromSlice length")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestDotAndAxpy(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	if d := Dot(a, b); d != 32 {
		t.Fatalf("dot = %v", d)
	}
	AxpyInto(a, b, 2)
	if a.Data[2] != 15 {
		t.Fatalf("axpy = %v", a.Data)
	}
}
