package tensor

import "sync/atomic"

// Allocation accounting: NewMatrix is the single allocation point of the
// tensor substrate (every op output, gradient buffer and gather result
// goes through it), so two atomic counters there give an exact picture of
// tape memory churn. Requests served from the tensor arena (pool.go) do
// not count — AllocStats measures fresh heap allocations, the quantity the
// arena exists to eliminate; recycled traffic shows up in PoolStats
// instead. The trainer snapshots both around each batch and publishes the
// deltas to the observability layer — the pure-Go analog of
// torch.cuda.memory_allocated() deltas.
var (
	allocMatrices atomic.Int64
	allocFloats   atomic.Int64
)

// AllocStats is a snapshot of cumulative matrix allocations.
type AllocStats struct {
	// Matrices counts NewMatrix calls that hit the heap (pool misses).
	Matrices int64
	// Floats counts float32 elements freshly allocated (×4 for bytes).
	Floats int64
}

// AllocSnapshot returns the cumulative allocation counters. Subtract two
// snapshots (Sub) to get a per-phase delta.
func AllocSnapshot() AllocStats {
	return AllocStats{Matrices: allocMatrices.Load(), Floats: allocFloats.Load()}
}

// Sub returns the component-wise difference a - b.
func (a AllocStats) Sub(b AllocStats) AllocStats {
	return AllocStats{Matrices: a.Matrices - b.Matrices, Floats: a.Floats - b.Floats}
}

func noteAlloc(elems int) {
	allocMatrices.Add(1)
	allocFloats.Add(int64(elems))
}
