package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates ∂f/∂param[i] by central differences, where f
// rebuilds the scalar loss from scratch each call.
func numericalGrad(param *Matrix, i int, f func() float32) float32 {
	const eps = 1e-3
	orig := param.Data[i]
	param.Data[i] = orig + eps
	up := f()
	param.Data[i] = orig - eps
	down := f()
	param.Data[i] = orig
	return (up - down) / (2 * eps)
}

// checkGrads compares autograd gradients to numerical gradients for every
// element of every parameter.
func checkGrads(t *testing.T, name string, params []*Tensor, build func() *Tensor, tol float32) {
	t.Helper()
	loss := build()
	loss.Backward()
	for pi, p := range params {
		if p.Grad == nil {
			t.Fatalf("%s: param %d got no gradient", name, pi)
		}
		for i := range p.Value.Data {
			want := numericalGrad(p.Value, i, func() float32 { return build().Item() })
			got := p.Grad.Data[i]
			if !almostEq(got, want, tol) {
				t.Fatalf("%s: param %d elem %d grad = %v, numerical = %v", name, pi, i, got, want)
			}
		}
	}
}

func randVar(rng *rand.Rand, rows, cols int) *Tensor {
	return Var(randMatrix(rng, rows, cols))
}

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w1 := randVar(rng, 4, 3)
	w2 := randVar(rng, 3, 2)
	x := Const(randMatrix(rng, 5, 4))
	checkGrads(t, "matmul-chain", []*Tensor{w1, w2}, func() *Tensor {
		return SumT(MatMulT(MatMulT(x, w1), w2))
	}, 2e-2)
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		act  func(*Tensor) *Tensor
	}{
		{"sigmoid", SigmoidT},
		{"tanh", TanhT},
		{"relu", ReLUT},
		{"leakyrelu", func(a *Tensor) *Tensor { return LeakyReLUT(a, 0.2) }},
	}
	for _, c := range cases {
		w := randVar(rng, 3, 3)
		x := Const(randMatrix(rng, 2, 3))
		checkGrads(t, c.name, []*Tensor{w}, func() *Tensor {
			return SumT(c.act(MatMulT(x, w)))
		}, 3e-2)
	}
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randVar(rng, 2, 3)
	b := randVar(rng, 2, 3)
	checkGrads(t, "add-mul-sub", []*Tensor{a, b}, func() *Tensor {
		return SumT(MulT(AddT(a, b), SubT(a, b))) // (a+b)(a-b) = a²-b²
	}, 2e-2)
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randVar(rng, 2, 2)
	b := randVar(rng, 2, 3)
	checkGrads(t, "concat-slice", []*Tensor{a, b}, func() *Tensor {
		cat := ConcatColsT(a, b)
		return SumT(MulT(SliceColsT(cat, 1, 4), SliceColsT(cat, 1, 4)))
	}, 2e-2)
}

func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randVar(rng, 4, 3)
	idx := []int{0, 2, 2, 3, 1, 0}
	checkGrads(t, "gather", []*Tensor{a}, func() *Tensor {
		g := GatherRowsT(a, idx)
		return SumT(MulT(g, g))
	}, 2e-2)
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randVar(rng, 3, 4)
	weights := Const(randMatrix(rng, 3, 4))
	checkGrads(t, "softmax", []*Tensor{a}, func() *Tensor {
		return SumT(MulT(SoftmaxRowsT(a), weights))
	}, 3e-2)
}

func TestGradBCEWithLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	logits := randVar(rng, 5, 1)
	targets := Const(FromSlice(5, 1, []float32{1, 0, 1, 0, 1}))
	checkGrads(t, "bce", []*Tensor{logits}, func() *Tensor {
		return BCEWithLogitsT(logits, targets)
	}, 2e-2)
}

func TestGradAddRowBias(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := randVar(rng, 3, 4)
	bias := randVar(rng, 1, 4)
	x := Const(randMatrix(rng, 6, 3))
	checkGrads(t, "bias", []*Tensor{w, bias}, func() *Tensor {
		return SumT(TanhT(AddRowT(MatMulT(x, w), bias)))
	}, 3e-2)
}

func TestGradGroupOps(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const group = 3
	neigh := randVar(rng, 4*group, 5)
	q := randVar(rng, 4, 5)
	checkGrads(t, "attention-groups", []*Tensor{neigh, q}, func() *Tensor {
		scores := RowDotGroupsT(q, neigh, group)
		alpha := SoftmaxRowsT(scores)
		agg := WeightedSumGroupsT(neigh, alpha, group)
		return SumT(MulT(agg, agg))
	}, 5e-2)
}

func TestGradRowMeanGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randVar(rng, 6, 4)
	checkGrads(t, "rowmean", []*Tensor{a}, func() *Tensor {
		m := RowMeanGroupsT(a, 3)
		return SumT(MulT(m, m))
	}, 2e-2)
}

func TestGradScaleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randVar(rng, 3, 3)
	checkGrads(t, "scale-mean", []*Tensor{a}, func() *Tensor {
		return MeanT(ScaleT(a, 2.5))
	}, 2e-2)
}

func TestDetachStopsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randVar(rng, 2, 2)
	loss := SumT(MulT(a.Detach(), a.Detach()))
	loss.Backward()
	if a.Grad != nil {
		t.Fatal("gradient flowed through Detach")
	}
}

func TestGradAccumulatesAcrossUses(t *testing.T) {
	// A tensor used twice must receive the sum of both paths' gradients.
	a := Var(FromSlice(1, 1, []float32{3}))
	loss := SumT(MulT(a, a)) // d(a²)/da = 2a = 6
	loss.Backward()
	if !almostEq(a.Grad.Data[0], 6, 1e-5) {
		t.Fatalf("grad = %v, want 6", a.Grad.Data[0])
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-scalar Backward")
		}
	}()
	Var(NewMatrix(2, 2)).Backward()
}

func TestBackwardOnConstGraphIsNoop(t *testing.T) {
	loss := SumT(Const(FromSlice(1, 2, []float32{1, 2})))
	loss.Backward() // must not panic
	if loss.RequiresGrad() {
		t.Fatal("const graph should not require grad")
	}
}

func TestItemValidation(t *testing.T) {
	if v := Const(FromSlice(1, 1, []float32{7})).Item(); v != 7 {
		t.Fatalf("Item = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Item of non-scalar")
		}
	}()
	Const(NewMatrix(2, 1)).Item()
}

func TestSigmoidRange(t *testing.T) {
	for _, x := range []float32{-100, -1, 0, 1, 100} {
		y := sigmoid(x)
		if y < 0 || y > 1 || math.IsNaN(float64(y)) {
			t.Fatalf("sigmoid(%v) = %v out of range", x, y)
		}
	}
}

func TestDeepChainBackwardIterative(t *testing.T) {
	// A deliberately deep tape must not overflow the stack: topoSort is
	// iterative. 5000 chained scales.
	a := Var(FromSlice(1, 1, []float32{1}))
	cur := a
	for i := 0; i < 5000; i++ {
		cur = ScaleT(cur, 1.0001)
	}
	SumT(cur).Backward()
	if a.Grad == nil {
		t.Fatal("no gradient through deep chain")
	}
}

func TestGradCos(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randVar(rng, 2, 3)
	checkGrads(t, "cos", []*Tensor{a}, func() *Tensor {
		return SumT(MulT(CosT(a), CosT(a)))
	}, 3e-2)
}

func TestGradAddScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randVar(rng, 2, 2)
	checkGrads(t, "addscalar", []*Tensor{a}, func() *Tensor {
		x := AddScalarT(a, 2.5)
		return SumT(MulT(x, x))
	}, 2e-2)
}

func TestGradColBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	col := randVar(rng, 3, 1)
	weights := Const(randMatrix(rng, 3, 4))
	checkGrads(t, "colbroadcast", []*Tensor{col}, func() *Tensor {
		return SumT(MulT(ColBroadcastT(col, 4), weights))
	}, 2e-2)
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randVar(rng, 6, 1)
	checkGrads(t, "reshape", []*Tensor{a}, func() *Tensor {
		r := ReshapeT(a, 2, 3)
		return SumT(MulT(r, r))
	}, 2e-2)
}

func TestGradConcatRows(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randVar(rng, 2, 3)
	b := randVar(rng, 3, 3)
	checkGrads(t, "concatrows", []*Tensor{a, b}, func() *Tensor {
		cat := ConcatRowsT(a, b)
		return SumT(MulT(cat, cat))
	}, 2e-2)
}

func TestReshapeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on element-count mismatch")
		}
	}()
	ReshapeT(Const(NewMatrix(2, 3)), 4, 2)
}

func TestColBroadcastValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-column input")
		}
	}()
	ColBroadcastT(Const(NewMatrix(2, 2)), 3)
}

func TestTapeStatsCountsOps(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	w := randVar(rng, 3, 3)
	x := Const(randMatrix(rng, 4, 3))
	loss := SumT(TanhT(MatMulT(x, w)))
	s := StatsOf(loss)
	if s.Kernels != 3 { // matmul, tanh, sum
		t.Fatalf("kernels = %d, want 3", s.Kernels)
	}
	// matmul flops = 2·4·3·3 = 72; tanh = 8·12 = 96; sum = 1.
	if s.Flops < 160 || s.Flops > 180 {
		t.Fatalf("flops = %v", s.Flops)
	}
	if s.MaxRows != 4 {
		t.Fatalf("max rows = %d", s.MaxRows)
	}
	var acc TapeStats
	acc.Add(s)
	acc.Add(s)
	if acc.Kernels != 6 || acc.MaxRows != 4 {
		t.Fatalf("accumulate: %+v", acc)
	}
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	x := randVar(rng, 3, 5)
	gain := randVar(rng, 1, 5)
	bias := randVar(rng, 1, 5)
	weights := Const(randMatrix(rng, 3, 5))
	checkGrads(t, "layernorm", []*Tensor{x, gain, bias}, func() *Tensor {
		return SumT(MulT(LayerNormT(x, gain, bias), weights))
	}, 5e-2)
}

func TestLayerNormNormalizes(t *testing.T) {
	x := Const(FromSlice(2, 4, []float32{1, 2, 3, 4, 10, 20, 30, 40}))
	g := NewMatrix(1, 4)
	g.Fill(1)
	y := LayerNormT(x, Const(g), Const(NewMatrix(1, 4)))
	for r := 0; r < 2; r++ {
		var mean, sq float32
		for _, v := range y.Value.Row(r) {
			mean += v
		}
		mean /= 4
		for _, v := range y.Value.Row(r) {
			d := v - mean
			sq += d * d
		}
		if mean > 1e-5 || mean < -1e-5 {
			t.Fatalf("row %d mean %v", r, mean)
		}
		if std := sq / 4; std < 0.98 || std > 1.02 {
			t.Fatalf("row %d var %v", r, std)
		}
	}
}
