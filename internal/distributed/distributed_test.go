package distributed

import (
	"math"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/train"
)

func distData(t testing.TB) Config {
	t.Helper()
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 81, FeatDimOverride: 8, MinEvents: 1600})
	return Config{
		Dataset: ds, Replicas: 2, Model: "TGN", BaseBatch: 40,
		Epochs: 3, MemoryDim: 16, TimeDim: 4, Seed: 5, Workers: 1,
	}
}

func TestDistributedTrainsAndSyncs(t *testing.T) {
	cfg := distData(t)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncCount != cfg.Epochs {
		t.Fatalf("syncs %d, want %d", res.SyncCount, cfg.Epochs)
	}
	if len(res.ReplicaLosses) != 2 {
		t.Fatalf("replica losses %d", len(res.ReplicaLosses))
	}
	for r, losses := range res.ReplicaLosses {
		if len(losses) != cfg.Epochs {
			t.Fatalf("replica %d: %d epochs", r, len(losses))
		}
		for _, l := range losses {
			if l <= 0 || math.IsNaN(l) {
				t.Fatalf("replica %d loss %v", r, l)
			}
		}
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
}

func TestDistributedSingleReplicaMatchesSolo(t *testing.T) {
	cfg := distData(t)
	cfg.Replicas = 1
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncCount != 0 {
		t.Fatal("single replica should not sync")
	}
	last := res.ReplicaLosses[0][len(res.ReplicaLosses[0])-1]
	if last >= res.ReplicaLosses[0][0] {
		t.Fatalf("single replica did not learn: %v", res.ReplicaLosses[0])
	}
}

func TestDistributedWithCascadeScheduler(t *testing.T) {
	cfg := distData(t)
	cfg.Scheduler = SchedCascade
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := Train(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := distData(t)
	cfg.Replicas = 0
	if _, err := Train(cfg); err == nil {
		t.Fatal("zero replicas accepted")
	}
	cfg = distData(t)
	cfg.BaseBatch = 0
	if _, err := Train(cfg); err == nil {
		t.Fatal("zero base batch accepted")
	}
	cfg = distData(t)
	cfg.Model = "Bogus"
	if _, err := Train(cfg); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestShardsPartitionAndPreserveOrder(t *testing.T) {
	cfg := distData(t)
	tr, _ := cfg.Dataset.Split(0.8)
	shards := shardEvents(tr, 3)
	total := 0
	var lastTime float64
	for _, sh := range shards {
		total += sh.NumEvents()
		for _, e := range sh.Events {
			if e.Time < lastTime {
				t.Fatal("shards broke chronological order")
			}
			lastTime = e.Time
		}
		if err := sh.Validate(); err != nil {
			t.Fatalf("invalid shard: %v", err)
		}
	}
	if total != tr.NumEvents() {
		t.Fatalf("shards cover %d of %d events", total, tr.NumEvents())
	}
}

func TestAverageParamsUnit(t *testing.T) {
	// The invariant: averaging 2 and 4 yields 3 on both replicas, for every
	// parameter including the predictor head.
	cfg := distData(t)
	repl := buildTestReplicas(t, cfg)
	for _, r := range repl {
		for _, p := range append(r.model.Params(), r.trainer.Predictor().Params()...) {
			p.T.Value.Fill(2)
		}
	}
	for _, p := range append(repl[1].model.Params(), repl[1].trainer.Predictor().Params()...) {
		p.T.Value.Fill(4)
	}
	averageParams(repl, []int{0, 1})
	for ri, r := range repl {
		for _, p := range append(r.model.Params(), r.trainer.Predictor().Params()...) {
			for _, v := range p.T.Value.Data {
				if v != 3 {
					t.Fatalf("replica %d param %s = %v, want 3", ri, p.Name, v)
				}
			}
		}
	}
}

// buildTestReplicas constructs replicas the way Train does, for unit tests.
func buildTestReplicas(t *testing.T, cfg Config) []replica {
	t.Helper()
	tr, _ := cfg.Dataset.Split(0.8)
	shards := shardEvents(tr, 2)
	out := make([]replica, 2)
	for r := range out {
		model, err := models.New(cfg.Model, cfg.Dataset, cfg.MemoryDim, cfg.TimeDim, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		trainer, err := train.NewTrainer(train.Config{
			Model: model,
			Sched: batching.NewFixed("TGL", shards[r].NumEvents(), cfg.BaseBatch),
			Data:  shards[r], Seed: cfg.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[r] = replica{model: model, trainer: trainer}
	}
	return out
}
