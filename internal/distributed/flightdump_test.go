package distributed

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// TestReplicaEvictionFlightDump: evicting a dead replica must dump the span
// ring exactly once (reason "replica_evicted"), with the surviving
// replicas' batch trees inside.
func TestReplicaEvictionFlightDump(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 2
	cfg.Injector = faultinject.New()
	// Die at the second epoch-start hit: epoch 1 completes on both replicas
	// first, so the span ring deterministically holds batch trees when the
	// eviction dump fires.
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaDie, 1), 2)
	cfg.Obs = obs.NewRegistry()
	dir := t.TempDir()
	rec := obs.NewFlightRecorder(dir, 16, cfg.Obs)
	rec.SetClock(func() time.Time {
		return time.Date(2026, 8, 5, 13, 0, 0, 0, time.UTC)
	})
	cfg.Recorder = rec
	cfg.Tracer = obs.NewTracer(obs.TracerOptions{Flight: rec, Registry: cfg.Obs})

	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", res.Evicted)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "flight-") {
			files = append(files, e.Name())
		}
	}
	if len(files) != 1 {
		t.Fatalf("dump files %v, want exactly one", files)
	}
	if !strings.Contains(files[0], "replica_evicted") {
		t.Fatalf("dump file %q does not carry the trigger reason", files[0])
	}
	raw, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Reason string `json:"reason"`
		Time   string `json:"time"`
		Spans  []struct {
			Name string `json:"name"`
		} `json:"spans"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if d.Reason != "replica_evicted" {
		t.Fatalf("reason %q", d.Reason)
	}
	if d.Time != "2026-08-05T13:00:00Z" {
		t.Fatalf("dump time %q not from the injected clock", d.Time)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump has no span trees — survivor batches should be in the ring")
	}
	if _, ok := d.Metrics["dist_replica_evictions_total"]; !ok {
		t.Fatal("metrics snapshot missing dist_replica_evictions_total")
	}
	if got := cfg.Obs.Counter("dist_flight_dumps_total").Value(); got != 1 {
		t.Fatalf("dist_flight_dumps_total %d, want 1", got)
	}
}
