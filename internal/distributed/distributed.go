// Package distributed implements data-parallel TGNN training in the spirit
// of DistTGL (Zhou et al., SC'23), the distributed successor of the paper's
// TGL baseline (§6): multiple trainer replicas consume disjoint temporal
// shards of the event stream with replica-local node memories, and model
// weights are synchronized by parameter averaging at epoch boundaries.
//
// Each replica may use any batching.Scheduler — including Cascade — so the
// package also demonstrates that dependency-aware batching composes with
// data parallelism: every replica profiles and adapts on its own shard.
package distributed

import (
	"fmt"
	"sort"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

// SchedulerKind selects each replica's batching policy.
type SchedulerKind int

// Replica batching policies.
const (
	// SchedFixed is TGL-style fixed batching per replica.
	SchedFixed SchedulerKind = iota
	// SchedCascade runs a full Cascade scheduler per replica (each shard
	// gets its own dependency table and ABS profile).
	SchedCascade
)

// Config describes a distributed run.
type Config struct {
	// Dataset is the full stream; the training prefix is sharded.
	Dataset *graph.Dataset
	// Replicas is the data-parallel width (≥ 1).
	Replicas int
	// Model is a Table 1 model name.
	Model string
	// Scheduler picks the per-replica policy.
	Scheduler SchedulerKind
	// BaseBatch is the per-replica base batch size.
	BaseBatch int
	// Epochs of training; weights average after every epoch.
	Epochs int
	// TrainFrac splits train/validation chronologically (default 0.8).
	TrainFrac float64
	// MemoryDim / TimeDim size the models (defaults per models package).
	MemoryDim, TimeDim int
	// LR is each replica's Adam learning rate.
	LR float32
	// Seed drives initialization; all replicas share it so averaging acts
	// on aligned parameters.
	Seed int64
	// Workers bounds intra-replica CPU parallelism.
	Workers int
	// EpochTimeout bounds how long the epoch barrier waits for a replica.
	// A replica that has not reported by the deadline is evicted and the
	// run degrades to the survivors; 0 waits forever (the pre-resilience
	// behavior).
	EpochTimeout time.Duration
	// Obs, when non-nil, receives eviction and sync metrics; Trace, when
	// non-nil, receives one event per eviction.
	Obs   *obs.Registry
	Trace *obs.TraceSink
	// Injector, when non-nil, is consulted at the per-replica fault points
	// (dist/replica-die/<r>, dist/replica-hang/<r>) for chaos tests.
	Injector *faultinject.Injector
}

// Result reports a distributed run.
type Result struct {
	// ReplicaLosses[r] is replica r's per-epoch training loss (rows of
	// evicted replicas stop at their last completed epoch).
	ReplicaLosses [][]float64
	// ValLoss is the averaged model's validation loss, scored by the first
	// surviving replica on the chronological validation suffix.
	ValLoss float64
	// WallTime covers all epochs including synchronization.
	WallTime time.Duration
	// SyncCount is how many parameter-averaging rounds ran.
	SyncCount int
	// Evicted lists replicas dropped for dying or missing the epoch
	// barrier, sorted by index.
	Evicted []int
}

// replica bundles one worker's state.
type replica struct {
	model   models.TGNN
	trainer *train.Trainer
}

// Train runs synchronous data-parallel training and returns the result.
func Train(cfg Config) (*Result, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("distributed: Dataset required")
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("distributed: Replicas must be ≥ 1, got %d", cfg.Replicas)
	}
	if cfg.BaseBatch <= 0 {
		return nil, fmt.Errorf("distributed: BaseBatch must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}
	trainSet, valSet := cfg.Dataset.Split(cfg.TrainFrac)
	// Never build a replica around an empty shard: with more replicas than
	// training events the extra replicas would have nothing to consume, so
	// the effective width shrinks to the event count.
	width := cfg.Replicas
	if n := trainSet.NumEvents(); width > n {
		width = n
		if width < 1 {
			width = 1
		}
	}
	shards := shardEvents(trainSet, width)

	replicas := make([]replica, width)
	for r := range replicas {
		model, err := models.New(cfg.Model, cfg.Dataset, cfg.MemoryDim, cfg.TimeDim, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var sched batching.Scheduler
		if cfg.Scheduler == SchedCascade {
			sched = core.NewScheduler(shards[r].Events, cfg.Dataset.NumNodes, core.Options{
				BaseBatch: cfg.BaseBatch, Workers: cfg.Workers, Seed: cfg.Seed + int64(r),
			})
		} else {
			sched = batching.NewFixed("TGL", shards[r].NumEvents(), cfg.BaseBatch)
		}
		// Every replica gets the validation suffix so any survivor can score
		// the averaged model if earlier replicas are evicted.
		trainer, err := train.NewTrainer(train.Config{
			Model: model, Sched: sched, Data: shards[r], Val: valSet,
			LR: cfg.LR, ValBatch: cfg.BaseBatch, Seed: cfg.Seed + int64(r),
		})
		if err != nil {
			return nil, err
		}
		replicas[r] = replica{model: model, trainer: trainer}
	}

	res := &Result{ReplicaLosses: make([][]float64, width)}
	alive := make([]bool, width)
	for r := range alive {
		alive[r] = true
	}
	evict := func(r int, reason string, e int) {
		alive[r] = false
		res.Evicted = append(res.Evicted, r)
		if cfg.Obs != nil {
			cfg.Obs.Counter("dist_replica_evictions_total").Inc()
		}
		cfg.Trace.Emit(map[string]any{
			"event": "replica_evicted", "replica": r, "epoch": e + 1, "reason": reason,
		})
	}

	start := time.Now()
	for e := 0; e < cfg.Epochs; e++ {
		type epochReport struct {
			r    int
			loss float64
			err  error
		}
		// Buffered to the full width so a replica that reports after the
		// barrier timed out (and was evicted) can still send and exit —
		// stragglers never leak or block.
		reports := make(chan epochReport, width)
		expected := 0
		for r := range replicas {
			if !alive[r] {
				continue
			}
			expected++
			go func(r int) {
				if err := cfg.Injector.Err(faultinject.ReplicaPoint(faultinject.PointReplicaDie, r)); err != nil {
					reports <- epochReport{r: r, err: fmt.Errorf("replica %d died: %w", r, err)}
					return
				}
				cfg.Injector.Sleep(faultinject.ReplicaPoint(faultinject.PointReplicaHang, r))
				st, err := replicas[r].trainer.TrainEpochChecked()
				reports <- epochReport{r: r, loss: st.Loss, err: err}
			}(r)
		}
		var timeout <-chan time.Time
		var timer *time.Timer
		if cfg.EpochTimeout > 0 {
			timer = time.NewTimer(cfg.EpochTimeout)
			timeout = timer.C
		}
		reported := make([]bool, width)
	barrier:
		for i := 0; i < expected; i++ {
			select {
			case rep := <-reports:
				reported[rep.r] = true
				if rep.err != nil {
					evict(rep.r, rep.err.Error(), e)
					continue
				}
				res.ReplicaLosses[rep.r] = append(res.ReplicaLosses[rep.r], rep.loss)
			case <-timeout:
				// Deadline passed: every replica that has not reported is
				// evicted. Its goroutine may still be running; it sends into
				// the buffered channel and exits, and its parameters are
				// never read again (averaging skips evicted replicas), so
				// there is no race with the survivors.
				for r := range replicas {
					if alive[r] && !reported[r] {
						evict(r, "epoch barrier timeout", e)
						if cfg.Obs != nil {
							cfg.Obs.Counter("dist_epoch_timeouts_total").Inc()
						}
					}
				}
				break barrier
			}
		}
		if timer != nil {
			timer.Stop()
		}
		survivors := aliveIndices(alive)
		if len(survivors) == 0 {
			res.WallTime = time.Since(start)
			return res, fmt.Errorf("distributed: all %d replicas evicted by epoch %d", width, e+1)
		}
		if cfg.Obs != nil {
			cfg.Obs.Gauge("dist_replicas_alive").Set(float64(len(survivors)))
		}
		if len(survivors) > 1 {
			averageParams(replicas, survivors)
			res.SyncCount++
		}
	}
	res.WallTime = time.Since(start)
	res.ValLoss = replicas[aliveIndices(alive)[0]].trainer.Validate()
	sort.Ints(res.Evicted)
	return res, nil
}

// aliveIndices lists the surviving replica indices in order.
func aliveIndices(alive []bool) []int {
	var out []int
	for r, ok := range alive {
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// shardEvents splits the training stream into contiguous temporal shards,
// one per replica (DistTGL's epoch-parallel assignment works on temporal
// slices too; contiguity keeps per-shard memory semantics meaningful). The
// split is balanced — n/replicas events each, remainder spread over the
// leading shards — so no shard is ever empty when replicas ≤ n.
func shardEvents(ds *graph.Dataset, replicas int) []*graph.Dataset {
	n := ds.NumEvents()
	out := make([]*graph.Dataset, replicas)
	per, rem := n/replicas, n%replicas
	lo := 0
	for r := 0; r < replicas; r++ {
		hi := lo + per
		if r < rem {
			hi++
		}
		out[r] = &graph.Dataset{
			Name:        fmt.Sprintf("%s/shard%d", ds.Name, r),
			NumNodes:    ds.NumNodes,
			Events:      ds.Events[lo:hi],
			EdgeFeatDim: ds.EdgeFeatDim,
			EdgeFeats:   ds.EdgeFeats,
		}
		if ds.Labels != nil {
			out[r].Labels = ds.Labels[lo:hi]
		}
		lo = hi
	}
	return out
}

// averageParams synchronizes the surviving replicas by in-place parameter
// averaging (model weights and predictor heads; replica-local memories stay
// local, as in DistTGL's partitioned memory). Evicted replicas are neither
// read nor written — their goroutines may still be running.
func averageParams(replicas []replica, survivors []int) {
	if len(survivors) < 2 {
		return
	}
	paramSets := make([][]nn.Param, len(survivors))
	for i, r := range survivors {
		paramSets[i] = append(replicas[r].model.Params(), replicas[r].trainer.Predictor().Params()...)
	}
	inv := 1 / float32(len(survivors))
	base := paramSets[0]
	for p := range base {
		data := base[p].T.Value.Data
		for i := range data {
			var sum float32
			for r := range paramSets {
				sum += paramSets[r][p].T.Value.Data[i]
			}
			data[i] = sum * inv
		}
	}
	// Broadcast the averaged weights back to every surviving replica.
	for r := 1; r < len(paramSets); r++ {
		for p := range base {
			copy(paramSets[r][p].T.Value.Data, base[p].T.Value.Data)
		}
	}
}
