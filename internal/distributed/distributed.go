// Package distributed implements data-parallel TGNN training in the spirit
// of DistTGL (Zhou et al., SC'23), the distributed successor of the paper's
// TGL baseline (§6): multiple trainer replicas consume disjoint temporal
// shards of the event stream with replica-local node memories, and model
// weights are synchronized by parameter averaging at epoch boundaries.
//
// Each replica may use any batching.Scheduler — including Cascade — so the
// package also demonstrates that dependency-aware batching composes with
// data parallelism: every replica profiles and adapts on its own shard.
package distributed

import (
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

// SchedulerKind selects each replica's batching policy.
type SchedulerKind int

// Replica batching policies.
const (
	// SchedFixed is TGL-style fixed batching per replica.
	SchedFixed SchedulerKind = iota
	// SchedCascade runs a full Cascade scheduler per replica (each shard
	// gets its own dependency table and ABS profile).
	SchedCascade
)

// Config describes a distributed run.
type Config struct {
	// Dataset is the full stream; the training prefix is sharded.
	Dataset *graph.Dataset
	// Replicas is the data-parallel width (≥ 1).
	Replicas int
	// Model is a Table 1 model name.
	Model string
	// Scheduler picks the per-replica policy.
	Scheduler SchedulerKind
	// BaseBatch is the per-replica base batch size.
	BaseBatch int
	// Epochs of training; weights average after every epoch.
	Epochs int
	// TrainFrac splits train/validation chronologically (default 0.8).
	TrainFrac float64
	// MemoryDim / TimeDim size the models (defaults per models package).
	MemoryDim, TimeDim int
	// LR is each replica's Adam learning rate.
	LR float32
	// Seed drives initialization; all replicas share it so averaging acts
	// on aligned parameters.
	Seed int64
	// Workers bounds intra-replica CPU parallelism.
	Workers int
	// EpochTimeout bounds how long the epoch barrier waits for a replica.
	// A replica that has not reported by the deadline is evicted and the
	// run degrades to the survivors; 0 waits forever (the pre-resilience
	// behavior).
	EpochTimeout time.Duration
	// Rejoin lets an evicted replica re-enter the run: at the next epoch
	// boundary its circuit breaker half-opens, the replica is rebuilt for
	// its shard, adopts the fleet's latest averaged checkpoint, and rejoins
	// the barrier. Without it eviction stays permanent (the pre-rejoin
	// behavior).
	Rejoin bool
	// RejoinAfter is how many epochs an evicted replica's breaker stays open
	// before the first rejoin probe (default 1: evicted during epoch e,
	// probing at the start of epoch e+2).
	RejoinAfter int
	// CheckpointDir, when set, persists the post-averaging checkpoint there
	// every epoch via internal/resilience's crash-safe file format, and
	// rejoining replicas restore from the newest file on disk rather than
	// from process memory — the same recovery path a restarted process uses.
	CheckpointDir string
	// Obs, when non-nil, receives eviction and sync metrics; Trace, when
	// non-nil, receives one event per eviction.
	Obs   *obs.Registry
	Trace *obs.TraceSink
	// Tracer, when non-nil, is shared by every replica's trainer (batch
	// span trees) and additionally records each epoch barrier + parameter
	// averaging round as a dist_barrier span.
	Tracer *obs.Tracer
	// Recorder, when non-nil, dumps its span ring to disk whenever a
	// replica is evicted — the postmortem shows what every replica's last
	// batches were doing when one missed the barrier.
	Recorder *obs.FlightRecorder
	// Injector, when non-nil, is consulted at the per-replica fault points
	// (dist/replica-die/<r>, dist/replica-hang/<r>, dist/replica-flap/<r>,
	// dist/report-drop/<r>) for chaos tests.
	Injector *faultinject.Injector
}

// Result reports a distributed run.
type Result struct {
	// ReplicaLosses[r] is replica r's per-epoch training loss (rows of
	// evicted replicas stop at their last completed epoch).
	ReplicaLosses [][]float64
	// ValLoss is the averaged model's validation loss, scored by the first
	// surviving replica on the chronological validation suffix.
	ValLoss float64
	// WallTime covers all epochs including synchronization.
	WallTime time.Duration
	// SyncCount is how many parameter-averaging rounds ran.
	SyncCount int
	// Evicted lists replicas dropped for dying or missing the epoch
	// barrier, sorted by index (a replica that later rejoined still
	// appears here — it was evicted at some point).
	Evicted []int
	// Rejoined lists evicted replicas that re-entered the run via the
	// rejoin path, sorted by index.
	Rejoined []int
}

// replica bundles one worker's state.
type replica struct {
	model   models.TGNN
	trainer *train.Trainer
}

// Train runs synchronous data-parallel training and returns the result.
func Train(cfg Config) (*Result, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("distributed: Dataset required")
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("distributed: Replicas must be ≥ 1, got %d", cfg.Replicas)
	}
	if cfg.BaseBatch <= 0 {
		return nil, fmt.Errorf("distributed: BaseBatch must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}
	trainSet, valSet := cfg.Dataset.Split(cfg.TrainFrac)
	// Never build a replica around an empty shard: with more replicas than
	// training events the extra replicas would have nothing to consume, so
	// the effective width shrinks to the event count.
	width := cfg.Replicas
	if n := trainSet.NumEvents(); width > n {
		width = n
		if width < 1 {
			width = 1
		}
	}
	shards := shardEvents(trainSet, width)

	build := func(r int) (replica, error) {
		model, err := models.New(cfg.Model, cfg.Dataset, cfg.MemoryDim, cfg.TimeDim, cfg.Seed)
		if err != nil {
			return replica{}, err
		}
		var sched batching.Scheduler
		if cfg.Scheduler == SchedCascade {
			sched = core.NewScheduler(shards[r].Events, cfg.Dataset.NumNodes, core.Options{
				BaseBatch: cfg.BaseBatch, Workers: cfg.Workers, Seed: cfg.Seed + int64(r),
			})
		} else {
			sched = batching.NewFixed("TGL", shards[r].NumEvents(), cfg.BaseBatch)
		}
		// Every replica gets the validation suffix so any survivor can score
		// the averaged model if earlier replicas are evicted.
		trainer, err := train.NewTrainer(train.Config{
			Model: model, Sched: sched, Data: shards[r], Val: valSet,
			LR: cfg.LR, ValBatch: cfg.BaseBatch, Seed: cfg.Seed + int64(r),
			Obs: cfg.Obs, Tracer: cfg.Tracer,
		})
		if err != nil {
			return replica{}, err
		}
		return replica{model: model, trainer: trainer}, nil
	}

	replicas := make([]replica, width)
	for r := range replicas {
		rep, err := build(r)
		if err != nil {
			return nil, err
		}
		replicas[r] = rep
	}

	if cfg.RejoinAfter <= 0 {
		cfg.RejoinAfter = 1
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("distributed: checkpoint dir: %w", err)
		}
	}
	// One breaker per replica gates rejoin probes. The breaker runs on a
	// synthetic clock — one second per epoch — so "cooldown" is measured in
	// barrier rounds, not wall time: an eviction trips the breaker open, it
	// half-opens RejoinAfter epochs later, and a failed rejoin probe re-opens
	// it for another full cooldown.
	epochClock := new(int64)
	breakers := make([]*load.Breaker, width)
	for r := range breakers {
		breakers[r] = load.NewBreaker(load.BreakerConfig{
			FailureThreshold: 1,
			Cooldown:         time.Duration(cfg.RejoinAfter) * time.Second,
			Now:              func() time.Time { return time.Unix(*epochClock, 0) },
			Gauge:            fmt.Sprintf("dist_breaker_state_r%d", r),
			Obs:              cfg.Obs,
		})
	}

	res := &Result{ReplicaLosses: make([][]float64, width)}
	alive := make([]bool, width)
	for r := range alive {
		alive[r] = true
	}
	evict := func(r int, reason string, e int) {
		alive[r] = false
		res.Evicted = append(res.Evicted, r)
		breakers[r].Trip()
		if cfg.Obs != nil {
			cfg.Obs.Counter("dist_replica_evictions_total").Inc()
		}
		cfg.Trace.Emit(map[string]any{
			"event": "replica_evicted", "replica": r, "epoch": e + 1, "reason": reason,
		})
		if path, err := cfg.Recorder.Dump("replica_evicted"); err != nil {
			cfg.Trace.Emit(map[string]any{"event": "flight_dump_failed", "error": err.Error()})
		} else if path != "" {
			if cfg.Obs != nil {
				cfg.Obs.Counter("dist_flight_dumps_total").Inc()
			}
			cfg.Trace.Emit(map[string]any{"event": "flight_dump", "path": path, "reason": "replica_evicted"})
		}
	}

	// lastCkpt holds the fleet's newest post-averaging state for rejoiners;
	// when CheckpointDir is set the same state is also on disk and rejoin
	// prefers the file (exercising the restart-grade recovery path).
	var lastCkpt *train.CheckpointState

	start := time.Now()
	for e := 0; e < cfg.Epochs; e++ {
		*epochClock = int64(e)
		if cfg.Rejoin {
			rejoinEvicted(cfg, replicas, alive, breakers, lastCkpt, build, res, e)
		}
		type epochReport struct {
			r    int
			loss float64
			err  error
		}
		// Buffered to the full width so a replica that reports after the
		// barrier timed out (and was evicted) can still send and exit —
		// stragglers never leak or block.
		reports := make(chan epochReport, width)
		expected := 0
		for r := range replicas {
			if !alive[r] {
				continue
			}
			expected++
			// The trainer is captured at launch: if this replica is later
			// evicted and a rejoin rebuilds replicas[r] on the main
			// goroutine, the straggler keeps training its orphaned model and
			// never touches the slice again.
			go func(r int, tr *train.Trainer) {
				deliver := func(rep epochReport) {
					// Report delivery models the lossy network between a
					// replica and the coordinator: the injector can drop
					// sends at dist/report-drop/<r>, and the retry's jittered
					// backoff recovers transient drops. A report dropped on
					// every attempt means the coordinator never hears from
					// this replica — exactly a missed barrier, so the epoch
					// timeout evicts it.
					rt := load.Retry{Attempts: 3, Base: time.Millisecond, Seed: cfg.Seed + int64(rep.r), Obs: cfg.Obs}
					rt.Do("dist-report", func(int) error {
						if err := cfg.Injector.Err(faultinject.ReplicaPoint(faultinject.PointReportDrop, rep.r)); err != nil {
							return err
						}
						reports <- rep
						return nil
					})
				}
				if err := cfg.Injector.Err(faultinject.ReplicaPoint(faultinject.PointReplicaDie, r)); err != nil {
					deliver(epochReport{r: r, err: fmt.Errorf("replica %d died: %w", r, err)})
					return
				}
				if err := cfg.Injector.Err(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, r)); err != nil {
					deliver(epochReport{r: r, err: fmt.Errorf("replica %d flapped: %w", r, err)})
					return
				}
				cfg.Injector.Sleep(faultinject.ReplicaPoint(faultinject.PointReplicaHang, r))
				st, err := tr.TrainEpochChecked()
				deliver(epochReport{r: r, loss: st.Loss, err: err})
			}(r, replicas[r].trainer)
		}
		// The barrier wait plus the averaging round is one dist_barrier span:
		// its duration is the synchronization overhead of the epoch, and its
		// attrs record who made it.
		bsp := cfg.Tracer.Start("dist_barrier", obs.PhaseBarrier)
		bsp.SetInt("epoch", int64(e+1))
		bsp.SetInt("expected", int64(expected))
		var timeout <-chan time.Time
		var timer *time.Timer
		if cfg.EpochTimeout > 0 {
			timer = time.NewTimer(cfg.EpochTimeout)
			timeout = timer.C
		}
		reported := make([]bool, width)
	barrier:
		for i := 0; i < expected; i++ {
			select {
			case rep := <-reports:
				reported[rep.r] = true
				if rep.err != nil {
					evict(rep.r, rep.err.Error(), e)
					continue
				}
				res.ReplicaLosses[rep.r] = append(res.ReplicaLosses[rep.r], rep.loss)
			case <-timeout:
				// Deadline passed: every replica that has not reported is
				// evicted. Its goroutine may still be running; it sends into
				// the buffered channel and exits, and its parameters are
				// never read again (averaging skips evicted replicas), so
				// there is no race with the survivors.
				for r := range replicas {
					if alive[r] && !reported[r] {
						evict(r, "epoch barrier timeout", e)
						if cfg.Obs != nil {
							cfg.Obs.Counter("dist_epoch_timeouts_total").Inc()
						}
					}
				}
				break barrier
			}
		}
		if timer != nil {
			timer.Stop()
		}
		survivors := aliveIndices(alive)
		bsp.SetInt("survivors", int64(len(survivors)))
		if len(survivors) == 0 {
			bsp.End()
			res.WallTime = time.Since(start)
			return res, fmt.Errorf("distributed: all %d replicas evicted by epoch %d", width, e+1)
		}
		if cfg.Obs != nil {
			cfg.Obs.Gauge("dist_replicas_alive").Set(float64(len(survivors)))
		}
		if len(survivors) > 1 {
			asp := bsp.Child("average_params", obs.PhaseBarrier)
			averageParams(replicas, survivors)
			asp.End()
			res.SyncCount++
		}
		bsp.End()
		// Capture the post-averaging state from the first survivor so an
		// evicted replica can adopt it later. Only the weights and optimizer
		// moments matter to a rejoiner (its own shard rebuilds stream state
		// at the next epoch start), so any survivor's checkpoint serves.
		if cfg.Rejoin || cfg.CheckpointDir != "" {
			c, err := replicas[survivors[0]].trainer.CaptureCheckpoint()
			if err != nil {
				return nil, fmt.Errorf("distributed: epoch %d checkpoint: %w", e+1, err)
			}
			lastCkpt = c
			if cfg.CheckpointDir != "" {
				if _, err := resilience.WriteSnapshotFile(cfg.CheckpointDir, e+1, c, cfg.Injector); err != nil {
					// A failed write degrades rejoin to the in-memory copy;
					// it must not kill a healthy training run.
					if cfg.Obs != nil {
						cfg.Obs.Counter("dist_ckpt_write_failures_total").Inc()
					}
					cfg.Trace.Emit(map[string]any{
						"event": "dist_ckpt_write_failed", "epoch": e + 1, "error": err.Error(),
					})
				}
			}
		}
	}
	res.WallTime = time.Since(start)
	res.ValLoss = replicas[aliveIndices(alive)[0]].trainer.Validate()
	res.Evicted = dedupeSorted(res.Evicted)
	res.Rejoined = dedupeSorted(res.Rejoined)
	return res, nil
}

// rejoinEvicted probes every evicted replica whose breaker allows it: the
// replica is rebuilt from scratch for its original shard, adopts the fleet's
// latest averaged checkpoint (from CheckpointDir when set — the same
// restart-grade path a new process would take — else from memory), and
// re-enters the barrier as alive. A failed probe records a breaker failure,
// re-opening it for another cooldown.
func rejoinEvicted(cfg Config, replicas []replica, alive []bool, breakers []*load.Breaker,
	lastCkpt *train.CheckpointState, build func(int) (replica, error), res *Result, e int) {
	for r := range replicas {
		if alive[r] || !breakers[r].Allow() {
			continue
		}
		ckpt := lastCkpt
		if cfg.CheckpointDir != "" {
			if path, err := resilience.LatestCheckpoint(cfg.CheckpointDir); err == nil && path != "" {
				if c, err := resilience.ReadSnapshotFile(path); err == nil {
					ckpt = c
				}
			}
		}
		if ckpt == nil {
			// Nothing to adopt yet (evicted before the first averaging
			// round completed). Count it as a failed probe so the breaker
			// paces the next attempt.
			breakers[r].RecordFailure()
			continue
		}
		rep, err := build(r)
		if err == nil {
			err = rep.trainer.AdoptAveraged(ckpt)
		}
		if err != nil {
			breakers[r].RecordFailure()
			cfg.Trace.Emit(map[string]any{
				"event": "replica_rejoin_failed", "replica": r, "epoch": e + 1, "error": err.Error(),
			})
			continue
		}
		replicas[r] = rep
		alive[r] = true
		breakers[r].RecordSuccess()
		res.Rejoined = append(res.Rejoined, r)
		if cfg.Obs != nil {
			cfg.Obs.Counter("dist_replica_rejoins_total").Inc()
		}
		cfg.Trace.Emit(map[string]any{
			"event": "replica_rejoined", "replica": r, "epoch": e + 1, "ckpt_epoch": ckpt.Epoch,
		})
	}
}

// dedupeSorted sorts xs and drops duplicates (a replica can flap more than
// once; the result lists each index once).
func dedupeSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// aliveIndices lists the surviving replica indices in order.
func aliveIndices(alive []bool) []int {
	var out []int
	for r, ok := range alive {
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// shardEvents splits the training stream into contiguous temporal shards,
// one per replica (DistTGL's epoch-parallel assignment works on temporal
// slices too; contiguity keeps per-shard memory semantics meaningful). The
// split is balanced — n/replicas events each, remainder spread over the
// leading shards — so no shard is ever empty when replicas ≤ n.
func shardEvents(ds *graph.Dataset, replicas int) []*graph.Dataset {
	n := ds.NumEvents()
	out := make([]*graph.Dataset, replicas)
	per, rem := n/replicas, n%replicas
	lo := 0
	for r := 0; r < replicas; r++ {
		hi := lo + per
		if r < rem {
			hi++
		}
		out[r] = &graph.Dataset{
			Name:        fmt.Sprintf("%s/shard%d", ds.Name, r),
			NumNodes:    ds.NumNodes,
			Events:      ds.Events[lo:hi],
			EdgeFeatDim: ds.EdgeFeatDim,
			EdgeFeats:   ds.EdgeFeats,
		}
		if ds.Labels != nil {
			out[r].Labels = ds.Labels[lo:hi]
		}
		lo = hi
	}
	return out
}

// averageParams synchronizes the surviving replicas by in-place parameter
// averaging (model weights and predictor heads; replica-local memories stay
// local, as in DistTGL's partitioned memory). Evicted replicas are neither
// read nor written — their goroutines may still be running.
func averageParams(replicas []replica, survivors []int) {
	if len(survivors) < 2 {
		return
	}
	paramSets := make([][]nn.Param, len(survivors))
	for i, r := range survivors {
		paramSets[i] = append(replicas[r].model.Params(), replicas[r].trainer.Predictor().Params()...)
	}
	inv := 1 / float32(len(survivors))
	base := paramSets[0]
	for p := range base {
		data := base[p].T.Value.Data
		for i := range data {
			var sum float32
			for r := range paramSets {
				sum += paramSets[r][p].T.Value.Data[i]
			}
			data[i] = sum * inv
		}
	}
	// Broadcast the averaged weights back to every surviving replica.
	for r := 1; r < len(paramSets); r++ {
		for p := range base {
			copy(paramSets[r][p].T.Value.Data, base[p].T.Value.Data)
		}
	}
}
