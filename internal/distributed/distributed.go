// Package distributed implements data-parallel TGNN training in the spirit
// of DistTGL (Zhou et al., SC'23), the distributed successor of the paper's
// TGL baseline (§6): multiple trainer replicas consume disjoint temporal
// shards of the event stream with replica-local node memories, and model
// weights are synchronized by parameter averaging at epoch boundaries.
//
// Each replica may use any batching.Scheduler — including Cascade — so the
// package also demonstrates that dependency-aware batching composes with
// data parallelism: every replica profiles and adapts on its own shard.
package distributed

import (
	"fmt"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/core"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/train"
)

// SchedulerKind selects each replica's batching policy.
type SchedulerKind int

// Replica batching policies.
const (
	// SchedFixed is TGL-style fixed batching per replica.
	SchedFixed SchedulerKind = iota
	// SchedCascade runs a full Cascade scheduler per replica (each shard
	// gets its own dependency table and ABS profile).
	SchedCascade
)

// Config describes a distributed run.
type Config struct {
	// Dataset is the full stream; the training prefix is sharded.
	Dataset *graph.Dataset
	// Replicas is the data-parallel width (≥ 1).
	Replicas int
	// Model is a Table 1 model name.
	Model string
	// Scheduler picks the per-replica policy.
	Scheduler SchedulerKind
	// BaseBatch is the per-replica base batch size.
	BaseBatch int
	// Epochs of training; weights average after every epoch.
	Epochs int
	// TrainFrac splits train/validation chronologically (default 0.8).
	TrainFrac float64
	// MemoryDim / TimeDim size the models (defaults per models package).
	MemoryDim, TimeDim int
	// LR is each replica's Adam learning rate.
	LR float32
	// Seed drives initialization; all replicas share it so averaging acts
	// on aligned parameters.
	Seed int64
	// Workers bounds intra-replica CPU parallelism.
	Workers int
}

// Result reports a distributed run.
type Result struct {
	// ReplicaLosses[r] is replica r's per-epoch training loss.
	ReplicaLosses [][]float64
	// ValLoss is the averaged model's validation loss (scored by replica 0
	// on the chronological validation suffix).
	ValLoss float64
	// WallTime covers all epochs including synchronization.
	WallTime time.Duration
	// SyncCount is how many parameter-averaging rounds ran.
	SyncCount int
}

// replica bundles one worker's state.
type replica struct {
	model   models.TGNN
	trainer *train.Trainer
}

// Train runs synchronous data-parallel training and returns the result.
func Train(cfg Config) (*Result, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("distributed: Dataset required")
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("distributed: Replicas must be ≥ 1, got %d", cfg.Replicas)
	}
	if cfg.BaseBatch <= 0 {
		return nil, fmt.Errorf("distributed: BaseBatch must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}
	trainSet, valSet := cfg.Dataset.Split(cfg.TrainFrac)
	shards := shardEvents(trainSet, cfg.Replicas)

	replicas := make([]replica, cfg.Replicas)
	for r := range replicas {
		model, err := models.New(cfg.Model, cfg.Dataset, cfg.MemoryDim, cfg.TimeDim, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var sched batching.Scheduler
		if cfg.Scheduler == SchedCascade {
			sched = core.NewScheduler(shards[r].Events, cfg.Dataset.NumNodes, core.Options{
				BaseBatch: cfg.BaseBatch, Workers: cfg.Workers, Seed: cfg.Seed + int64(r),
			})
		} else {
			sched = batching.NewFixed("TGL", shards[r].NumEvents(), cfg.BaseBatch)
		}
		var val *graph.Dataset
		if r == 0 {
			val = valSet
		}
		trainer, err := train.NewTrainer(train.Config{
			Model: model, Sched: sched, Data: shards[r], Val: val,
			LR: cfg.LR, ValBatch: cfg.BaseBatch, Seed: cfg.Seed + int64(r),
		})
		if err != nil {
			return nil, err
		}
		replicas[r] = replica{model: model, trainer: trainer}
	}

	res := &Result{ReplicaLosses: make([][]float64, cfg.Replicas)}
	start := time.Now()
	for e := 0; e < cfg.Epochs; e++ {
		var wg sync.WaitGroup
		for r := range replicas {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				st := replicas[r].trainer.TrainEpoch()
				res.ReplicaLosses[r] = append(res.ReplicaLosses[r], st.Loss)
			}(r)
		}
		wg.Wait()
		if cfg.Replicas > 1 {
			averageParams(replicas)
			res.SyncCount++
		}
	}
	res.WallTime = time.Since(start)
	res.ValLoss = replicas[0].trainer.Validate()
	return res, nil
}

// shardEvents splits the training stream into contiguous temporal shards,
// one per replica (DistTGL's epoch-parallel assignment works on temporal
// slices too; contiguity keeps per-shard memory semantics meaningful).
func shardEvents(ds *graph.Dataset, replicas int) []*graph.Dataset {
	n := ds.NumEvents()
	out := make([]*graph.Dataset, replicas)
	per := (n + replicas - 1) / replicas
	for r := 0; r < replicas; r++ {
		lo := r * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		out[r] = &graph.Dataset{
			Name:        fmt.Sprintf("%s/shard%d", ds.Name, r),
			NumNodes:    ds.NumNodes,
			Events:      ds.Events[lo:hi],
			EdgeFeatDim: ds.EdgeFeatDim,
			EdgeFeats:   ds.EdgeFeats,
		}
		if ds.Labels != nil {
			out[r].Labels = ds.Labels[lo:hi]
		}
	}
	return out
}

// averageParams synchronizes replicas by in-place parameter averaging
// (model weights and predictor heads; replica-local memories stay local,
// as in DistTGL's partitioned memory).
func averageParams(replicas []replica) {
	if len(replicas) < 2 {
		return
	}
	paramSets := make([][]nn.Param, len(replicas))
	for r := range replicas {
		paramSets[r] = append(replicas[r].model.Params(), replicas[r].trainer.Predictor().Params()...)
	}
	inv := 1 / float32(len(replicas))
	base := paramSets[0]
	for p := range base {
		data := base[p].T.Value.Data
		for i := range data {
			var sum float32
			for r := range paramSets {
				sum += paramSets[r][p].T.Value.Data[i]
			}
			data[i] = sum * inv
		}
	}
	// Broadcast the averaged weights back to every replica.
	for r := 1; r < len(paramSets); r++ {
		for p := range base {
			copy(paramSets[r][p].T.Value.Data, base[p].T.Value.Data)
		}
	}
}
