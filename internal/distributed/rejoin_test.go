package distributed

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// TestReplicaRejoinsAfterFlap: a replica that flaps during epoch 1 must be
// evicted, sit out its breaker cooldown, then rejoin from the fleet's
// averaged checkpoint and train the remaining epochs.
func TestReplicaRejoinsAfterFlap(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 4
	cfg.Rejoin = true
	cfg.Injector = faultinject.New()
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, 1), 1)
	cfg.Obs = obs.NewRegistry()
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", res.Evicted)
	}
	if len(res.Rejoined) != 1 || res.Rejoined[0] != 1 {
		t.Fatalf("rejoined %v, want [1]", res.Rejoined)
	}
	if got := cfg.Obs.Counter("dist_replica_rejoins_total").Value(); got != 1 {
		t.Fatalf("rejoin counter %d, want 1", got)
	}
	// Flapped during epoch 1 (no loss), breaker open through epoch 2's
	// start... RejoinAfter defaults to 1, so the probe at epoch 2's boundary
	// (clock 1, opened at clock 0) already passes: epochs 2..4 train.
	if got := len(res.ReplicaLosses[1]); got != cfg.Epochs-1 {
		t.Fatalf("rejoiner trained %d epochs, want %d", got, cfg.Epochs-1)
	}
	if got := len(res.ReplicaLosses[0]); got != cfg.Epochs {
		t.Fatalf("survivor trained %d epochs, want %d", got, cfg.Epochs)
	}
	// Both replicas alive again → averaging resumed after the rejoin.
	if res.SyncCount < 2 {
		t.Fatalf("sync count %d, want ≥ 2 (averaging resumed post-rejoin)", res.SyncCount)
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
	// The rejoiner's breaker closed again on the successful probe.
	if got := cfg.Obs.Gauge("dist_breaker_state_r1").Value(); got != float64(load.BreakerClosed) {
		t.Fatalf("breaker gauge %v, want closed (%d)", got, load.BreakerClosed)
	}
}

// TestRejoinAfterDelaysProbe: RejoinAfter widens the breaker cooldown, so a
// replica evicted in epoch 1 with RejoinAfter=2 must miss epoch 2 as well and
// only train epochs 3..N.
func TestRejoinAfterDelaysProbe(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 4
	cfg.Rejoin = true
	cfg.RejoinAfter = 2
	cfg.Injector = faultinject.New()
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, 1), 1)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejoined) != 1 || res.Rejoined[0] != 1 {
		t.Fatalf("rejoined %v, want [1]", res.Rejoined)
	}
	if got := len(res.ReplicaLosses[1]); got != cfg.Epochs-2 {
		t.Fatalf("rejoiner trained %d epochs, want %d (cooldown spans epoch 2)", got, cfg.Epochs-2)
	}
}

// TestRejoinWithoutFlagStaysEvicted: the pre-rejoin contract is unchanged
// when Rejoin is off — eviction is permanent.
func TestRejoinWithoutFlagStaysEvicted(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 3
	cfg.Injector = faultinject.New()
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, 1), 1)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejoined) != 0 {
		t.Fatalf("rejoined %v with Rejoin off", res.Rejoined)
	}
	if len(res.ReplicaLosses[1]) != 0 {
		t.Fatalf("evicted replica trained %d epochs", len(res.ReplicaLosses[1]))
	}
}

// TestRejoinRestoresFromCheckpointDir: with CheckpointDir set, every epoch
// publishes a crash-safe checkpoint file and the rejoiner restores from the
// newest file — the identical path a replacement process would take.
func TestRejoinRestoresFromCheckpointDir(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 3
	cfg.Rejoin = true
	cfg.CheckpointDir = t.TempDir()
	cfg.Injector = faultinject.New()
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, 1), 1)
	cfg.Obs = obs.NewRegistry()
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejoined) != 1 || res.Rejoined[0] != 1 {
		t.Fatalf("rejoined %v, want [1]", res.Rejoined)
	}
	entries, err := os.ReadDir(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts int
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".ckpt" {
			ckpts++
		}
	}
	if ckpts != cfg.Epochs {
		t.Fatalf("%d checkpoint files, want one per epoch (%d)", ckpts, cfg.Epochs)
	}
}

// TestRejoinConvergenceParity: an evict→rejoin run must land at a validation
// loss comparable to a never-evicted run of the same config. The rejoiner
// skips one epoch of training on its shard, so bitwise equality is not the
// contract — the documented tolerance is 25% relative on validation loss,
// generous against epoch-to-epoch noise yet far below the gap a
// permanently-lost replica or a diverged rejoiner would produce.
func TestRejoinConvergenceParity(t *testing.T) {
	base := distData(t)
	base.Epochs = 4
	clean, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}

	flapped := distData(t)
	flapped.Epochs = 4
	flapped.Rejoin = true
	flapped.Injector = faultinject.New()
	flapped.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaFlap, 1), 1)
	rec, err := Train(flapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rejoined) != 1 {
		t.Fatalf("rejoined %v, want [1]", rec.Rejoined)
	}
	if clean.ValLoss <= 0 || rec.ValLoss <= 0 || math.IsNaN(clean.ValLoss) || math.IsNaN(rec.ValLoss) {
		t.Fatalf("val losses %v / %v", clean.ValLoss, rec.ValLoss)
	}
	if rel := math.Abs(rec.ValLoss-clean.ValLoss) / clean.ValLoss; rel > 0.25 {
		t.Fatalf("rejoin run diverged: val %.4f vs clean %.4f (%.1f%% off, tolerance 25%%)",
			rec.ValLoss, clean.ValLoss, 100*rel)
	}
}

// TestReportDropIsRetried: a transiently dropped barrier report must be
// recovered by the replica's retry loop — no eviction, and the recovery is
// visible on the retry counters.
func TestReportDropIsRetried(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 2
	cfg.Injector = faultinject.New()
	// Drop replica 0's first delivery attempt only; attempt 2 lands.
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReportDrop, 0), 1)
	cfg.Obs = obs.NewRegistry()
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 0 {
		t.Fatalf("evicted %v, want none (drop was transient)", res.Evicted)
	}
	if got := cfg.Obs.Counter("retry_recovered_total").Value(); got != 1 {
		t.Fatalf("retry_recovered_total %d, want 1", got)
	}
	if got := cfg.Obs.Counter("retry_attempts_total").Value(); got != 1 {
		t.Fatalf("retry_attempts_total %d, want 1", got)
	}
	if len(res.ReplicaLosses[0]) != cfg.Epochs {
		t.Fatalf("replica 0 trained %d epochs, want %d", len(res.ReplicaLosses[0]), cfg.Epochs)
	}
}
