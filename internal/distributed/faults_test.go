package distributed

import (
	"math"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// TestMoreReplicasThanEventsDegrades: asking for more replicas than training
// events must clamp the width instead of handing replicas empty shards (the
// old ceil-based split produced zero-event datasets that broke the trainer).
func TestMoreReplicasThanEventsDegrades(t *testing.T) {
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 81, FeatDimOverride: 8, MinEvents: 1600})
	tr, _ := ds.Split(0.8)
	cfg := Config{
		Dataset: ds, Replicas: tr.NumEvents() + 50, Model: "TGN", BaseBatch: 40,
		Epochs: 1, MemoryDim: 16, TimeDim: 4, Seed: 5, Workers: 1,
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReplicaLosses) != tr.NumEvents() {
		t.Fatalf("width %d, want clamp to %d events", len(res.ReplicaLosses), tr.NumEvents())
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
}

// TestShardEventsBalancedNoEmptyShards: the balanced split never produces an
// empty shard for replicas ≤ n, and shard sizes differ by at most one.
func TestShardEventsBalancedNoEmptyShards(t *testing.T) {
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 81, FeatDimOverride: 8, MinEvents: 1600})
	tr, _ := ds.Split(0.8)
	n := tr.NumEvents()
	for _, replicas := range []int{1, 2, 3, 7, n - 1, n} {
		shards := shardEvents(tr, replicas)
		minSz, maxSz, total := n, 0, 0
		for _, sh := range shards {
			sz := sh.NumEvents()
			if sz == 0 {
				t.Fatalf("replicas=%d: empty shard", replicas)
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			total += sz
		}
		if total != n {
			t.Fatalf("replicas=%d: shards cover %d of %d", replicas, total, n)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("replicas=%d: unbalanced shards (%d..%d)", replicas, minSz, maxSz)
		}
	}
}

// TestReplicaDeathIsEvictedNotFatal: an injected replica death must evict
// that replica, let the run finish on the survivors, and be reported via the
// result and the metrics registry.
func TestReplicaDeathIsEvictedNotFatal(t *testing.T) {
	cfg := distData(t)
	cfg.Epochs = 2
	cfg.Injector = faultinject.New()
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaDie, 1))
	cfg.Obs = obs.NewRegistry()
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", res.Evicted)
	}
	if got := cfg.Obs.Counter("dist_replica_evictions_total").Value(); got != 1 {
		t.Fatalf("eviction counter %d, want 1", got)
	}
	// Replica 0 must have trained every epoch; replica 1 none.
	if len(res.ReplicaLosses[0]) != cfg.Epochs {
		t.Fatalf("survivor trained %d epochs, want %d", len(res.ReplicaLosses[0]), cfg.Epochs)
	}
	if len(res.ReplicaLosses[1]) != 0 {
		t.Fatalf("dead replica reported %d epochs", len(res.ReplicaLosses[1]))
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
	// One survivor → nothing to average.
	if res.SyncCount != 0 {
		t.Fatalf("sync count %d with one survivor", res.SyncCount)
	}
}

// TestHungReplicaTimesOutAndIsEvicted: a wedged replica must not stall the
// epoch barrier forever — the timeout evicts it and the run completes.
func TestHungReplicaTimesOutAndIsEvicted(t *testing.T) {
	// A small stream keeps the healthy replica far under the barrier timeout
	// even with -race instrumentation; the armed hang still dwarfs it.
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.003, Seed: 81, FeatDimOverride: 8, MinEvents: 500})
	cfg := Config{
		Dataset: ds, Replicas: 2, Model: "TGN", BaseBatch: 40,
		Epochs: 2, MemoryDim: 16, TimeDim: 4, Seed: 5, Workers: 1,
	}
	cfg.EpochTimeout = 10 * time.Second
	cfg.Injector = faultinject.New()
	// The hang far outlives the barrier timeout; the sleeping goroutine is
	// orphaned (sends into a buffered channel, touches only its own replica).
	cfg.Injector.ArmDelay(faultinject.ReplicaPoint(faultinject.PointReplicaHang, 1), 120*time.Second, 1)
	cfg.Obs = obs.NewRegistry()

	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = Train(cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Train wedged despite epoch timeout")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", res.Evicted)
	}
	if got := cfg.Obs.Counter("dist_epoch_timeouts_total").Value(); got == 0 {
		t.Fatal("timeout not counted")
	}
	if len(res.ReplicaLosses[0]) != cfg.Epochs {
		t.Fatalf("survivor trained %d epochs, want %d", len(res.ReplicaLosses[0]), cfg.Epochs)
	}
	if res.ValLoss <= 0 || math.IsNaN(res.ValLoss) {
		t.Fatalf("val loss %v", res.ValLoss)
	}
}

// TestAllReplicasDeadFails: when every replica dies the run must return an
// error rather than report an empty success.
func TestAllReplicasDeadFails(t *testing.T) {
	cfg := distData(t)
	cfg.Injector = faultinject.New()
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaDie, 0))
	cfg.Injector.Arm(faultinject.ReplicaPoint(faultinject.PointReplicaDie, 1))
	if _, err := Train(cfg); err == nil {
		t.Fatal("run with zero survivors succeeded")
	}
}
