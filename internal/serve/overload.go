package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// Overload handling (see DESIGN.md §10). The admission controller bounds
// work in flight plus a small wait queue and sheds the rest with
// 429 + Retry-After; a circuit breaker watches the fresh scoring path for
// deadline misses; and an optional stale replica — an independent
// (model, predictor) pair with its own lock, refreshed from the live
// model's Snapshot on ingest — answers /score when the fresh path is
// saturated or broken. Serving slightly-stale node memories instead of
// failing is MSPipe's staleness argument applied to serving.

// staleScorer is the degraded scoring path's replica. Its weights must
// equal the live model's (serving never trains, so a construction-time copy
// stays valid); its stream state lags the live model by at most the refresh
// interval.
type staleScorer struct {
	mu        sync.Mutex
	model     models.TGNN
	predictor *nn.MLP
	lastTime  float64
	refreshed time.Time
	every     time.Duration
}

// refreshStale re-syncs the stale replica from the live model. Caller must
// hold s.mu (the snapshot must be consistent); the replica's own lock
// nests inside, never the reverse, so the two paths cannot deadlock.
func (s *Server) refreshStale() {
	st := s.stale
	if st == nil {
		return
	}
	now := time.Now()
	st.mu.Lock()
	if st.every > 0 && !st.refreshed.IsZero() && now.Sub(st.refreshed) < st.every {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	snap := s.model.Snapshot()
	st.mu.Lock()
	st.model.Restore(snap)
	st.lastTime = s.lastTime
	st.refreshed = now
	st.mu.Unlock()
	s.metrics.Counter("serve_stale_refresh_total").Inc()
}

// withDeadline applies the client's per-request deadline (the
// X-Request-Timeout-Ms header) to the request context, so it bounds both
// the queue wait and the scoring work.
func (s *Server) withDeadline(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if ms := r.Header.Get("X-Request-Timeout-Ms"); ms != "" {
			if v, err := strconv.Atoi(ms); err == nil && v > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(v)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next(w, r)
	}
}

// admitted gates a handler behind the admission controller. Admitted
// requests run with a release hook; shed ones never touch the model.
func (s *Server) admitted(cl load.Class, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.admit.AcquireClass(r.Context(), cl)
		if err != nil {
			s.shed(w, r, cl, err)
			return
		}
		defer release()
		next(w, r)
	}
}

// shed turns an admission failure into a response: 429 + Retry-After for
// queue-full and rate-limit sheds, 503 when the caller's own deadline
// expired while queued — except that a saturated /score degrades to the
// stale replica when one is configured, because a slightly-stale answer
// beats no answer (rate-limit sheds still 429: the client exceeded its
// contract, staleness doesn't change that).
func (s *Server) shed(w http.ResponseWriter, r *http.Request, cl load.Class, err error) {
	var se *load.ShedError
	if !errors.As(err, &se) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "deadline expired while queued: %v", err)
		return
	}
	if cl == load.ClassHigh && s.stale != nil && errors.Is(err, load.ErrQueueFull) {
		r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
		var req scoreRequest
		if !decode(w, r, &req) {
			return
		}
		if !s.validPairs(w, &req) {
			return
		}
		s.degradedScore(w, &req)
		return
	}
	secs := int((se.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests, "overloaded: %v", se.Reason)
}

// degradedScore answers from the stale replica (503 when none is
// configured). The response carries stale=true plus the snapshot age so
// clients can tell a degraded answer from a fresh one.
func (s *Server) degradedScore(w http.ResponseWriter, req *scoreRequest) {
	st := s.stale
	if st == nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "scoring unavailable and no stale replica configured")
		return
	}
	st.mu.Lock()
	at := req.Time
	if at < st.lastTime {
		at = st.lastTime
	}
	scores := scorePairs(st.model, st.predictor, req.Pairs, at)
	var age float64
	if !st.refreshed.IsZero() {
		age = time.Since(st.refreshed).Seconds()
	}
	st.mu.Unlock()
	s.metrics.Counter("serve_score_stale_total").Inc()
	s.metrics.Counter("serve_pairs_scored_total").Add(int64(len(req.Pairs)))
	writeJSON(w, map[string]any{"scores": scores, "stale": true, "stale_age_seconds": age})
}

// scoreFresh runs the read-only scoring cycle on the live model under its
// lock, honoring the request deadline: expired before the lock → never
// touch the model; expired during scoring (e.g. an injected slow score) →
// report failure so the breaker sees the miss.
func (s *Server) scoreFresh(ctx context.Context, req *scoreRequest) ([]float32, error) {
	s.mu.Lock()
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.inj.Sleep(faultinject.PointServeSlowScore)
	at := req.Time
	if at < s.lastTime {
		at = s.lastTime
	}
	scores := scorePairs(s.model, s.predictor, req.Pairs, at)
	s.scored += int64(len(req.Pairs))
	s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return scores, nil
}

// handleHealthz is the liveness probe: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "uptime_seconds": time.Since(s.started).Seconds()})
}

// ReadyStatus is the structured /readyz body: the status code still carries
// the ready/not-ready contract (200/503, unchanged), but the body now names
// each degradation cause so the router and the chaos harness can dispatch on
// specific reasons instead of parsing a prose line.
type ReadyStatus struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons"`
	Role    string   `json:"role"`
	// ReplLagRecords is how many committed records the standby has yet to
	// ack (primaries with replication only; 0 otherwise). Informational —
	// it never flips Ready by itself until it crosses LagBound.
	ReplLagRecords uint64 `json:"repl_lag_records"`
}

// Readyz evaluates the readiness reasons without HTTP (shared by the
// handler and tests).
func (s *Server) Readyz() ReadyStatus {
	reasons := []string{} // never null on the wire
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if s.admit.Saturated() {
		reasons = append(reasons, "queue full")
	}
	if s.breaker.State() == load.BreakerOpen {
		reasons = append(reasons, "breaker open")
	}
	if s.walBroken.Load() {
		reasons = append(reasons, "wal broken")
	}
	// A primary with a dead or lagging replication stream is still serving,
	// but its durability promise is degraded — surface it so the operator
	// (and the router's stats) can see the exposure window.
	var replLag uint64
	if Role(s.role.Load()) == RolePrimary && s.repl != nil {
		if !s.repl.Connected() {
			reasons = append(reasons, "standby disconnected")
		} else {
			s.mu.Lock()
			if s.wlog != nil {
				if committed := s.wlog.CommittedSeq(); committed > s.repl.AckedSeq() {
					replLag = committed - s.repl.AckedSeq()
				}
			}
			bound := s.replOpts.LagBound
			s.mu.Unlock()
			if bound > 0 && replLag > bound {
				reasons = append(reasons, "standby lagging")
			}
		}
	}
	return ReadyStatus{
		Ready: len(reasons) == 0, Reasons: reasons,
		Role: Role(s.role.Load()).String(), ReplLagRecords: replLag,
	}
}

// handleReadyz is the readiness probe: 503 while draining, while the wait
// queue is full, while the scoring breaker is open, or while the WAL is
// broken — the states in which a load balancer should route traffic
// elsewhere — with the structured body above in both directions.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.Readyz()
	if !st.Ready {
		s.metrics.Gauge("serve_ready").Set(0)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(st)
		return
	}
	s.metrics.Gauge("serve_ready").Set(1)
	writeJSON(w, st)
}

// StartDrain flips the server to not-ready. RunGraceful's onDrain hook
// calls it when the stop signal arrives, so load balancers watching
// /readyz stop routing here while in-flight requests finish.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }
