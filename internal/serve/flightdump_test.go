package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// TestBreakerOpenFlightDump: the closed→open transition of the scoring
// breaker must dump the span ring exactly once (reason "breaker_open"),
// with the preceding requests' spans inside. Re-opening from half-open
// after the cooldown produces a second, separate dump.
func TestBreakerOpenFlightDump(t *testing.T) {
	clk := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(0, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.t
	}
	inj := faultinject.New()
	// Stall scores 1-3: two misses trip the breaker, the third re-opens it
	// from half-open after the cooldown.
	inj.ArmDelay(faultinject.PointServeSlowScore, 120*time.Millisecond, 1, 2, 3)
	reg := obs.NewRegistry()
	dir := t.TempDir()
	rec := obs.NewFlightRecorder(dir, 16, reg)
	rec.SetClock(func() time.Time {
		return time.Date(2026, 8, 5, 14, 0, 0, 0, time.UTC)
	})
	tracer := obs.NewTracer(obs.TracerOptions{Flight: rec, Registry: reg})
	s := buildServer(t, overloadData(t),
		WithRegistry(reg), WithInjector(inj),
		WithTracer(tracer), WithFlightRecorder(rec),
		WithBreaker(load.BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second, Now: now}))
	h := s.Handler()

	slowScore := func() {
		req := httptest.NewRequest("POST", "/score", strings.NewReader(`{"pairs":[{"src":1,"dst":61}],"time":1e7}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Timeout-Ms", "30")
		recw := httptest.NewRecorder()
		h.ServeHTTP(recw, req)
		if recw.Code != http.StatusServiceUnavailable {
			t.Fatalf("deadline-missed score: %d %s, want 503", recw.Code, recw.Body)
		}
	}
	slowScore()
	slowScore()
	if st := s.breaker.State(); st != load.BreakerOpen {
		t.Fatalf("breaker %v, want open", st)
	}

	files := func() []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "flight-") {
				out = append(out, e.Name())
			}
		}
		return out
	}
	got := files()
	if len(got) != 1 {
		t.Fatalf("dump files %v, want exactly one after the open transition", got)
	}
	if !strings.Contains(got[0], "breaker_open") {
		t.Fatalf("dump file %q does not carry the trigger reason", got[0])
	}
	raw, err := os.ReadFile(filepath.Join(dir, got[0]))
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Reason string `json:"reason"`
		Time   string `json:"time"`
		Spans  []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"spans"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if d.Reason != "breaker_open" {
		t.Fatalf("reason %q", d.Reason)
	}
	if d.Time != "2026-08-05T14:00:00Z" {
		t.Fatalf("dump time %q not from the injected clock", d.Time)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump has no spans — the first missed request's span should be retained")
	}
	if got := reg.Counter("serve_flight_dumps_total").Value(); got != 1 {
		t.Fatalf("serve_flight_dumps_total %d, want 1", got)
	}

	// Cooldown elapses, the half-open probe stalls too → re-open → exactly
	// one more dump.
	clk.mu.Lock()
	clk.t = clk.t.Add(11 * time.Second)
	clk.mu.Unlock()
	slowScore()
	if got := files(); len(got) != 2 {
		t.Fatalf("dump files %v, want two after the re-open", got)
	}
}

// TestDebugPipelineEndpoint: /debug/pipeline serves the tracer's per-phase
// summaries and the flight ring's retention as JSON, and degrades to empty
// data with tracing disabled.
func TestDebugPipelineEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(t.TempDir(), 8, reg)
	tracer := obs.NewTracer(obs.TracerOptions{Flight: rec, Registry: reg})
	s := buildServer(t, overloadData(t),
		WithRegistry(reg), WithTracer(tracer), WithFlightRecorder(rec))
	h := s.Handler()

	// One request through the instrumented mux populates the "other" lane.
	if rec := get(t, h, "/stats"); rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	recw := get(t, h, "/debug/pipeline")
	if recw.Code != http.StatusOK {
		t.Fatalf("debug/pipeline: %d", recw.Code)
	}
	var resp struct {
		TraceID string `json:"trace_id"`
		Phases  []struct {
			Phase string  `json:"phase"`
			Count int64   `json:"count"`
			P99S  float64 `json:"p99_seconds"`
		} `json:"phases"`
		Flight map[string]any `json:"flight"`
	}
	if err := json.Unmarshal(recw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.TraceID == "" {
		t.Fatal("no trace_id")
	}
	found := false
	for _, p := range resp.Phases {
		if p.Phase == "other" && p.Count > 0 && p.P99S > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no populated 'other' phase summary in %s", recw.Body)
	}
	if resp.Flight == nil {
		t.Fatal("no flight status")
	}

	// Tracing disabled: endpoint still answers with empty data.
	s2 := buildServer(t, overloadData(t), WithRegistry(obs.NewRegistry()))
	recw2 := get(t, s2.Handler(), "/debug/pipeline")
	if recw2.Code != http.StatusOK {
		t.Fatalf("debug/pipeline without tracer: %d", recw2.Code)
	}
	var resp2 struct {
		TraceID string          `json:"trace_id"`
		Phases  json.RawMessage `json:"phases"`
	}
	if err := json.Unmarshal(recw2.Body.Bytes(), &resp2); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp2.TraceID != "" {
		t.Fatalf("trace_id %q with tracing disabled", resp2.TraceID)
	}
}
