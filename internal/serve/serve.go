// Package serve exposes a trained TGNN as an online inference service — the
// deployment the paper's introduction motivates ("ensuring that these
// models can be deployed quickly and effectively in real-world scenarios"):
// events stream in, node memories stay fresh, and edge scores are served
// from the latest state.
//
// Endpoints (JSON over HTTP):
//
//	POST /ingest  {"events":[{"src":1,"dst":2,"time":42.5}]}  → {"ingested":N}
//	POST /score   {"pairs":[{"src":1,"dst":2}],"time":43}     → {"scores":[…]}
//	GET  /stats                                               → server counters
//	GET  /metrics                                             → Prometheus text format
//
// A single goroutine owns the model (TGNN state is not concurrent); requests
// serialize through a mutex. Ingested events apply the same BeginBatch /
// EndBatch cycle as training, so memories evolve exactly as during training.
// Scoring is read-only: it embeds against a snapshot of the stream state and
// restores it, so a /score request never perturbs the model.
//
// Request hardening: bodies are capped at MaxBodyBytes (413 beyond), and a
// present Content-Type must be a JSON media type (415 otherwise). Every
// route is wrapped in metrics middleware recording request counts, error
// counts and latency histograms into the server's obs.Registry.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/tensor"
	"github.com/cascade-ml/cascade/internal/wal"
)

// MaxBodyBytes caps request bodies; larger requests get 413. One million
// float-bearing JSON events sit far below this, so the cap only stops
// abuse, not legitimate traffic.
const MaxBodyBytes = 1 << 20

// Server wraps a trained model + predictor head for online use.
type Server struct {
	mu        sync.Mutex
	model     models.TGNN
	predictor *nn.MLP
	numNodes  int
	lastTime  float64

	ingested int64
	scored   int64
	started  time.Time

	metrics  *obs.Registry
	trace    *obs.TraceSink
	tracer   *obs.Tracer
	recorder *obs.FlightRecorder
	logger   *slog.Logger
	slo      *obs.SLO

	// Overload resilience (see overload.go). All optional: nil admission
	// controller, breaker and injector are inert, nil stale disables the
	// degraded path.
	limits     *load.Limits
	breakerCfg *load.BreakerConfig
	admit      *load.Controller
	breaker    *load.Breaker
	stale      *staleScorer
	inj        *faultinject.Injector
	draining   atomic.Bool

	// Durability (see durable.go). walCfg nil disables the subsystem;
	// appliedSeq and sinceCompact are guarded by mu, walBroken flips the
	// ingest path read-only on the first log failure.
	walCfg       *WALConfig
	wlog         *wal.Log
	walBroken    atomic.Bool
	appliedSeq   uint64
	sinceCompact int

	// Replication (see repl.go). role is Solo unless WithStandby or
	// SetReplicator say otherwise; lastBid (guarded by mu) dedups
	// router-retried batches; repl/replOpts are set once before serving.
	role     atomic.Int32
	repl     Replicator
	replOpts ReplOptions
	lastBid  uint64
}

// Option customizes a Server.
type Option func(*Server)

// WithRegistry uses an external metrics registry (e.g. one shared with a
// trainer) instead of a private one.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) { s.metrics = r }
}

// WithTrace emits one JSONL record per request (route, status, duration,
// item count) into the sink.
func WithTrace(t *obs.TraceSink) Option {
	return func(s *Server) { s.trace = t }
}

// WithLimits puts an admission controller in front of the POST routes:
// at most MaxInflight requests run, QueueDepth wait, and the rest are shed
// with 429 + Retry-After (scoring gets the full queue, ingest half — see
// load.Class).
func WithLimits(lim load.Limits) Option {
	return func(s *Server) { s.limits = &lim }
}

// WithBreaker protects the fresh scoring path with a circuit breaker fed
// by request-deadline misses; while open, /score degrades to the stale
// replica (503 without one). The breaker state is exported as the
// `breaker_state` gauge.
func WithBreaker(cfg load.BreakerConfig) Option {
	return func(s *Server) { s.breakerCfg = &cfg }
}

// WithStaleReplica enables the degraded scoring path: replica must be an
// independent (model, predictor) pair with the same architecture and
// weights as the live one (see cascade.Run.NewScoringReplica). Its stream
// state is re-synced from the live model's Snapshot on ingest, at most
// once per `every` (0 = every ingest).
func WithStaleReplica(model models.TGNN, predictor *nn.MLP, every time.Duration) Option {
	return func(s *Server) {
		s.stale = &staleScorer{model: model, predictor: predictor, every: every}
	}
}

// WithTracer turns every instrumented request into a span (routes land in
// the "other" lane) and backs GET /debug/pipeline with the tracer's
// per-phase latency summaries. Nil is fine and keeps the endpoint working
// with empty data.
func WithTracer(tr *obs.Tracer) Option {
	return func(s *Server) { s.tracer = tr }
}

// WithFlightRecorder attaches the flight recorder: a breaker open
// transition dumps the last N span trees to disk (reason "breaker_open"),
// and /debug/pipeline reports how many trees the ring currently retains.
func WithFlightRecorder(f *obs.FlightRecorder) Option {
	return func(s *Server) { s.recorder = f }
}

// WithLogger emits one structured log record per request (route, status,
// duration, trace id) at Debug for 2xx/3xx and Warn for errors.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithInjector arms deterministic fault points (slow/refused scoring) for
// the chaos suite. Nil is the production default: every point is inert.
func WithInjector(inj *faultinject.Injector) Option {
	return func(s *Server) { s.inj = inj }
}

// WithSLO replaces the default error-budget tracker (availability 99.9%,
// 99% of requests under 250ms, 5m/1h windows) with a custom-configured one.
// Every server has a tracker — the slo_* gauges are always on /metrics —
// this option only tunes the objectives.
func WithSLO(slo *obs.SLO) Option {
	return func(s *Server) { s.slo = slo }
}

// New builds a server around a trained model and its predictor head (the
// trainer's head; see train.Trainer.Predictor).
func New(model models.TGNN, predictor *nn.MLP, numNodes int, opts ...Option) *Server {
	s := &Server{model: model, predictor: predictor, numNodes: numNodes, started: time.Now()}
	for _, o := range opts {
		o(s)
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	if s.slo == nil {
		s.slo = obs.NewSLO(obs.SLOConfig{})
	}
	s.slo.Register(s.metrics)
	// The controller and breaker are built after option processing so they
	// export into the final registry.
	if s.limits != nil {
		s.admit = load.NewController(*s.limits, s.metrics)
	}
	if s.breakerCfg != nil {
		cfg := *s.breakerCfg
		cfg.Obs = s.metrics
		if s.recorder != nil {
			// The open transition is the moment the fresh path is declared
			// down — capture the last N request/batch span trees while the
			// evidence is still in the ring. OnOpen runs under the breaker
			// mutex; Dump never touches the breaker, so no reentrancy.
			rec, log, user := s.recorder, s.logger, cfg.OnOpen
			cfg.OnOpen = func() {
				if path, err := rec.Dump("breaker_open"); err != nil {
					logWarn(log, "flight dump failed", "reason", "breaker_open", "error", err.Error())
				} else {
					s.metrics.Counter("serve_flight_dumps_total").Inc()
					logWarn(log, "flight dump written", "reason", "breaker_open", "path", path)
				}
				if user != nil {
					user()
				}
			}
		}
		s.breaker = load.NewBreaker(cfg)
	}
	return s
}

func logWarn(l *slog.Logger, msg string, args ...any) {
	if l != nil {
		l.Warn(msg, args...)
	}
}

// Metrics exposes the server's registry (what GET /metrics renders).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// EventIn is the wire form of one ingested event. Feats is accepted for
// forward compatibility but rejected with a typed 400 (non-finite values as
// graph.ErrNonFiniteFeature, finite ones as unsupported) — see
// validateEventsIn in durable.go.
type EventIn struct {
	Src   int32     `json:"src"`
	Dst   int32     `json:"dst"`
	Time  float64   `json:"time"`
	Feats []float32 `json:"feats,omitempty"`
}

// PairIn is one (src, dst) candidate edge to score.
type PairIn struct {
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
}

type ingestRequest struct {
	Events []EventIn `json:"events"`
	// Bid is the router's monotonic per-shard batch id (0 = direct client,
	// no dedup). A batch whose bid is ≤ the last applied one was already
	// ingested — the router re-sends after an ambiguous failure, and the
	// dedup here is what makes hinted-handoff replay exactly-once.
	Bid uint64 `json:"bid,omitempty"`
}

type scoreRequest struct {
	Pairs []PairIn `json:"pairs"`
	Time  float64  `json:"time"`
}

// Handler returns the HTTP mux for the server. The POST routes run behind
// the per-request deadline and the admission controller; the probe routes
// (/healthz, /readyz) bypass both so an overloaded server still answers
// its load balancer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /ingest", s.instrument("ingest", s.withDeadline(s.admitted(load.ClassLow, s.jsonBody(s.handleIngest)))))
	mux.Handle("POST /score", s.instrument("score", s.withDeadline(s.admitted(load.ClassHigh, s.jsonBody(s.handleScore)))))
	mux.Handle("GET /stats", s.instrument("stats", s.handleStats))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("GET /debug/pipeline", s.instrument("debug_pipeline", s.handleDebugPipeline))
	mux.Handle("POST /admin/promote", s.instrument("promote", s.handlePromote))
	return mux
}

// statusWriter remembers the response code for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with request counting, error counting and a
// latency histogram (`serve_<route>_seconds`), plus optional per-request
// trace records. A propagated traceparent header (the router's, or any
// client's) continues the remote trace: the span — and the slog line —
// carry the cluster-wide trace-id.
func (s *Server) instrument(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var sp *obs.Span
		if parent, ok := obs.Extract(r.Header); ok {
			sp = s.tracer.StartRemote("serve_"+route, obs.PhaseOther, parent)
		} else {
			sp = s.tracer.Start("serve_"+route, obs.PhaseOther)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next(sw, r)
		elapsed := time.Since(start)
		sp.SetStr("route", route)
		sp.SetInt("status", int64(sw.status))
		sp.End()
		s.metrics.Counter("serve_" + route + "_requests_total").Inc()
		if sw.status >= 400 {
			s.metrics.Counter("serve_" + route + "_errors_total").Inc()
		}
		s.metrics.Histogram("serve_"+route+"_seconds", obs.LatencyEdges...).Observe(elapsed.Seconds())
		if route == "ingest" || route == "score" {
			// SLO outcomes count serving requests only, and 5xx only: a shed
			// (429) or a bad request spent no error budget.
			s.slo.Observe(sw.status < 500, elapsed)
		}
		_ = s.trace.Emit(map[string]any{
			"route": route, "status": sw.status, "duration_ns": elapsed.Nanoseconds(),
		})
		if s.logger != nil {
			lvl := slog.LevelDebug
			if sw.status >= 400 {
				lvl = slog.LevelWarn
			}
			args := []any{
				"route", route, "status", sw.status,
				"duration_ms", float64(elapsed.Nanoseconds()) / 1e6,
				"span_id", sp.ID(),
			}
			if tid := sp.TraceID(); tid != "" {
				args = append(args, "trace_id", tid)
			}
			s.logger.Log(r.Context(), lvl, "request", args...)
		}
	})
}

// jsonBody enforces the request-body contract shared by the POST routes:
// a JSON media type when Content-Type is present, and a MaxBodyBytes cap.
func (s *Server) jsonBody(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "" {
			mt, _, err := mime.ParseMediaType(ct)
			if err != nil || (mt != "application/json" && mt != "text/json") {
				httpError(w, http.StatusUnsupportedMediaType, "content type %q not supported; use application/json", ct)
				return
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
		next(w, r)
	}
}

// decode unmarshals the request body into v, translating an exceeded body
// cap into 413 and malformed JSON into 400. Returns false when a response
// was already written.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Events) == 0 {
		httpError(w, http.StatusBadRequest, "no events")
		return
	}
	s.mu.Lock()
	// A standby never takes writes: a router retrying here after failover
	// must get a typed refusal, not a divergent second timeline.
	if Role(s.role.Load()) == RoleStandby {
		s.mu.Unlock()
		httpErrorCode(w, http.StatusServiceUnavailable, "not_primary", "standby does not accept writes")
		return
	}
	// Bid dedup comes before validation: a re-sent batch was already
	// applied, so its events sit at (not after) lastTime and would fail
	// the time-order check a second time.
	if req.Bid > 0 && req.Bid <= s.lastBid {
		n := len(req.Events)
		s.mu.Unlock()
		s.metrics.Counter("serve_ingest_deduped_total").Inc()
		writeJSON(w, map[string]any{"ingested": n, "deduped": true})
		return
	}
	// Validation (the graph package's stream invariants, typed errors)
	// happens before the WAL sees anything: a malformed batch must never be
	// logged, or replay would refuse the log.
	events, err := s.validateEventsIn(req.Events)
	if err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Durability barrier: the batch is logged (and, under the batch/always
	// sync policies, fsynced) before it touches the model, so an acked batch
	// survives a crash. A broken log means acks would be lies — degrade to
	// read-only with a typed 503 and leave /score alone.
	if s.wlog != nil {
		if s.walBroken.Load() {
			s.mu.Unlock()
			s.metrics.Counter("serve_wal_unavailable_total").Inc()
			httpErrorCode(w, http.StatusServiceUnavailable, "wal_unavailable", "event log unavailable; serving read-only")
			return
		}
		seq, werr := s.appendWALLocked(events, req.Bid)
		if werr != nil {
			s.mu.Unlock()
			s.metrics.Counter("serve_wal_unavailable_total").Inc()
			httpErrorCode(w, http.StatusServiceUnavailable, "wal_unavailable", "event log write failed: %v", werr)
			return
		}
		s.applyEventsLocked(events)
		s.appliedSeq = seq
		s.metrics.Gauge("serve_wal_applied_seq").Set(float64(seq))
	} else {
		// Apply pending messages, then queue this batch's — the same cycle
		// the trainer runs, so the online memory matches training semantics.
		s.applyEventsLocked(events)
	}
	if req.Bid > 0 {
		s.lastBid = req.Bid
	}
	s.metrics.Counter("serve_events_ingested_total").Add(int64(len(events)))
	s.metrics.Histogram("serve_ingest_batch_size", obs.SizeEdges...).Observe(float64(len(events)))
	s.metrics.Gauge("serve_stream_time").Set(s.lastTime)
	s.maybeCompactLocked()
	s.refreshStale()
	seq, repl, ackTimeout := s.appliedSeq, s.repl, s.replOpts.AckTimeout
	s.mu.Unlock()
	// Semi-synchronous replication: hold the ack until the standby has the
	// batch on disk — this wait is what makes "zero acked-but-lost" hold
	// across a primary SIGKILL. It runs OUTSIDE the model lock so a slow
	// standby never blocks /score. On timeout the batch is acked anyway
	// (availability over strictness); the counter and /readyz's
	// "standby lagging" reason record the degradation.
	if repl != nil && s.wlog != nil {
		if err := repl.WaitAcked(seq, ackTimeout); err != nil {
			s.metrics.Counter("serve_repl_ack_timeouts_total").Inc()
		}
	}
	writeJSON(w, map[string]any{"ingested": len(events)})
}

// validPairs applies the request-shape contract (non-empty, nodes in
// range); it writes the 400 itself so both the fresh and the degraded path
// share it.
func (s *Server) validPairs(w http.ResponseWriter, req *scoreRequest) bool {
	if len(req.Pairs) == 0 {
		httpError(w, http.StatusBadRequest, "no pairs")
		return false
	}
	for i, p := range req.Pairs {
		if p.Src < 0 || int(p.Src) >= s.numNodes || p.Dst < 0 || int(p.Dst) >= s.numNodes {
			httpError(w, http.StatusBadRequest, "pair %d: node out of range", i)
			return false
		}
	}
	return true
}

// scorePairs embeds each (src, dst) pair at time `at` and returns the
// predictor's logit per pair. Read-only: it embeds against the freshest
// state (pending messages applied) but on a snapshot, so the BeginBatch
// side effects — memory writes, drained message queue, RNG draws — never
// leak into the served stream state. The caller must hold the lock that
// guards model and predictor; the scoring tape goes back to the arena
// before returning.
func scorePairs(model models.TGNN, predictor *nn.MLP, pairs []PairIn, at float64) []float32 {
	n := len(pairs)
	nodes := make([]int32, 0, 2*n)
	ts := make([]float64, 0, 2*n)
	for _, p := range pairs {
		nodes = append(nodes, p.Src)
		ts = append(ts, at)
	}
	for _, p := range pairs {
		nodes = append(nodes, p.Dst)
		ts = append(ts, at)
	}
	snap := model.Snapshot()
	upd := model.BeginBatch()
	emb := model.Embed(nodes, ts)
	model.Restore(snap)
	srcIdx := make([]int, n)
	dstIdx := make([]int, n)
	for i := 0; i < n; i++ {
		srcIdx[i] = i
		dstIdx[i] = n + i
	}
	pair := tensor.ConcatColsT(tensor.GatherRowsT(emb, srcIdx), tensor.GatherRowsT(emb, dstIdx))
	logits := predictor.Forward(pair)
	out := append([]float32(nil), logits.Value.Data...)
	upd.FreeTape(logits)
	return out
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if !decode(w, r, &req) {
		return
	}
	if !s.validPairs(w, &req) {
		return
	}
	// An injected refusal or an open breaker diverts the request to the
	// degraded path before it can touch the fresh one.
	if s.inj.Fire(faultinject.PointServeRefuse) || !s.breaker.Allow() {
		s.degradedScore(w, &req)
		return
	}
	scores, err := s.scoreFresh(r.Context(), &req)
	if err != nil {
		// A deadline miss on the fresh path is the breaker's failure
		// signal: enough of them in a row and /score flips to stale-only
		// until the cooldown probe succeeds.
		s.breaker.RecordFailure()
		s.metrics.Counter("serve_deadline_misses_total").Inc()
		s.degradedScore(w, &req)
		return
	}
	s.breaker.RecordSuccess()
	s.metrics.Counter("serve_pairs_scored_total").Add(int64(len(req.Pairs)))
	writeJSON(w, map[string]any{"scores": scores, "stale": false})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := map[string]any{
		"ingested":       s.ingested,
		"scored":         s.scored,
		"last_time":      s.lastTime,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"num_nodes":      s.numNodes,
		"inflight":       s.admit.Inflight(),
		"queued":         s.admit.QueueLen(),
		"breaker":        s.breaker.State().String(),
		"draining":       s.draining.Load(),
		// Top-level (not only under "repl") so a restarted router can re-sync
		// its bid floor against a solo shard too.
		"last_bid": s.lastBid,
	}
	if s.wlog != nil {
		resp["wal"] = map[string]any{
			"applied_seq": s.appliedSeq,
			"next_seq":    s.wlog.NextSeq(),
			"broken":      s.walBroken.Load(),
		}
	}
	if repl := s.replStatsLocked(); repl != nil {
		resp["repl"] = repl
	}
	// The fingerprint requires a full deep copy of the stream state, so it
	// hides behind ?full=1 — it exists for recovery verification (the chaos
	// suite compares a recovered process against a reference), not for
	// routine polling.
	if r.URL.Query().Get("full") == "1" {
		resp["state_fingerprint"] = fmt.Sprintf("%016x", s.model.Snapshot().Fingerprint())
	}
	writeJSON(w, resp)
}

// handleDebugPipeline serves the tracing subsystem's live view: per-phase
// latency percentiles (p50/p95/p99 from the streaming log-histograms) and
// the flight recorder's retention. Works with tracing disabled — the
// summaries are simply empty.
func (s *Server) handleDebugPipeline(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"trace_id": s.tracer.ID(),
		"phases":   s.tracer.Stats().Summary(),
	}
	if s.recorder != nil {
		resp["flight"] = map[string]any{"retained": s.recorder.Retained()}
	}
	writeJSON(w, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing better to do than drop.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// httpErrorCode is httpError with a machine-readable "code" field, for
// errors clients must dispatch on (e.g. "wal_unavailable" → back off and
// retry elsewhere, vs. a 4xx → fix the request).
func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...), "code": code})
}
