// Package serve exposes a trained TGNN as an online inference service — the
// deployment the paper's introduction motivates ("ensuring that these
// models can be deployed quickly and effectively in real-world scenarios"):
// events stream in, node memories stay fresh, and edge scores are served
// from the latest state.
//
// Endpoints (JSON over HTTP):
//
//	POST /ingest  {"events":[{"src":1,"dst":2,"time":42.5}]}  → {"ingested":N}
//	POST /score   {"pairs":[{"src":1,"dst":2}],"time":43}     → {"scores":[…]}
//	GET  /stats                                               → server counters
//
// A single goroutine owns the model (TGNN state is not concurrent); requests
// serialize through a mutex. Ingested events apply the same BeginBatch /
// EndBatch cycle as training, so memories evolve exactly as during training.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// Server wraps a trained model + predictor head for online use.
type Server struct {
	mu        sync.Mutex
	model     models.TGNN
	predictor *nn.MLP
	numNodes  int
	lastTime  float64

	ingested int64
	scored   int64
	started  time.Time
}

// New builds a server around a trained model and its predictor head (the
// trainer's head; see train.Trainer.Predictor).
func New(model models.TGNN, predictor *nn.MLP, numNodes int) *Server {
	return &Server{model: model, predictor: predictor, numNodes: numNodes, started: time.Now()}
}

// EventIn is the wire form of one ingested event.
type EventIn struct {
	Src  int32   `json:"src"`
	Dst  int32   `json:"dst"`
	Time float64 `json:"time"`
}

// PairIn is one (src, dst) candidate edge to score.
type PairIn struct {
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
}

type ingestRequest struct {
	Events []EventIn `json:"events"`
}

type scoreRequest struct {
	Pairs []PairIn `json:"pairs"`
	Time  float64  `json:"time"`
}

// Handler returns the HTTP mux for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /score", s.handleScore)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Events) == 0 {
		httpError(w, http.StatusBadRequest, "no events")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	events := make([]graph.Event, len(req.Events))
	last := s.lastTime
	for i, e := range req.Events {
		if e.Src < 0 || int(e.Src) >= s.numNodes || e.Dst < 0 || int(e.Dst) >= s.numNodes {
			httpError(w, http.StatusBadRequest, "event %d: node out of range", i)
			return
		}
		if e.Src == e.Dst {
			httpError(w, http.StatusBadRequest, "event %d: self loop", i)
			return
		}
		if e.Time < last {
			httpError(w, http.StatusBadRequest, "event %d: time %v before %v", i, e.Time, last)
			return
		}
		last = e.Time
		events[i] = graph.Event{Src: e.Src, Dst: e.Dst, Time: e.Time, FeatIdx: -1}
	}
	// Apply pending messages, then queue this batch's — the same cycle the
	// trainer runs, so the online memory matches training semantics.
	s.model.BeginBatch()
	s.model.EndBatch(events)
	s.lastTime = last
	s.ingested += int64(len(events))
	writeJSON(w, map[string]any{"ingested": len(events)})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		httpError(w, http.StatusBadRequest, "no pairs")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(req.Pairs)
	nodes := make([]int32, 0, 2*n)
	ts := make([]float64, 0, 2*n)
	at := req.Time
	if at < s.lastTime {
		at = s.lastTime
	}
	for i, p := range req.Pairs {
		if p.Src < 0 || int(p.Src) >= s.numNodes || p.Dst < 0 || int(p.Dst) >= s.numNodes {
			httpError(w, http.StatusBadRequest, "pair %d: node out of range", i)
			return
		}
		nodes = append(nodes, p.Src)
		ts = append(ts, at)
	}
	for _, p := range req.Pairs {
		nodes = append(nodes, p.Dst)
		ts = append(ts, at)
	}
	s.model.BeginBatch()
	emb := s.model.Embed(nodes, ts)
	srcIdx := make([]int, n)
	dstIdx := make([]int, n)
	for i := 0; i < n; i++ {
		srcIdx[i] = i
		dstIdx[i] = n + i
	}
	pair := tensor.ConcatColsT(tensor.GatherRowsT(emb, srcIdx), tensor.GatherRowsT(emb, dstIdx))
	logits := s.predictor.Forward(pair)
	s.scored += int64(n)
	writeJSON(w, map[string]any{"scores": logits.Value.Data})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, map[string]any{
		"ingested":       s.ingested,
		"scored":         s.scored,
		"last_time":      s.lastTime,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"num_nodes":      s.numNodes,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing better to do than drop.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
