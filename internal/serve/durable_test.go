package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
	"github.com/cascade-ml/cascade/internal/wal"
)

// walServer builds a deterministically-trained server with the WAL enabled.
// Every call reproduces bitwise-identical weights and stream state (same
// dataset seed, same trainer seed), which is what lets the recovery tests
// compare a recovered process against an independently-built reference.
func walServer(t *testing.T, cfg WALConfig, opts ...Option) (*Server, *WALRecovery) {
	t.Helper()
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 600})
	tr, val := ds.Split(0.8)
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Val: val, ValBatch: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(2)
	s := New(m, trainer.Predictor(), ds.NumNodes, append(opts, WithWAL(cfg))...)
	rec, err := s.StartWAL()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseWAL() })
	return s, rec
}

// fingerprint hashes the live stream state (node memories, pending
// messages, RNG) — the bitwise-recovery criterion.
func fingerprint(s *Server) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Snapshot().Fingerprint()
}

// ingestBatch posts the i-th deterministic event batch. Batches are the
// replay unit, so tests that compare recovered state against a reference
// must post the same batches in the same order — this helper is that order.
func ingestBatch(t *testing.T, h http.Handler, i int) {
	t.Helper()
	rec := post(t, h, "/ingest", map[string]any{"events": deterministicBatch(i)})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest batch %d: status %d: %s", i, rec.Code, rec.Body)
	}
}

func deterministicBatch(i int) []map[string]any {
	n := 3 + i%4
	events := make([]map[string]any, n)
	for j := 0; j < n; j++ {
		events[j] = map[string]any{
			"src":  (i*7 + j*3) % 30,
			"dst":  32 + (i*5+j*11)%30,
			"time": 1e7 + float64(i*16+j),
		}
	}
	return events
}

func TestWALIngestDurableAndRecover(t *testing.T) {
	dir := t.TempDir()
	a, _ := walServer(t, WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes})
	h := a.Handler()
	const batches = 5
	for i := 0; i < batches; i++ {
		ingestBatch(t, h, i)
	}
	want := fingerprint(a)
	wantSeq := a.WALAppliedSeq()
	if wantSeq != batches {
		t.Fatalf("applied seq %d after %d batches", wantSeq, batches)
	}
	// "Crash": abandon a without flushing or closing. Sync policy batch
	// means every acked batch is already on disk.
	b, rec := walServer(t, WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes})
	if rec.ReplayedRecords != batches {
		t.Fatalf("replayed %d records, want %d (recovery %+v)", rec.ReplayedRecords, batches, rec)
	}
	if got := fingerprint(b); got != want {
		t.Fatalf("recovered fingerprint %016x, want %016x", got, want)
	}
	if b.WALAppliedSeq() != wantSeq {
		t.Fatalf("recovered applied seq %d, want %d", b.WALAppliedSeq(), wantSeq)
	}
	// The recovered log keeps accepting batches at the right sequence.
	ingestBatch(t, b.Handler(), batches)
	if b.WALAppliedSeq() != wantSeq+1 {
		t.Fatalf("post-recovery applied seq %d, want %d", b.WALAppliedSeq(), wantSeq+1)
	}
	// /stats surfaces the wal section and the ?full=1 fingerprint.
	var stats struct {
		WAL struct {
			AppliedSeq uint64 `json:"applied_seq"`
			Broken     bool   `json:"broken"`
		} `json:"wal"`
		Fingerprint string `json:"state_fingerprint"`
	}
	res := get(t, b.Handler(), "/stats?full=1")
	if err := json.Unmarshal(res.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.WAL.AppliedSeq != wantSeq+1 || stats.WAL.Broken {
		t.Fatalf("stats wal %+v", stats.WAL)
	}
	if want := fmt.Sprintf("%016x", fingerprint(b)); stats.Fingerprint != want {
		t.Fatalf("stats fingerprint %q, want %q", stats.Fingerprint, want)
	}
}

// TestWALKillAtRandomOffset is the kill-at-random-offset pin: cut the tail
// segment at arbitrary byte offsets (simulating a SIGKILL mid-write),
// recover, and require the recovered state to be bitwise-identical to a
// reference server that ingested exactly the recovered prefix of batches.
func TestWALKillAtRandomOffset(t *testing.T) {
	const batches = 6
	src := t.TempDir()
	a, _ := walServer(t, WALConfig{Dir: src, SegmentBytes: wal.MinSegmentBytes})
	for i := 0; i < batches; i++ {
		ingestBatch(t, a.Handler(), i)
	}
	names, err := wal.ListSegments(src)
	if err != nil || len(names) == 0 {
		t.Fatalf("segments: %v %v", names, err)
	}
	tail := names[len(names)-1]
	tailData, err := os.ReadFile(filepath.Join(src, tail))
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic "random" cut offsets spread across the tail file.
	cuts := []int64{1, int64(len(tailData)) / 3, int64(len(tailData)) - 9, int64(len(tailData)) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut >= int64(len(tailData)) {
			continue
		}
		dir := t.TempDir()
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if name == tail {
				data = data[:cut]
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		b, _ := walServer(t, WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes})
		applied := b.WALAppliedSeq()
		if applied > batches {
			t.Fatalf("cut=%d: recovered %d batches from a %d-batch log", cut, applied, batches)
		}
		// Reference: a fresh identically-trained server applies exactly the
		// recovered prefix.
		ref, _ := walServer(t, WALConfig{Dir: t.TempDir()})
		for i := 0; i < int(applied); i++ {
			ingestBatch(t, ref.Handler(), i)
		}
		if got, want := fingerprint(b), fingerprint(ref); got != want {
			t.Fatalf("cut=%d: recovered fingerprint %016x != reference %016x (prefix %d)", cut, got, want, applied)
		}
	}
}

func TestWALFaultDegradesReadOnly(t *testing.T) {
	inj := faultinject.New()
	s, _ := walServer(t, WALConfig{Dir: t.TempDir()}, WithInjector(inj))
	h := s.Handler()
	ingestBatch(t, h, 0)
	before := fingerprint(s)

	inj.Arm(faultinject.PointWALSync) // the disk refuses durability
	rec := post(t, h, "/ingest", map[string]any{"events": deterministicBatch(1)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest with failing fsync: status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Code != "wal_unavailable" {
		t.Fatalf("typed 503 body %s (err %v)", rec.Body, err)
	}
	// The failed batch must NOT have been applied — an un-logged batch in
	// memory is exactly the acked-but-lost state the WAL exists to prevent.
	if got := fingerprint(s); got != before {
		t.Fatalf("failed ingest mutated state: %016x != %016x", got, before)
	}
	// Sticky: later ingests fail fast with the same typed error.
	rec = post(t, h, "/ingest", map[string]any{"events": deterministicBatch(1)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second ingest: status %d", rec.Code)
	}
	// /score still serves.
	rec = post(t, h, "/score", map[string]any{
		"pairs": []map[string]any{{"src": 0, "dst": 60}}, "time": 2e7,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("score while wal broken: status %d: %s", rec.Code, rec.Body)
	}
	// /readyz flips not-ready with the reason.
	rec = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "wal broken") {
		t.Fatalf("readyz %d: %s", rec.Code, rec.Body)
	}
	if v := s.Metrics().Counter("serve_wal_unavailable_total").Value(); v < 2 {
		t.Fatalf("serve_wal_unavailable_total = %d", v)
	}
}

func TestWALRotateFaultDegradesReadOnly(t *testing.T) {
	inj := faultinject.New()
	s, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes}, WithInjector(inj))
	h := s.Handler()
	ingestBatch(t, h, 0)
	inj.Arm(faultinject.PointWALRotate) // disk full at the next segment
	// Push big batches until a rotation is attempted.
	big := make([]map[string]any, 200)
	status := http.StatusOK
	for i := 0; i < 8 && status == http.StatusOK; i++ {
		for j := range big {
			big[j] = map[string]any{"src": j % 30, "dst": 32 + j%30, "time": 2e7 + float64(i*len(big)+j)}
		}
		status = post(t, h, "/ingest", map[string]any{"events": big}).Code
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("rotation under disk-full never degraded: last status %d", status)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after disk-full: %d", rec.Code)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: 2, SnapshotKeep: 1}
	a, _ := walServer(t, cfg)
	for i := 0; i < 4; i++ {
		ingestBatch(t, a.Handler(), i)
	}
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots after 4 batches: %v (err %v)", snaps, err)
	}
	want := fingerprint(a)
	// Restart: the snapshot carries everything (compaction ran at batch 4),
	// so replay has nothing to do.
	b, rec := walServer(t, cfg)
	if rec.SnapshotPath == "" || rec.ReplayedRecords != 0 {
		t.Fatalf("recovery %+v, want snapshot-only", rec)
	}
	if got := fingerprint(b); got != want {
		t.Fatalf("post-compaction fingerprint %016x, want %016x", got, want)
	}
	// The log keeps rolling afterwards, and the snapshot watermark pins the
	// sequence numbering even though old segments are gone.
	ingestBatch(t, b.Handler(), 4)
	if b.WALAppliedSeq() != 5 {
		t.Fatalf("applied seq %d, want 5", b.WALAppliedSeq())
	}
}

func TestWALSnapshotFaultKeepsServing(t *testing.T) {
	inj := faultinject.New()
	dir := t.TempDir()
	s, _ := walServer(t, WALConfig{Dir: dir, CompactEvery: 2}, WithInjector(inj))
	inj.Arm(faultinject.PointWALSnapshot)
	for i := 0; i < 3; i++ {
		ingestBatch(t, s.Handler(), i) // compaction fires (and fails) at batch 2
	}
	if v := s.Metrics().Counter("serve_wal_snapshot_errors_total").Value(); v == 0 {
		t.Fatal("snapshot failure not counted")
	}
	if snaps, _ := listSnapshots(dir); len(snaps) != 0 {
		t.Fatalf("failed compaction left snapshots: %v", snaps)
	}
	// The log is intact, so recovery replays everything.
	s.CloseWAL()
	b, rec := walServer(t, WALConfig{Dir: dir, CompactEvery: 2})
	if rec.ReplayedRecords != 3 {
		t.Fatalf("replayed %d, want 3", rec.ReplayedRecords)
	}
	if got, want := fingerprint(b), fingerprint(s); got != want {
		t.Fatalf("fingerprint %016x, want %016x", got, want)
	}
}

// TestWALRejectsInvalidBeforeLogging is the satellite regression: malformed
// batches must be rejected with typed 400s before the WAL sees them, so the
// log only ever holds batches replay will accept.
func TestWALRejectsInvalidBeforeLogging(t *testing.T) {
	s, _ := walServer(t, WALConfig{Dir: t.TempDir()})
	h := s.Handler()
	ingestBatch(t, h, 0)
	seq := s.WALAppliedSeq()
	for _, tc := range []struct {
		events []map[string]any
		want   string
	}{
		{[]map[string]any{{"src": 0, "dst": 60, "time": 1e6}}, "not sorted"}, // behind the stream
		{[]map[string]any{{"src": 0, "dst": 0, "time": 3e7}}, "self-loop"},
		{[]map[string]any{{"src": 0, "dst": 1 << 20, "time": 3e7}}, "outside universe"},
		{[]map[string]any{{"src": 0, "dst": 60, "time": 3e7, "feats": []float64{0.5}}}, "not supported"},
	} {
		rec := post(t, h, "/ingest", map[string]any{"events": tc.events})
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), tc.want) {
			t.Fatalf("batch %v: status %d body %s, want 400 containing %q", tc.events, rec.Code, rec.Body, tc.want)
		}
	}
	if s.WALAppliedSeq() != seq {
		t.Fatalf("invalid batches advanced the log: %d → %d", seq, s.WALAppliedSeq())
	}
}

// Non-finite values are unrepresentable in JSON (the decoder rejects them
// as bad JSON → 400 before validation), so the typed-error mapping is pinned
// at the validation layer, where a future binary ingest path would hit it.
func TestValidateEventsInTypedErrors(t *testing.T) {
	s, _ := testServer(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.validateEventsIn([]EventIn{{Src: 0, Dst: 60, Time: math.NaN()}}); !errors.Is(err, graph.ErrNonFiniteTime) {
		t.Fatalf("NaN time: %v", err)
	}
	if _, err := s.validateEventsIn([]EventIn{{Src: 0, Dst: 60, Time: 3e7, Feats: []float32{float32(math.Inf(1))}}}); !errors.Is(err, graph.ErrNonFiniteFeature) {
		t.Fatalf("Inf feature: %v", err)
	}
	if _, err := s.validateEventsIn([]EventIn{{Src: 0, Dst: 60, Time: 3e7, Feats: []float32{0.5}}}); !errors.Is(err, errFeatsUnsupported) {
		t.Fatalf("finite feature: %v", err)
	}
}

func TestEventBatchCodecRoundTrip(t *testing.T) {
	events := []graph.Event{
		{Src: 1, Dst: 2, Time: 42.5, FeatIdx: -1},
		{Src: 0, Dst: 199, Time: 1e12, FeatIdx: -1},
	}
	for _, bid := range []uint64{0, 7} {
		got, gotBid, err := decodeEventBatch(encodeEventBatch(events, bid))
		if err != nil {
			t.Fatal(err)
		}
		if gotBid != bid {
			t.Fatalf("decoded bid %d, want %d", gotBid, bid)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
			}
		}
	}
	// bid 0 must keep encoding as v1, byte-for-byte the pre-cluster format.
	if b := encodeEventBatch(events, 0); b[0] != eventBatchVersion {
		t.Fatalf("bid-0 batch encoded as version %d, want %d", b[0], eventBatchVersion)
	}
	for _, bad := range [][]byte{nil, {9, 0, 0, 0, 0}, encodeEventBatch(events, 0)[:10], {2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}} {
		if _, _, err := decodeEventBatch(bad); err == nil {
			t.Fatalf("decoded malformed payload %v", bad)
		}
	}
}
