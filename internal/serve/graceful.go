package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// Default server timeouts. A bare http.ListenAndServe has none of these, so
// one slow-loris client (or one stalled response write) can pin a connection
// forever; these bounds make the server safe to expose.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// HTTPOptions configures the hardened HTTP server around a handler. Zero
// fields take the package defaults above.
type HTTPOptions struct {
	// Addr is the listen address (":8080").
	Addr string
	// RequestTimeout caps each request end-to-end via http.TimeoutHandler;
	// requests past it get 503 with a JSON error body. 0 disables the cap.
	RequestTimeout time.Duration
	// Connection-level timeouts (0 → defaults).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
}

func (o *HTTPOptions) fillDefaults() {
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = DefaultReadTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	// The per-request cap is pointless if the connection write deadline
	// fires first and kills the connection before TimeoutHandler can send
	// its 503.
	if o.RequestTimeout > 0 && o.WriteTimeout <= o.RequestTimeout {
		o.WriteTimeout = o.RequestTimeout + 5*time.Second
	}
}

// NewHTTPServer wraps h in a configured http.Server: connection timeouts on
// every phase and an optional per-request deadline.
func NewHTTPServer(h http.Handler, opt HTTPOptions) *http.Server {
	opt.fillDefaults()
	if opt.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, opt.RequestTimeout,
			fmt.Sprintf(`{"error":"request exceeded %s"}`, opt.RequestTimeout))
	}
	return &http.Server{
		Addr:              opt.Addr,
		Handler:           h,
		ReadHeaderTimeout: opt.ReadHeaderTimeout,
		ReadTimeout:       opt.ReadTimeout,
		WriteTimeout:      opt.WriteTimeout,
		IdleTimeout:       opt.IdleTimeout,
	}
}

// RunGraceful serves on ln (or srv.Addr when ln is nil) until stop delivers
// a signal, then drains: no new connections are accepted and in-flight
// requests get up to `drain` to finish before the server is closed hard.
// Returns nil on a clean drain; callers typically feed stop from
// signal.Notify(…, os.Interrupt, syscall.SIGTERM).
func RunGraceful(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration) error {
	return RunGracefulNotify(srv, ln, stop, drain, nil)
}

// RunGracefulNotify is RunGraceful with an onDrain hook invoked when the
// stop signal arrives, before connections drain. The server's StartDrain
// goes here so /readyz reports not-ready for the whole drain window —
// load balancers stop routing to an instance that is about to go away,
// while its in-flight requests still complete.
func RunGracefulNotify(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, onDrain func()) error {
	return RunGracefulFlush(srv, ln, stop, drain, onDrain, nil)
}

// RunGracefulFlush is RunGracefulNotify with a flush hook that runs after
// the connection drain (clean or not, as long as the stop signal arrived) —
// the place to fsync and close a write-ahead log, so a clean SIGTERM leaves
// nothing for replay to reconstruct. A flush error is reported even when
// the drain itself succeeded.
func RunGracefulFlush(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, onDrain func(), flush func() error) error {
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", srv.Addr)
		if err != nil {
			return fmt.Errorf("serve: listen %s: %w", srv.Addr, err)
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		// The listener died before any shutdown signal.
		return fmt.Errorf("serve: %w", err)
	case <-stop:
	}
	if onDrain != nil {
		onDrain()
	}
	ctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, drain)
		defer cancel()
	}
	if err := srv.Shutdown(ctx); err != nil {
		// Drain deadline exceeded: kill the stragglers rather than hang —
		// but still flush: whatever requests did complete were acked, and
		// acked means durable.
		srv.Close()
		if flush != nil {
			if ferr := flush(); ferr != nil {
				return fmt.Errorf("serve: shutdown incomplete after %s (flush: %v): %w", drain, ferr, err)
			}
		}
		return fmt.Errorf("serve: shutdown incomplete after %s: %w", drain, err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	if flush != nil {
		if err := flush(); err != nil {
			return fmt.Errorf("serve: flush after drain: %w", err)
		}
	}
	return nil
}
