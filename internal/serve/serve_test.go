package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/train"
)

func testServer(t *testing.T) (*Server, int) {
	t.Helper()
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 600})
	tr, val := ds.Split(0.8)
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Val: val, ValBatch: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(2)
	return New(m, trainer.Predictor(), ds.NumNodes), ds.NumNodes
}

func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIngestThenScore(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	rec := post(t, h, "/ingest", map[string]any{
		"events": []map[string]any{
			{"src": 0, "dst": 60, "time": 1e7},
			{"src": 1, "dst": 61, "time": 1e7 + 1},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}

	rec = post(t, h, "/score", map[string]any{
		"pairs": []map[string]any{{"src": 0, "dst": 60}, {"src": 1, "dst": 5}},
		"time":  1e7 + 2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("score status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 2 {
		t.Fatalf("scores %v", resp.Scores)
	}

	req := httptest.NewRequest("GET", "/stats", nil)
	statRec := httptest.NewRecorder()
	h.ServeHTTP(statRec, req)
	var stats map[string]any
	if err := json.Unmarshal(statRec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["ingested"].(float64) != 2 || stats["scored"].(float64) != 2 {
		t.Fatalf("stats %v", stats)
	}
}

func TestIngestValidation(t *testing.T) {
	s, n := testServer(t)
	h := s.Handler()
	cases := []map[string]any{
		{},                               // no events
		{"events": []map[string]any{{}}}, // self loop 0→0
		{"events": []map[string]any{{"src": 0, "dst": n + 5, "time": 1}}}, // out of range
		{"events": []map[string]any{{"src": 0, "dst": 1, "time": -5e18}}}, // before last time? time must be ≥ lastTime after training? lastTime starts 0
	}
	for i, c := range cases {
		rec := post(t, h, "/ingest", c)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d accepted: %d %s", i, rec.Code, rec.Body)
		}
	}
	// Out-of-order within one request.
	rec := post(t, h, "/ingest", map[string]any{"events": []map[string]any{
		{"src": 0, "dst": 1, "time": 100}, {"src": 1, "dst": 2, "time": 50},
	}})
	if rec.Code != http.StatusBadRequest {
		t.Fatal("out-of-order ingest accepted")
	}
}

func TestScoreValidation(t *testing.T) {
	s, n := testServer(t)
	h := s.Handler()
	if rec := post(t, h, "/score", map[string]any{}); rec.Code != http.StatusBadRequest {
		t.Fatal("empty score accepted")
	}
	rec := post(t, h, "/score", map[string]any{"pairs": []map[string]any{{"src": 0, "dst": n + 1}}})
	if rec.Code != http.StatusBadRequest {
		t.Fatal("out-of-range pair accepted")
	}
}

func TestBadJSONRejected(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	req := httptest.NewRequest("POST", "/ingest", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec.Code)
	}
}

func TestIngestMovesScores(t *testing.T) {
	// Scores for a pair should change once fresh interactions are
	// ingested (memories move).
	s, _ := testServer(t)
	h := s.Handler()
	score := func() float64 {
		rec := post(t, h, "/score", map[string]any{
			"pairs": []map[string]any{{"src": 2, "dst": 55}}, "time": 2e7,
		})
		var resp struct {
			Scores []float64 `json:"scores"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Scores[0]
	}
	before := score()
	for i := 0; i < 5; i++ {
		post(t, h, "/ingest", map[string]any{"events": []map[string]any{
			{"src": 2, "dst": 55, "time": 2.1e7 + float64(i)},
		}})
	}
	after := score()
	if before == after {
		t.Fatal("ingesting interactions did not move the score")
	}
}
