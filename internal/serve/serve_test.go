package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/train"
)

func testServer(t *testing.T) (*Server, int) {
	t.Helper()
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 600})
	tr, val := ds.Split(0.8)
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Val: val, ValBatch: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(2)
	return New(m, trainer.Predictor(), ds.NumNodes), ds.NumNodes
}

func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestIngestThenScore(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	rec := post(t, h, "/ingest", map[string]any{
		"events": []map[string]any{
			{"src": 0, "dst": 60, "time": 1e7},
			{"src": 1, "dst": 61, "time": 1e7 + 1},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}

	rec = post(t, h, "/score", map[string]any{
		"pairs": []map[string]any{{"src": 0, "dst": 60}, {"src": 1, "dst": 5}},
		"time":  1e7 + 2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("score status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 2 {
		t.Fatalf("scores %v", resp.Scores)
	}

	req := httptest.NewRequest("GET", "/stats", nil)
	statRec := httptest.NewRecorder()
	h.ServeHTTP(statRec, req)
	var stats map[string]any
	if err := json.Unmarshal(statRec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["ingested"].(float64) != 2 || stats["scored"].(float64) != 2 {
		t.Fatalf("stats %v", stats)
	}
}

func TestIngestValidation(t *testing.T) {
	s, n := testServer(t)
	h := s.Handler()
	cases := []map[string]any{
		{},                               // no events
		{"events": []map[string]any{{}}}, // self loop 0→0
		{"events": []map[string]any{{"src": 0, "dst": n + 5, "time": 1}}}, // out of range
		{"events": []map[string]any{{"src": 0, "dst": 1, "time": -5e18}}}, // before last time? time must be ≥ lastTime after training? lastTime starts 0
	}
	for i, c := range cases {
		rec := post(t, h, "/ingest", c)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d accepted: %d %s", i, rec.Code, rec.Body)
		}
	}
	// Out-of-order within one request.
	rec := post(t, h, "/ingest", map[string]any{"events": []map[string]any{
		{"src": 0, "dst": 1, "time": 100}, {"src": 1, "dst": 2, "time": 50},
	}})
	if rec.Code != http.StatusBadRequest {
		t.Fatal("out-of-order ingest accepted")
	}
}

func TestScoreValidation(t *testing.T) {
	s, n := testServer(t)
	h := s.Handler()
	if rec := post(t, h, "/score", map[string]any{}); rec.Code != http.StatusBadRequest {
		t.Fatal("empty score accepted")
	}
	rec := post(t, h, "/score", map[string]any{"pairs": []map[string]any{{"src": 0, "dst": n + 1}}})
	if rec.Code != http.StatusBadRequest {
		t.Fatal("out-of-range pair accepted")
	}
}

func TestBadJSONRejected(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	req := httptest.NewRequest("POST", "/ingest", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec.Code)
	}
}

func TestIngestMovesScores(t *testing.T) {
	// Scores for a pair should change once fresh interactions are
	// ingested (memories move).
	s, _ := testServer(t)
	h := s.Handler()
	score := func() float64 {
		rec := post(t, h, "/score", map[string]any{
			"pairs": []map[string]any{{"src": 2, "dst": 55}}, "time": 2e7,
		})
		var resp struct {
			Scores []float64 `json:"scores"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Scores[0]
	}
	before := score()
	for i := 0; i < 5; i++ {
		post(t, h, "/ingest", map[string]any{"events": []map[string]any{
			{"src": 2, "dst": 55, "time": 2.1e7 + float64(i)},
		}})
	}
	after := score()
	if before == after {
		t.Fatal("ingesting interactions did not move the score")
	}
}

func TestScoreLeavesStateUnchanged(t *testing.T) {
	// /score is a read: it must not advance memories, drain the pending
	// message queue, or consume RNG state. Regression test for the handler
	// previously calling BeginBatch without restoring — every score request
	// permanently applied the pending memory updates.
	s, _ := testServer(t)
	h := s.Handler()
	// Queue pending messages so BeginBatch has something to apply.
	rec := post(t, h, "/ingest", map[string]any{"events": []map[string]any{
		{"src": 3, "dst": 40, "time": 3e7},
		{"src": 4, "dst": 41, "time": 3e7 + 1},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	before := s.model.Snapshot().Fingerprint()
	for i := 0; i < 3; i++ {
		rec = post(t, h, "/score", map[string]any{
			"pairs": []map[string]any{{"src": 3, "dst": 40}, {"src": 7, "dst": 9}},
			"time":  3e7 + 2,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("score status %d: %s", rec.Code, rec.Body)
		}
	}
	after := s.model.Snapshot().Fingerprint()
	if before != after {
		t.Fatalf("score mutated stream state: fingerprint %x -> %x", before, after)
	}
}

func TestScoreSeesPendingUpdates(t *testing.T) {
	// The read-only path must still score against the *freshest* state:
	// pending messages are applied to the working copy before embedding,
	// so a score at time T reflects events ingested just before it.
	s, _ := testServer(t)
	h := s.Handler()
	score := func() float64 {
		rec := post(t, h, "/score", map[string]any{
			"pairs": []map[string]any{{"src": 6, "dst": 50}}, "time": 4e7,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("score status %d: %s", rec.Code, rec.Body)
		}
		var resp struct {
			Scores []float64 `json:"scores"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Scores[0]
	}
	before := score()
	for i := 0; i < 5; i++ {
		rec := post(t, h, "/ingest", map[string]any{"events": []map[string]any{
			{"src": 6, "dst": 50, "time": 3.5e7 + float64(i)},
		}})
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
		}
	}
	if before == score() {
		t.Fatal("score ignored freshly ingested events")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	big := bytes.Repeat([]byte("a"), MaxBodyBytes+16)
	body := append([]byte(`{"events":[{"src":0,"dst":1,"time":"`), big...)
	body = append(body, []byte(`"}]}`)...)
	req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: want 413, got %d: %s", rec.Code, rec.Body)
	}
}

func TestContentTypeEnforced(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	body := []byte(`{"pairs":[{"src":0,"dst":1}],"time":1}`)

	for _, ct := range []string{"text/plain", "application/xml", "multipart/form-data; boundary=x"} {
		req := httptest.NewRequest("POST", "/score", bytes.NewReader(body))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Fatalf("content type %q: want 415, got %d", ct, rec.Code)
		}
	}
	// JSON media types (with parameters) and an absent header are accepted.
	for _, ct := range []string{"application/json", "application/json; charset=utf-8", ""} {
		req := httptest.NewRequest("POST", "/score", bytes.NewReader(body))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("content type %q: want 200, got %d: %s", ct, rec.Code, rec.Body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	post(t, h, "/ingest", map[string]any{"events": []map[string]any{
		{"src": 0, "dst": 60, "time": 1e7},
	}})
	post(t, h, "/score", map[string]any{
		"pairs": []map[string]any{{"src": 0, "dst": 60}}, "time": 1e7 + 1,
	})
	post(t, h, "/score", map[string]any{}) // 400 → error counter

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE serve_ingest_requests_total counter",
		"serve_ingest_requests_total 1",
		"serve_score_requests_total 2",
		"serve_score_errors_total 1",
		"serve_events_ingested_total 1",
		"serve_pairs_scored_total 1",
		"# TYPE serve_ingest_seconds histogram",
		`serve_ingest_seconds_bucket{le="+Inf"} 1`,
		"serve_score_seconds_count 2",
		"serve_score_seconds_sum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestServeTraceRecords(t *testing.T) {
	var buf bytes.Buffer
	ds := datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 600})
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", ds.NumEvents(), 50),
		Data: ds, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewTrace(&buf)
	s := New(m, trainer.Predictor(), ds.NumNodes, WithTrace(sink))
	h := s.Handler()
	post(t, h, "/score", map[string]any{"pairs": []map[string]any{{"src": 0, "dst": 1}}, "time": 1})
	get(t, h, "/stats")
	if sink.Records() != 2 {
		t.Fatalf("trace records = %d, want 2", sink.Records())
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Route    string `json:"route"`
			Status   int    `json:"status"`
			Duration int64  `json:"duration_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.Route == "" || rec.Status == 0 {
			t.Fatalf("incomplete trace record %q", line)
		}
	}
}

func TestServeConcurrent(t *testing.T) {
	// Hammer every route from parallel goroutines; run with -race. Ingest
	// times collide across goroutines, so 400 (out-of-order) responses are
	// expected — anything else is a bug.
	s, _ := testServer(t)
	h := s.Handler()
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(1e8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				ts := float64(next.Add(10))
				rec := post(t, h, "/ingest", map[string]any{"events": []map[string]any{
					{"src": 0, "dst": 60, "time": ts},
				}})
				if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
					t.Errorf("ingest status %d: %s", rec.Code, rec.Body)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				rec := post(t, h, "/score", map[string]any{
					"pairs": []map[string]any{{"src": 1, "dst": 61}}, "time": 9e8,
				})
				if rec.Code != http.StatusOK {
					t.Errorf("score status %d: %s", rec.Code, rec.Body)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
				t.Errorf("metrics status %d", rec.Code)
			}
			if rec := get(t, h, "/stats"); rec.Code != http.StatusOK {
				t.Errorf("stats status %d", rec.Code)
			}
		}
	}()
	wg.Wait()
}
