package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// startGraceful spins up a graceful server around h and returns its base URL,
// the stop channel, and a channel carrying RunGraceful's result.
func startGraceful(t *testing.T, h http.Handler, opt HTTPOptions, drain time.Duration) (string, chan os.Signal, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(h, opt)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- RunGraceful(srv, ln, stop, drain) }()
	return "http://" + ln.Addr().String(), stop, done
}

// TestGracefulShutdownDrainsInFlight is the acceptance criterion: a request
// already being handled when SIGTERM arrives must complete with 200 before
// the server exits, and the exit must be clean.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "done")
	})
	url, stop, done := startGraceful(t, mux, HTTPOptions{}, 5*time.Second)

	type result struct {
		status int
		body   string
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get(url + "/slow")
		if err != nil {
			resCh <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{status: resp.StatusCode, body: string(body)}
	}()

	<-started
	stop <- syscall.SIGTERM // shutdown lands mid-request

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown not clean: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit")
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request dropped: %v", res.err)
	}
	if res.status != http.StatusOK || res.body != "done" {
		t.Fatalf("in-flight request got %d %q", res.status, res.body)
	}

	// New connections must be refused after drain.
	if _, err := http.Get(url + "/slow"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}

// TestRequestTimeoutCapsSlowHandlers: a handler slower than RequestTimeout
// gets 503 while fast requests pass untouched.
func TestRequestTimeoutCapsSlowHandlers(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	})
	mux.HandleFunc("/fast", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	url, stop, done := startGraceful(t, mux, HTTPOptions{RequestTimeout: 100 * time.Millisecond}, time.Second)
	defer func() {
		stop <- syscall.SIGTERM
		<-done
	}()

	resp, err := http.Get(url + "/fast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast request got %d", resp.StatusCode)
	}

	resp, err = http.Get(url + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow request got %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestShutdownDeadlineKillsStragglers: a request that outlives the drain
// deadline must not hold the server open forever — RunGraceful reports the
// incomplete drain and closes hard.
func TestShutdownDeadlineKillsStragglers(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	})
	url, stop, done := startGraceful(t, mux, HTTPOptions{}, 100*time.Millisecond)
	go func() {
		resp, err := http.Get(url + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("incomplete drain reported as clean")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server held open past drain deadline")
	}
	close(release)
}

func TestHTTPOptionsDefaults(t *testing.T) {
	var o HTTPOptions
	o.fillDefaults()
	if o.ReadHeaderTimeout != DefaultReadHeaderTimeout || o.IdleTimeout != DefaultIdleTimeout {
		t.Fatalf("defaults not applied: %+v", o)
	}
	o = HTTPOptions{RequestTimeout: time.Minute}
	o.fillDefaults()
	if o.WriteTimeout <= o.RequestTimeout {
		t.Fatalf("write timeout %v must exceed request timeout %v", o.WriteTimeout, o.RequestTimeout)
	}
}

// TestGracefulFlushRunsAfterDrain: the flush hook (the WAL's fsync on
// SIGTERM) must run after the connection drain completes, so every request
// that was still in flight at the signal is durable before the process
// exits.
func TestGracefulFlushRunsAfterDrain(t *testing.T) {
	inFlight := make(chan struct{})
	finished := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		time.Sleep(100 * time.Millisecond)
		close(finished)
		fmt.Fprint(w, "ok")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(mux, HTTPOptions{})
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	flushed := make(chan bool, 1)
	go func() {
		done <- RunGracefulFlush(srv, ln, stop, 5*time.Second, nil, func() error {
			// The drain must already have let the in-flight request finish.
			select {
			case <-finished:
				flushed <- true
			default:
				flushed <- false
			}
			return nil
		})
	}()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inFlight
	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("graceful exit: %v", err)
	}
	select {
	case ok := <-flushed:
		if !ok {
			t.Fatal("flush ran before the drain completed")
		}
	default:
		t.Fatal("flush hook never ran")
	}
}

// TestGracefulFlushErrorSurfaces: a failed flush must fail the shutdown even
// when the drain itself was clean — acked-but-unsynced data is exactly what
// the caller needs to hear about.
func TestGracefulFlushErrorSurfaces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(http.NewServeMux(), HTTPOptions{})
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- RunGracefulFlush(srv, ln, stop, time.Second, nil, func() error {
			return fmt.Errorf("fsync refused")
		})
	}()
	stop <- syscall.SIGTERM
	if err := <-done; err == nil {
		t.Fatal("flush error swallowed")
	}
}
