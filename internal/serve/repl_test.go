package serve

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/wal"
)

// ingestBatchBid posts the i-th deterministic batch with a router batch id.
func ingestBatchBid(t *testing.T, h http.Handler, i int, bid uint64) {
	t.Helper()
	rec := post(t, h, "/ingest", map[string]any{"events": deterministicBatch(i), "bid": bid})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest batch %d (bid %d): status %d: %s", i, bid, rec.Code, rec.Body)
	}
}

func TestIngestBidDedup(t *testing.T) {
	s, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes})
	h := s.Handler()
	ingestBatchBid(t, h, 0, 1)
	ingestBatchBid(t, h, 1, 2)
	want := fingerprint(s)
	wantSeq := s.WALAppliedSeq()
	// A router retry after an ambiguous failure re-sends the same batch with
	// the same bid: exactly-once means the state must not move.
	rec := post(t, h, "/ingest", map[string]any{"events": deterministicBatch(1), "bid": uint64(2)})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"deduped":true`) {
		t.Fatalf("duplicate bid: status %d: %s", rec.Code, rec.Body)
	}
	if got := fingerprint(s); got != want {
		t.Fatalf("duplicate bid moved state: %016x -> %016x", want, got)
	}
	if got := s.WALAppliedSeq(); got != wantSeq {
		t.Fatalf("duplicate bid appended to the WAL: seq %d -> %d", wantSeq, got)
	}
	// A fresh bid proceeds; bid gaps (burned on 4xx) are legal.
	ingestBatchBid(t, h, 2, 5)
	if got := s.WALAppliedSeq(); got != wantSeq+1 {
		t.Fatalf("post-dedup ingest seq %d, want %d", got, wantSeq+1)
	}
}

func TestBidSurvivesRestartAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: 2, SnapshotKeep: 2}
	a, _ := walServer(t, cfg)
	h := a.Handler()
	for i := 0; i < 4; i++ { // CompactEvery=2 → at least one compaction
		ingestBatchBid(t, h, i, uint64(i+1))
	}
	a.CloseWAL()
	b, _ := walServer(t, cfg)
	// The restarted server must still dedup bids from before the restart,
	// whether they came back via snapshot (LastBid) or replay (v2 records).
	rec := post(t, b.Handler(), "/ingest", map[string]any{"events": deterministicBatch(3), "bid": uint64(4)})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"deduped":true`) {
		t.Fatalf("bid not restored across restart: status %d: %s", rec.Code, rec.Body)
	}
}

func TestStandbyRefusesWritesUntilPromoted(t *testing.T) {
	s, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes}, WithStandby())
	h := s.Handler()
	rec := post(t, h, "/ingest", map[string]any{"events": deterministicBatch(0)})
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "not_primary") {
		t.Fatalf("standby ingest: status %d: %s", rec.Code, rec.Body)
	}
	// /score serves on a standby (that is the point of having one), and
	// /readyz reports the role.
	if rec := post(t, h, "/score", map[string]any{"pairs": []map[string]any{{"src": 0, "dst": 60}}, "time": 2e7}); rec.Code != http.StatusOK {
		t.Fatalf("standby score: status %d: %s", rec.Code, rec.Body)
	}
	if rec := get(t, h, "/readyz"); !strings.Contains(rec.Body.String(), `"role":"standby"`) {
		t.Fatalf("readyz body missing standby role: %s", rec.Body)
	}
	// Promote flips it writable; a second promote is an idempotent no-op.
	rec = post(t, h, "/admin/promote", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"promoted":true`) {
		t.Fatalf("promote: status %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/admin/promote", nil); !strings.Contains(rec.Body.String(), `"promoted":false`) {
		t.Fatalf("second promote not idempotent: %s", rec.Body)
	}
	if s.Role() != RolePrimary {
		t.Fatalf("role after promote = %v", s.Role())
	}
	ingestBatch(t, h, 0)
}

// TestReplicatedApplyMatchesDirectIngest drives the standby hooks the way
// the cluster receiver does — tail the primary's WAL, AppendRecord+apply on
// the standby — and requires the promoted standby to be bitwise-identical to
// a reference that ingested the same batches directly.
func TestReplicatedApplyMatchesDirectIngest(t *testing.T) {
	primary, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes})
	standby, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes}, WithStandby())
	h := primary.Handler()
	const batches = 6
	for i := 0; i < batches; i++ {
		ingestBatchBid(t, h, i, uint64(i+1))
	}
	tl := primary.WAL().TailFrom(0)
	defer tl.Close()
	for i := 0; i < batches; i++ {
		seq, payload, err := tl.Next(time.Second)
		if err != nil {
			t.Fatalf("tail record %d: %v", i, err)
		}
		if want := standby.ReplicaNextSeq(); seq != want {
			t.Fatalf("frame seq %d, standby expects %d", seq, want)
		}
		if err := standby.ApplyReplicated(seq, payload); err != nil {
			t.Fatalf("ApplyReplicated %d: %v", seq, err)
		}
	}
	if err := standby.SyncReplica(); err != nil {
		t.Fatalf("SyncReplica: %v", err)
	}
	// The standby's WAL must be a prefix (here: a copy) of the primary's.
	if err := wal.VerifyPrefix(standby.walCfg.Dir, primary.walCfg.Dir); err != nil {
		t.Fatalf("VerifyPrefix: %v", err)
	}
	if !standby.Promote() {
		t.Fatal("Promote failed")
	}
	if got, want := fingerprint(standby), fingerprint(primary); got != want {
		t.Fatalf("promoted standby fingerprint %016x, primary %016x", got, want)
	}
	// The promoted standby dedups the primary's bids...
	rec := post(t, standby.Handler(), "/ingest", map[string]any{"events": deterministicBatch(batches - 1), "bid": uint64(batches)})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"deduped":true`) {
		t.Fatalf("promoted standby lost bid watermark: %d: %s", rec.Code, rec.Body)
	}
	// ...and takes over the write timeline at the primary's next seq.
	ingestBatchBid(t, standby.Handler(), batches, uint64(batches+1))
	if got, want := standby.WALAppliedSeq(), primary.WALAppliedSeq()+1; got != want {
		t.Fatalf("promoted standby seq %d, want %d", got, want)
	}
	// Once promoted it refuses replicated frames — split-brain guard.
	if err := standby.ApplyReplicated(standby.ReplicaNextSeq(), encodeEventBatch(nil, 0)); err == nil {
		t.Fatal("promoted standby accepted a replicated frame")
	}
}

// TestSnapshotInstallCatchUp: a standby too far behind takes a catch-up
// snapshot, resumes tailing above it, and still converges bitwise.
func TestSnapshotInstallCatchUp(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: 2, SnapshotKeep: 1}
	primary, _ := walServer(t, cfg)
	h := primary.Handler()
	// Enough batches to rotate past the first MinSegmentBytes segment, so
	// compaction really truncates the early log.
	const batches = 80
	for i := 0; i < batches; i++ {
		ingestBatch(t, h, i)
	}
	// The standby connects late: record 1 is gone from the primary's log.
	tl := primary.WAL().TailFrom(0)
	if _, _, err := tl.Next(200 * time.Millisecond); !errors.Is(err, wal.ErrSeqGone) {
		tl.Close()
		t.Fatalf("tail from 0 after compaction = %v, want ErrSeqGone", err)
	}
	tl.Close()
	standby, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes}, WithStandby())
	snapSeq, data, err := primary.ReplSnapshot()
	if err != nil {
		t.Fatalf("ReplSnapshot: %v", err)
	}
	if err := standby.InstallReplicaSnapshot(snapSeq, data); err != nil {
		t.Fatalf("InstallReplicaSnapshot: %v", err)
	}
	if got := standby.ReplicaNextSeq(); got != snapSeq+1 {
		t.Fatalf("standby next seq %d after snapshot %d", got, snapSeq)
	}
	// New primary traffic now frame-ships normally.
	ingestBatch(t, h, batches)
	tl = primary.WAL().TailFrom(snapSeq)
	defer tl.Close()
	seq, payload, err := tl.Next(time.Second)
	if err != nil {
		t.Fatalf("tail after snapshot: %v", err)
	}
	if err := standby.ApplyReplicated(seq, payload); err != nil {
		t.Fatalf("ApplyReplicated: %v", err)
	}
	if err := standby.SyncReplica(); err != nil {
		t.Fatalf("SyncReplica: %v", err)
	}
	if got, want := fingerprint(standby), fingerprint(primary); got != want {
		t.Fatalf("caught-up standby fingerprint %016x, primary %016x", got, want)
	}
}

// TestSnapshotTruncateCrashWindow: the retention crash-window satellite. A
// "crash" between the durable snapshot rename and the segment delete leaves
// both the snapshot AND the covered segments on disk; recovery must load the
// snapshot, skip the overlapping records, and reconstruct bitwise.
func TestSnapshotTruncateCrashWindow(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New()
	cfg := WALConfig{Dir: dir, SegmentBytes: wal.MinSegmentBytes, CompactEvery: -1, SnapshotKeep: 4}
	a, _ := walServer(t, cfg, WithInjector(inj))
	h := a.Handler()
	const batches = 5
	for i := 0; i < batches; i++ {
		ingestBatch(t, h, i)
	}
	want := fingerprint(a)
	segsBefore, _ := wal.ListSegments(dir)
	// Compact with the truncate "crashing" after the snapshot is durable.
	inj.ArmErr(faultinject.PointWALTruncate, errors.New("crash between snapshot and delete"), 1)
	a.CompactWAL()
	if inj.Fired(faultinject.PointWALTruncate) != 1 {
		t.Fatal("truncate fault never fired; compaction did not reach retention")
	}
	segsAfter, _ := wal.ListSegments(dir)
	if len(segsAfter) != len(segsBefore) {
		t.Fatalf("faulted truncate removed segments: %d -> %d", len(segsBefore), len(segsAfter))
	}
	// Abandon a (the crash); recover on the same dir: snapshot + full
	// overlapping log must not double-apply.
	b, rec := walServer(t, cfg)
	if rec.SnapshotSeq != batches {
		t.Fatalf("recovered from snapshot seq %d, want %d", rec.SnapshotSeq, batches)
	}
	if rec.ReplayedRecords != 0 {
		t.Fatalf("replayed %d overlapping records on top of the snapshot", rec.ReplayedRecords)
	}
	if got := fingerprint(b); got != want {
		t.Fatalf("recovered fingerprint %016x, want %016x", got, want)
	}
	// And the server still ingests at the right sequence afterwards.
	ingestBatch(t, b.Handler(), batches)
	if got := b.WALAppliedSeq(); got != batches+1 {
		t.Fatalf("post-recovery applied seq %d, want %d", got, batches+1)
	}
}

// fakeRepl is a controllable Replicator for the readyz/stats tests.
type fakeRepl struct {
	acked     uint64
	connected bool
}

func (f *fakeRepl) WaitAcked(seq uint64, timeout time.Duration) error {
	if f.connected && f.acked >= seq {
		return nil
	}
	return errors.New("not acked")
}
func (f *fakeRepl) AckedSeq() uint64 { return f.acked }
func (f *fakeRepl) Connected() bool  { return f.connected }

func TestReadyzReportsReplicationDegradation(t *testing.T) {
	s, _ := walServer(t, WALConfig{Dir: t.TempDir(), SegmentBytes: wal.MinSegmentBytes})
	fr := &fakeRepl{connected: true}
	if err := s.SetReplicator(fr, ReplOptions{AckTimeout: 10 * time.Millisecond, LagBound: 2}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"role":"primary"`) {
		t.Fatalf("readyz healthy primary: %d: %s", rec.Code, rec.Body)
	}
	// Ingest with a standby that never acks: the batch is still acked to
	// the client (availability), the timeout is counted, and once the lag
	// bound is exceeded /readyz flips with "standby lagging".
	for i := 0; i < 4; i++ {
		ingestBatch(t, h, i)
	}
	if v := s.Metrics().Counter("serve_repl_ack_timeouts_total").Value(); v != 4 {
		t.Fatalf("serve_repl_ack_timeouts_total = %d, want 4", v)
	}
	rec := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "standby lagging") {
		t.Fatalf("readyz lagging: %d: %s", rec.Code, rec.Body)
	}
	// Catch the standby up → ready again. Drop the connection → a reason
	// that names the disconnect, and stats carries the repl section.
	fr.acked = s.WALAppliedSeq()
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz caught up: %d: %s", rec.Code, rec.Body)
	}
	fr.connected = false
	rec = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "standby disconnected") {
		t.Fatalf("readyz disconnected: %d: %s", rec.Code, rec.Body)
	}
	stats := get(t, h, "/stats")
	for _, want := range []string{`"role":"primary"`, `"acked_seq"`, `"connected":false`} {
		if !strings.Contains(stats.Body.String(), want) {
			t.Fatalf("stats missing %s: %s", want, stats.Body)
		}
	}
}
