package serve

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/batching"
	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/graph/datagen"
	"github.com/cascade-ml/cascade/internal/load"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/nn"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/train"
)

func overloadData(t *testing.T) *graph.Dataset {
	t.Helper()
	return datagen.Wiki.Generate(datagen.Options{Scale: 0.002, Seed: 91, FeatDimOverride: 4, MinEvents: 600})
}

// buildServer assembles an untrained server (weights at seeded init, so a
// replica built by the same recipe matches bit for bit).
func buildServer(t *testing.T, ds *graph.Dataset, opts ...Option) *Server {
	t.Helper()
	m, p := replicaPair(t, ds)
	return New(m, p, ds.NumNodes, opts...)
}

// replicaPair builds a (model, predictor) pair deterministically from the
// dataset: calling it twice yields two independent copies with identical
// weights — the stale-replica contract.
func replicaPair(t *testing.T, ds *graph.Dataset) (models.TGNN, *nn.MLP) {
	t.Helper()
	tr, val := ds.Split(0.8)
	m := models.MustNew("JODIE", ds, 8, 4, 3)
	trainer, err := train.NewTrainer(train.Config{
		Model: m, Sched: batching.NewFixed("TGL", tr.NumEvents(), 50),
		Data: tr, Val: val, ValBatch: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, trainer.Predictor()
}

type scoreResp struct {
	Scores []float64 `json:"scores"`
	Stale  bool      `json:"stale"`
}

func scoreBody(src, dst int) map[string]any {
	return map[string]any{"pairs": []map[string]any{{"src": src, "dst": dst}}, "time": 1e7}
}

// TestOverloadShedsNotCollapses is the acceptance criterion: a 10× burst
// against a saturated scorer must split cleanly into admitted requests
// (bounded latency) and shed ones (429 + Retry-After) — nothing hangs,
// nothing gets another status, and the wait queue never exceeds its bound.
func TestOverloadShedsNotCollapses(t *testing.T) {
	const (
		inflight = 2
		queue    = 2
		delay    = 50 * time.Millisecond
		clients  = 10 * (inflight + queue) // 10× capacity
	)
	inj := faultinject.New()
	inj.ArmDelay(faultinject.PointServeSlowScore, delay) // every score is slow
	reg := obs.NewRegistry()
	s := buildServer(t, overloadData(t),
		WithRegistry(reg), WithInjector(inj),
		WithLimits(load.Limits{MaxInflight: inflight, QueueDepth: queue}))
	h := s.Handler()

	var (
		mu        sync.Mutex
		admitted  []time.Duration
		shed      int
		badStatus []int
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			rec := post(t, h, "/score", scoreBody(1, 61))
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			switch rec.Code {
			case http.StatusOK:
				admitted = append(admitted, elapsed)
			case http.StatusTooManyRequests:
				shed++
				if rec.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				badStatus = append(badStatus, rec.Code)
			}
		}()
	}
	wg.Wait()

	if len(badStatus) > 0 {
		t.Fatalf("unexpected statuses under overload: %v", badStatus)
	}
	if len(admitted) == 0 || shed == 0 {
		t.Fatalf("admitted %d shed %d: want both > 0", len(admitted), shed)
	}
	if len(admitted)+shed != clients {
		t.Fatalf("admitted %d + shed %d != %d clients", len(admitted), shed, clients)
	}
	// Bounded latency: an admitted request waits behind at most the queue
	// plus the inflight slots, each holding the model for ~delay. An
	// unbounded queue would push the tail toward clients×delay.
	sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
	p99 := admitted[len(admitted)*99/100]
	bound := time.Duration(inflight+queue+2)*delay + 500*time.Millisecond
	if p99 > bound {
		t.Fatalf("admitted p99 %v exceeds bound %v (queue not bounding latency)", p99, bound)
	}
	if got := reg.Counter("load_shed_total").Value(); got != int64(shed) {
		t.Fatalf("load_shed_total %d, want %d", got, shed)
	}
	if reg.Counter("load_admitted_total").Value() == 0 {
		t.Fatal("load_admitted_total not exported")
	}
}

// TestRateLimitSheds: an empty token bucket sheds with 429 and a
// Retry-After hint even with the queue idle.
func TestRateLimitSheds(t *testing.T) {
	s := buildServer(t, overloadData(t),
		WithLimits(load.Limits{MaxInflight: 8, Rate: 0.001, Burst: 1}))
	h := s.Handler()
	if rec := post(t, h, "/score", scoreBody(1, 61)); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", rec.Code, rec.Body)
	}
	rec := post(t, h, "/score", scoreBody(1, 61))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("empty bucket: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("rate-limit shed without Retry-After")
	}
}

// TestStaleReplicaMatchesFreshAndRefreshes: with identical weights the
// degraded path returns the same scores as the fresh one, marks them
// stale, and re-syncs from the live model on ingest.
func TestStaleReplicaMatchesFreshAndRefreshes(t *testing.T) {
	ds := overloadData(t)
	sm, sp := replicaPair(t, ds)
	inj := faultinject.New()
	inj.Arm(faultinject.PointServeRefuse, 2) // only the 2nd score is refused
	reg := obs.NewRegistry()
	s := buildServer(t, ds,
		WithRegistry(reg), WithInjector(inj), WithStaleReplica(sm, sp, 0))
	h := s.Handler()

	decode := func(rec *httptest.ResponseRecorder) scoreResp {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("score status %d: %s", rec.Code, rec.Body)
		}
		var r scoreResp
		if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	fresh := decode(post(t, h, "/score", scoreBody(3, 40)))
	if fresh.Stale {
		t.Fatal("unfaulted score marked stale")
	}
	stale := decode(post(t, h, "/score", scoreBody(3, 40)))
	if !stale.Stale {
		t.Fatal("refused score not served from the stale replica")
	}
	if len(fresh.Scores) != 1 || len(stale.Scores) != 1 || fresh.Scores[0] != stale.Scores[0] {
		t.Fatalf("stale score %v != fresh score %v despite identical replicas", stale.Scores, fresh.Scores)
	}
	if got := reg.Counter("serve_score_stale_total").Value(); got != 1 {
		t.Fatalf("serve_score_stale_total %d, want 1", got)
	}

	// Ingest re-syncs the replica: its stream clock must advance with the
	// live one, so degraded scores reflect recent events.
	if rec := post(t, h, "/ingest", map[string]any{"events": []map[string]any{
		{"src": 3, "dst": 40, "time": 2e7},
	}}); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	if reg.Counter("serve_stale_refresh_total").Value() == 0 {
		t.Fatal("ingest did not refresh the stale replica")
	}
	s.stale.mu.Lock()
	staleTime := s.stale.lastTime
	s.stale.mu.Unlock()
	if staleTime != 2e7 {
		t.Fatalf("stale replica clock %v, want 2e7", staleTime)
	}
}

// TestQueueFullDegradesToStale: when /score is shed for queue-full and a
// stale replica exists, the request degrades instead of bouncing — the
// stale path has its own lock, so saturation of the fresh path doesn't
// block it.
func TestQueueFullDegradesToStale(t *testing.T) {
	ds := overloadData(t)
	sm, sp := replicaPair(t, ds)
	inj := faultinject.New()
	inj.ArmDelay(faultinject.PointServeSlowScore, 300*time.Millisecond, 1)
	s := buildServer(t, ds,
		WithInjector(inj), WithStaleReplica(sm, sp, 0),
		WithLimits(load.Limits{MaxInflight: 1, QueueDepth: 1}))
	h := s.Handler()

	// Occupy the single slot with a slow score, and the queue with one more.
	hold := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { hold <- post(t, h, "/score", scoreBody(1, 61)) }()
	}
	waitForCond(t, func() bool { return s.admit.Saturated() })

	rec := post(t, h, "/score", scoreBody(3, 40))
	if rec.Code != http.StatusOK {
		t.Fatalf("saturated score: %d %s, want degraded 200", rec.Code, rec.Body)
	}
	var r scoreResp
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if !r.Stale {
		t.Fatal("saturated score not marked stale")
	}
	for i := 0; i < 2; i++ {
		if rec := <-hold; rec.Code != http.StatusOK {
			t.Fatalf("held score: %d %s", rec.Code, rec.Body)
		}
	}
}

// TestBreakerOpensOnDeadlineMissesAndRecovers: consecutive deadline misses
// trip the scoring breaker (readyz → 503, breaker_state → open); after the
// cooldown one successful probe closes it again.
func TestBreakerOpensOnDeadlineMissesAndRecovers(t *testing.T) {
	clk := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(0, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.t
	}
	inj := faultinject.New()
	inj.ArmDelay(faultinject.PointServeSlowScore, 120*time.Millisecond, 1, 2)
	reg := obs.NewRegistry()
	s := buildServer(t, overloadData(t),
		WithRegistry(reg), WithInjector(inj),
		WithBreaker(load.BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second, Now: now}))
	h := s.Handler()

	// Two scores whose 30ms deadline dies inside the 120ms injected stall.
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("POST", "/score", strings.NewReader(`{"pairs":[{"src":1,"dst":61}],"time":1e7}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Timeout-Ms", "30")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("deadline-missed score %d: %d %s, want 503", i, rec.Code, rec.Body)
		}
	}
	if got := reg.Counter("serve_deadline_misses_total").Value(); got != 2 {
		t.Fatalf("serve_deadline_misses_total %d, want 2", got)
	}
	if st := s.breaker.State(); st != load.BreakerOpen {
		t.Fatalf("breaker %v after threshold misses, want open", st)
	}
	if got := reg.Gauge("breaker_state").Value(); got != float64(load.BreakerOpen) {
		t.Fatalf("breaker_state gauge %v, want %v", got, float64(load.BreakerOpen))
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: %d, want 503", rec.Code)
	}
	// While open, scoring is refused without touching the model (503 — no
	// stale replica configured).
	if rec := post(t, h, "/score", scoreBody(1, 61)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("score with open breaker: %d, want 503", rec.Code)
	}

	// Cooldown elapses; the slow-score injections are spent, so the probe
	// succeeds and the breaker closes.
	clk.mu.Lock()
	clk.t = clk.t.Add(11 * time.Second)
	clk.mu.Unlock()
	if rec := post(t, h, "/score", scoreBody(1, 61)); rec.Code != http.StatusOK {
		t.Fatalf("probe score: %d %s", rec.Code, rec.Body)
	}
	if st := s.breaker.State(); st != load.BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d, want 200", rec.Code)
	}
}

// TestHealthzAlwaysLive: liveness stays 200 through drain; readiness flips.
func TestHealthzAlwaysLive(t *testing.T) {
	s := buildServer(t, overloadData(t))
	h := s.Handler()
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rec.Code)
	}
	s.StartDrain()
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rec.Code)
	}
	if body := get(t, h, "/readyz").Body.String(); !strings.Contains(body, "draining") {
		t.Fatalf("readyz body %q lacks the reason", body)
	}
}

// TestDeadlineExpiresInQueue: a queued request whose client deadline dies
// before a slot frees is shed with 503, not left waiting.
func TestDeadlineExpiresInQueue(t *testing.T) {
	inj := faultinject.New()
	inj.ArmDelay(faultinject.PointServeSlowScore, 400*time.Millisecond, 1)
	s := buildServer(t, overloadData(t),
		WithInjector(inj), WithLimits(load.Limits{MaxInflight: 1, QueueDepth: 2}))
	h := s.Handler()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(t, h, "/score", scoreBody(1, 61)) }()
	waitForCond(t, func() bool { return inj.Fired(faultinject.PointServeSlowScore) >= 1 })

	req := httptest.NewRequest("POST", "/score", strings.NewReader(`{"pairs":[{"src":1,"dst":61}],"time":1e7}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Timeout-Ms", "40")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued expired request: %d %s, want 503", rec.Code, rec.Body)
	}
	if rec := <-done; rec.Code != http.StatusOK {
		t.Fatalf("slow score: %d %s", rec.Code, rec.Body)
	}
}

// TestDrainZeroDroppedUnderLoad: SIGTERM mid-burst must flip /readyz to
// not-ready, finish every in-flight request with a real response, and exit
// cleanly — zero dropped connections.
func TestDrainZeroDroppedUnderLoad(t *testing.T) {
	const inFlight = 4
	inj := faultinject.New()
	inj.ArmDelay(faultinject.PointServeSlowScore, 200*time.Millisecond) // every hit
	s := buildServer(t, overloadData(t),
		WithInjector(inj),
		WithLimits(load.Limits{MaxInflight: inFlight, QueueDepth: inFlight}))

	var entered atomic.Int32
	inner := s.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		inner.ServeHTTP(w, r)
	})
	url, stop, done := startGracefulNotify(t, h, HTTPOptions{}, 10*time.Second, s.StartDrain)

	results := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			resp, err := http.Post(url+"/score", "application/json",
				strings.NewReader(`{"pairs":[{"src":1,"dst":61}],"time":1e7}`))
			if err != nil {
				results <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results <- &unexpectedStatus{resp.StatusCode}
				return
			}
			results <- nil
		}()
	}
	waitForCond(t, func() bool { return int(entered.Load()) >= inFlight })
	stop <- syscall.SIGTERM
	waitForCond(t, s.Draining)

	// The drain window is open: the server must already be not-ready while
	// the in-flight requests finish.
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", rec.Code)
	}
	for i := 0; i < inFlight; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight request dropped during drain: %v", err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain not clean: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after drain")
	}
}

type unexpectedStatus struct{ code int }

func (e *unexpectedStatus) Error() string { return http.StatusText(e.code) }

func startGracefulNotify(t *testing.T, h http.Handler, opt HTTPOptions, drain time.Duration, onDrain func()) (string, chan os.Signal, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(h, opt)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- RunGracefulNotify(srv, ln, stop, drain, onDrain) }()
	return "http://" + ln.Addr().String(), stop, done
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
