package serve

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/wal"
)

// Replication hooks (DESIGN.md §15). A serve process plays one of three
// roles: solo (the default — no replication, bitwise-identical to the
// pre-cluster behavior), primary (accepts writes and streams committed WAL
// frames to a standby through a Replicator), or standby (read-only until
// promoted; its WAL and model state advance only through ApplyReplicated /
// InstallReplicaSnapshot, driven by the cluster receiver). The serve package
// never imports internal/cluster — the coupling runs one way, through the
// small interfaces below.

// Role is the server's position in a replicated pair.
type Role int32

// Roles. Solo is the zero value: a server that never heard of replication.
const (
	RoleSolo Role = iota
	RolePrimary
	RoleStandby
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	default:
		return "solo"
	}
}

// Replicator is the primary's view of its replication stream (implemented by
// cluster.Sender). All methods must be safe for concurrent use.
type Replicator interface {
	// WaitAcked blocks until the standby has acknowledged seq (durable on
	// its disk) or the timeout expires.
	WaitAcked(seq uint64, timeout time.Duration) error
	// AckedSeq is the highest sequence the standby has acknowledged.
	AckedSeq() uint64
	// Connected reports whether the stream currently has a live standby.
	Connected() bool
}

// ReplOptions tunes the primary's replication behavior.
type ReplOptions struct {
	// AckTimeout bounds how long /ingest waits for the standby ack before
	// degrading to asynchronous replication for that batch (default 5s).
	// The batch is still acknowledged to the client — availability first —
	// but serve_repl_ack_timeouts_total counts the broken promise and
	// /readyz reports the lagging standby.
	AckTimeout time.Duration
	// LagBound is the committed-minus-acked record gap beyond which /readyz
	// reports "standby lagging" (default 1024).
	LagBound uint64
}

// WithStandby starts the server as a replication standby: /ingest refuses
// writes (typed 503, code "not_primary") until Promote flips it writable.
// /score serves throughout — a standby is the stale-ok answer for its shard.
func WithStandby() Option {
	return func(s *Server) { s.role.Store(int32(RoleStandby)) }
}

// SetReplicator attaches the replication stream and makes the server a
// primary. Call once, after StartWAL and before serving; a WAL is required
// (frames are what replication ships).
func (s *Server) SetReplicator(r Replicator, opts ReplOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog == nil {
		return errors.New("serve: replication requires a WAL (WithWAL + StartWAL first)")
	}
	if Role(s.role.Load()) == RoleStandby {
		return errors.New("serve: a standby cannot also be a replication source")
	}
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 5 * time.Second
	}
	if opts.LagBound == 0 {
		opts.LagBound = 1024
	}
	s.repl, s.replOpts = r, opts
	s.role.Store(int32(RolePrimary))
	s.metrics.Gauge("serve_role").Set(float64(RolePrimary))
	return nil
}

// Role reports the server's current replication role.
func (s *Server) Role() Role { return Role(s.role.Load()) }

// Promote flips a standby writable — the router calls this (via
// POST /admin/promote) when the primary misses its health probes. The WAL
// tail is synced first so everything the standby acked is durable before the
// first independent write. Idempotent; promoting a primary or solo server is
// a no-op.
func (s *Server) Promote() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if Role(s.role.Load()) != RoleStandby {
		return false
	}
	if s.wlog != nil && !s.walBroken.Load() {
		if err := s.wlog.Sync(); err != nil {
			// The log just broke under us: stay a standby — an unwritable
			// primary is worse than a late failover, and /readyz now says
			// "wal broken" so the router keeps looking.
			logWarn(s.logger, "promotion aborted: wal sync failed", "error", err.Error())
			return false
		}
	}
	s.role.Store(int32(RolePrimary))
	s.metrics.Counter("serve_promotions_total").Inc()
	s.metrics.Gauge("serve_role").Set(float64(RolePrimary))
	logWarn(s.logger, "promoted to primary", "applied_seq", s.appliedSeq)
	return true
}

// handlePromote is POST /admin/promote.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	promoted := s.Promote()
	writeJSON(w, map[string]any{
		"role":        s.Role().String(),
		"promoted":    promoted,
		"applied_seq": s.WALAppliedSeq(),
	})
}

// WAL exposes the server's log to the replication sender (nil without one).
func (s *Server) WAL() *wal.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wlog
}

// ReplSnapshot encodes the current state as a catch-up snapshot: the same
// CASCSNAP payload compaction writes, plus the applied-seq watermark the
// standby must resume tailing from. Used when a standby is too far behind
// for frame shipping (its next frame was compacted away).
func (s *Server) ReplSnapshot() (uint64, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stream, err := models.CheckpointStream(s.model)
	if err != nil {
		return 0, nil, fmt.Errorf("serve: repl snapshot: %w", err)
	}
	snap := &serveSnapshot{
		Stream: stream, LastTime: s.lastTime,
		AppliedSeq: s.appliedSeq, Ingested: s.ingested, LastBid: s.lastBid,
	}
	var buf bytes.Buffer
	if err := encodeServeSnapshot(&buf, snap); err != nil {
		return 0, nil, err
	}
	return s.appliedSeq, buf.Bytes(), nil
}

// ReplicaNextSeq is the sequence number the standby's WAL expects next —
// what the receiver reports in the replication handshake.
func (s *Server) ReplicaNextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog == nil {
		return 1
	}
	return s.wlog.NextSeq()
}

// ReplicaWritable reports whether the server still accepts replicated state.
// A promoted standby refuses its old primary: two writable nodes shipping
// frames at each other is how split brain starts.
func (s *Server) ReplicaWritable() bool { return Role(s.role.Load()) == RoleStandby }

// ApplyReplicated appends one of the primary's WAL records (verbatim, under
// the primary's sequence number) and applies it to the model — the standby
// half of WAL shipping. Durability is deferred: the receiver calls
// SyncReplica before acking a batch of frames.
func (s *Server) ApplyReplicated(seq uint64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if Role(s.role.Load()) != RoleStandby {
		return errors.New("serve: not a standby")
	}
	if s.wlog == nil {
		return errors.New("serve: standby has no WAL")
	}
	if s.walBroken.Load() {
		return fmt.Errorf("serve: standby wal broken")
	}
	events, bid, err := decodeEventBatch(payload)
	if err != nil {
		return fmt.Errorf("serve: replicated record %d: %w", seq, err)
	}
	if err := s.wlog.AppendRecord(seq, payload); err != nil {
		s.breakWAL(err)
		return err
	}
	s.applyEventsLocked(events)
	s.appliedSeq = seq
	if bid > s.lastBid {
		s.lastBid = bid
	}
	s.metrics.Counter("serve_events_ingested_total").Add(int64(len(events)))
	s.metrics.Gauge("serve_wal_applied_seq").Set(float64(seq))
	s.metrics.Gauge("serve_stream_time").Set(s.lastTime)
	s.maybeCompactLocked()
	s.refreshStale()
	return nil
}

// SyncReplica forces replicated records to disk — the receiver's ack
// barrier: nothing is acknowledged to the primary until this returns.
func (s *Server) SyncReplica() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog == nil {
		return errors.New("serve: standby has no WAL")
	}
	if err := s.wlog.Sync(); err != nil {
		s.breakWAL(err)
		return err
	}
	return nil
}

// InstallReplicaSnapshot replaces the standby's state with a primary
// catch-up snapshot: restore the stream state, persist the snapshot file
// (so a standby crash right after install recovers without re-transfer),
// and restart the WAL empty above the snapshot's watermark — the old log
// contents are below it by construction and would violate the
// strictly-increasing sequence invariant if kept.
func (s *Server) InstallReplicaSnapshot(seq uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if Role(s.role.Load()) != RoleStandby {
		return errors.New("serve: not a standby")
	}
	if s.wlog == nil || s.walCfg == nil {
		return errors.New("serve: standby has no WAL")
	}
	snap, err := decodeServeSnapshot(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("serve: repl snapshot: %w", err)
	}
	if snap.AppliedSeq != seq {
		return fmt.Errorf("serve: repl snapshot watermark %d, header says %d", snap.AppliedSeq, seq)
	}
	if err := models.RestoreStream(s.model, snap.Stream); err != nil {
		return fmt.Errorf("serve: repl snapshot restore: %w", err)
	}
	s.lastTime, s.ingested, s.appliedSeq = snap.LastTime, snap.Ingested, snap.AppliedSeq
	if snap.LastBid > s.lastBid {
		s.lastBid = snap.LastBid
	}
	if _, err := writeSnapshotFile(s.walCfg.Dir, seq, snap, s.inj); err != nil {
		logWarn(s.logger, "repl snapshot not persisted; state is memory-only until next compaction", "error", err.Error())
	}
	if err := s.resetWALLocked(seq); err != nil {
		s.breakWAL(err)
		return err
	}
	s.metrics.Counter("serve_repl_snapshots_installed_total").Inc()
	s.metrics.Gauge("serve_wal_applied_seq").Set(float64(seq))
	s.refreshStale()
	return nil
}

// resetWALLocked discards every segment and reopens the log pinned above
// minSeq. Only the snapshot-install path uses it; the discarded records are
// all covered by the just-persisted snapshot.
func (s *Server) resetWALLocked(minSeq uint64) error {
	if err := s.wlog.Close(); err != nil {
		return fmt.Errorf("serve: resetting wal: %w", err)
	}
	names, err := wal.ListSegments(s.walCfg.Dir)
	if err != nil {
		return fmt.Errorf("serve: resetting wal: %w", err)
	}
	for _, name := range names {
		if err := os.Remove(filepath.Join(s.walCfg.Dir, name)); err != nil {
			return fmt.Errorf("serve: resetting wal: %w", err)
		}
	}
	l, _, err := wal.Open(wal.Options{
		Dir:           s.walCfg.Dir,
		SegmentBytes:  s.walCfg.SegmentBytes,
		Sync:          s.walCfg.Sync,
		SyncInterval:  s.walCfg.SyncInterval,
		MinSeq:        minSeq,
		Metrics:       s.metrics,
		MetricsPrefix: "serve_wal",
		Injector:      s.inj,
	})
	if err != nil {
		return fmt.Errorf("serve: resetting wal: %w", err)
	}
	s.wlog = l
	return nil
}

// replStats is the /stats "repl" section (nil when replication is off).
func (s *Server) replStatsLocked() map[string]any {
	role := Role(s.role.Load())
	if role == RoleSolo {
		return nil
	}
	st := map[string]any{"role": role.String(), "last_bid": s.lastBid}
	if s.repl != nil {
		acked := s.repl.AckedSeq()
		var lag uint64
		if s.wlog != nil {
			if committed := s.wlog.CommittedSeq(); committed > acked {
				lag = committed - acked
			}
		}
		st["acked_seq"] = acked
		st["lag"] = lag
		st["connected"] = s.repl.Connected()
	}
	return st
}
