package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
	"github.com/cascade-ml/cascade/internal/wal"
)

// Serve durability (DESIGN.md §14). With a WAL configured, /ingest appends
// the request's event batch to a segmented checksummed log BEFORE applying
// it to the model, so an ack implies the batch survives a crash. Startup
// loads the newest valid compaction snapshot, then replays every logged
// batch past the snapshot's watermark through the same BeginBatch/EndBatch
// cycle the live path runs — batch boundaries are preserved in the log
// precisely because pending messages collapse per node, so replaying the
// same events with different boundaries would reconstruct different
// memories. Every CompactEvery batches the server writes a snapshot
// atomically and truncates the segments it obsoletes. Any WAL write/sync/
// rotate failure flips the server to read-only: /ingest returns a typed 503
// (code "wal_unavailable"), /score keeps serving from state that is fully
// durable.

// WALConfig wires a write-ahead log under /ingest. Dir is required; zero
// values elsewhere take the defaults below. The server's injector (see
// WithInjector) is shared with the log, so the wal/* fault points work
// end-to-end.
type WALConfig struct {
	// Dir holds the segment files and compaction snapshots.
	Dir string
	// SegmentBytes caps each segment file (0 → wal.DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the durability policy for acks (default wal.SyncBatch: fsync
	// once per ingest request, so every acked batch is durable).
	Sync wal.SyncPolicy
	// SyncInterval is the flush cadence under wal.SyncInterval.
	SyncInterval time.Duration
	// CompactEvery triggers compaction after that many ingest batches
	// (0 → DefaultCompactEvery, negative → never).
	CompactEvery int
	// SnapshotKeep bounds retained compaction snapshots (0 → 2).
	SnapshotKeep int
}

// DefaultCompactEvery is the compaction cadence (in ingest batches) when
// WALConfig.CompactEvery is zero.
const DefaultCompactEvery = 256

// WithWAL enables the durability subsystem. The caller must invoke
// StartWAL after New (and before serving) to load the snapshot, recover
// the log, and replay.
func WithWAL(cfg WALConfig) Option {
	return func(s *Server) { s.walCfg = &cfg }
}

// WALRecovery summarizes what StartWAL reconstructed.
type WALRecovery struct {
	// SnapshotPath is the compaction snapshot the state was loaded from
	// ("" when none existed).
	SnapshotPath string
	// SnapshotSeq is the loaded snapshot's applied-seq watermark.
	SnapshotSeq uint64
	// Log is the wal opener's account of the segment scan (torn-tail
	// truncation included).
	Log *wal.Recovery
	// ReplayedRecords / ReplayedEvents are the batches and events applied
	// on top of the snapshot.
	ReplayedRecords uint64
	ReplayedEvents  uint64
}

// errFeatsUnsupported rejects finite edge features on /ingest: the feature
// table is fixed at training time and the serving universe has no row to
// attach them to, so accepting (and dropping) them would silently change
// semantics. Non-finite features are rejected as ErrNonFiniteFeature first.
var errFeatsUnsupported = errors.New("edge features not supported on ingest (feature table is fixed at training time)")

// validateEventsIn maps the wire batch onto graph events, enforcing the
// graph package's stream invariants (typed errors → 400 at the caller)
// before anything touches the WAL or the model. Caller holds s.mu (the
// time-order check reads lastTime).
func (s *Server) validateEventsIn(in []EventIn) ([]graph.Event, error) {
	events := make([]graph.Event, len(in))
	for i, e := range in {
		for _, f := range e.Feats {
			if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
				return nil, fmt.Errorf("%w: event %d", graph.ErrNonFiniteFeature, i)
			}
		}
		if len(e.Feats) > 0 {
			return nil, fmt.Errorf("event %d: %w", i, errFeatsUnsupported)
		}
		events[i] = graph.Event{Src: e.Src, Dst: e.Dst, Time: e.Time, FeatIdx: -1}
	}
	if err := graph.ValidateEvents(events, s.numNodes, s.lastTime); err != nil {
		return nil, err
	}
	return events, nil
}

// StartWAL brings the durability subsystem up: load the newest valid
// compaction snapshot, open the log (truncating crash debris), and replay
// logged batches past the snapshot watermark. Must run after New and
// before the server accepts requests; without WithWAL it is a no-op
// returning an empty summary.
func (s *Server) StartWAL() (*WALRecovery, error) {
	if s.walCfg == nil {
		return &WALRecovery{}, nil
	}
	cfg := *s.walCfg
	if cfg.Dir == "" {
		return nil, errors.New("serve: WALConfig.Dir required")
	}
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = 2
	}
	s.walCfg = &cfg
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: wal dir: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := &WALRecovery{}
	snap, path, err := loadNewestSnapshot(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		if err := models.RestoreStream(s.model, snap.Stream); err != nil {
			return nil, fmt.Errorf("serve: restoring wal snapshot %s: %w", path, err)
		}
		s.lastTime = snap.LastTime
		s.ingested = snap.Ingested
		s.appliedSeq = snap.AppliedSeq
		s.lastBid = snap.LastBid
		rec.SnapshotPath, rec.SnapshotSeq = path, snap.AppliedSeq
	}
	l, logRec, err := wal.Open(wal.Options{
		Dir:           cfg.Dir,
		SegmentBytes:  cfg.SegmentBytes,
		Sync:          cfg.Sync,
		SyncInterval:  cfg.SyncInterval,
		MinSeq:        s.appliedSeq,
		Metrics:       s.metrics,
		MetricsPrefix: "serve_wal",
		Injector:      s.inj,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	rec.Log = logRec
	var replayedEvents uint64
	n, err := l.Replay(s.appliedSeq, func(seq uint64, payload []byte) error {
		events, bid, derr := decodeEventBatch(payload)
		if derr != nil {
			return fmt.Errorf("record %d: %w", seq, derr)
		}
		s.applyEventsLocked(events)
		s.appliedSeq = seq
		if bid > s.lastBid {
			s.lastBid = bid
		}
		replayedEvents += uint64(len(events))
		return nil
	})
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("serve: wal replay: %w", err)
	}
	rec.ReplayedRecords, rec.ReplayedEvents = n, replayedEvents
	s.metrics.Counter("serve_wal_replayed_records_total").Add(int64(n))
	s.metrics.Counter("serve_wal_replayed_events_total").Add(int64(replayedEvents))
	s.metrics.Gauge("serve_wal_applied_seq").Set(float64(s.appliedSeq))
	s.wlog = l
	s.refreshStale()
	return rec, nil
}

// applyEventsLocked runs the trainer's BeginBatch/EndBatch cycle on one
// ingest batch and advances the stream counters. Caller holds s.mu; events
// are already validated. Both the live path and startup replay funnel
// through here — that shared funnel is what makes recovery bitwise.
func (s *Server) applyEventsLocked(events []graph.Event) {
	upd := s.model.BeginBatch()
	s.model.EndBatch(events)
	upd.FreeTape()
	if n := len(events); n > 0 {
		s.lastTime = events[n-1].Time
		s.ingested += int64(n)
	}
}

// appendWALLocked logs one validated batch before it is applied. A failed
// append flips the server read-only (the WAL itself is sticky-broken); the
// request must NOT be applied, since the client would be acked state that
// only exists in memory.
func (s *Server) appendWALLocked(events []graph.Event, bid uint64) (uint64, error) {
	payload := encodeEventBatch(events, bid)
	sp := s.tracer.Start("serve_wal_append", obs.PhaseOther)
	seq, err := s.wlog.Append(payload)
	sp.SetInt("bytes", int64(len(payload)))
	sp.SetInt("events", int64(len(events)))
	sp.SetInt("seq", int64(seq))
	sp.End()
	if err != nil {
		s.breakWAL(err)
		return 0, err
	}
	return seq, nil
}

// breakWAL records the first WAL failure: log it, dump the flight recorder
// while the evidence is fresh, and flip /ingest to the typed-503 path.
// /score is untouched — scoring never writes the log.
func (s *Server) breakWAL(err error) {
	if s.walBroken.Swap(true) {
		return
	}
	logWarn(s.logger, "wal broken; ingest degraded to read-only", "error", err.Error())
	if s.recorder != nil {
		if path, derr := s.recorder.Dump("wal_broken"); derr != nil {
			logWarn(s.logger, "flight dump failed", "reason", "wal_broken", "error", derr.Error())
		} else {
			s.metrics.Counter("serve_flight_dumps_total").Inc()
			logWarn(s.logger, "flight dump written", "reason", "wal_broken", "path", path)
		}
	}
}

// maybeCompactLocked counts ingest batches and, on the configured cadence,
// compacts: write a snapshot of the fully-applied state, then drop the
// segments it obsoletes. Snapshot failure is survivable — the log is still
// intact, so the server keeps serving and retries next cadence.
func (s *Server) maybeCompactLocked() {
	if s.wlog == nil || s.walCfg.CompactEvery <= 0 {
		return
	}
	s.sinceCompact++
	if s.sinceCompact < s.walCfg.CompactEvery {
		return
	}
	s.sinceCompact = 0
	s.CompactWALLocked()
}

// CompactWALLocked writes a compaction snapshot at the current applied-seq
// watermark and truncates obsolete segments. Exported through CompactWAL
// for tests and operational tooling; caller holds s.mu.
func (s *Server) CompactWALLocked() {
	stream, err := models.CheckpointStream(s.model)
	if err == nil {
		snap := &serveSnapshot{Stream: stream, LastTime: s.lastTime, AppliedSeq: s.appliedSeq, Ingested: s.ingested, LastBid: s.lastBid}
		_, err = writeSnapshotFile(s.walCfg.Dir, s.appliedSeq, snap, s.inj)
	}
	if err != nil {
		s.metrics.Counter("serve_wal_snapshot_errors_total").Inc()
		logWarn(s.logger, "wal compaction snapshot failed; log retained", "error", err.Error())
		return
	}
	s.metrics.Counter("serve_wal_compactions_total").Inc()
	// Retention holds back for a connected standby: records it has not yet
	// acknowledged stay shippable. A disconnected standby does not pin the
	// log (disk is bounded) — it catches up from a snapshot on reconnect.
	keep := s.appliedSeq
	if s.repl != nil && s.repl.Connected() {
		if acked := s.repl.AckedSeq(); acked < keep {
			keep = acked
		}
	}
	if _, err := s.wlog.TruncateBefore(keep + 1); err != nil {
		logWarn(s.logger, "wal truncation failed", "error", err.Error())
	}
	if err := pruneSnapshots(s.walCfg.Dir, s.walCfg.SnapshotKeep); err != nil {
		logWarn(s.logger, "wal snapshot prune failed", "error", err.Error())
	}
}

// CompactWAL takes the model lock and compacts immediately (no-op without
// a WAL).
func (s *Server) CompactWAL() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog != nil {
		s.CompactWALLocked()
	}
}

// FlushWAL forces appended records to disk — the graceful-drain hook, so a
// clean SIGTERM never leans on replay. Safe without a WAL (returns nil).
func (s *Server) FlushWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog == nil {
		return nil
	}
	return s.wlog.Sync()
}

// CloseWAL flushes and releases the log (no-op without one). Call after the
// HTTP server has fully drained.
func (s *Server) CloseWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog == nil {
		return nil
	}
	err := s.wlog.Close()
	s.wlog = nil
	return err
}

// WALAppliedSeq reports the last WAL sequence applied to the model.
func (s *Server) WALAppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedSeq
}

// --- event-batch record codec -------------------------------------------

// Event-batch record codec, one WAL record per ingest request:
//
//	v1: [version=1 u8 | count u32 | count × (src i32, dst i32, time f64)]
//	v2: [version=2 u8 | bid u64 | count u32 | events as v1]
//
// all little-endian. v2 exists only for router-originated batches (bid > 0):
// a direct batch still encodes as v1 byte-for-byte, which is what keeps
// non-replicated single-node logs bitwise-identical to the pre-cluster
// format. FeatIdx is not encoded — ingest events never carry features (see
// validateEventsIn).
const (
	eventBatchVersion    = 1
	eventBatchVersionBid = 2
)

const eventWireBytes = 16

func encodeEventBatch(events []graph.Event, bid uint64) []byte {
	head := 5
	if bid > 0 {
		head = 13
	}
	buf := make([]byte, head+eventWireBytes*len(events))
	off := 1
	if bid > 0 {
		buf[0] = eventBatchVersionBid
		binary.LittleEndian.PutUint64(buf[1:9], bid)
		off = 9
	} else {
		buf[0] = eventBatchVersion
	}
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(events)))
	off += 4
	for _, e := range events {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.Dst))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.Time))
		off += eventWireBytes
	}
	return buf
}

func decodeEventBatch(p []byte) ([]graph.Event, uint64, error) {
	if len(p) < 5 {
		return nil, 0, fmt.Errorf("serve: event batch record truncated (%d bytes)", len(p))
	}
	var bid uint64
	off := 1
	switch p[0] {
	case eventBatchVersion:
	case eventBatchVersionBid:
		if len(p) < 13 {
			return nil, 0, fmt.Errorf("serve: event batch record truncated (%d bytes)", len(p))
		}
		bid = binary.LittleEndian.Uint64(p[1:9])
		if bid == 0 {
			return nil, 0, errors.New("serve: v2 event batch record with zero bid")
		}
		off = 9
	default:
		return nil, 0, fmt.Errorf("serve: event batch record version %d, this build reads ≤ %d", p[0], eventBatchVersionBid)
	}
	n := int(binary.LittleEndian.Uint32(p[off : off+4]))
	off += 4
	if len(p) != off+eventWireBytes*n {
		return nil, 0, fmt.Errorf("serve: event batch record declares %d events in %d bytes", n, len(p))
	}
	events := make([]graph.Event, n)
	for i := range events {
		events[i] = graph.Event{
			Src:     int32(binary.LittleEndian.Uint32(p[off:])),
			Dst:     int32(binary.LittleEndian.Uint32(p[off+4:])),
			Time:    math.Float64frombits(binary.LittleEndian.Uint64(p[off+8:])),
			FeatIdx: -1,
		}
		off += eventWireBytes
	}
	return events, bid, nil
}

// --- compaction snapshots ------------------------------------------------

// serveSnapshot is the compaction snapshot payload: the model's full stream
// state plus the serving counters replay must resume from. Weights are
// deliberately absent — the serving process reconstructs them from its own
// training config, exactly as the reference process does.
type serveSnapshot struct {
	Stream     *models.StreamCheckpoint
	LastTime   float64
	AppliedSeq uint64
	Ingested   int64
	// LastBid carries the router-batch dedup watermark across restarts and
	// snapshot catch-up (gob leaves it zero when decoding pre-cluster
	// snapshots, which is exactly the solo default).
	LastBid uint64
}

// Snapshot-file format mirrors resilience's checkpoints: magic, version,
// payload length, gob payload, CRC32C over everything before it.
var snapMagic = [8]byte{'C', 'A', 'S', 'C', 'S', 'N', 'A', 'P'}

const snapFormatVersion uint32 = 1

var errSnapCorrupt = errors.New("serve: wal snapshot corrupt")

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

func snapshotSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := snapshotSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func encodeServeSnapshot(w io.Writer, c *serveSnapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return fmt.Errorf("serve: encoding wal snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(snapMagic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapFormatVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(buf.Bytes(), crc32.MakeTable(crc32.Castagnoli)))
	buf.Write(tail[:])
	_, err := w.Write(buf.Bytes())
	return err
}

func decodeServeSnapshot(r io.Reader) (*serveSnapshot, error) {
	var head [20]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", errSnapCorrupt, err)
	}
	if !bytes.Equal(head[:8], snapMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", errSnapCorrupt, head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != snapFormatVersion {
		return nil, fmt.Errorf("serve: wal snapshot version %d, this build reads %d", v, snapFormatVersion)
	}
	plen := binary.LittleEndian.Uint64(head[12:20])
	if plen > 1<<32 {
		return nil, fmt.Errorf("%w: implausible payload length %d", errSnapCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", errSnapCorrupt, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", errSnapCorrupt, err)
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	crc.Write(head[:])
	crc.Write(payload)
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", errSnapCorrupt, got, want)
	}
	var c serveSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", errSnapCorrupt, err)
	}
	return &c, nil
}

// writeSnapshotFile publishes one compaction snapshot crash-safely (temp +
// fsync + rename + dir sync, like resilience.WriteSnapshotFile). The
// PointWALSnapshot fault fails it deterministically for the chaos suite.
func writeSnapshotFile(dir string, seq uint64, c *serveSnapshot, inj *faultinject.Injector) (string, error) {
	if err := inj.Err(faultinject.PointWALSnapshot); err != nil {
		return "", fmt.Errorf("serve: writing wal snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotName(seq))
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return "", fmt.Errorf("serve: creating wal snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := encodeServeSnapshot(tmp, c); err != nil {
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		return "", fmt.Errorf("serve: syncing wal snapshot: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		tmp = nil
		return "", fmt.Errorf("serve: closing wal snapshot: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return "", fmt.Errorf("serve: publishing wal snapshot: %w", err)
	}
	// The rename must itself be durable before this snapshot can justify
	// deleting the segments it covers: a crash that loses the directory
	// entry but not the segment deletes would lose acked events. So the dir
	// fsync is load-bearing, not best-effort — a failure aborts compaction
	// (the caller keeps the log and retries next cadence).
	d, derr := os.Open(dir)
	if derr != nil {
		return "", fmt.Errorf("serve: syncing wal snapshot dir: %w", derr)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return "", fmt.Errorf("serve: syncing wal snapshot dir: %w", err)
	}
	d.Close()
	return path, nil
}

// loadNewestSnapshot walks the snapshots newest-first and returns the first
// one that verifies; corrupt newer files are skipped (the previous snapshot
// plus a longer replay still reconstructs the same state), and a directory
// with none returns (nil, "", nil).
func loadNewestSnapshot(dir string) (*serveSnapshot, string, error) {
	names, err := listSnapshots(dir)
	if err != nil {
		return nil, "", fmt.Errorf("serve: listing wal snapshots: %w", err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		c, err := decodeServeSnapshot(f)
		f.Close()
		if err != nil {
			continue
		}
		return c, path, nil
	}
	return nil, "", nil
}

func pruneSnapshots(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	names, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if rerr := os.Remove(filepath.Join(dir, name)); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
