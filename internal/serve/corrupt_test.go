package serve

import (
	"bytes"
	"errors"
	"testing"

	"github.com/cascade-ml/cascade/internal/graph"
	"github.com/cascade-ml/cascade/internal/models"
)

// Fuzz-style corruption tables for the two decoders that eat replication
// payloads. A standby feeds whatever arrives off the wire into these, so the
// contract is absolute: truncated or bit-flipped input produces a typed
// error — never a panic, never a silent partial decode.

func sampleBatchPayloads(t *testing.T) [][]byte {
	t.Helper()
	events := []graph.Event{
		{Src: 1, Dst: 2, Time: 42.5, FeatIdx: -1},
		{Src: 0, Dst: 199, Time: 1e12, FeatIdx: -1},
		{Src: 7, Dst: 9, Time: 1e12 + 1, FeatIdx: -1},
	}
	return [][]byte{
		encodeEventBatch(nil, 0),
		encodeEventBatch(events, 0),
		encodeEventBatch(events, 12345),
	}
}

func TestDecodeEventBatchTruncations(t *testing.T) {
	for pi, p := range sampleBatchPayloads(t) {
		for cut := 0; cut < len(p); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("payload %d truncated to %d bytes: panic %v", pi, cut, r)
					}
				}()
				if _, _, err := decodeEventBatch(p[:cut]); err == nil {
					t.Fatalf("payload %d truncated to %d bytes decoded without error", pi, cut)
				}
			}()
		}
	}
}

func TestDecodeEventBatchBitFlips(t *testing.T) {
	// The batch codec has no checksum of its own (the WAL frame carries it),
	// so a flip may legally decode to different events — the contract here
	// is only no-panic and no out-of-bounds length trusting.
	for pi, p := range sampleBatchPayloads(t) {
		for i := 0; i < len(p); i++ {
			for _, mask := range []byte{0x01, 0x80} {
				flip := bytes.Clone(p)
				flip[i] ^= mask
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("payload %d byte %d ^ %#x: panic %v", pi, i, mask, r)
						}
					}()
					_, _, _ = decodeEventBatch(flip)
				}()
			}
		}
	}
}

func sampleSnapshot(t *testing.T) []byte {
	t.Helper()
	// A tiny but real stream checkpoint, so the gob payload exercises the
	// full decode path.
	snap := &serveSnapshot{
		Stream:     &models.StreamCheckpoint{},
		LastTime:   1e7,
		AppliedSeq: 42,
		Ingested:   9,
		LastBid:    3,
	}
	var buf bytes.Buffer
	if err := encodeServeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeServeSnapshotTruncations(t *testing.T) {
	p := sampleSnapshot(t)
	for cut := 0; cut < len(p); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("snapshot truncated to %d bytes: panic %v", cut, r)
				}
			}()
			_, err := decodeServeSnapshot(bytes.NewReader(p[:cut]))
			if err == nil {
				t.Fatalf("snapshot truncated to %d bytes decoded without error", cut)
			}
		}()
	}
}

func TestDecodeServeSnapshotBitFlips(t *testing.T) {
	// The snapshot format is CRC-covered end to end, so EVERY single-bit
	// flip must be detected — and as a typed error: errSnapCorrupt for
	// anything the checksum catches, a version error for the version word.
	p := sampleSnapshot(t)
	for i := 0; i < len(p); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			flip := bytes.Clone(p)
			flip[i] ^= mask
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("snapshot byte %d ^ %#x: panic %v", i, mask, r)
					}
				}()
				_, err := decodeServeSnapshot(bytes.NewReader(flip))
				if err == nil {
					t.Fatalf("snapshot with byte %d ^ %#x decoded without error", i, mask)
				}
				if !errors.Is(err, errSnapCorrupt) && !bytes.Contains([]byte(err.Error()), []byte("version")) {
					t.Fatalf("snapshot byte %d ^ %#x: untyped error %v", i, mask, err)
				}
			}()
		}
	}
}
