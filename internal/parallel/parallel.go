// Package parallel provides a small worker-pool helper used to fan work out
// across CPU cores. It is the Go analog of the OpenMP loops the paper uses
// for building the dependency table and scanning node entries (§4.2).
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the degree of parallelism used when a caller passes a
// non-positive worker count. It mirrors the paper's "CPU thread numbers in
// TG-Diffuser and ABS" knob (set to 32 there; here we follow the machine).
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) using at most workers goroutines.
// Work is divided into contiguous chunks so per-node state stays cache-local,
// matching the chunked iteration pattern described in §4.2.
// If workers <= 0 the machine's GOMAXPROCS is used. For small n the call is
// executed inline to avoid goroutine overhead.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 64 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForChunks runs fn(lo, hi) over contiguous chunks of [0, n). It is useful
// when the body can vectorize over a range instead of paying a closure call
// per element.
func ForChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 64 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Workers returns the worker count actually used for a loop over n items:
// workers (or DefaultWorkers when non-positive), capped at n. Callers that
// pre-size per-worker scratch for ForChunksWorker use it to agree with the
// fan-out on the slot count.
func Workers(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForChunksWorker runs fn(w, lo, hi) over contiguous chunks of [0, n), where
// w < Workers(n, workers) identifies the worker and is stable for the call:
// each w sees exactly one chunk, so fn may write to per-worker scratch slot w
// without synchronization. Unlike ForChunks there is no small-n inline
// shortcut beyond the single-worker case — callers opt into chunked fan-out
// deliberately (e.g. GEMM k-splitting with per-worker accumulators).
func ForChunksWorker(n, workers int, fn func(w, lo, hi int)) {
	workers = Workers(n, workers)
	if workers == 0 {
		return
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// MinIntReduce computes the minimum of fn(i) over [0, n) in parallel.
// It is the reduction step of Algorithm 3 (batch boundary = min over nodes
// of the last tolerable event). Each worker owns a preallocated partial slot,
// so the reduction is lock-free.
func MinIntReduce(n, workers int, fn func(i int) int) int {
	const maxInt = int(^uint(0) >> 1)
	if n <= 0 {
		return maxInt
	}
	workers = Workers(n, workers)
	if workers == 1 || n < 256 {
		best := maxInt
		for i := 0; i < n; i++ {
			if v := fn(i); v < best {
				best = v
			}
		}
		return best
	}
	partial := make([]int, workers)
	for w := range partial {
		partial[w] = maxInt // ceil-division chunking may leave trailing slots unused
	}
	ForChunksWorker(n, workers, func(w, lo, hi int) {
		best := maxInt
		for i := lo; i < hi; i++ {
			if v := fn(i); v < best {
				best = v
			}
		}
		partial[w] = best
	})
	best := maxInt
	for _, v := range partial {
		if v < best {
			best = v
		}
	}
	return best
}
