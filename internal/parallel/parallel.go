// Package parallel provides a small worker-pool helper used to fan work out
// across CPU cores. It is the Go analog of the OpenMP loops the paper uses
// for building the dependency table and scanning node entries (§4.2).
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the degree of parallelism used when a caller passes a
// non-positive worker count. It mirrors the paper's "CPU thread numbers in
// TG-Diffuser and ABS" knob (set to 32 there; here we follow the machine).
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) using at most workers goroutines.
// Work is divided into contiguous chunks so per-node state stays cache-local,
// matching the chunked iteration pattern described in §4.2.
// If workers <= 0 the machine's GOMAXPROCS is used. For small n the call is
// executed inline to avoid goroutine overhead.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 64 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForChunks runs fn(lo, hi) over contiguous chunks of [0, n). It is useful
// when the body can vectorize over a range instead of paying a closure call
// per element.
func ForChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 64 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MinIntReduce computes the minimum of fn(i) over [0, n) in parallel.
// It is the reduction step of Algorithm 3 (batch boundary = min over nodes
// of the last tolerable event).
func MinIntReduce(n, workers int, fn func(i int) int) int {
	const maxInt = int(^uint(0) >> 1)
	if n <= 0 {
		return maxInt
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 256 {
		best := maxInt
		for i := 0; i < n; i++ {
			if v := fn(i); v < best {
				best = v
			}
		}
		return best
	}
	chunk := (n + workers - 1) / workers
	partial := make([]int, 0, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			best := maxInt
			for i := lo; i < hi; i++ {
				if v := fn(i); v < best {
					best = v
				}
			}
			mu.Lock()
			partial = append(partial, best)
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	best := maxInt
	for _, v := range partial {
		if v < best {
			best = v
		}
	}
	return best
}
