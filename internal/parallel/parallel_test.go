package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 100, 1000} {
		seen := make([]int32, n)
		For(n, 4, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, n := range []int{1, 65, 128, 999} {
		var total int64
		ForChunks(n, 8, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != int64(n) {
			t.Fatalf("n=%d: chunks covered %d elements", n, total)
		}
	}
}

func TestMinIntReduce(t *testing.T) {
	vals := []int{9, 3, 7, 1, 8}
	got := MinIntReduce(len(vals), 2, func(i int) int { return vals[i] })
	if got != 1 {
		t.Fatalf("min = %d, want 1", got)
	}
}

func TestMinIntReduceEmpty(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	if got := MinIntReduce(0, 4, func(i int) int { return 0 }); got != maxInt {
		t.Fatalf("empty reduce = %d, want MaxInt", got)
	}
}

// Property: parallel min equals serial min for random inputs of random size.
func TestMinIntReduceMatchesSerial(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1 << 20)
		}
		want := vals[0]
		for _, v := range vals[1:] {
			if v < want {
				want = v
			}
		}
		got := MinIntReduce(n, 8, func(i int) int { return vals[i] })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
