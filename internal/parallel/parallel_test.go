package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 100, 1000} {
		seen := make([]int32, n)
		For(n, 4, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, n := range []int{1, 65, 128, 999} {
		var total int64
		ForChunks(n, 8, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != int64(n) {
			t.Fatalf("n=%d: chunks covered %d elements", n, total)
		}
	}
}

func TestMinIntReduce(t *testing.T) {
	vals := []int{9, 3, 7, 1, 8}
	got := MinIntReduce(len(vals), 2, func(i int) int { return vals[i] })
	if got != 1 {
		t.Fatalf("min = %d, want 1", got)
	}
}

func TestMinIntReduceEmpty(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	if got := MinIntReduce(0, 4, func(i int) int { return 0 }); got != maxInt {
		t.Fatalf("empty reduce = %d, want MaxInt", got)
	}
}

// Property: parallel min equals serial min for random inputs of random size.
func TestMinIntReduceMatchesSerial(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1 << 20)
		}
		want := vals[0]
		for _, v := range vals[1:] {
			if v < want {
				want = v
			}
		}
		got := MinIntReduce(n, 8, func(i int) int { return vals[i] })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func TestWorkersCaps(t *testing.T) {
	if got := Workers(0, 8); got != 0 {
		t.Fatalf("Workers(0,8) = %d, want 0", got)
	}
	if got := Workers(3, 8); got != 3 {
		t.Fatalf("Workers(3,8) = %d, want 3", got)
	}
	if got := Workers(100, 4); got != 4 {
		t.Fatalf("Workers(100,4) = %d, want 4", got)
	}
	if got := Workers(100, 0); got != DefaultWorkers() {
		t.Fatalf("Workers(100,0) = %d, want DefaultWorkers", got)
	}
}

func TestForChunksWorkerPartition(t *testing.T) {
	for _, n := range []int{1, 5, 65, 128, 999} {
		for _, workers := range []int{1, 3, 4, 8} {
			seen := make([]int32, n)
			slotHit := make([]int32, Workers(n, workers))
			ForChunksWorker(n, workers, func(w, lo, hi int) {
				atomic.AddInt32(&slotHit[w], 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
			for w, c := range slotHit {
				if c > 1 {
					t.Fatalf("n=%d workers=%d: slot %d used %d times", n, workers, w, c)
				}
			}
		}
	}
}

// Regression for the unused-trailing-slot case: ceil-division chunking can
// leave the last worker without a chunk (n=5, workers=4 → chunks of 2 cover
// [0,6)), and its partial slot must not poison the reduction.
func TestMinIntReduceUnusedSlot(t *testing.T) {
	n := 300 // above the serial cutoff
	got := MinIntReduce(n, 299, func(i int) int { return 1000 + i })
	if got != 1000 {
		t.Fatalf("min = %d, want 1000", got)
	}
}
