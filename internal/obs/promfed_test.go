package obs

import (
	"bytes"
	"strings"
	"testing"
)

const fedFixture = `# HELP serve_ingest_total Ingest requests.
# TYPE serve_ingest_total counter
serve_ingest_total 42
# HELP serve_latency_seconds Request latency.
# TYPE serve_latency_seconds histogram
serve_latency_seconds_bucket{le="0.001"} 10
serve_latency_seconds_bucket{le="+Inf"} 12
serve_latency_seconds_sum 0.25
serve_latency_seconds_count 12
# TYPE odd_gauge gauge
odd_gauge{path="a\"b}c",shard="9"} 1.5
bare_sample 7 1699999999000
`

func TestParsePromText(t *testing.T) {
	fams, err := ParsePromText(strings.NewReader(fedFixture))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["serve_ingest_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != "42" {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if f := byName["serve_latency_seconds"]; f.Type != "histogram" || len(f.Samples) != 4 {
		t.Fatalf("histogram derivatives not grouped under the family: %+v", f)
	}
	// Quote-aware label scan: the '}' inside the quoted value must not
	// terminate the label block.
	odd := byName["odd_gauge"]
	if len(odd.Samples) != 1 || len(odd.Samples[0].Labels) != 2 {
		t.Fatalf("odd_gauge labels wrong: %+v", odd)
	}
	if got := odd.Samples[0].Labels[0].Value; got != `a\"b}c` {
		t.Fatalf("escaped label value = %q", got)
	}
	// A sample with no metadata opens an implicit untyped family, and its
	// trailing timestamp is dropped.
	if f := byName["bare_sample"]; f.Type != "untyped" || f.Samples[0].Value != "7" {
		t.Fatalf("bare sample wrong: %+v", f)
	}
}

func TestRelabelMergeWriteRoundtrip(t *testing.T) {
	fams, err := ParsePromText(strings.NewReader(fedFixture))
	if err != nil {
		t.Fatal(err)
	}
	RelabelFamilies(fams, []PromLabel{
		{Name: "shard", Value: "0"},
		{Name: "role", Value: "primary"},
	})

	// Every sample now leads with the federation labels; a pre-existing
	// "shard" label is renamed exported_shard, not clobbered.
	for _, f := range fams {
		for _, s := range f.Samples {
			if len(s.Labels) < 2 || s.Labels[0] != (PromLabel{Name: "shard", Value: "0"}) ||
				s.Labels[1] != (PromLabel{Name: "role", Value: "primary"}) {
				t.Fatalf("sample %s labels = %+v", s.Name, s.Labels)
			}
			for _, l := range s.Labels[2:] {
				if l.Name == "shard" {
					t.Fatalf("member's own shard label not renamed: %+v", s.Labels)
				}
			}
		}
		if f.Name == "odd_gauge" {
			names := []string{}
			for _, l := range f.Samples[0].Labels {
				names = append(names, l.Name)
			}
			if strings.Join(names, ",") != "shard,role,path,exported_shard" {
				t.Fatalf("odd_gauge label names = %v", names)
			}
		}
	}

	other := []PromFamily{
		{Name: "serve_ingest_total", Type: "counter", Samples: []PromSample{{Name: "serve_ingest_total", Value: "5",
			Labels: []PromLabel{{Name: "shard", Value: "1"}}}}},
		{Name: "router_only", Type: "gauge", Samples: []PromSample{{Name: "router_only", Value: "1"}}},
	}
	merged := MergeFamilies(fams, other)
	var ingest *PromFamily
	for i := range merged {
		if i > 0 && merged[i].Name < merged[i-1].Name {
			t.Fatalf("merged families not sorted: %s after %s", merged[i].Name, merged[i-1].Name)
		}
		if merged[i].Name == "serve_ingest_total" {
			ingest = &merged[i]
		}
	}
	if ingest == nil || len(ingest.Samples) != 2 {
		t.Fatalf("serve_ingest_total samples not merged: %+v", ingest)
	}

	// Write → parse must be stable (samples and labels survive a roundtrip).
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, merged); err != nil {
		t.Fatal(err)
	}
	again, err := ParsePromText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(merged) {
		t.Fatalf("roundtrip family count %d != %d\n%s", len(again), len(merged), buf.String())
	}
	for i := range again {
		if again[i].Name != merged[i].Name || len(again[i].Samples) != len(merged[i].Samples) {
			t.Fatalf("family %s changed across roundtrip: %d vs %d samples",
				merged[i].Name, len(merged[i].Samples), len(again[i].Samples))
		}
	}
}
