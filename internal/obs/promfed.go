package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Federation support (DESIGN.md §16). The router's /metrics?federate=1
// scrapes every cluster member's plain-text exposition, parses it with
// ParsePromText, relabels each sample with shard/role/member, and re-emits
// one merged exposition. The parser understands exactly the dialect this
// repo's Registry writes (and the common Prometheus text format): # HELP /
// # TYPE comments and `name{labels} value` samples. Anything it cannot
// parse is skipped rather than failing the whole scrape — federation
// degrades, it does not error.

// PromSample is one exposition line: a metric name (which for histograms
// may be the family name plus _bucket/_sum/_count), its label pairs in
// source order, and the value verbatim (kept as text so federation never
// reformats — and never perturbs — a member's numbers).
type PromSample struct {
	Name   string
	Labels []PromLabel
	Value  string
}

// PromLabel is one label pair.
type PromLabel struct {
	Name  string
	Value string // raw, still escaped as it appeared in the exposition
}

// PromFamily groups the samples of one metric family with its metadata.
type PromFamily struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", "untyped", ...
	Help    string
	Samples []PromSample
}

// ParsePromText parses a Prometheus text exposition into families, in
// encounter order. Unparseable lines are skipped. Samples whose name does
// not match the preceding TYPE family (or its _bucket/_sum/_count
// derivatives) open an implicit untyped family.
func ParsePromText(r io.Reader) ([]PromFamily, error) {
	var fams []PromFamily
	byName := map[string]int{}

	family := func(name string) *PromFamily {
		if i, ok := byName[name]; ok {
			return &fams[i]
		}
		fams = append(fams, PromFamily{Name: name, Type: "untyped"})
		byName[name] = len(fams) - 1
		return &fams[len(fams)-1]
	}

	cur := "" // name of the family the last # TYPE opened
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 {
				switch fields[1] {
				case "TYPE":
					f := family(fields[2])
					if len(fields) == 4 {
						f.Type = strings.TrimSpace(fields[3])
					}
					cur = fields[2]
				case "HELP":
					f := family(fields[2])
					if len(fields) == 4 {
						f.Help = fields[3]
					}
				}
			}
			continue
		}
		s, ok := parseFedSample(line)
		if !ok {
			continue
		}
		famName := s.Name
		if cur != "" && sampleBelongsTo(s.Name, cur) {
			famName = cur
		}
		f := family(famName)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return fams, err
	}
	return fams, nil
}

// sampleBelongsTo reports whether a sample name is part of family fam
// (exact, or a histogram/summary derivative).
func sampleBelongsTo(name, fam string) bool {
	if name == fam {
		return true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
		if name == fam+suf {
			return true
		}
	}
	return false
}

// parseFedSample splits one `name{labels} value [timestamp]` line. The
// label scan is quote-aware: a '}' inside a quoted label value does not end
// the label block.
func parseFedSample(line string) (PromSample, bool) {
	var s PromSample
	brace := strings.IndexByte(line, '{')
	var rest string
	if brace >= 0 && brace < strings.IndexByte(line+" ", ' ') {
		s.Name = line[:brace]
		end := scanLabelBlock(line, brace)
		if end < 0 {
			return s, false
		}
		var ok bool
		s.Labels, ok = parsePromLabels(line[brace+1 : end])
		if !ok {
			return s, false
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return s, false
		}
		s.Name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	if s.Name == "" || rest == "" {
		return s, false
	}
	// Drop an optional trailing timestamp; keep the value verbatim.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	s.Value = rest
	return s, true
}

// scanLabelBlock returns the index of the '}' closing the label block that
// opens at line[open], honoring quoted values with backslash escapes; -1 if
// unterminated.
func scanLabelBlock(line string, open int) int {
	inQuote := false
	for i := open + 1; i < len(line); i++ {
		c := line[i]
		if inQuote {
			switch c {
			case '\\':
				i++ // skip the escaped byte
			case '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '}':
			return i
		}
	}
	return -1
}

// parsePromLabels splits the inside of a label block into pairs. Values are
// kept raw (escapes intact) so re-emission is byte-faithful.
func parsePromLabels(s string) ([]PromLabel, bool) {
	var out []PromLabel
	i := 0
	for i < len(s) {
		// name
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			// trailing comma / whitespace only is fine
			return out, strings.TrimSpace(s[i:]) == ""
		}
		name := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, false
		}
		// quoted value
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return nil, false
		}
		out = append(out, PromLabel{Name: name, Value: s[i+1 : j]})
		i = j + 1
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return out, true
}

// RelabelFamilies prepends extra label pairs to every sample of every
// family, in place. Values are escaped for exposition; samples that already
// carry one of the extra label names keep the new one first (the original
// becomes exported_<name>, mirroring Prometheus federation).
func RelabelFamilies(fams []PromFamily, extra []PromLabel) {
	esc := make([]PromLabel, len(extra))
	for i, l := range extra {
		esc[i] = PromLabel{Name: l.Name, Value: escapeLabelValue(l.Value)}
	}
	names := map[string]bool{}
	for _, l := range extra {
		names[l.Name] = true
	}
	for fi := range fams {
		for si := range fams[fi].Samples {
			s := &fams[fi].Samples[si]
			old := s.Labels
			s.Labels = make([]PromLabel, 0, len(old)+len(esc))
			s.Labels = append(s.Labels, esc...)
			for _, l := range old {
				if names[l.Name] {
					l.Name = "exported_" + l.Name
				}
				s.Labels = append(s.Labels, l)
			}
		}
	}
}

// MergeFamilies combines family lists from several sources into one list,
// grouped by family name (first-seen Type/Help win), sorted by name.
func MergeFamilies(lists ...[]PromFamily) []PromFamily {
	byName := map[string]int{}
	var out []PromFamily
	for _, list := range lists {
		for _, f := range list {
			if i, ok := byName[f.Name]; ok {
				out[i].Samples = append(out[i].Samples, f.Samples...)
				if out[i].Type == "untyped" && f.Type != "" {
					out[i].Type = f.Type
				}
				if out[i].Help == "" {
					out[i].Help = f.Help
				}
				continue
			}
			byName[f.Name] = len(out)
			if f.Type == "" {
				f.Type = "untyped"
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteFamilies renders families back to the text exposition format.
func WriteFamilies(w io.Writer, fams []PromFamily) error {
	for _, f := range fams {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if len(s.Labels) == 0 {
				if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, s.Value); err != nil {
					return err
				}
				continue
			}
			var b strings.Builder
			b.WriteString(s.Name)
			b.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(l.Name)
				b.WriteString("=\"")
				b.WriteString(l.Value)
				b.WriteByte('"')
			}
			b.WriteString("} ")
			b.WriteString(s.Value)
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}
