package obs

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical tracing (DESIGN.md §11). A Tracer hands out Spans — timed,
// attributed, parent-linked intervals — and fans every completed span out to
// its sinks: the Chrome trace exporter (chrome.go), the flight recorder
// (flight.go) and the streaming per-phase percentile summaries
// (phasestats.go).
//
// The hot-path contract mirrors the rest of this package: a nil *Tracer and
// a nil *Span are fully inert, every method is safe to call on them, and the
// disabled path performs no allocation and no time.Now call — attribute
// setters take typed scalars (SetInt/SetFloat/SetStr) precisely so the
// disabled call sites never box values into an interface. Spans themselves
// are safe for concurrent use: a child may start and end on a different
// goroutine than its parent (the trainer's prefetch pipeline does exactly
// that), with the parent's mutex guarding child registration.

// Phase assigns a span to one of the pipeline lanes of the Cascade training
// loop. The Chrome exporter renders one lane (tid) per phase; the phase
// stats keep one log-histogram per phase.
type Phase uint8

// Pipeline phases, in lane order.
const (
	// PhaseDiffuser is the TG-Diffuser boundary lookup (Scheduler.Next).
	PhaseDiffuser Phase = iota
	// PhaseFilter is the SG-Filter similarity update.
	PhaseFilter
	// PhaseABS is the Adaptive Batch-size Sensor's decay decision.
	PhaseABS
	// PhaseEmbed is the embedding + prediction forward pass.
	PhaseEmbed
	// PhaseBackward is the backward pass.
	PhaseBackward
	// PhaseOptim is the optimizer step.
	PhaseOptim
	// PhaseMemory is the node-memory update (BeginBatch apply + EndBatch
	// message generation).
	PhaseMemory
	// PhaseBarrier is the distributed epoch barrier / parameter averaging.
	PhaseBarrier
	// PhaseOther is everything unlaned: batch roots, host-side batch prep,
	// serve requests.
	PhaseOther

	// NumPhases bounds the lane count (PhaseOther included).
	NumPhases = int(PhaseOther) + 1
)

var phaseNames = [NumPhases]string{
	"tg_diffuser", "sg_filter", "abs_decision", "embed_forward",
	"backward", "optimizer_step", "memory_update", "dist_barrier", "other",
}

// String returns the lane name ("tg_diffuser", "embed_forward", …).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "other"
}

// Attr is one key-value span attribute. Exactly one of the value fields is
// meaningful, selected by Kind; the split into typed fields keeps attribute
// setters allocation-free on the disabled path.
type Attr struct {
	Key  string
	Kind AttrKind
	Num  float64
	Str  string
}

// AttrKind discriminates Attr's value field.
type AttrKind uint8

// Attribute kinds.
const (
	AttrFloat AttrKind = iota
	AttrInt
	AttrStr
)

// Value returns the attribute's value boxed for JSON encoding. Non-finite
// floats become strings ("NaN", "+Inf", "-Inf"): encoding/json rejects
// them, and the NaN-loss batch is exactly the one a flight dump must not
// fail to serialize.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrInt:
		return int64(a.Num)
	case AttrStr:
		return a.Str
	default:
		if math.IsNaN(a.Num) {
			return "NaN"
		}
		if math.IsInf(a.Num, 1) {
			return "+Inf"
		}
		if math.IsInf(a.Num, -1) {
			return "-Inf"
		}
		return a.Num
	}
}

// SpanSink consumes completed spans. OnSpanEnd runs synchronously inside
// Span.End and must be cheap and concurrency-safe; the span's own fields are
// immutable after End, but its children slice may only be read via
// Span.VisitChildren (a late child registration can race a dump otherwise).
type SpanSink interface {
	OnSpanEnd(*Span)
}

// maxTreeSpans bounds one root span's tree. Children beyond the cap are
// dropped (counted in Dropped) so a pathological batch cannot grow the
// flight-recorder ring without bound.
const maxTreeSpans = 512

// maxSpanAttrs bounds attributes per span for the same reason.
const maxSpanAttrs = 64

// Tracer is the span factory. A nil tracer is inert; a non-nil tracer is
// safe for concurrent use from any number of goroutines.
type Tracer struct {
	ids   atomic.Uint64
	epoch time.Time
	id    string
	sinks []SpanSink
	stats *PhaseStats
}

// TracerOptions wires a Tracer's consumers. All fields optional.
type TracerOptions struct {
	// Chrome, when non-nil, receives every completed span as a Chrome
	// trace event.
	Chrome *ChromeTraceWriter
	// Flight, when non-nil, receives completed root span trees into its
	// ring buffer.
	Flight *FlightRecorder
	// Registry, when non-nil, gets the tracer's per-phase percentile
	// summaries registered as an exposition collector (they appear on
	// /metrics as the pipeline_phase_seconds summary family).
	Registry *Registry
	// Sinks appends extra consumers.
	Sinks []SpanSink
}

// NewTracer builds a tracer with the given consumers. Per-phase statistics
// are always collected (they are the cheapest consumer and feed both
// /metrics and /debug/pipeline).
func NewTracer(opt TracerOptions) *Tracer {
	t := &Tracer{epoch: time.Now(), stats: NewPhaseStats()}
	t.id = "t" + strconv.FormatInt(t.epoch.UnixNano(), 36)
	if opt.Chrome != nil {
		opt.Chrome.epoch = t.epoch
		t.sinks = append(t.sinks, opt.Chrome)
	}
	if opt.Flight != nil {
		t.sinks = append(t.sinks, opt.Flight)
	}
	t.sinks = append(t.sinks, opt.Sinks...)
	if opt.Registry != nil {
		opt.Registry.RegisterCollector(t.stats.WritePrometheus)
	}
	return t
}

// ID returns a process-unique trace identifier for log correlation (the
// -log-level flags attach it to every record). Nil-safe: "" when disabled.
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Stats exposes the per-phase percentile summaries. Nil-safe: a nil tracer
// returns nil, and a nil *PhaseStats is itself inert.
func (t *Tracer) Stats() *PhaseStats {
	if t == nil {
		return nil
	}
	return t.stats
}

// Epoch is the tracer's construction time — the zero point of Chrome trace
// timestamps.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Start opens a root span. Nil-safe: a nil tracer returns a nil span and
// performs no work at all.
func (t *Tracer) Start(name string, phase Phase) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, phase: phase, id: t.ids.Add(1), start: time.Now()}
	s.root = s
	s.treeSize = new(atomic.Int32)
	s.treeSize.Store(1)
	return s
}

// Span is one timed interval. Fields are written by the owning goroutine
// between Start/Child and End; child registration on a shared parent is the
// only cross-goroutine write and is mutex-guarded.
type Span struct {
	tr     *Tracer
	name   string
	phase  Phase
	id     uint64
	parent uint64
	start  time.Time
	end    time.Time

	root     *Span
	treeSize *atomic.Int32

	// sctx is the span's distributed-trace identity (ctx.go). Written once
	// by StartRemote before the span escapes; zero for plain Start spans.
	sctx SpanContext

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dropped  int32
}

// Child opens a sub-span. Nil-safe; when the tree has hit its span cap the
// child is dropped (counted on the root) and nil is returned, which the
// nil-safe API makes transparent to the caller.
func (s *Span) Child(name string, phase Phase) *Span {
	if s == nil {
		return nil
	}
	if s.root.treeSize.Add(1) > maxTreeSpans {
		s.root.treeSize.Add(-1)
		s.root.mu.Lock()
		s.root.dropped++
		s.root.mu.Unlock()
		return nil
	}
	c := &Span{
		tr: s.tr, name: name, phase: phase, id: s.tr.ids.Add(1),
		parent: s.id, root: s.root, treeSize: s.treeSize, start: time.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// setAttr appends one attribute under the span's lock, honoring the cap.
func (s *Span) setAttr(a Attr) {
	s.mu.Lock()
	if len(s.attrs) < maxSpanAttrs {
		s.attrs = append(s.attrs, a)
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute. Nil-safe and allocation-free when
// the span is nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.setAttr(Attr{Key: key, Kind: AttrInt, Num: float64(v)})
}

// SetFloat attaches a float attribute (nil-safe).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.setAttr(Attr{Key: key, Kind: AttrFloat, Num: v})
}

// SetStr attaches a string attribute (nil-safe).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.setAttr(Attr{Key: key, Kind: AttrStr, Str: v})
}

// End closes the span, records its duration into the per-phase statistics
// and delivers it to every sink. End a span exactly once, after its
// children have ended; End is nil-safe and a second End on the same span is
// ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	s.mu.Unlock()
	s.tr.stats.Observe(s.phase, s.end.Sub(s.start))
	for _, sink := range s.tr.sinks {
		sink.OnSpanEnd(s)
	}
}

// Accessors (valid after End; used by sinks and tests).

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// PhaseOf returns the span's pipeline lane (PhaseOther on nil).
func (s *Span) PhaseOf() Phase {
	if s == nil {
		return PhaseOther
	}
	return s.phase
}

// ID returns the span id (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the parent span id (0 for roots and nil spans).
func (s *Span) ParentID() uint64 {
	if s == nil {
		return 0
	}
	return s.parent
}

// IsRoot reports whether the span heads a tree.
func (s *Span) IsRoot() bool { return s != nil && s.parent == 0 }

// StartTime returns the span's start time (zero on nil).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// EndTime returns the span's end time (zero before End or on nil).
func (s *Span) EndTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Duration returns end − start (0 before End or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the span's attributes (nil-safe).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the named attribute's boxed value and whether it exists.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value(), true
		}
	}
	return nil, false
}

// VisitChildren calls fn for each child under the span's lock — the only
// race-safe way for sinks to walk a tree that another goroutine may still
// be extending. Nil-safe.
func (s *Span) VisitChildren(fn func(*Span)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		fn(c)
	}
}

// DroppedChildren reports how many children the tree cap discarded on this
// span (nil-safe).
func (s *Span) DroppedChildren() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.dropped)
}
