package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Trace merging (DESIGN.md §16). Each process writes its own -trace-chrome
// file with timestamps relative to its own tracer epoch, so the router's
// and the shards' files do not share a timeline. MergeChromeTraces joins
// them into one Perfetto-loadable array: each input file becomes one pid,
// and per-file clock offsets are estimated from the distributed-trace spans
// the processes share — a shard span carrying remote_parent belongs inside
// the router span with the same trace_id, so aligning their midpoints
// recovers the epoch skew without any clock protocol on the wire.

// TraceFile is one input: a per-process Chrome trace and a display name
// (typically the file path) used to label its process lane.
type TraceFile struct {
	Name string
	Data []byte
}

// MergeReport summarizes a merge for callers that assert on it (tracesmoke)
// or print it (tools/tracemerge).
type MergeReport struct {
	// Processes lists the input names in pid order (pid = index+1).
	Processes []string
	// Events counts non-metadata events in the merged output.
	Events int
	// Traces maps each distributed trace-id to the sorted set of input
	// names whose spans carry it.
	Traces map[string][]string
	// Offsets maps each input name to the clock offset (µs) added to its
	// timestamps; the reference process has offset 0.
	Offsets map[string]float64
}

// mergeEvent is chromeEvent plus the bookkeeping fields the merge needs.
type mergeEvent struct {
	ev   chromeEvent
	file int
	meta bool
}

// MergeChromeTraces merges per-process Chrome trace files onto one timeline.
// Inputs may be truncated (a crashed process never wrote the closing "]");
// the parser repairs trailing commas and missing terminators. Returns the
// merged JSON array, ready for chrome://tracing or Perfetto.
func MergeChromeTraces(files []TraceFile) ([]byte, MergeReport, error) {
	rep := MergeReport{Traces: map[string][]string{}, Offsets: map[string]float64{}}
	var events []mergeEvent
	for i, f := range files {
		rep.Processes = append(rep.Processes, f.Name)
		evs, err := parseChromeEvents(f.Data)
		if err != nil {
			return nil, rep, fmt.Errorf("parse %s: %w", f.Name, err)
		}
		for _, ev := range evs {
			events = append(events, mergeEvent{ev: ev, file: i, meta: ev.Ph == "M"})
		}
	}

	offsets := estimateOffsets(len(files), events)
	for i, f := range files {
		rep.Offsets[f.Name] = offsets[i]
	}

	// Rewrite: pid = file index + 1, process_name = file name, shifted ts.
	traceFiles := map[string]map[int]bool{}
	var out []chromeEvent
	for _, me := range events {
		ev := me.ev
		ev.Pid = me.file + 1
		if me.meta {
			if ev.Name == "process_name" {
				ev.Args = map[string]any{"name": files[me.file].Name}
			}
			out = append(out, ev)
			continue
		}
		ev.Ts += offsets[me.file]
		if tid, ok := eventTraceID(ev); ok {
			if traceFiles[tid] == nil {
				traceFiles[tid] = map[int]bool{}
			}
			traceFiles[tid][me.file] = true
		}
		out = append(out, ev)
		rep.Events++
	}
	for tid, fs := range traceFiles {
		var names []string
		for fi := range fs {
			names = append(names, files[fi].Name)
		}
		sort.Strings(names)
		rep.Traces[tid] = names
	}

	// Metadata first, then spans by shifted start time.
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false
		}
		return out[i].Ts < out[j].Ts
	})

	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return nil, rep, err
		}
		if i > 0 {
			buf.WriteString(",\n")
		}
		buf.Write(b)
	}
	buf.WriteString("\n]\n")
	return buf.Bytes(), rep, nil
}

// parseChromeEvents decodes a Chrome trace array, tolerating the truncated
// form a killed process leaves behind (no closing "]", possibly a trailing
// comma or a torn final record).
func parseChromeEvents(data []byte) ([]chromeEvent, error) {
	var evs []chromeEvent
	if err := json.Unmarshal(data, &evs); err == nil {
		return evs, nil
	}
	// Repair pass: scan the array body with a quote-aware brace counter and
	// keep the prefix up to the last COMPLETE top-level object — a torn
	// final record (the process died mid-write) is dropped, not guessed at.
	start := bytes.IndexByte(data, '[')
	if start < 0 {
		return nil, fmt.Errorf("not a chrome trace array")
	}
	lastComplete := -1
	depth, inStr, esc := 0, false, false
	for i := start + 1; i < len(data); i++ {
		c := data[i]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				lastComplete = i
			}
		}
	}
	if lastComplete < 0 {
		return nil, fmt.Errorf("not a chrome trace array")
	}
	repaired := append(append([]byte(nil), data[start:lastComplete+1]...), ']')
	if err := json.Unmarshal(repaired, &evs); err != nil {
		return nil, fmt.Errorf("not a chrome trace array")
	}
	return evs, nil
}

// eventTraceID extracts the distributed trace-id attribute, if present.
func eventTraceID(ev chromeEvent) (string, bool) {
	v, ok := ev.Args["trace_id"]
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok && s != ""
}

// estimateOffsets recovers per-file clock offsets (µs to add to each file's
// timestamps) from shared distributed traces. A span with remote_parent is
// the continuation of a span in another file with the same trace_id; on one
// timeline the child's midpoint sits at the parent's (the child covers most
// of the parent's duration — the network skew left over is exactly the
// clock error we cannot observe). The file with the most parent-side spans
// (the router) anchors the timeline at offset 0; other files get the mean
// midpoint delta over every matched pair, resolved breadth-first so shards
// that only ever talk to the router still align through it.
func estimateOffsets(n int, events []mergeEvent) []float64 {
	offsets := make([]float64, n)
	if n <= 1 {
		return offsets
	}
	type anchor struct {
		file int
		mid  float64
	}
	parents := map[string][]anchor{} // trace_id → spans without remote_parent
	children := map[string][]anchor{}
	parentCount := make([]int, n)
	for _, me := range events {
		if me.meta {
			continue
		}
		tid, ok := eventTraceID(me.ev)
		if !ok {
			continue
		}
		a := anchor{file: me.file, mid: me.ev.Ts + me.ev.Dur/2}
		if _, remote := me.ev.Args["remote_parent"]; remote {
			children[tid] = append(children[tid], a)
		} else {
			parents[tid] = append(parents[tid], a)
			parentCount[me.file]++
		}
	}

	ref := 0
	for i, c := range parentCount {
		if c > parentCount[ref] {
			ref = i
		}
	}
	resolved := make([]bool, n)
	resolved[ref] = true

	// Each pass aligns any unresolved file that shares a trace with a
	// resolved one; n−1 passes suffice for any connected topology.
	for pass := 0; pass < n; pass++ {
		progress := false
		sum := make([]float64, n)
		cnt := make([]int, n)
		for tid, kids := range children {
			for _, p := range parents[tid] {
				if !resolved[p.file] {
					continue
				}
				pmid := p.mid + offsets[p.file]
				for _, k := range kids {
					if resolved[k.file] || k.file == p.file {
						continue
					}
					sum[k.file] += pmid - k.mid
					cnt[k.file]++
				}
			}
		}
		for i := 0; i < n; i++ {
			if !resolved[i] && cnt[i] > 0 {
				offsets[i] = sum[i] / float64(cnt[i])
				resolved[i] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return offsets
}
