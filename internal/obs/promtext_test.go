package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a strict parser for the Prometheus text format subset
// this package emits. It rejects malformed lines, unescaped characters,
// samples before their TYPE line, and unsorted family order — the golden
// round-trip the exposition-correctness satellite requires.
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	types := map[string]string{}
	var familyOrder []string
	curFamily := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			types[name] = typ
			familyOrder = append(familyOrder, name)
			curFamily = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		s := parsePromSample(t, ln+1, line)
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.name, "_bucket"), "_sum"), "_count")
		if s.name != curFamily && base != curFamily {
			t.Fatalf("line %d: sample %q outside its family %q", ln+1, s.name, curFamily)
		}
		samples = append(samples, s)
	}
	// Families of the same kind must come out sorted (the registry emits
	// counters, then gauges, then histograms, then collectors).
	kindRank := map[string]int{"counter": 0, "gauge": 1, "histogram": 2, "summary": 3}
	for i := 1; i < len(familyOrder); i++ {
		a, b := familyOrder[i-1], familyOrder[i]
		if kindRank[types[a]] == kindRank[types[b]] && a > b {
			t.Fatalf("families out of order: %q before %q", a, b)
		}
	}
	return samples
}

// parsePromSample parses `name{labels} value` with strict escape handling.
func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.name = line[:i]
	if s.name == "" {
		t.Fatalf("line %d: empty metric name %q", ln, line)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			key := line[i:j]
			if key == "" || j+1 >= len(line) || line[j+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			i = j + 2
			var val strings.Builder
			for {
				if i >= len(line) {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\n' {
					t.Fatalf("line %d: raw newline in label value", ln)
				}
				if c == '\\' {
					if i+1 >= len(line) {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: invalid escape \\%c", ln, line[i+1])
					}
					i += 2
					continue
				}
				val.WriteByte(c)
				i++
			}
			s.labels[key] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			t.Fatalf("line %d: malformed label list in %q", ln, line)
		}
	}
	if i >= len(line) || line[i] != ' ' {
		t.Fatalf("line %d: missing value separator in %q", ln, line)
	}
	raw := line[i+1:]
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil && raw != "+Inf" && raw != "-Inf" && raw != "NaN" {
		t.Fatalf("line %d: bad value %q: %v", ln, raw, err)
	}
	s.value = v
	return s
}

// TestPromTextGoldenRoundTrip is the exposition-correctness golden test:
// metrics with hostile label values and HELP text must render to output a
// strict parser accepts and whose parsed values round-trip exactly.
func TestPromTextGoldenRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total").Add(7)
	r.Help("plain_total", "A counter with\nnewline and back\\slash help.")
	r.Gauge("occupancy").Set(0.625)
	hostile := map[string]string{
		"path":  `C:\temp\"quoted"` + "\nline2",
		"phase": "embed",
	}
	r.CounterWith("events_total", hostile).Add(3)
	r.CounterWith("events_total", map[string]string{"phase": "backward"}).Add(2)
	r.Counter("events_total").Add(5) // unlabeled + labeled in one family
	r.GaugeWith("lane_depth", map[string]string{"lane": "a,b=c"}).Set(1.5)
	r.Histogram("lat_seconds", 0.1, 1).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	samples := parsePromText(t, first)

	get := func(name string, labels map[string]string) float64 {
		t.Helper()
		for _, s := range samples {
			if s.name != name || len(s.labels) != len(labels) {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return s.value
			}
		}
		t.Fatalf("no sample %s%v in:\n%s", name, labels, first)
		return 0
	}
	if get("plain_total", nil) != 7 {
		t.Fatal("plain_total mangled")
	}
	if get("occupancy", nil) != 0.625 {
		t.Fatal("occupancy mangled")
	}
	// The hostile label value must round-trip byte-exact through
	// escape → parse → unescape.
	if get("events_total", hostile) != 3 {
		t.Fatal("hostile label value did not round-trip")
	}
	if get("events_total", map[string]string{"phase": "backward"}) != 2 {
		t.Fatal("second labeled series lost")
	}
	if get("events_total", nil) != 5 {
		t.Fatal("unlabeled sample lost from mixed family")
	}
	if get("lane_depth", map[string]string{"lane": "a,b=c"}) != 1.5 {
		t.Fatal("comma/equals label value did not round-trip")
	}
	if get("lat_seconds_bucket", map[string]string{"le": "1"}) != 1 {
		t.Fatal("histogram bucket mangled")
	}
	if get("lat_seconds_count", nil) != 1 {
		t.Fatal("histogram count mangled")
	}

	// HELP must be escaped (no raw newline may split the comment).
	if !strings.Contains(first, `# HELP plain_total A counter with\nnewline and back\\slash help.`) {
		t.Fatalf("HELP not escaped:\n%s", first)
	}

	// Output must be deterministic across renders.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("exposition output not stable across renders")
	}
}

// TestSnapshot pins the flat registry view the flight recorder embeds.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("b").Set(3.5)
	r.CounterWith("c_total", map[string]string{"k": "v"}).Inc()
	r.Histogram("d_seconds", 1).Observe(0.5)
	snap := r.Snapshot()
	for k, want := range map[string]float64{
		"a_total":         2,
		"b":               3.5,
		`c_total{k="v"}`:  1,
		"d_seconds_count": 1,
		"d_seconds_sum":   0.5,
	} {
		if snap[k] != want {
			t.Fatalf("snapshot[%q] = %v, want %v (full: %v)", k, snap[k], want, snap)
		}
	}
	var nilReg *Registry
	if nilReg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}
