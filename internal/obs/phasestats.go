package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// logBuckets is the bucket count of a LogHist: bucket i holds durations d
// with 2^(i-1) ≤ d < 2^i nanoseconds (bucket 0 holds sub-nanosecond /
// zero observations), covering everything up to ~292 years.
const logBuckets = 64

// LogHist is a fixed-bucket base-2 log histogram of durations: Observe is a
// single atomic increment (no locks, no allocation), and quantiles are
// answered from the bucket counts with at most a factor-√2 relative error —
// exactly the trade the streaming per-phase summaries need. The zero value
// is ready to use; all methods are safe for concurrent use.
type LogHist struct {
	counts [logBuckets]atomic.Int64
	total  atomic.Int64
	sumNs  atomic.Int64
}

// logBucket maps a duration to its bucket index.
func logBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= logBuckets {
		b = logBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *LogHist) Observe(d time.Duration) {
	h.counts[logBucket(d)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *LogHist) Count() int64 { return h.total.Load() }

// Sum returns the total observed time.
func (h *LogHist) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile returns the duration at quantile p ∈ [0, 1], interpolated as the
// geometric midpoint of the bucket containing the p-th observation. Counts
// are read without a global snapshot, so a quantile taken under concurrent
// writes is approximate — fine for monitoring.
func (h *LogHist) Quantile(p float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < logBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i == 0 {
				return time.Duration(1)
			}
			// Bucket i spans [2^(i-1), 2^i) ns; geometric midpoint.
			lo := math.Pow(2, float64(i-1))
			return time.Duration(lo * math.Sqrt2)
		}
	}
	return h.Sum() // unreachable: cum == total ≥ rank by the last bucket
}

// PhaseStats aggregates one LogHist per pipeline phase. A nil *PhaseStats
// is inert (Observe is a no-op, Summary returns nil).
type PhaseStats struct {
	phases [NumPhases]LogHist
}

// NewPhaseStats returns empty per-phase statistics.
func NewPhaseStats() *PhaseStats { return &PhaseStats{} }

// Observe records one span duration under its phase (nil-safe).
func (p *PhaseStats) Observe(ph Phase, d time.Duration) {
	if p == nil {
		return
	}
	if int(ph) >= NumPhases {
		ph = PhaseOther
	}
	p.phases[ph].Observe(d)
}

// Hist exposes the named phase's histogram (nil when the receiver is nil).
func (p *PhaseStats) Hist(ph Phase) *LogHist {
	if p == nil || int(ph) >= NumPhases {
		return nil
	}
	return &p.phases[ph]
}

// PhaseSummary is one phase's percentile digest — the rows of the
// /debug/pipeline endpoint.
type PhaseSummary struct {
	Phase string  `json:"phase"`
	Count int64   `json:"count"`
	SumS  float64 `json:"sum_seconds"`
	P50S  float64 `json:"p50_seconds"`
	P95S  float64 `json:"p95_seconds"`
	P99S  float64 `json:"p99_seconds"`
}

// Summary digests every phase with at least one observation (nil-safe).
func (p *PhaseStats) Summary() []PhaseSummary {
	if p == nil {
		return nil
	}
	var out []PhaseSummary
	for i := 0; i < NumPhases; i++ {
		h := &p.phases[i]
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, PhaseSummary{
			Phase: Phase(i).String(),
			Count: n,
			SumS:  h.Sum().Seconds(),
			P50S:  h.Quantile(0.50).Seconds(),
			P95S:  h.Quantile(0.95).Seconds(),
			P99S:  h.Quantile(0.99).Seconds(),
		})
	}
	return out
}

// WritePrometheus renders the phase digests as one Prometheus summary
// family, `pipeline_phase_seconds{phase=…,quantile=…}`. It is the collector
// NewTracer registers into a Registry. Nil-safe.
func (p *PhaseStats) WritePrometheus(w io.Writer) error {
	if p == nil {
		return nil
	}
	sums := p.Summary()
	if len(sums) == 0 {
		return nil
	}
	const name = "pipeline_phase_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Span duration per pipeline phase.\n# TYPE %s summary\n", name, name); err != nil {
		return err
	}
	for _, s := range sums {
		ph := escapeLabelValue(s.Phase)
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", s.P50S}, {"0.95", s.P95S}, {"0.99", s.P99S}} {
			if _, err := fmt.Fprintf(w, "%s{phase=\"%s\",quantile=\"%s\"} %s\n",
				name, ph, q.q, formatFloat(q.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum{phase=\"%s\"} %s\n%s_count{phase=\"%s\"} %d\n",
			name, ph, formatFloat(s.SumS), name, ph, s.Count); err != nil {
			return err
		}
	}
	return nil
}
