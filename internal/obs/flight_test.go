package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func readDump(t *testing.T, path string) flightDump {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d flightDump
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	return d
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.Gauge("cascade_batch_size").Set(144)
	fr := NewFlightRecorder(dir, 32, reg)
	fr.SetClock(func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) })
	tr := NewTracer(TracerOptions{Flight: fr})

	for b := 0; b < 3; b++ {
		root := tr.Start("batch", PhaseOther)
		root.SetInt("batch", int64(b))
		c := root.Child("embed", PhaseEmbed)
		c.End()
		root.End()
	}
	if got := fr.Retained(); got != 3 {
		t.Fatalf("retained = %d, want 3", got)
	}

	path, err := fr.Dump("health_rollback")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "health_rollback") {
		t.Fatalf("dump path %q", path)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("dump wrote %d files, want exactly 1", len(files))
	}

	d := readDump(t, path)
	if d.Reason != "health_rollback" {
		t.Fatalf("reason = %q", d.Reason)
	}
	if d.Time != "2026-08-05T12:00:00Z" {
		t.Fatalf("time = %q (injected clock ignored)", d.Time)
	}
	if len(d.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(d.Spans))
	}
	// Trees must come out oldest-first with their children and attrs.
	for i, s := range d.Spans {
		if s.Name != "batch" || len(s.Children) != 1 || s.Children[0].Phase != "embed_forward" {
			t.Fatalf("span %d malformed: %+v", i, s)
		}
		if int(s.Attrs["batch"].(float64)) != i {
			t.Fatalf("span %d out of order: attrs=%v", i, s.Attrs)
		}
	}
	if d.Metrics["cascade_batch_size"] != 144 {
		t.Fatalf("registry snapshot missing: %v", d.Metrics)
	}

	// A second dump gets a fresh sequence number — one file per trigger.
	p2, err := fr.Dump("breaker_open")
	if err != nil {
		t.Fatal(err)
	}
	if p2 == path {
		t.Fatal("dump reused a file name")
	}
	files, _ = os.ReadDir(dir)
	if len(files) != 2 {
		t.Fatalf("now %d files, want 2", len(files))
	}
}

// TestFlightRecorderBounded pins the ring-buffer retention: only the last N
// root trees survive, oldest evicted first.
func TestFlightRecorderBounded(t *testing.T) {
	const keep = 16
	fr := NewFlightRecorder(t.TempDir(), keep, nil)
	tr := NewTracer(TracerOptions{Flight: fr})
	const total = 100
	for b := 0; b < total; b++ {
		root := tr.Start("batch", PhaseOther)
		root.SetInt("batch", int64(b))
		// Children must not occupy ring slots.
		root.Child("embed", PhaseEmbed).End()
		root.End()
	}
	if got := fr.Retained(); got != keep {
		t.Fatalf("retained = %d, want %d", got, keep)
	}
	path, err := fr.Dump("test")
	if err != nil {
		t.Fatal(err)
	}
	d := readDump(t, path)
	if len(d.Spans) != keep {
		t.Fatalf("dumped %d trees, want %d", len(d.Spans), keep)
	}
	for _, s := range d.Spans {
		if b := int(s.Attrs["batch"].(float64)); b < total-keep {
			t.Fatalf("retained stale batch %d (older than last %d)", b, keep)
		}
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"health_rollback": "health_rollback",
		"Breaker Open!":   "breaker_open_",
		"":                "unknown",
		"../../etc":       "______etc",
	} {
		if got := sanitizeReason(in); got != want {
			t.Fatalf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFlightDumpNaNAttrs: the NaN-loss batch is exactly the tree a health
// dump must serialize, and encoding/json rejects non-finite floats — they
// must come out as strings.
func TestFlightDumpNaNAttrs(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(dir, 8, nil)
	tr := NewTracer(TracerOptions{Flight: f})
	sp := tr.Start("batch", PhaseOther)
	sp.SetFloat("loss", math.NaN())
	sp.SetFloat("grad_norm", math.Inf(1))
	sp.End()
	path, err := f.Dump("health_rollback")
	if err != nil {
		t.Fatalf("dump with NaN attrs failed: %v", err)
	}
	d := readDump(t, path)
	if len(d.Spans) != 1 {
		t.Fatalf("spans %d", len(d.Spans))
	}
	if got := d.Spans[0].Attrs["loss"]; got != "NaN" {
		t.Fatalf("loss attr %v (%T), want \"NaN\"", got, got)
	}
	if got := d.Spans[0].Attrs["grad_norm"]; got != "+Inf" {
		t.Fatalf("grad_norm attr %v, want \"+Inf\"", got)
	}
}

func TestFlightDumpNamesNeverCollide(t *testing.T) {
	// Multiple processes sharing one -flight-dir (a router and its shards,
	// or a shard pair) must never overwrite each other's dumps: each
	// recorder's filenames carry a per-recorder pid+nonce tag. Two
	// recorders, same dir, same reason, same sequence numbers — every dump
	// must land in a distinct file.
	dir := t.TempDir()
	a := NewFlightRecorder(dir, 4, nil)
	b := NewFlightRecorder(dir, 4, nil)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		for _, fr := range []*FlightRecorder{a, b} {
			path, err := fr.Dump("breaker_open")
			if err != nil {
				t.Fatal(err)
			}
			if seen[path] {
				t.Fatalf("dump path reused: %s", path)
			}
			seen[path] = true
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("dump missing on disk: %v", err)
			}
			base := filepath.Base(path)
			if !strings.HasPrefix(base, "flight-") || !strings.HasSuffix(base, "-breaker_open.json") {
				t.Fatalf("dump name %q lost the flight-*-<reason>.json shape", base)
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("want 6 distinct dumps, got %d", len(seen))
	}
}
