package obs

import (
	"net/http"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-aabbccddeeff00112233445566778899-0102030405060708-01"
	sc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid traceparent rejected: %s", valid)
	}
	if got := sc.TraceIDString(); got != "aabbccddeeff00112233445566778899" {
		t.Fatalf("trace-id = %s", got)
	}
	if got := sc.SpanIDString(); got != "0102030405060708" {
		t.Fatalf("span-id = %s", got)
	}
	if got := sc.Traceparent(); got != valid {
		t.Fatalf("roundtrip = %s, want %s", got, valid)
	}

	// A higher version with extra fields must still parse (W3C forward
	// compatibility), as long as the known prefix has the right shape.
	if _, ok := ParseTraceparent(valid[:len(valid)-2] + "01-extrafield"); !ok {
		t.Fatal("future-version traceparent with appended field rejected")
	}

	bad := []string{
		"",
		"00",
		"00-aabbccddeeff00112233445566778899-0102030405060708",     // no flags
		"00-aabbccddeeff00112233445566778899-0102030405060708-01x", // junk tail, no separator
		"00-00000000000000000000000000000000-0102030405060708-01",  // zero trace-id
		"00-aabbccddeeff00112233445566778899-0000000000000000-01",  // zero span-id
		"ff-aabbccddeeff00112233445566778899-0102030405060708-01",  // forbidden version
		"00-gabbccddeeff00112233445566778899-0102030405060708-01",  // non-hex
		"00_aabbccddeeff00112233445566778899-0102030405060708-01",  // wrong separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("malformed traceparent accepted: %q", s)
		}
	}
}

func TestSpanContextInjectExtract(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatal("NewSpanContext not valid")
	}
	h := http.Header{}
	sc.Inject(h)
	got, ok := Extract(h)
	if !ok || got != sc {
		t.Fatalf("extract = %+v ok=%v, want %+v", got, ok, sc)
	}

	// The zero context injects nothing and extracts as absent.
	empty := http.Header{}
	(SpanContext{}).Inject(empty)
	if v := empty.Get(TraceparentHeader); v != "" {
		t.Fatalf("zero context injected %q", v)
	}
	if _, ok := Extract(empty); ok {
		t.Fatal("Extract reported ok on empty headers")
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	tr := NewTracer(TracerOptions{})

	// Continuation: the child keeps the parent's trace-id, mints its own
	// span-id, and records the remote parent span.
	parent := NewSpanContext()
	sp := tr.StartRemote("serve_ingest", PhaseOther, parent)
	child := sp.SpanContext()
	if child.TraceID != parent.TraceID {
		t.Fatalf("trace-id not continued: %s vs %s", child.TraceIDString(), parent.TraceIDString())
	}
	if child.SpanID == parent.SpanID {
		t.Fatal("child reused the parent span-id")
	}
	if got := sp.TraceID(); got != parent.TraceIDString() {
		t.Fatalf("Span.TraceID = %s, want %s", got, parent.TraceIDString())
	}
	if v, _ := sp.Attr("trace_id"); v != parent.TraceIDString() {
		t.Fatalf("trace_id attr = %v", v)
	}
	if v, _ := sp.Attr("remote_parent"); v != parent.SpanIDString() {
		t.Fatalf("remote_parent attr = %v", v)
	}
	sp.End()

	// Root: no parent means a fresh trace-id and no remote_parent attr.
	root := tr.StartRemote("router_ingest", PhaseOther, SpanContext{})
	if !root.SpanContext().Valid() {
		t.Fatal("root StartRemote did not mint a context")
	}
	if root.SpanContext().TraceID == parent.TraceID {
		t.Fatal("fresh root reused an existing trace-id")
	}
	if _, ok := root.Attr("remote_parent"); ok {
		t.Fatal("fresh root carries remote_parent")
	}
	root.End()

	// Nil-safety mirrors the rest of the tracing API.
	var nilTr *Tracer
	nsp := nilTr.StartRemote("x", PhaseOther, parent)
	if nsp.SpanContext().Valid() || nsp.TraceID() != "" {
		t.Fatal("nil tracer span has a context")
	}
	nsp.End()
}

func TestStartRemoteTraceIDReachesChrome(t *testing.T) {
	var buf strings.Builder
	cw := NewChromeTrace(&buf)
	tr := NewTracer(TracerOptions{Chrome: cw})
	parent := NewSpanContext()
	sp := tr.StartRemote("serve_score", PhaseOther, parent)
	sp.End()
	cw.Close()
	if !strings.Contains(buf.String(), parent.TraceIDString()) {
		t.Fatalf("chrome trace missing trace_id %s:\n%s", parent.TraceIDString(), buf.String())
	}
}
