package obs

import (
	"encoding/json"
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// ErrTraceClosed is returned by Emit after Close.
var ErrTraceClosed = errors.New("obs: trace sink closed")

// TraceSink writes one JSON record per line (JSONL) to an underlying
// writer. Emit is safe for concurrent use; records are never interleaved.
// The training loop emits one record per batch, the serving layer one per
// request — downstream tooling (jq, pandas) consumes the files directly.
type TraceSink struct {
	mu      sync.Mutex
	enc     *json.Encoder
	closer  io.Closer
	records atomic.Int64
	closed  bool
	err     error
}

// NewTrace wraps w in a trace sink. If w also implements io.Closer,
// Close will close it.
func NewTrace(w io.Writer) *TraceSink {
	t := &TraceSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// Emit appends one record. A nil sink is a no-op, so call sites can emit
// unconditionally. The first write error sticks and is returned by every
// later Emit and by Close; emitting after Close returns ErrTraceClosed
// instead of writing to a closed file.
func (t *TraceSink) Emit(v any) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		if t.err != nil {
			return t.err
		}
		return ErrTraceClosed
	}
	if t.err != nil {
		return t.err
	}
	if err := t.enc.Encode(v); err != nil {
		t.err = err
		return err
	}
	t.records.Add(1)
	return nil
}

// Records returns how many records were emitted successfully.
func (t *TraceSink) Records() int64 {
	if t == nil {
		return 0
	}
	return t.records.Load()
}

// Close closes the underlying writer when it is closable and returns the
// sticky write error, if any. Close is idempotent; later Emits fail with
// ErrTraceClosed.
func (t *TraceSink) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.closer != nil {
		if cerr := t.closer.Close(); cerr != nil && t.err == nil {
			t.err = cerr
		}
		t.closer = nil
	}
	return t.err
}
