package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on postmortem buffer: it keeps the last N
// completed root span trees (whole batches) in lock-striped ring buffers and,
// when something goes wrong — health rollback, replica eviction, breaker
// open — writes them plus a registry snapshot to one bounded JSON file. The
// point is to answer "what was the scheduler doing right before the failure"
// without anyone having enabled tracing in advance.
//
// Retention is bounded twice over: ring capacity bounds tree count, and
// span.go's maxTreeSpans/maxSpanAttrs bound each tree, so the recorder's
// memory is O(N · maxTreeSpans) regardless of workload. A nil *FlightRecorder
// is inert.
type FlightRecorder struct {
	dir    string
	tag    string        // per-process filename tag (pid + nonce)
	reg    *Registry
	seq    atomic.Uint64 // dump file sequence
	next   atomic.Uint64 // round-robin stripe cursor
	now    func() time.Time
	stripe [flightStripes]flightStripe
}

// flightStripes is the lock-stripe count; concurrent trainers/replicas hash
// onto different stripes so span retention never serializes them.
const flightStripes = 8

type flightStripe struct {
	mu    sync.Mutex
	ring  []*Span
	head  int
	count int
}

// keep retains one root tree, evicting the oldest when full.
func (st *flightStripe) keep(s *Span) {
	st.mu.Lock()
	if st.count < len(st.ring) {
		st.ring[(st.head+st.count)%len(st.ring)] = s
		st.count++
	} else {
		st.ring[st.head] = s
		st.head = (st.head + 1) % len(st.ring)
	}
	st.mu.Unlock()
}

// snapshot returns the stripe's trees oldest-first.
func (st *flightStripe) snapshot() []*Span {
	st.mu.Lock()
	out := make([]*Span, 0, st.count)
	for i := 0; i < st.count; i++ {
		out = append(out, st.ring[(st.head+i)%len(st.ring)])
	}
	st.mu.Unlock()
	return out
}

// NewFlightRecorder records the last lastN root span trees and dumps them
// into dir (created on first dump). reg, when non-nil, contributes a metric
// snapshot to each dump — that is how ABS state (cascade_batch_size etc.)
// lands in postmortems.
func NewFlightRecorder(dir string, lastN int, reg *Registry) *FlightRecorder {
	if lastN < flightStripes {
		lastN = flightStripes
	}
	// The tag makes dump names unique across processes sharing one dir (a
	// router and its shards all dumping on the same failure): pid separates
	// live processes, the random nonce separates pid reuse across restarts
	// and multiple recorders inside one test process.
	var nonce [4]byte
	_, _ = rand.Read(nonce[:])
	tag := fmt.Sprintf("p%d-%s", os.Getpid(), hex.EncodeToString(nonce[:]))
	f := &FlightRecorder{dir: dir, tag: tag, reg: reg, now: time.Now}
	per := (lastN + flightStripes - 1) / flightStripes
	for i := range f.stripe {
		f.stripe[i].ring = make([]*Span, per)
	}
	return f
}

// SetClock overrides the recorder's wall clock (tests).
func (f *FlightRecorder) SetClock(now func() time.Time) {
	if f == nil || now == nil {
		return
	}
	f.now = now
}

// OnSpanEnd implements SpanSink: root trees go into the ring, child spans
// are ignored (they ride along inside their root). Nil-safe.
func (f *FlightRecorder) OnSpanEnd(s *Span) {
	if f == nil || s == nil || !s.IsRoot() {
		return
	}
	f.stripe[f.next.Add(1)%flightStripes].keep(s)
}

// flightSpan is the dump-file representation of one span tree node.
type flightSpan struct {
	Name     string         `json:"name"`
	Phase    string         `json:"phase"`
	ID       uint64         `json:"id"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Dropped  int            `json:"dropped_children,omitempty"`
	Children []flightSpan   `json:"children,omitempty"`
}

func encodeTree(s *Span, epoch time.Time) flightSpan {
	out := flightSpan{
		Name:    s.Name(),
		Phase:   s.PhaseOf().String(),
		ID:      s.ID(),
		StartUS: s.StartTime().Sub(epoch).Microseconds(),
		DurUS:   s.Duration().Microseconds(),
		Dropped: s.DroppedChildren(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	s.VisitChildren(func(c *Span) {
		out.Children = append(out.Children, encodeTree(c, epoch))
	})
	return out
}

// flightDump is the on-disk schema of one dump file.
type flightDump struct {
	Reason  string             `json:"reason"`
	Time    string             `json:"time"`
	Spans   []flightSpan       `json:"spans"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Dump writes exactly one file, flight-<tag>-<seq>-<reason>.json, holding
// the retained span trees (oldest first) and a registry snapshot. The tag
// (pid + random nonce) keeps names collision-free when several processes —
// the router and its shards — share one -flight-dir. It returns the file
// path. Nil-safe: a nil recorder dumps nothing and returns "".
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	var roots []*Span
	for i := range f.stripe {
		roots = append(roots, f.stripe[i].snapshot()...)
	}
	// Merge stripes into global start-time order.
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].StartTime().Before(roots[j-1].StartTime()); j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	var epoch time.Time
	if len(roots) > 0 {
		epoch = roots[0].StartTime()
	}
	dump := flightDump{
		Reason:  reason,
		Time:    f.now().UTC().Format(time.RFC3339Nano),
		Spans:   make([]flightSpan, 0, len(roots)),
		Metrics: f.reg.Snapshot(),
	}
	for _, r := range roots {
		dump.Spans = append(dump.Spans, encodeTree(r, epoch))
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", fmt.Errorf("flight recorder: %w", err)
	}
	name := fmt.Sprintf("flight-%s-%04d-%s.json", f.tag, f.seq.Add(1), sanitizeReason(reason))
	path := filepath.Join(f.dir, name)
	buf, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flight recorder: %w", err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", fmt.Errorf("flight recorder: %w", err)
	}
	return path, nil
}

// Retained reports how many root trees the ring currently holds (nil-safe).
func (f *FlightRecorder) Retained() int {
	if f == nil {
		return 0
	}
	n := 0
	for i := range f.stripe {
		f.stripe[i].mu.Lock()
		n += f.stripe[i].count
		f.stripe[i].mu.Unlock()
	}
	return n
}

// sanitizeReason keeps dump-file names filesystem-safe.
func sanitizeReason(r string) string {
	if r == "" {
		return "unknown"
	}
	b := []byte(r)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-':
		case c >= 'A' && c <= 'Z':
			b[i] = c - 'A' + 'a'
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
