package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLogHistQuantiles(t *testing.T) {
	var h LogHist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 90 fast observations (~1µs) and 10 slow (~1ms): p50 must land in the
	// fast bucket, p99 in the slow one, both within the factor-√2 error of
	// the log bucketing.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 90*time.Microsecond + 10*time.Millisecond; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 500*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	if p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms", p99)
	}
	if a, b := h.Quantile(-1), h.Quantile(2); a > b {
		t.Fatalf("quantile clamping broken: %v > %v", a, b)
	}
	// Quantile must be monotonically non-decreasing in p across the range.
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%.2f) = %v < Quantile(%.2f) = %v", p, q, p-0.05, prev)
		}
		prev = q
	}
	// Out-of-range p clamps to the extremes rather than extrapolating.
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want Quantile(0) = %v", h.Quantile(-1), h.Quantile(0))
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want Quantile(1) = %v", h.Quantile(2), h.Quantile(1))
	}
	if h.Quantile(1) < h.Quantile(0.99) {
		t.Fatalf("p100 %v below p99 %v", h.Quantile(1), h.Quantile(0.99))
	}
}

func TestPhaseStatsSummary(t *testing.T) {
	ps := NewPhaseStats()
	ps.Observe(PhaseEmbed, 2*time.Millisecond)
	ps.Observe(PhaseEmbed, 2*time.Millisecond)
	ps.Observe(PhaseBackward, 8*time.Millisecond)
	ps.Observe(Phase(200), time.Millisecond) // out of range → other

	sums := ps.Summary()
	if len(sums) != 3 {
		t.Fatalf("summaries = %d, want 3 (embed, backward, other)", len(sums))
	}
	byPhase := map[string]PhaseSummary{}
	for _, s := range sums {
		byPhase[s.Phase] = s
	}
	if byPhase["embed_forward"].Count != 2 {
		t.Fatalf("embed count = %d", byPhase["embed_forward"].Count)
	}
	if got := byPhase["embed_forward"].SumS; got != 0.004 {
		t.Fatalf("embed sum = %v", got)
	}
	if byPhase["other"].Count != 1 {
		t.Fatalf("out-of-range phase not folded into other: %v", byPhase)
	}
	if p50 := byPhase["backward"].P50S; p50 < 0.004 || p50 > 0.016 {
		t.Fatalf("backward p50 = %v, want ~0.008", p50)
	}
}

func TestPhaseStatsPrometheus(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{Registry: reg})
	s := tr.Start("batch", PhaseOther)
	s.Child("embed", PhaseEmbed).End()
	s.End()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pipeline_phase_seconds summary",
		`pipeline_phase_seconds{phase="embed_forward",quantile="0.5"}`,
		`pipeline_phase_seconds{phase="embed_forward",quantile="0.99"}`,
		`pipeline_phase_seconds_count{phase="embed_forward"} 1`,
		`pipeline_phase_seconds_count{phase="other"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
