package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// ChromeTraceWriter streams completed spans as Chrome trace events — the
// JSON array format chrome://tracing and Perfetto load directly. Every
// pipeline phase gets its own lane (tid) named by a thread_name metadata
// event, so the TG-Diffuser / SG-Filter / ABS / embed / backward / optimizer
// / memory-update / barrier breakdown reads as eight parallel tracks.
//
// Writes are mutex-serialized; each span becomes one complete ("ph":"X")
// event at End time. Close terminates the JSON array; the file is invalid
// JSON until then (Chrome tolerates a truncated array, encoding/json does
// not).
type ChromeTraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	epoch  time.Time
	wrote  bool
	closed bool
	err    error
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`  // microseconds since epoch
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeTrace wraps w in a trace writer and emits the lane-naming
// metadata for all eight pipeline phases up front, so every lane exists in
// the output even when a run never touches it (e.g. dist_barrier in a
// single-replica run). If w is an io.Closer, Close closes it.
func NewChromeTrace(w io.Writer) *ChromeTraceWriter {
	c := &ChromeTraceWriter{w: w, epoch: time.Now()}
	if cl, ok := w.(io.Closer); ok {
		c.closer = cl
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.write([]byte("[\n"))
	for i := 0; i < NumPhases; i++ {
		c.emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": Phase(i).String()},
		})
	}
	c.emit(chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "cascade"},
	})
	return c
}

// write appends raw bytes, latching the first error. Caller holds c.mu.
func (c *ChromeTraceWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	_, c.err = c.w.Write(b)
}

// emit appends one event (comma-separated). Caller holds c.mu.
func (c *ChromeTraceWriter) emit(ev chromeEvent) {
	if c.err != nil || c.closed {
		return
	}
	buf, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if c.wrote {
		c.write([]byte(",\n"))
	}
	c.wrote = true
	c.write(buf)
}

// OnSpanEnd implements SpanSink: one complete event per span, laned by
// phase. Nil-safe so a Tracer without a Chrome writer costs nothing.
func (c *ChromeTraceWriter) OnSpanEnd(s *Span) {
	if c == nil || s == nil {
		return
	}
	ev := chromeEvent{
		Name: s.Name(), Ph: "X", Pid: 1, Tid: int(s.PhaseOf()),
		Ts:  float64(s.StartTime().Sub(c.epoch).Nanoseconds()) / 1e3,
		Dur: float64(s.Duration().Nanoseconds()) / 1e3,
	}
	attrs := s.Attrs()
	if len(attrs) > 0 || s.ParentID() != 0 {
		ev.Args = make(map[string]any, len(attrs)+2)
		for _, a := range attrs {
			ev.Args[a.Key] = a.Value()
		}
		ev.Args["span_id"] = s.ID()
		if p := s.ParentID(); p != 0 {
			ev.Args["parent_id"] = p
		}
	}
	c.mu.Lock()
	c.emit(ev)
	c.mu.Unlock()
}

// Close terminates the JSON array and closes the underlying writer when it
// is closable. Returns the first write error. Nil-safe; spans ended after
// Close are dropped.
func (c *ChromeTraceWriter) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.write([]byte("\n]\n"))
	c.closed = true
	if c.closer != nil {
		if cerr := c.closer.Close(); cerr != nil && c.err == nil {
			c.err = cerr
		}
		c.closer = nil
	}
	return c.err
}

// Err returns the latched write error, if any (nil-safe).
func (c *ChromeTraceWriter) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
