package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// SLO burn-rate tracking (DESIGN.md §16). An SLO tracks two service-level
// indicators over every observed request — availability (non-5xx fraction)
// and latency (fraction under a threshold) — in per-second ring buffers, and
// reports the classic multi-window burn rate for each: the ratio of the
// window's error rate to the error budget the objective allows. Burn 1.0
// means the budget is being consumed exactly at the rate that exhausts it at
// the window's end; 14.4 on the short window is the textbook page-worthy
// fast burn. Two windows (5m short / 1h long by default) give the usual
// fast-burn/slow-burn pairing without retaining per-request data.
//
// The tracker is mutex-guarded and cheap (one ring slot touched per
// Observe); serve and the router call it from their request middleware.

// SLOConfig parameterizes an SLO tracker. Zero fields take the defaults.
type SLOConfig struct {
	// AvailabilityObjective is the target fraction of successful requests
	// (default 0.999 — a 0.1% error budget).
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of requests faster than
	// LatencyThreshold (default 0.99).
	LatencyObjective float64
	// LatencyThreshold is the latency SLI's cutoff (default 250ms).
	LatencyThreshold time.Duration
	// ShortWindow is the fast-burn window (default 5m).
	ShortWindow time.Duration
	// LongWindow is the slow-burn window and the ring's retention
	// (default 1h). Must be ≥ ShortWindow.
	LongWindow time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.AvailabilityObjective == 0 {
		c.AvailabilityObjective = 0.999
	}
	if c.LatencyObjective == 0 {
		c.LatencyObjective = 0.99
	}
	if c.LatencyThreshold == 0 {
		c.LatencyThreshold = 250 * time.Millisecond
	}
	if c.ShortWindow == 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow == 0 {
		c.LongWindow = time.Hour
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = c.ShortWindow
	}
	return c
}

// sloBucket accumulates one second of outcomes.
type sloBucket struct {
	total  uint64
	errors uint64
	slow   uint64
}

// SLO is a multi-window error-budget burn tracker. The zero value is not
// usable; construct with NewSLO. A nil *SLO is inert.
type SLO struct {
	cfg SLOConfig

	mu      sync.Mutex
	buckets []sloBucket
	secs    []int64 // unix second each slot currently holds; -1 when empty
	now     func() time.Time
}

// NewSLO builds a tracker with cfg (zero fields defaulted).
func NewSLO(cfg SLOConfig) *SLO {
	cfg = cfg.withDefaults()
	n := int(cfg.LongWindow / time.Second)
	if n < 1 {
		n = 1
	}
	s := &SLO{cfg: cfg, buckets: make([]sloBucket, n), secs: make([]int64, n), now: time.Now}
	for i := range s.secs {
		s.secs[i] = -1
	}
	return s
}

// Config returns the tracker's resolved configuration.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}.withDefaults()
	}
	return s.cfg
}

// SetClock replaces the time source (tests only).
func (s *SLO) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Observe records one request outcome: whether it succeeded (for the
// availability SLI) and how long it took (for the latency SLI). Nil-safe.
func (s *SLO) Observe(ok bool, latency time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	sec := s.now().Unix()
	idx := int(sec % int64(len(s.buckets)))
	if idx < 0 {
		idx += len(s.buckets)
	}
	if s.secs[idx] != sec {
		s.buckets[idx] = sloBucket{}
		s.secs[idx] = sec
	}
	b := &s.buckets[idx]
	b.total++
	if !ok {
		b.errors++
	}
	if latency > s.cfg.LatencyThreshold {
		b.slow++
	}
	s.mu.Unlock()
}

// SLOWindow is one window's rolled-up SLI state.
type SLOWindow struct {
	// Window is the lookback this row summarizes.
	Window time.Duration
	// Total, Errors and Slow count requests observed in the window.
	Total  uint64
	Errors uint64
	Slow   uint64
	// Availability is the achieved success fraction (1 when Total is 0:
	// an idle window has burned no budget).
	Availability float64
	// FastRate is the achieved under-threshold fraction (1 when idle).
	FastRate float64
	// AvailabilityBurn is errRate / (1 − availability objective); 1.0
	// consumes the budget exactly over the window.
	AvailabilityBurn float64
	// LatencyBurn is slowRate / (1 − latency objective).
	LatencyBurn float64
	// AvailabilityBudgetLeft and LatencyBudgetLeft are the fraction of
	// each window's error budget still unspent (clamped to [0,1]).
	AvailabilityBudgetLeft float64
	LatencyBudgetLeft      float64
}

// Window rolls up the last d of observations. d is clamped to the ring's
// retention (LongWindow). Nil-safe: a nil tracker reports an idle window.
func (s *SLO) Window(d time.Duration) SLOWindow {
	if s == nil {
		return SLOWindow{Window: d, Availability: 1, FastRate: 1, AvailabilityBudgetLeft: 1, LatencyBudgetLeft: 1}
	}
	if d > s.cfg.LongWindow {
		d = s.cfg.LongWindow
	}
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w := SLOWindow{Window: d}
	s.mu.Lock()
	nowSec := s.now().Unix()
	for sec := nowSec - secs + 1; sec <= nowSec; sec++ {
		idx := int(sec % int64(len(s.buckets)))
		if idx < 0 {
			idx += len(s.buckets)
		}
		if s.secs[idx] != sec {
			continue
		}
		b := s.buckets[idx]
		w.Total += b.total
		w.Errors += b.errors
		w.Slow += b.slow
	}
	availObj, latObj := s.cfg.AvailabilityObjective, s.cfg.LatencyObjective
	s.mu.Unlock()

	w.Availability, w.FastRate = 1, 1
	if w.Total > 0 {
		w.Availability = 1 - float64(w.Errors)/float64(w.Total)
		w.FastRate = 1 - float64(w.Slow)/float64(w.Total)
	}
	w.AvailabilityBurn = burnRate(1-w.Availability, availObj)
	w.LatencyBurn = burnRate(1-w.FastRate, latObj)
	w.AvailabilityBudgetLeft = clamp01(1 - w.AvailabilityBurn)
	w.LatencyBudgetLeft = clamp01(1 - w.LatencyBurn)
	return w
}

// burnRate is errRate over the budget the objective leaves. An objective of
// 1.0 has zero budget: any error is an infinite burn, represented by a large
// finite sentinel so the exposition stays parseable.
func burnRate(errRate, objective float64) float64 {
	if errRate <= 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		return 1e9
	}
	return errRate / budget
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Scorecard reports both configured windows, short first.
func (s *SLO) Scorecard() []SLOWindow {
	cfg := s.Config()
	return []SLOWindow{s.Window(cfg.ShortWindow), s.Window(cfg.LongWindow)}
}

// windowLabel renders a duration as a compact label ("5m", "1h") by
// stripping time.Duration.String's zero-valued trailing units.
func windowLabel(d time.Duration) string {
	s := d.String()
	for _, suffix := range []string{"m0s", "h0m"} {
		if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
			s = s[:len(s)-len(suffix)+1]
		}
	}
	return s
}

// Register adds the tracker to reg's exposition as a collector emitting the
// slo_* gauge families:
//
//	slo_availability_burn_rate{window="5m"}  — availability SLI burn
//	slo_latency_burn_rate{window="5m"}       — latency SLI burn
//	slo_error_budget_remaining{sli="availability",window="5m"}
//	slo_window_requests{window="5m"}         — observations in the window
//
// one sample per configured window.
func (s *SLO) Register(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.RegisterCollector(func(w io.Writer) error {
		wins := s.Scorecard()
		fmt.Fprintf(w, "# HELP slo_availability_burn_rate Error-budget burn rate of the availability SLI (1.0 exhausts the budget over the window).\n")
		fmt.Fprintf(w, "# TYPE slo_availability_burn_rate gauge\n")
		for _, win := range wins {
			fmt.Fprintf(w, "slo_availability_burn_rate{window=%q} %s\n", windowLabel(win.Window), formatFloat(win.AvailabilityBurn))
		}
		fmt.Fprintf(w, "# HELP slo_latency_burn_rate Error-budget burn rate of the latency SLI.\n")
		fmt.Fprintf(w, "# TYPE slo_latency_burn_rate gauge\n")
		for _, win := range wins {
			fmt.Fprintf(w, "slo_latency_burn_rate{window=%q} %s\n", windowLabel(win.Window), formatFloat(win.LatencyBurn))
		}
		fmt.Fprintf(w, "# HELP slo_error_budget_remaining Fraction of the window's error budget unspent, per SLI.\n")
		fmt.Fprintf(w, "# TYPE slo_error_budget_remaining gauge\n")
		for _, win := range wins {
			fmt.Fprintf(w, "slo_error_budget_remaining{sli=\"availability\",window=%q} %s\n", windowLabel(win.Window), formatFloat(win.AvailabilityBudgetLeft))
		}
		for _, win := range wins {
			fmt.Fprintf(w, "slo_error_budget_remaining{sli=\"latency\",window=%q} %s\n", windowLabel(win.Window), formatFloat(win.LatencyBudgetLeft))
		}
		fmt.Fprintf(w, "# HELP slo_window_requests Requests observed in each SLO window.\n")
		fmt.Fprintf(w, "# TYPE slo_window_requests gauge\n")
		for _, win := range wins {
			fmt.Fprintf(w, "slo_window_requests{window=%q} %d\n", windowLabel(win.Window), win.Total)
		}
		return nil
	})
}

// FormatScorecard renders the scorecard as aligned human-readable lines —
// the block tools/chaos prints per scenario. name labels the workload.
func (s *SLO) FormatScorecard(name string) string {
	cfg := s.Config()
	out := fmt.Sprintf("SLO scorecard [%s] (availability %.4g, latency %.4g @ %s):\n",
		name, cfg.AvailabilityObjective, cfg.LatencyObjective, cfg.LatencyThreshold)
	wins := s.Scorecard()
	sort.SliceStable(wins, func(i, j int) bool { return wins[i].Window < wins[j].Window })
	for _, w := range wins {
		out += fmt.Sprintf("  window %-4s requests=%-6d avail=%.5f burn=%-8.3g fast=%.5f lat_burn=%-8.3g budget_left avail=%.3f lat=%.3f\n",
			windowLabel(w.Window), w.Total, w.Availability, w.AvailabilityBurn,
			w.FastRate, w.LatencyBurn, w.AvailabilityBudgetLeft, w.LatencyBudgetLeft)
	}
	return out
}
