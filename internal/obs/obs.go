// Package obs is the observability substrate of the repo's deployment
// story: a small, dependency-free metrics registry (atomic counters,
// gauges, fixed-bucket histograms and wall-clock timers) plus a JSONL
// trace sink and a hierarchical span tracer (span.go) with Chrome-trace,
// flight-recorder and percentile-summary consumers. The training loop,
// the Cascade scheduler, the simulated device and the serving layer all
// publish into a Registry; the serving layer exposes it in Prometheus
// text format at GET /metrics, and the cmd binaries can dump it after a
// run.
//
// Design constraints, in order:
//
//   - Standard library only (ROADMAP rule: no external dependencies).
//   - Cheap on the hot path: counters and gauges are single atomics;
//     histograms take one short mutex for a binary search over fixed
//     bucket edges (reusing internal/stats' bucketing convention).
//   - Safe under concurrency: every type here may be hammered from the
//     serving handlers and read by /metrics at the same time (covered by
//     the package's -race tests).
//
// Metric names follow the Prometheus convention (snake_case,
// `_total` suffix for counters, base-unit `_seconds` histograms).
// Exposition is strict Prometheus text format: label values and HELP
// text are escaped, families are emitted in a stable sorted order, and
// the output round-trips through the parser in promtext_test.go.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cascade-ml/cascade/internal/stats"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move in both directions (occupancy,
// Maxr, stable ratio).
type Gauge struct {
	bits atomic.Uint64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (CAS loop; used for float accumulators
// such as total simulated flops).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets delimited by ascending
// upper edges — it wraps internal/stats.Histogram (the bucketing the
// paper figures use) behind a mutex and additionally tracks the
// observation sum so Prometheus clients can derive means. The final +Inf
// bucket is implicit.
type Histogram struct {
	mu  sync.Mutex
	h   *stats.Histogram
	sum float64
}

func newHistogram(edges []float64) *Histogram {
	return &Histogram{h: stats.NewHistogram(edges...)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.sum += v
	h.mu.Unlock()
}

// Time starts a wall-clock timer; the returned stop function observes the
// elapsed seconds. Usage: defer h.Time()().
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Total()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns a consistent copy for exposition.
func (h *Histogram) snapshot() (edges []float64, counts []int64, sum float64, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Edges, append([]int64(nil), h.h.Counts...), h.sum, h.h.Total()
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use; getters
// create the metric on first access so instrumented code never nil-checks.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	lcounters  map[string]map[string]*Counter // family → rendered labels → counter
	lgauges    map[string]map[string]*Gauge
	help       map[string]string
	collectors []func(io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		lcounters: make(map[string]map[string]*Counter),
		lgauges:   make(map[string]map[string]*Gauge),
		help:      make(map[string]string),
	}
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a throwaway counter so instrumentation can be unconditional.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed (nil-safe like
// Counter).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// edges if needed; later calls may omit the edges. Nil-safe like Counter.
func (r *Registry) Histogram(name string, edges ...float64) *Histogram {
	if r == nil {
		return newHistogram(edges)
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(edges)
	r.hists[name] = h
	return h
}

// CounterWith returns the counter for the given family name and label set,
// creating it if needed. Label values may contain any bytes — they are
// escaped at exposition time. Nil-safe like Counter.
func (r *Registry) CounterWith(name string, labels map[string]string) *Counter {
	if r == nil {
		return &Counter{}
	}
	key := renderLabels(labels)
	r.mu.RLock()
	c, ok := r.lcounters[name][key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.lcounters[name]
	if fam == nil {
		fam = make(map[string]*Counter)
		r.lcounters[name] = fam
	}
	if c, ok = fam[key]; ok {
		return c
	}
	c = &Counter{}
	fam[key] = c
	return c
}

// GaugeWith returns the gauge for the given family name and label set
// (nil-safe like Gauge).
func (r *Registry) GaugeWith(name string, labels map[string]string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	key := renderLabels(labels)
	r.mu.RLock()
	g, ok := r.lgauges[name][key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.lgauges[name]
	if fam == nil {
		fam = make(map[string]*Gauge)
		r.lgauges[name] = fam
	}
	if g, ok = fam[key]; ok {
		return g
	}
	g = &Gauge{}
	fam[key] = g
	return g
}

// Help sets the HELP text emitted for the named metric family. The text is
// escaped at exposition time, so newlines and backslashes are safe.
// Nil-safe no-op on a nil registry.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// RegisterCollector adds a callback invoked at the end of every
// WritePrometheus — the hook the span tracer uses to append its
// pipeline_phase_seconds summary family. Collectors must emit complete,
// well-formed exposition lines. Nil-safe.
func (r *Registry) RegisterCollector(fn func(io.Writer) error) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Snapshot returns a flat point-in-time view of every scalar series:
// counters and gauges under their name (labeled series as name{labels}),
// histograms as name_count and name_sum. The flight recorder embeds this
// in every dump. Nil-safe: a nil registry returns nil.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64,
		len(r.counters)+len(r.gauges)+2*len(r.hists)+len(r.lcounters)+len(r.lgauges))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, fam := range r.lcounters {
		for labels, c := range fam {
			out[name+"{"+labels+"}"] = float64(c.Value())
		}
	}
	for name, fam := range r.lgauges {
		for labels, g := range fam {
			out[name+"{"+labels+"}"] = g.Value()
		}
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// Standard bucket edge sets.
var (
	// LatencyEdges covers request/stage latencies from 100µs to 10s.
	LatencyEdges = []float64{1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10}
	// SizeEdges covers batch/request sizes on a coarse log scale.
	SizeEdges = []float64{1, 10, 50, 100, 500, 1000, 5000, 10000, 50000}
	// RatioEdges covers [0, 1] quantities (occupancy, stable ratio).
	RatioEdges = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
)

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote and newline must be written as \\, \" and \n.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal in HELP).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// formatFloat renders a float exactly as fmt's %v does (shortest
// round-trippable form), shared by the exposition writers.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels produces the canonical `k1="v1",k2="v2"` form: keys sorted,
// values escaped. Identical label sets always render identically, which is
// what makes the rendered string usable as a series key.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// writeHeader emits the optional HELP line and the TYPE line for a family.
func (r *Registry) writeHeader(w io.Writer, name, typ string, help map[string]string) error {
	if h, ok := help[name]; ok && h != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(h)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (one family per metric; histograms expand to cumulative
// `_bucket{le=…}`, `_sum` and `_count` series). Output is deterministic:
// families sorted by name within each kind (counters, gauges, histograms,
// then registered collectors), labeled series sorted by their canonical
// label rendering, label values and HELP text escaped.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	lcounters := make(map[string]map[string]*Counter, len(r.lcounters))
	for k, fam := range r.lcounters {
		cp := make(map[string]*Counter, len(fam))
		for lk, v := range fam {
			cp[lk] = v
		}
		lcounters[k] = cp
	}
	lgauges := make(map[string]map[string]*Gauge, len(r.lgauges))
	for k, fam := range r.lgauges {
		cp := make(map[string]*Gauge, len(fam))
		for lk, v := range fam {
			cp[lk] = v
		}
		lgauges[k] = cp
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	collectors := append([]func(io.Writer) error(nil), r.collectors...)
	r.mu.RUnlock()

	// Counters: union of unlabeled and labeled families, one TYPE line each.
	for _, name := range unionKeys(counters, lcounters) {
		if err := r.writeHeader(w, name, "counter", help); err != nil {
			return err
		}
		if c, ok := counters[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value()); err != nil {
				return err
			}
		}
		fam := lcounters[name]
		for _, lk := range sortedKeys(fam) {
			if _, err := fmt.Fprintf(w, "%s{%s} %d\n", name, lk, fam[lk].Value()); err != nil {
				return err
			}
		}
	}
	for _, name := range unionKeys(gauges, lgauges) {
		if err := r.writeHeader(w, name, "gauge", help); err != nil {
			return err
		}
		if g, ok := gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value())); err != nil {
				return err
			}
		}
		fam := lgauges[name]
		for _, lk := range sortedKeys(fam) {
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", name, lk, formatFloat(fam[lk].Value())); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(hists) {
		edges, counts, sum, total := hists[name].snapshot()
		if err := r.writeHeader(w, name, "histogram", help); err != nil {
			return err
		}
		var cum int64
		for i, e := range edges {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(e), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, total, name, formatFloat(sum), name, total); err != nil {
			return err
		}
	}
	for _, fn := range collectors {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unionKeys merges the key sets of an unlabeled and a labeled family map,
// sorted.
func unionKeys[A, B any](a map[string]A, b map[string]map[string]B) []string {
	seen := make(map[string]bool, len(a)+len(b))
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
