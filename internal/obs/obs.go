// Package obs is the observability substrate of the repo's deployment
// story: a small, dependency-free metrics registry (atomic counters,
// gauges, fixed-bucket histograms and wall-clock timers) plus a JSONL
// trace sink. The training loop, the Cascade scheduler, the simulated
// device and the serving layer all publish into a Registry; the serving
// layer exposes it in Prometheus text format at GET /metrics, and the
// cmd binaries can dump it after a run.
//
// Design constraints, in order:
//
//   - Standard library only (ROADMAP rule: no external dependencies).
//   - Cheap on the hot path: counters and gauges are single atomics;
//     histograms take one short mutex for a binary search over fixed
//     bucket edges (reusing internal/stats' bucketing convention).
//   - Safe under concurrency: every type here may be hammered from the
//     serving handlers and read by /metrics at the same time (covered by
//     the package's -race tests).
//
// Metric names follow the Prometheus convention (snake_case,
// `_total` suffix for counters, base-unit `_seconds` histograms).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cascade-ml/cascade/internal/stats"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move in both directions (occupancy,
// Maxr, stable ratio).
type Gauge struct {
	bits atomic.Uint64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (CAS loop; used for float accumulators
// such as total simulated flops).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets delimited by ascending
// upper edges — it wraps internal/stats.Histogram (the bucketing the
// paper figures use) behind a mutex and additionally tracks the
// observation sum so Prometheus clients can derive means. The final +Inf
// bucket is implicit.
type Histogram struct {
	mu  sync.Mutex
	h   *stats.Histogram
	sum float64
}

func newHistogram(edges []float64) *Histogram {
	return &Histogram{h: stats.NewHistogram(edges...)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.sum += v
	h.mu.Unlock()
}

// Time starts a wall-clock timer; the returned stop function observes the
// elapsed seconds. Usage: defer h.Time()().
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Total()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns a consistent copy for exposition.
func (h *Histogram) snapshot() (edges []float64, counts []int64, sum float64, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Edges, append([]int64(nil), h.h.Counts...), h.sum, h.h.Total()
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use; getters
// create the metric on first access so instrumented code never nil-checks.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a throwaway counter so instrumentation can be unconditional.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed (nil-safe like
// Counter).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// edges if needed; later calls may omit the edges. Nil-safe like Counter.
func (r *Registry) Histogram(name string, edges ...float64) *Histogram {
	if r == nil {
		return newHistogram(edges)
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(edges)
	r.hists[name] = h
	return h
}

// Standard bucket edge sets.
var (
	// LatencyEdges covers request/stage latencies from 100µs to 10s.
	LatencyEdges = []float64{1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10}
	// SizeEdges covers batch/request sizes on a coarse log scale.
	SizeEdges = []float64{1, 10, 50, 100, 500, 1000, 5000, 10000, 50000}
	// RatioEdges covers [0, 1] quantities (occupancy, stable ratio).
	RatioEdges = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (one family per metric; histograms expand to cumulative
// `_bucket{le=…}`, `_sum` and `_count` series), names sorted for stable
// output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", name, name, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		edges, counts, sum, total := hists[name].snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, e := range edges {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", name, e, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %v\n%s_count %d\n", name, total, name, sum, name, total); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
