package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sloAt builds a tracker on a frozen, steppable clock.
func sloAt(cfg SLOConfig) (*SLO, *time.Time) {
	s := NewSLO(cfg)
	now := time.Unix(1_000_000, 0)
	s.SetClock(func() time.Time { return now })
	return s, &now
}

func TestSLOBurnMath(t *testing.T) {
	// 99.9% objective → 0.1% budget. 1000 requests with 10 errors is a 1%
	// error rate: burn 10× on both windows that saw the traffic.
	s, now := sloAt(SLOConfig{LatencyThreshold: 100 * time.Millisecond})
	for i := 0; i < 1000; i++ {
		s.Observe(i%100 != 0, 10*time.Millisecond) // 10 errors, all fast
		if i%10 == 9 {
			*now = now.Add(time.Second)
		}
	}
	w := s.Window(5 * time.Minute)
	if w.Total != 1000 || w.Errors != 10 {
		t.Fatalf("window saw %d/%d, want 1000/10", w.Total, w.Errors)
	}
	if w.Availability != 0.99 {
		t.Fatalf("availability = %v", w.Availability)
	}
	if w.AvailabilityBurn < 9.99 || w.AvailabilityBurn > 10.01 {
		t.Fatalf("availability burn = %v, want ~10", w.AvailabilityBurn)
	}
	if w.LatencyBurn != 0 {
		t.Fatalf("latency burn = %v with no slow requests", w.LatencyBurn)
	}
	if w.AvailabilityBudgetLeft != 0 {
		t.Fatalf("budget left = %v after 10x burn (clamped to 0)", w.AvailabilityBudgetLeft)
	}
	if w.LatencyBudgetLeft != 1 {
		t.Fatalf("latency budget left = %v, want 1", w.LatencyBudgetLeft)
	}
}

func TestSLOLatencySLI(t *testing.T) {
	// 99% latency objective → 1% budget; 2% over-threshold → burn 2.
	s, _ := sloAt(SLOConfig{LatencyThreshold: 100 * time.Millisecond})
	for i := 0; i < 100; i++ {
		lat := 10 * time.Millisecond
		if i < 2 {
			lat = 500 * time.Millisecond
		}
		s.Observe(true, lat)
	}
	w := s.Window(5 * time.Minute)
	if w.Slow != 2 {
		t.Fatalf("slow = %d", w.Slow)
	}
	if w.LatencyBurn < 1.99 || w.LatencyBurn > 2.01 {
		t.Fatalf("latency burn = %v, want ~2", w.LatencyBurn)
	}
	if w.AvailabilityBurn != 0 {
		t.Fatalf("availability burn = %v with no errors", w.AvailabilityBurn)
	}
}

func TestSLOWindowIsolation(t *testing.T) {
	// Errors older than the short window burn only the long window.
	s, now := sloAt(SLOConfig{})
	for i := 0; i < 100; i++ {
		s.Observe(false, time.Millisecond)
	}
	*now = now.Add(10 * time.Minute) // past 5m, within 1h
	for i := 0; i < 100; i++ {
		s.Observe(true, time.Millisecond)
	}
	short, long := s.Window(5*time.Minute), s.Window(time.Hour)
	if short.Errors != 0 || short.Total != 100 {
		t.Fatalf("short window %d/%d, want 0 errors of 100", short.Errors, short.Total)
	}
	if long.Errors != 100 || long.Total != 200 {
		t.Fatalf("long window %d/%d, want 100 errors of 200", long.Errors, long.Total)
	}
	if short.AvailabilityBurn != 0 {
		t.Fatalf("short burn = %v", short.AvailabilityBurn)
	}
	if long.AvailabilityBurn <= 0 {
		t.Fatalf("long burn = %v, want > 0", long.AvailabilityBurn)
	}
}

func TestSLOIdleBurnsNothing(t *testing.T) {
	s, _ := sloAt(SLOConfig{})
	w := s.Window(5 * time.Minute)
	if w.Total != 0 || w.Availability != 1 || w.AvailabilityBurn != 0 ||
		w.AvailabilityBudgetLeft != 1 || w.LatencyBudgetLeft != 1 {
		t.Fatalf("idle window burned budget: %+v", w)
	}
	// Nil tracker behaves like an idle one.
	var nilSLO *SLO
	nilSLO.Observe(false, time.Second)
	if nw := nilSLO.Window(time.Minute); nw.Availability != 1 {
		t.Fatalf("nil tracker window: %+v", nw)
	}
}

func TestSLORingEviction(t *testing.T) {
	// Observations older than LongWindow fall out of every window once the
	// ring wraps onto their slots.
	s, now := sloAt(SLOConfig{ShortWindow: 10 * time.Second, LongWindow: 30 * time.Second})
	s.Observe(false, time.Millisecond)
	*now = now.Add(2 * time.Minute)
	s.Observe(true, time.Millisecond)
	w := s.Window(30 * time.Second)
	if w.Total != 1 || w.Errors != 0 {
		t.Fatalf("stale slot leaked into window: %+v", w)
	}
}

func TestSLORegisterExposition(t *testing.T) {
	reg := NewRegistry()
	s, _ := sloAt(SLOConfig{})
	s.Register(reg)
	s.Observe(false, time.Second) // one failing, slow request
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`slo_availability_burn_rate{window="5m"}`,
		`slo_availability_burn_rate{window="1h"}`,
		`slo_latency_burn_rate{window="5m"}`,
		`slo_error_budget_remaining{sli="availability",window="1h"}`,
		`slo_error_budget_remaining{sli="latency",window="5m"}`,
		`slo_window_requests{window="5m"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The exposition must stay parseable by the federation parser.
	fams, err := ParsePromText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "slo_availability_burn_rate" {
			found = f.Type == "gauge" && len(f.Samples) == 2
		}
	}
	if !found {
		t.Fatalf("federation parser did not recover slo_availability_burn_rate gauge:\n%s", out)
	}
}

func TestSLOScorecardFormat(t *testing.T) {
	s, _ := sloAt(SLOConfig{})
	s.Observe(true, time.Millisecond)
	out := s.FormatScorecard("unit")
	for _, want := range []string{"SLO scorecard [unit]", "window 5m", "window 1h", "requests=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("scorecard missing %q:\n%s", want, out)
		}
	}
}
