package obs

import (
	"sync"
	"testing"
	"time"
)

// TestNilTracerInert pins the disabled fast path: every Tracer/Span method
// must be callable on nil receivers, returning zero values, so instrumented
// code never guards.
func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.ID() != "" || tr.Stats() != nil || !tr.Epoch().IsZero() {
		t.Fatal("nil tracer leaked state")
	}
	s := tr.Start("batch", PhaseOther)
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	c := s.Child("embed", PhaseEmbed)
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetInt("size", 200)
	s.SetFloat("loss", 0.5)
	s.SetStr("cut", "dependency")
	s.End()
	s.End()
	if s.Name() != "" || s.ID() != 0 || s.ParentID() != 0 || s.IsRoot() {
		t.Fatal("nil span accessors leaked state")
	}
	if s.PhaseOf() != PhaseOther || s.Duration() != 0 || s.DroppedChildren() != 0 {
		t.Fatal("nil span accessors leaked state")
	}
	if s.Attrs() != nil {
		t.Fatal("nil span has attrs")
	}
	if _, ok := s.Attr("size"); ok {
		t.Fatal("nil span resolved an attr")
	}
	s.VisitChildren(func(*Span) { t.Fatal("nil span visited a child") })
	var ps *PhaseStats
	ps.Observe(PhaseEmbed, time.Second)
	if ps.Summary() != nil || ps.Hist(PhaseEmbed) != nil {
		t.Fatal("nil PhaseStats leaked state")
	}
	var cw *ChromeTraceWriter
	cw.OnSpanEnd(nil)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var fr *FlightRecorder
	fr.OnSpanEnd(nil)
	if p, err := fr.Dump("x"); p != "" || err != nil {
		t.Fatalf("nil recorder dumped: %q %v", p, err)
	}
}

// TestNilTracerNoAlloc verifies the disabled path allocates nothing — the
// tentpole's "near-zero overhead when disabled" requirement.
func TestNilTracerNoAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start("batch", PhaseOther)
		c := s.Child("embed", PhaseEmbed)
		c.SetInt("size", 200)
		c.SetFloat("loss", 0.25)
		c.SetStr("cut", "dependency")
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v per batch, want 0", allocs)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	if tr.ID() == "" {
		t.Fatal("tracer ID empty")
	}
	root := tr.Start("batch", PhaseOther)
	root.SetInt("epoch", 3)
	embed := root.Child("embed", PhaseEmbed)
	embed.SetFloat("loss", 0.125)
	embed.End()
	back := root.Child("backward", PhaseBackward)
	back.End()
	root.End()

	if !root.IsRoot() || embed.IsRoot() {
		t.Fatal("root/child confusion")
	}
	if embed.ParentID() != root.ID() {
		t.Fatalf("parent = %d, want %d", embed.ParentID(), root.ID())
	}
	if v, ok := root.Attr("epoch"); !ok || v.(int64) != 3 {
		t.Fatalf("epoch attr = %v, %v", v, ok)
	}
	if v, ok := embed.Attr("loss"); !ok || v.(float64) != 0.125 {
		t.Fatalf("loss attr = %v, %v", v, ok)
	}
	var kids []string
	root.VisitChildren(func(c *Span) { kids = append(kids, c.Name()) })
	if len(kids) != 2 || kids[0] != "embed" || kids[1] != "backward" {
		t.Fatalf("children = %v", kids)
	}
	if got := tr.Stats().Hist(PhaseEmbed).Count(); got != 1 {
		t.Fatalf("embed observations = %d, want 1", got)
	}
	if got := tr.Stats().Hist(PhaseOther).Count(); got != 1 {
		t.Fatalf("root observations = %d, want 1", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	var got []*Span
	tr := NewTracer(TracerOptions{Sinks: []SpanSink{sinkFunc(func(s *Span) { got = append(got, s) })}})
	s := tr.Start("x", PhaseOther)
	s.End()
	s.End()
	if len(got) != 1 {
		t.Fatalf("sink saw %d ends, want 1", len(got))
	}
}

type sinkFunc func(*Span)

func (f sinkFunc) OnSpanEnd(s *Span) { f(s) }

// TestSpanTreeCap pins the bounded-memory contract: children past
// maxTreeSpans are dropped and counted, never retained.
func TestSpanTreeCap(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	root := tr.Start("batch", PhaseOther)
	for i := 0; i < maxTreeSpans+100; i++ {
		root.Child("c", PhaseOther).End()
	}
	kept := 0
	root.VisitChildren(func(*Span) { kept++ })
	if kept != maxTreeSpans-1 {
		t.Fatalf("kept %d children, want %d", kept, maxTreeSpans-1)
	}
	if root.DroppedChildren() != 101 {
		t.Fatalf("dropped = %d, want 101", root.DroppedChildren())
	}
	root.End()
}

func TestSpanAttrCap(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	s := tr.Start("x", PhaseOther)
	for i := 0; i < maxSpanAttrs+10; i++ {
		s.SetInt("k", int64(i))
	}
	if got := len(s.Attrs()); got != maxSpanAttrs {
		t.Fatalf("attrs = %d, want %d", got, maxSpanAttrs)
	}
	s.End()
}

// TestSpanConcurrentEmit is the satellite -race test: many goroutines
// building span trees, setting attrs, and ending spans concurrently while
// all three sink kinds consume them.
func TestSpanConcurrentEmit(t *testing.T) {
	var mu sync.Mutex
	ends := 0
	tr := NewTracer(TracerOptions{
		Chrome: NewChromeTrace(&syncDiscard{}),
		Flight: NewFlightRecorder(t.TempDir(), 16, nil),
		Sinks: []SpanSink{sinkFunc(func(*Span) {
			mu.Lock()
			ends++
			mu.Unlock()
		})},
	})
	const workers, batches, children = 8, 20, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				root := tr.Start("batch", PhaseOther)
				root.SetInt("worker", int64(w))
				var cwg sync.WaitGroup
				for c := 0; c < children; c++ {
					cwg.Add(1)
					go func(c int) {
						defer cwg.Done()
						ch := root.Child("child", Phase(c%NumPhases))
						ch.SetInt("i", int64(c))
						ch.End()
					}(c)
				}
				cwg.Wait()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	want := workers * batches * (1 + children)
	if ends != want {
		t.Fatalf("sink saw %d span ends, want %d", ends, want)
	}
}

// syncDiscard is an io.Writer that swallows bytes (mutex-free; the Chrome
// writer serializes).
type syncDiscard struct{}

func (*syncDiscard) Write(p []byte) (int, error) { return len(p), nil }
