package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("occupancy")
	g.Set(0.25)
	g.Add(0.5)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Same histogram on second lookup, edges optional.
	if r.Histogram("latency_seconds") != h {
		t.Fatal("second lookup returned a different histogram")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", 1, 2).Observe(1.5)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest_total").Add(7)
	r.Gauge("maxr").Set(12)
	h := r.Histogram("score_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ingest_total counter\ningest_total 7\n",
		"# TYPE maxr gauge\nmaxr 12\n",
		"# TYPE score_seconds histogram\n",
		`score_seconds_bucket{le="0.1"} 1`,
		`score_seconds_bucket{le="1"} 2`,
		`score_seconds_bucket{le="+Inf"} 3`,
		"score_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name value".
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestTraceSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	for i := 0; i < 3; i++ {
		if err := tr.Emit(map[string]int{"batch": i}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Records() != 3 {
		t.Fatalf("records = %d, want 3", tr.Records())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var rec map[string]int
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["batch"] != i {
			t.Fatalf("line %d = %v", i, rec)
		}
	}
	var nilSink *TraceSink
	if err := nilSink.Emit("x"); err != nil {
		t.Fatal("nil sink should be a no-op")
	}
}

// TestRegistryConcurrent hammers every metric kind from many goroutines
// while a reader renders the exposition — the package's -race target.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("reqs_total").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat_seconds", LatencyEdges...).Observe(float64(i) / 1000)
				if err := tr.Emit(map[string]int{"w": w, "i": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("reqs_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat_seconds").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if tr.Records() != workers*iters {
		t.Fatalf("trace records = %d, want %d", tr.Records(), workers*iters)
	}
}

func TestHistogramTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", LatencyEdges...)
	stop := h.Time()
	stop()
	if h.Count() != 1 {
		t.Fatalf("timer did not observe: count = %d", h.Count())
	}
}
