package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeChrome parses a finished Chrome trace file into events.
func decodeChrome(t *testing.T, buf []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(buf, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf)
	}
	return events
}

func TestChromeTraceAllLanes(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeTrace(&buf)
	tr := NewTracer(TracerOptions{Chrome: cw})
	root := tr.Start("batch", PhaseOther)
	c := root.Child("embed", PhaseEmbed)
	c.SetInt("size", 200)
	c.End()
	root.End()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	events := decodeChrome(t, buf.Bytes())
	lanes := map[string]bool{}
	var complete []map[string]any
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				lanes[ev["args"].(map[string]any)["name"].(string)] = true
			}
		case "X":
			complete = append(complete, ev)
		}
	}
	// Every pipeline phase lane must be declared even in a run that only
	// touched two of them (acceptance criterion: all eight lanes present).
	for i := 0; i < NumPhases; i++ {
		if !lanes[Phase(i).String()] {
			t.Fatalf("missing lane %q; have %v", Phase(i).String(), lanes)
		}
	}
	if len(complete) != 2 {
		t.Fatalf("complete events = %d, want 2", len(complete))
	}
	var embed map[string]any
	for _, ev := range complete {
		if ev["name"] == "embed" {
			embed = ev
		}
	}
	if embed == nil {
		t.Fatalf("no embed event in %v", complete)
	}
	if got := embed["tid"].(float64); int(got) != int(PhaseEmbed) {
		t.Fatalf("embed tid = %v, want %d", got, PhaseEmbed)
	}
	args := embed["args"].(map[string]any)
	if args["size"].(float64) != 200 {
		t.Fatalf("embed args = %v", args)
	}
	if args["parent_id"] == nil {
		t.Fatal("child event lost its parent link")
	}
}

func TestChromeTraceCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChromeTrace(&buf)
	tr := NewTracer(TracerOptions{Chrome: cw})
	tr.Start("a", PhaseOther).End()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	// Spans ended after Close must be dropped, not corrupt the array.
	tr.Start("late", PhaseOther).End()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("writes after Close")
	}
	decodeChrome(t, buf.Bytes())
}
