package obs

import (
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel maps a -log-level flag value onto a slog level. Unknown
// strings (and "") default to Info — the CLI must never fail to start over
// a typo in a log flag.
func ParseLogLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the structured logger behind the -log-level/-log-json
// flags: text or JSON handler at the given level, writing to w (the CLIs
// pass stderr so the stats tables on stdout stay machine-readable). A
// non-empty traceID is attached to every record, correlating log lines
// with Chrome trace files and flight-recorder dumps from the same run.
func NewLogger(w io.Writer, level string, jsonOut bool, traceID string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: ParseLogLevel(level)}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if traceID != "" {
		l = l.With("trace_id", traceID)
	}
	return l
}
