package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// Cross-process trace context (DESIGN.md §16). A SpanContext names one span's
// position in a distributed trace: a 16-byte trace-id shared by every span
// the same request touches (router plus every shard), and an 8-byte span-id
// naming the specific span. The wire form is the W3C traceparent header,
//
//	traceparent: 00-<32 hex trace-id>-<16 hex span-id>-01
//
// so cascade traces interoperate with any proxy or client that already
// propagates traceparent. The router mints a fresh context per /ingest and
// /score request (continuing the client's, if the client sent one), injects
// it into each proxied shard request, and the shard's serve handlers extract
// it — one request, one trace-id, visible in slog lines, span attributes,
// flight dumps and Chrome traces on every process it touched.

// TraceparentHeader is the propagation header name (W3C trace-context).
const TraceparentHeader = "Traceparent"

// SpanContext is one span's identity within a distributed trace. The zero
// value is "no context" (Valid reports false) and injects nothing.
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// Valid reports whether the context carries a real trace (both ids non-zero).
func (c SpanContext) Valid() bool {
	return c.TraceID != [16]byte{} && c.SpanID != [8]byte{}
}

// TraceIDString renders the trace-id as 32 lowercase hex digits ("" when
// invalid) — the correlation key used in slog lines and Chrome trace args.
func (c SpanContext) TraceIDString() string {
	if !c.Valid() {
		return ""
	}
	return hex.EncodeToString(c.TraceID[:])
}

// SpanIDString renders the span-id as 16 lowercase hex digits ("" when
// invalid).
func (c SpanContext) SpanIDString() string {
	if !c.Valid() {
		return ""
	}
	return hex.EncodeToString(c.SpanID[:])
}

// Traceparent renders the full header value ("" when invalid).
func (c SpanContext) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	return "00-" + hex.EncodeToString(c.TraceID[:]) + "-" + hex.EncodeToString(c.SpanID[:]) + "-01"
}

// ParseTraceparent decodes a traceparent header value. Unknown versions are
// accepted as long as the field shape matches (per the W3C spec, a receiver
// must not reject a higher version whose prefix parses); malformed values and
// all-zero ids report ok=false.
func ParseTraceparent(s string) (SpanContext, bool) {
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2), possibly with
	// future fields appended after another '-'.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return SpanContext{}, false
	}
	var c SpanContext
	if _, err := hex.Decode(c.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(c.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(s[53:55]); err != nil {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// Inject writes the context into an outgoing request's headers. A zero
// context injects nothing, so callers never need to branch.
func (c SpanContext) Inject(h http.Header) {
	if !c.Valid() {
		return
	}
	h.Set(TraceparentHeader, c.Traceparent())
}

// Extract reads a propagated context from incoming request headers.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceparent(v)
}

// NewSpanContext mints a fresh context: random trace-id, random span-id.
func NewSpanContext() SpanContext {
	var c SpanContext
	// crypto/rand never fails on the supported platforms; on the impossible
	// error path the ids stay zero and the context is simply invalid (the
	// request runs untraced rather than crashing).
	_, _ = rand.Read(c.TraceID[:])
	_, _ = rand.Read(c.SpanID[:])
	return c
}

// StartRemote opens a root span that participates in a distributed trace.
// When parent is valid the new span continues the remote trace: same
// trace-id, parent's span-id recorded as the remote_parent attribute. When
// parent is the zero context a fresh trace-id is minted — that is how the
// router starts the trace for a request whose client sent no traceparent.
// Either way the span carries its own SpanContext (see Span.SpanContext),
// which Inject forwards to the next hop, and the trace-id lands in the
// span's attributes so every sink — Chrome args, flight dumps, Attr() —
// sees the correlation key. Nil-safe like Start.
func (t *Tracer) StartRemote(name string, phase Phase, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	s := t.Start(name, phase)
	sc := NewSpanContext()
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		s.SetStr("remote_parent", parent.SpanIDString())
	}
	s.sctx = sc
	s.SetStr("trace_id", sc.TraceIDString())
	return s
}

// SpanContext returns the span's distributed-trace identity — the value to
// Inject into downstream requests. Only spans opened via StartRemote have
// one; plain Start spans (and nil spans) return the zero context. The field
// is written once at creation, before the span escapes its goroutine, so
// reading it is race-free.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sctx
}

// TraceID returns the span's distributed trace-id in hex ("" for spans
// outside any distributed trace). Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sctx.TraceIDString()
}
