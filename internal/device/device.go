// Package device provides an explicit accelerator cost model, the
// substitution for the paper's NVIDIA A100 testbed (DESIGN.md §1).
//
// The paper's speedups come from a simple mechanism: training latency per
// batch is fixed overhead (kernel launches, Python/driver round-trips,
// optimizer bookkeeping) plus compute time, and small batches leave the
// device under-occupied — §3.1 reports 17.2% SM utilization at batch size
// 900 versus 39.8% at 6000. This model reproduces that arithmetic from the
// op-level tape statistics the tensor package records, yielding a
// deterministic "simulated device time" per batch:
//
//	time = kernels·launchOverhead·fusion + flops/(peak·occupancy)
//	occupancy = clamp(meanRowsPerKernel / parallelRows, minOcc, 1)
//
// Wall-clock on the host CPU shows the same qualitative trend (per-batch
// fixed costs amortize); the device model makes the GPU-shaped numbers
// reproducible and lets TGL/TGLite-style kernel-efficiency differences be
// expressed as preset constants.
package device

import (
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/tensor"
)

// Model is an accelerator cost model.
type Model struct {
	Name string
	// Obs, when non-nil, receives per-BatchCost metrics (occupancy and
	// simulated-latency histograms plus a call counter — the counter also
	// backs the regression test pinning one cost-model evaluation per
	// training batch).
	Obs *obs.Registry
	// LaunchOverhead is the fixed cost per kernel launch.
	LaunchOverhead time.Duration
	// KernelFusion scales the effective kernel count (<1 for frameworks
	// that fuse elementwise chains, e.g. TGLite).
	KernelFusion float64
	// PeakFlops is the throughput at full occupancy (flops/sec).
	PeakFlops float64
	// ParallelRows is the row-parallelism needed for full occupancy (a
	// proxy for filling every SM).
	ParallelRows int
	// MinOccupancy floors the effective occupancy (even one row keeps some
	// lanes busy).
	MinOccupancy float64
	// BackwardFactor scales forward work to include the backward pass
	// (≈2× forward for GEMM-dominated graphs, plus optimizer traffic).
	BackwardFactor float64
}

// Cost is the simulated execution cost of one batch.
type Cost struct {
	Time time.Duration
	// Occupancy is the effective device occupancy in [0, 1] — the analog
	// of the SM utilization the paper reports.
	Occupancy float64
}

// A100TGL models the baseline framework's kernel behaviour on an A100.
func A100TGL() Model {
	return Model{
		Name:           "A100/TGL",
		LaunchOverhead: 8 * time.Microsecond,
		KernelFusion:   1.0,
		PeakFlops:      19.5e12, // A100 fp32 peak
		ParallelRows:   6912,    // one row per CUDA core ≈ full occupancy
		MinOccupancy:   0.02,
		BackwardFactor: 3.0,
	}
}

// A100TGLite models TGLite's fused lightweight kernels: fewer, cheaper
// launches, same silicon.
func A100TGLite() Model {
	m := A100TGL()
	m.Name = "A100/TGLite"
	m.LaunchOverhead = 5 * time.Microsecond
	m.KernelFusion = 0.6
	return m
}

// BatchCost converts one batch's tape statistics into simulated time and
// occupancy. train selects whether backward-pass work is included.
func (m Model) BatchCost(s tensor.TapeStats, train bool) (c Cost) {
	if m.Obs != nil {
		m.Obs.Help("device_batch_cost_calls_total", "Simulated-device cost evaluations (one per batch per pass).")
		m.Obs.Help("device_flops_total", "Floating-point operations charged to the simulated device (backward factor included).")
		m.Obs.Help("device_kernels_total", "Kernel launches charged to the simulated device (backward factor included).")
		m.Obs.Counter("device_batch_cost_calls_total").Inc()
		work, kernels := s.Flops, float64(s.Kernels)
		if train {
			work *= m.BackwardFactor
			kernels *= m.BackwardFactor
		}
		m.Obs.Counter("device_flops_total").Add(int64(work))
		m.Obs.Counter("device_kernels_total").Add(int64(kernels))
		defer func() {
			m.Obs.Histogram("device_batch_occupancy", obs.RatioEdges...).Observe(c.Occupancy)
			m.Obs.Histogram("device_batch_seconds", obs.LatencyEdges...).Observe(c.Time.Seconds())
			m.Obs.Gauge("device_occupancy").Set(c.Occupancy)
		}()
	}
	if s.Kernels == 0 {
		return Cost{}
	}
	meanRows := float64(s.RowSum) / float64(s.Kernels)
	occ := meanRows / float64(m.ParallelRows)
	if occ > 1 {
		occ = 1
	}
	if occ < m.MinOccupancy {
		occ = m.MinOccupancy
	}
	work := s.Flops
	kernels := float64(s.Kernels)
	if train {
		work *= m.BackwardFactor
		kernels *= m.BackwardFactor
	}
	launch := time.Duration(kernels * m.KernelFusion * float64(m.LaunchOverhead))
	compute := time.Duration(work / (m.PeakFlops * occ) * float64(time.Second))
	return Cost{Time: launch + compute, Occupancy: occ}
}
