package device

import (
	"testing"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/tensor"
)

func TestBatchCostScalesWithWork(t *testing.T) {
	m := A100TGL()
	base := tensor.TapeStats{Kernels: 100, Flops: 1e8, RowSum: 100 * 500, MaxRows: 500}
	moreFlops := tensor.TapeStats{Kernels: 100, Flops: 1e9, RowSum: 100 * 500, MaxRows: 500}
	wider := tensor.TapeStats{Kernels: 100, Flops: 1e8, RowSum: 100 * 5000, MaxRows: 5000}
	cb := m.BatchCost(base, true)
	cf := m.BatchCost(moreFlops, true)
	cw := m.BatchCost(wider, true)
	if cf.Time <= cb.Time {
		t.Fatalf("10x flops at same width not slower: %v vs %v", cf.Time, cb.Time)
	}
	if cw.Occupancy <= cb.Occupancy {
		t.Fatalf("wider rows not higher occupancy: %v vs %v", cw.Occupancy, cb.Occupancy)
	}
	if cw.Time >= cb.Time {
		t.Fatalf("same work at higher occupancy not faster: %v vs %v", cw.Time, cb.Time)
	}
}

func TestLaunchOverheadDominatesTinyBatches(t *testing.T) {
	// A tiny batch's cost is ≈ kernels × overhead: amortization is the
	// whole story of Fig. 2.
	m := A100TGL()
	tiny := tensor.TapeStats{Kernels: 50, Flops: 1e4, RowSum: 50 * 4, MaxRows: 4}
	c := m.BatchCost(tiny, false)
	if c.Time < 50*m.LaunchOverhead {
		t.Fatalf("cost %v below pure launch cost", c.Time)
	}
	if c.Occupancy != m.MinOccupancy {
		t.Fatalf("tiny batch occupancy %v, want floor %v", c.Occupancy, m.MinOccupancy)
	}
}

func TestPerEventCostDropsWithBatchSize(t *testing.T) {
	// Simulate the same total work split into many small vs few large
	// batches: total simulated time must be lower for large batches.
	m := A100TGL()
	perEventFlops := 1e6
	perEventKernels := 1 // amortized share
	totalEvents := 6000

	timeFor := func(batch int) (total float64) {
		batches := totalEvents / batch
		for i := 0; i < batches; i++ {
			s := tensor.TapeStats{
				Kernels: 60 + perEventKernels*batch, // fixed + per-event kernels
				Flops:   perEventFlops * float64(batch),
				RowSum:  int64((60 + batch) * batch * 3),
				MaxRows: batch * 3,
			}
			total += m.BatchCost(s, true).Time.Seconds()
		}
		return total
	}
	if t900, t6000 := timeFor(600), timeFor(6000); t6000 >= t900 {
		t.Fatalf("batch 6000 (%vs) not faster than 600 (%vs)", t6000, t900)
	}
}

func TestTGLiteCheaperThanTGL(t *testing.T) {
	s := tensor.TapeStats{Kernels: 500, Flops: 1e9, RowSum: 500 * 2000, MaxRows: 2000}
	tgl := A100TGL().BatchCost(s, true)
	lite := A100TGLite().BatchCost(s, true)
	if lite.Time >= tgl.Time {
		t.Fatalf("TGLite %v not cheaper than TGL %v", lite.Time, tgl.Time)
	}
}

func TestEmptyTapeZeroCost(t *testing.T) {
	c := A100TGL().BatchCost(tensor.TapeStats{}, true)
	if c.Time != 0 || c.Occupancy != 0 {
		t.Fatalf("empty tape cost %+v", c)
	}
}

func TestOccupancyCapped(t *testing.T) {
	m := A100TGL()
	huge := tensor.TapeStats{Kernels: 10, Flops: 1e9, RowSum: 10 * 1e6, MaxRows: 1e6}
	if c := m.BatchCost(huge, false); c.Occupancy != 1 {
		t.Fatalf("occupancy %v, want capped at 1", c.Occupancy)
	}
}

func TestBatchCostRecordsObs(t *testing.T) {
	m := A100TGL()
	m.Obs = obs.NewRegistry()
	s := tensor.TapeStats{Kernels: 100, Flops: 1e8, RowSum: 100 * 500, MaxRows: 500}
	c := m.BatchCost(s, true)
	if got := m.Obs.Counter("device_batch_cost_calls_total").Value(); got != 1 {
		t.Fatalf("calls counter = %d, want 1", got)
	}
	if got := m.Obs.Histogram("device_batch_occupancy").Count(); got != 1 {
		t.Fatalf("occupancy histogram count = %d, want 1", got)
	}
	if got := m.Obs.Gauge("device_occupancy").Value(); got != c.Occupancy {
		t.Fatalf("occupancy gauge = %v, want %v", got, c.Occupancy)
	}
	if got := m.Obs.Histogram("device_batch_seconds").Sum(); got != c.Time.Seconds() {
		t.Fatalf("seconds sum = %v, want %v", got, c.Time.Seconds())
	}
}
