package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// copyDir clones the segment files of src into a fresh directory under t.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	names, err := ListSegments(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornTailEveryByteOffset is the crash-consistency property test: a WAL
// whose tail segment is cut at EVERY possible byte offset must recover to a
// valid prefix of the appended records — never an error, never a record that
// was not fully framed, never losing a record that was — and must accept new
// appends afterwards.
func TestTornTailEveryByteOffset(t *testing.T) {
	src := t.TempDir()
	l, _, err := Open(Options{Dir: src, SegmentBytes: MinSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	// Enough mid-size records to seal at least one segment, then a handful
	// of small ones so the tail segment stays cheap to sweep byte by byte.
	big := bytes.Repeat([]byte("B"), 600)
	for i := 0; i < 7; i++ {
		if _, err := l.Append(big); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][]byte{
		[]byte("tail-0"), []byte("tail-11"), {}, []byte("tail-333-abcdef"), []byte("t4"), []byte("tail-five"),
	} {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := ListSegments(src)
	if len(names) < 2 {
		t.Fatalf("expected ≥2 segments, got %v", names)
	}
	tailName := names[len(names)-1]
	tailPath := filepath.Join(src, tailName)
	tailData, err := os.ReadFile(tailPath)
	if err != nil {
		t.Fatal(err)
	}
	// Derive the tail's record payloads and frame boundaries by scanning it,
	// so the test is independent of how records packed into segments.
	tailScan, err := scanSegment(tailPath, 0, nil)
	if err != nil || tailScan.badReason != "" {
		t.Fatalf("tail scan: %v %q", err, tailScan.badReason)
	}
	total, err := Scan(src, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sealedRecords := total.Records - uint64(tailScan.records)
	tailStartSeq := tailScan.firstSeq
	var tailRecords [][]byte
	boundaries := []int64{segHeaderSize}
	off := int64(segHeaderSize)
	if _, err := scanSegment(tailPath, 0, func(_ uint64, p []byte) error {
		tailRecords = append(tailRecords, append([]byte(nil), p...))
		off += frameHeaderSize + int64(len(p))
		boundaries = append(boundaries, off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if off != int64(len(tailData)) {
		t.Fatalf("tail layout: frames end at %d, file has %d bytes", off, len(tailData))
	}

	expectTailRecords := func(cut int64) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(tailData)); cut++ {
		dir := copyDir(t, src)
		path := filepath.Join(dir, tailName)
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		wantTail := expectTailRecords(cut)
		if got := rec.Records; got != sealedRecords+uint64(wantTail) {
			t.Fatalf("cut=%d: recovered %d records, want %d sealed + %d tail", cut, got, sealedRecords, wantTail)
		}
		// Clean cuts on a frame boundary are not torn; everything else is.
		cleanCut := cut == int64(len(tailData)) || (cut >= segHeaderSize && boundaries[wantTail] == cut)
		if cleanCut && (rec.TornBytes != 0 || rec.TornSegment != "") {
			t.Fatalf("cut=%d: clean boundary reported torn: %+v", cut, rec)
		}
		if !cleanCut && rec.TornBytes == 0 && rec.TornSegment == "" {
			// A zero-byte tail has no bytes to truncate but is still
			// reported (and removed) via TornSegment.
			t.Fatalf("cut=%d: torn tail not reported: %+v", cut, rec)
		}
		// Replay yields exactly the surviving prefix, bitwise.
		var got [][]byte
		if _, err := l2.Replay(sealedRecords, func(seq uint64, p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		if len(got) != wantTail {
			t.Fatalf("cut=%d: replayed %d tail records, want %d", cut, len(got), wantTail)
		}
		for i := range got {
			if !bytes.Equal(got[i], tailRecords[i]) {
				t.Fatalf("cut=%d: tail record %d = %q, want %q", cut, i, got[i], tailRecords[i])
			}
		}
		// The recovered log must keep working: one append, then a clean
		// re-open sees it.
		wantSeq := tailStartSeq + uint64(wantTail)
		if cut < segHeaderSize {
			// Headerless tail was dropped; sequence resumes after the
			// sealed segments.
			wantSeq = tailStartSeq
		}
		seq, err := l2.Append([]byte(fmt.Sprintf("resume-%d", cut)))
		if err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if seq != wantSeq {
			t.Fatalf("cut=%d: resumed at seq %d, want %d", cut, seq, wantSeq)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		rec2, err := Scan(dir, 0, nil)
		if err != nil {
			t.Fatalf("cut=%d: rescan: %v", cut, err)
		}
		if rec2.Records != sealedRecords+uint64(wantTail)+1 || rec2.TornBytes != 0 {
			t.Fatalf("cut=%d: rescan %+v", cut, rec2)
		}
	}
}
