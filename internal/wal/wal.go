// Package wal is a segmented, checksummed write-ahead log for the serving
// path: every /ingest batch is appended (and synced, per policy) before it
// is applied to node memories, so a crash or SIGKILL loses nothing that was
// acknowledged. The same fixed-size checksummed segments are the seed of the
// paged CTDG event store planned for out-of-core training (ROADMAP item 3).
//
// On-disk layout (all integers little-endian):
//
//	wal-<first-seq %016d>.seg              one file per segment
//	  segment header: magic "CASCWAL1" (8) | version u32 | firstSeq u64 |
//	                  crc32c(magic‖version‖firstSeq) u32          = 24 bytes
//	  record frame:   payloadLen u32 | seq u64 |
//	                  crc32c(payloadLen‖seq‖payload) u32 | payload = 16+len
//
// Sequence numbers are global across segments and strictly increasing; a
// segment's first record seq is baked into its file name so lexicographic
// order is log order. CRC32C (Castagnoli) frames make torn or bit-rotted
// frames detectable; Open recovers from a crash by truncating the tail
// segment at the first bad frame. Corruption anywhere *before* the tail is
// not crash debris and fails Open — that log needs an operator (walcheck).
//
// Durability contract by sync policy:
//
//	always    fsync after every record — strongest, slowest
//	batch     fsync once per AppendBatch (the /ingest unit) — acked ⇒ durable
//	interval  fsync on a timer — acks may precede durability by ≤ interval
//
// Any append, rotate or sync failure marks the log broken: every later
// Append fails fast with the original error, so the caller can degrade to
// read-only serving rather than acknowledge events that were never logged.
// Records synced before the failure remain durable and replayable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// Segment-header magic: "CASCWAL1".
var segMagic = [8]byte{'C', 'A', 'S', 'C', 'W', 'A', 'L', '1'}

// FormatVersion is the current segment-file format version.
const FormatVersion uint32 = 1

const (
	segHeaderSize   = 24
	frameHeaderSize = 16
	// MaxRecordBytes bounds a declared payload length; anything larger is
	// treated as frame corruption, never as an allocation request.
	MaxRecordBytes = 16 << 20
	// MinSegmentBytes floors Options.SegmentBytes so rotation stays sane.
	MinSegmentBytes = 4 << 10
	// DefaultSegmentBytes is the rotation threshold when unset.
	DefaultSegmentBytes = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

// Sync policies (see the package comment for the durability contract).
const (
	SyncBatch SyncPolicy = iota
	SyncAlways
	SyncInterval
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, batch or interval)", s)
}

// Sentinel errors; match with errors.Is.
var (
	// ErrCorrupt marks corruption before the log's tail — not crash debris,
	// so Open refuses to silently drop it.
	ErrCorrupt = errors.New("wal: log corrupt before tail")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBroken wraps the first I/O failure; every later Append returns it.
	ErrBroken = errors.New("wal: log broken by earlier I/O failure")
)

// Options configures Open.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (0 → DefaultSegmentBytes; floored at MinSegmentBytes).
	SegmentBytes int64
	// Sync is the durability policy for appends.
	Sync SyncPolicy
	// SyncInterval is the timer period for SyncInterval (0 → 100ms).
	SyncInterval time.Duration
	// MinSeq pins the first sequence number of an empty log to MinSeq+1,
	// so a log whose segments were all compacted away never re-issues
	// sequence numbers at or below the caller's snapshot watermark.
	MinSeq uint64
	// Metrics, when non-nil, receives wal counters/gauges under
	// MetricsPrefix (default "wal"): _appends_total, _records_total,
	// _bytes_total, _syncs_total, _sync_errors_total, _rotations_total,
	// _truncated_segments_total, _segments, _broken.
	Metrics       *obs.Registry
	MetricsPrefix string
	// Injector arms deterministic disk faults (nil = inert).
	Injector *faultinject.Injector
}

// Recovery reports what Open found (and repaired) on disk.
type Recovery struct {
	// Segments scanned (after dropping a headerless tail file, if any).
	Segments int
	// Records is the count of valid records across all segments.
	Records uint64
	// FirstSeq/LastSeq bound the surviving records (0/0 when none).
	FirstSeq, LastSeq uint64
	// TornBytes were truncated off the tail segment (crash debris).
	TornBytes int64
	// TornSegment names the truncated (or removed) tail file, "" if clean.
	TornSegment string
}

// Log is an open write-ahead log. Safe for concurrent use; appends
// serialize on an internal mutex.
type Log struct {
	opt Options

	mu         sync.Mutex
	seg        *os.File // active segment
	segPath    string
	segSize    int64
	nextSeq    uint64
	commit     uint64 // last seq known durable (see CommittedSeq)
	commitCond *sync.Cond
	dirty      bool // unsynced appended data
	broken     error
	closed     bool
	stopTick   chan struct{}
	tickDone   chan struct{}
}

// segmentName formats the on-disk name for a first sequence number;
// fixed-width decimal makes lexicographic order the log order.
func segmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%016d.seg", firstSeq) }

// segmentSeq parses a segment file name; ok is false for foreign files.
func segmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ListSegments returns the segment file names in dir, log order. A missing
// directory counts as an empty log.
func ListSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := segmentSeq(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func writeSegHeader(f *os.File, firstSeq uint64) error {
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], firstSeq)
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(hdr[:20], castagnoli))
	_, err := f.Write(hdr[:])
	return err
}

// parseSegHeader validates a segment header, returning its first seq.
func parseSegHeader(hdr []byte) (uint64, error) {
	if len(hdr) < segHeaderSize {
		return 0, fmt.Errorf("segment header truncated at %d bytes", len(hdr))
	}
	if [8]byte(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("bad segment magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return 0, fmt.Errorf("segment format version %d, this build reads %d", v, FormatVersion)
	}
	if got, want := binary.LittleEndian.Uint32(hdr[20:24]), crc32.Checksum(hdr[:20], castagnoli); got != want {
		return 0, fmt.Errorf("segment header checksum %08x, computed %08x", got, want)
	}
	return binary.LittleEndian.Uint64(hdr[12:20]), nil
}

// frame encodes one record frame into buf (reused across appends).
func frame(buf []byte, seq uint64, payload []byte) []byte {
	buf = buf[:0]
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	crc := crc32.Checksum(hdr[0:12], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// segScan is the result of scanning one segment's frames.
type segScan struct {
	firstSeq   uint64 // from the header
	records    int
	lastSeq    uint64
	goodBytes  int64 // header + valid frames
	totalBytes int64
	badReason  string // why scanning stopped early ("" = clean to EOF)
}

// scanSegment walks one segment file, stopping at the first bad frame.
// prevSeq is the last seq seen in earlier segments (0 for the first);
// sequence numbers must be strictly increasing across the whole log.
func scanSegment(path string, prevSeq uint64, fn func(seq uint64, payload []byte) error) (*segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	s := &segScan{totalBytes: fi.Size()}
	hdr := make([]byte, segHeaderSize)
	n, _ := io.ReadFull(f, hdr)
	first, err := parseSegHeader(hdr[:n])
	if err != nil {
		s.badReason = err.Error()
		return s, nil
	}
	s.firstSeq = first
	s.goodBytes = segHeaderSize
	s.lastSeq = prevSeq
	var fh [frameHeaderSize]byte
	var payload []byte
	for {
		n, err := io.ReadFull(f, fh[:])
		if err == io.EOF {
			return s, nil // clean end
		}
		if err != nil {
			s.badReason = fmt.Sprintf("frame header truncated at %d bytes", n)
			return s, nil
		}
		plen := binary.LittleEndian.Uint32(fh[0:4])
		seq := binary.LittleEndian.Uint64(fh[4:12])
		want := binary.LittleEndian.Uint32(fh[12:16])
		if plen > MaxRecordBytes {
			s.badReason = fmt.Sprintf("implausible payload length %d", plen)
			return s, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if n, err := io.ReadFull(f, payload); err != nil {
			s.badReason = fmt.Sprintf("payload truncated at %d of %d bytes", n, plen)
			return s, nil
		}
		crc := crc32.Checksum(fh[0:12], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			s.badReason = fmt.Sprintf("record checksum %08x, computed %08x", want, crc)
			return s, nil
		}
		if seq <= s.lastSeq {
			s.badReason = fmt.Sprintf("sequence %d not after %d", seq, s.lastSeq)
			return s, nil
		}
		// The header's firstSeq is a floor, not an exact match: after a torn
		// tail is truncated under a newer snapshot watermark (MinSeq), appends
		// legitimately resume mid-segment at a higher sequence.
		if seq < first {
			s.badReason = fmt.Sprintf("record seq %d below segment header %d", seq, first)
			return s, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return nil, err
			}
		}
		s.records++
		s.lastSeq = seq
		s.goodBytes += frameHeaderSize + int64(plen)
	}
}

// Scan replays every valid record in dir (in log order) through fn without
// opening the log for writing and without repairing anything. Records with
// seq ≤ from are skipped (fn may be nil to just measure). A torn tail is
// reported in the Recovery, not an error; corruption before the tail is
// ErrCorrupt.
func Scan(dir string, from uint64, fn func(seq uint64, payload []byte) error) (*Recovery, error) {
	names, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{}
	var prevSeq uint64
	for i, name := range names {
		path := filepath.Join(dir, name)
		visit := func(seq uint64, payload []byte) error {
			if rec.FirstSeq == 0 {
				rec.FirstSeq = seq
			}
			rec.LastSeq = seq
			if fn != nil && seq > from {
				return fn(seq, payload)
			}
			return nil
		}
		s, err := scanSegment(path, prevSeq, visit)
		if err != nil {
			return nil, err
		}
		if s.badReason != "" {
			if i != len(names)-1 {
				return nil, fmt.Errorf("%w: %s: %s", ErrCorrupt, path, s.badReason)
			}
			rec.TornBytes = s.totalBytes - s.goodBytes
			rec.TornSegment = path
		}
		rec.Segments++
		rec.Records += uint64(s.records)
		if s.records > 0 {
			prevSeq = s.lastSeq
		}
	}
	return rec, nil
}

// Open opens (or creates) the log in opt.Dir, truncating crash debris off
// the tail segment, and returns the log ready for Append plus a Recovery
// describing what was found. Replay the surviving records with Log.Replay
// before the first Append.
func Open(opt Options) (*Log, *Recovery, error) {
	if opt.Dir == "" {
		return nil, nil, errors.New("wal: Options.Dir required")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.SegmentBytes < MinSegmentBytes {
		opt.SegmentBytes = MinSegmentBytes
	}
	if opt.SyncInterval <= 0 {
		opt.SyncInterval = 100 * time.Millisecond
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	if opt.MetricsPrefix == "" {
		opt.MetricsPrefix = "wal"
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	names, err := ListSegments(opt.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec := &Recovery{}
	var prevSeq uint64
	var tail *segScan
	var tailPath string
	for i, name := range names {
		path := filepath.Join(opt.Dir, name)
		s, err := scanSegment(path, prevSeq, func(seq uint64, _ []byte) error {
			if rec.FirstSeq == 0 {
				rec.FirstSeq = seq
			}
			rec.LastSeq = seq
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
		}
		if s.badReason != "" && i != len(names)-1 {
			return nil, nil, fmt.Errorf("%w: %s: %s", ErrCorrupt, path, s.badReason)
		}
		rec.Segments++
		rec.Records += uint64(s.records)
		if s.records > 0 {
			prevSeq = s.lastSeq
		}
		tail, tailPath = s, path
	}

	l := &Log{opt: opt, nextSeq: prevSeq + 1}
	if l.nextSeq <= opt.MinSeq {
		l.nextSeq = opt.MinSeq + 1
	}
	// Every record that survived recovery is on disk by definition.
	l.commit = l.nextSeq - 1
	l.commitCond = sync.NewCond(&l.mu)
	if tail != nil {
		if tail.badReason != "" {
			rec.TornBytes = tail.totalBytes - tail.goodBytes
			rec.TornSegment = tailPath
		}
		if tail.goodBytes < segHeaderSize {
			// The tail never got a complete header (crash mid-create): it
			// holds no records, so drop the file; the next append starts a
			// fresh segment.
			if err := os.Remove(tailPath); err != nil {
				return nil, nil, fmt.Errorf("wal: dropping headerless tail: %w", err)
			}
			rec.Segments--
			syncDir(opt.Dir)
		} else {
			f, err := os.OpenFile(tailPath, os.O_RDWR, 0)
			if err != nil {
				return nil, nil, fmt.Errorf("wal: reopening tail: %w", err)
			}
			if tail.badReason != "" {
				if err := f.Truncate(tail.goodBytes); err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("wal: syncing truncated tail: %w", err)
				}
			}
			if _, err := f.Seek(tail.goodBytes, io.SeekStart); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: seeking tail: %w", err)
			}
			l.seg, l.segPath, l.segSize = f, tailPath, tail.goodBytes
		}
	}
	l.gaugeSegments()
	if opt.Sync == SyncInterval {
		l.stopTick = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

// syncDir fsyncs a directory; best-effort (some filesystems refuse).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func (l *Log) metric(name string) *obs.Counter {
	return l.opt.Metrics.Counter(l.opt.MetricsPrefix + name)
}

func (l *Log) gaugeSegments() {
	names, err := ListSegments(l.opt.Dir)
	if err == nil {
		l.opt.Metrics.Gauge(l.opt.MetricsPrefix + "_segments").Set(float64(len(names)))
	}
}

// syncLoop is the SyncInterval flusher: it syncs dirty data on a timer and
// marks the log broken on the first sync failure.
func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.broken == nil && l.dirty {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// NextSeq returns the sequence number the next appended record will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Broken returns the sticky failure that broke the log, or nil.
func (l *Log) Broken() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opt.Dir }

// Replay streams every surviving record with seq > from through fn, in log
// order. Call before the first Append (replaying a log you are appending to
// would hand fn your own writes).
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) (uint64, error) {
	var n uint64
	_, err := Scan(l.opt.Dir, from, func(seq uint64, payload []byte) error {
		n++
		return fn(seq, payload)
	})
	return n, err
}

// Append appends one record; see AppendBatch.
func (l *Log) Append(payload []byte) (uint64, error) {
	return l.AppendBatch([][]byte{payload})
}

// AppendBatch appends the payloads as consecutive records and returns the
// sequence number of the last one. Durability on return follows the sync
// policy (see the package comment). On any failure the log is marked broken:
// none of this batch is acknowledged durable, every later Append fails
// fast, and already-synced records remain replayable.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, fmt.Errorf("%w: %w", ErrBroken, l.broken)
	}
	var buf []byte
	var bytes int64
	for _, p := range payloads {
		if len(p) > MaxRecordBytes {
			return 0, fmt.Errorf("wal: %d-byte record exceeds MaxRecordBytes", len(p))
		}
		if err := l.rotateIfNeededLocked(int64(frameHeaderSize + len(p))); err != nil {
			return 0, l.breakLocked(err)
		}
		buf = frame(buf, l.nextSeq, p)
		if err := l.writeFrameLocked(buf); err != nil {
			return 0, l.breakLocked(err)
		}
		l.nextSeq++
		bytes += int64(len(buf))
		if l.opt.Sync == SyncAlways {
			if err := l.syncLocked(); err != nil {
				return 0, err // syncLocked already marked broken
			}
		}
	}
	if l.opt.Sync == SyncBatch {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	l.metric("_appends_total").Inc()
	l.metric("_records_total").Add(int64(len(payloads)))
	l.metric("_bytes_total").Add(bytes)
	return l.nextSeq - 1, nil
}

// AppendRecord appends one record under a caller-assigned sequence number —
// the replication receiver's entry point, where the primary's numbering must
// be preserved bitwise. seq must be exactly NextSeq(). Unlike AppendBatch no
// sync policy runs (rotation still seals the old segment): the receiver
// batches several frames, calls Sync once, and only then acks, so its
// committed watermark never runs ahead of its acks.
func (l *Log) AppendRecord(seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.broken)
	}
	if seq != l.nextSeq {
		return fmt.Errorf("wal: AppendRecord seq %d, next is %d", seq, l.nextSeq)
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: %d-byte record exceeds MaxRecordBytes", len(payload))
	}
	if err := l.rotateIfNeededLocked(int64(frameHeaderSize + len(payload))); err != nil {
		return l.breakLocked(err)
	}
	buf := frame(nil, seq, payload)
	if err := l.writeFrameLocked(buf); err != nil {
		return l.breakLocked(err)
	}
	l.nextSeq++
	l.metric("_appends_total").Inc()
	l.metric("_records_total").Inc()
	l.metric("_bytes_total").Add(int64(len(buf)))
	return nil
}

// writeFrameLocked writes one framed record to the active segment. An armed
// PointWALWrite fault performs a deliberate short write first, so the torn
// frame is really on disk for the recovery path to find.
func (l *Log) writeFrameLocked(buf []byte) error {
	if err := l.opt.Injector.Err(faultinject.PointWALWrite); err != nil {
		l.seg.Write(buf[:len(buf)/2]) // torn frame: recovery must truncate it
		return fmt.Errorf("wal: append: %w", err)
	}
	n, err := l.seg.Write(buf)
	l.segSize += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	return nil
}

// rotateIfNeededLocked seals the active segment and starts a new one when
// the next frame would push it past SegmentBytes (or when there is no
// active segment at all).
func (l *Log) rotateIfNeededLocked(frameLen int64) error {
	if l.seg != nil && (l.segSize+frameLen <= l.opt.SegmentBytes || l.segSize <= segHeaderSize) {
		return nil
	}
	if l.seg != nil {
		// Seal: everything in the old segment must be durable before the
		// log moves on, whatever the sync policy.
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.seg = nil
		l.dirty = false
		l.setCommitLocked(l.nextSeq - 1)
	}
	if err := l.opt.Injector.Err(faultinject.PointWALRotate); err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	path := filepath.Join(l.opt.Dir, segmentName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := writeSegHeader(f, l.nextSeq); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	syncDir(l.opt.Dir)
	l.seg, l.segPath, l.segSize = f, path, segHeaderSize
	l.metric("_rotations_total").Inc()
	l.gaugeSegments()
	return nil
}

// breakLocked records the first failure; the log refuses appends from here.
func (l *Log) breakLocked(err error) error {
	if l.broken == nil {
		l.broken = err
		l.opt.Metrics.Gauge(l.opt.MetricsPrefix + "_broken").Set(1)
		l.commitCond.Broadcast() // waiters must observe the failure, not time out
	}
	return err
}

// Sync forces dirty appended data to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.broken)
	}
	if !l.dirty {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.seg == nil {
		l.dirty = false
		l.setCommitLocked(l.nextSeq - 1)
		return nil
	}
	if err := l.opt.Injector.Err(faultinject.PointWALSync); err != nil {
		l.metric("_sync_errors_total").Inc()
		return l.breakLocked(fmt.Errorf("wal: sync: %w", err))
	}
	if err := l.seg.Sync(); err != nil {
		l.metric("_sync_errors_total").Inc()
		return l.breakLocked(fmt.Errorf("wal: sync: %w", err))
	}
	l.dirty = false
	l.setCommitLocked(l.nextSeq - 1)
	l.metric("_syncs_total").Inc()
	return nil
}

// setCommitLocked advances the committed watermark and wakes WaitCommitted
// callers (and tailers parked on the commit frontier).
func (l *Log) setCommitLocked(seq uint64) {
	if seq > l.commit {
		l.commit = seq
		l.commitCond.Broadcast()
	}
}

// CommittedSeq returns the sequence number of the last record known durable
// (fsynced, or recovered from disk at Open). Records past this watermark are
// appended but may still be lost to a crash; replication ships only committed
// frames so a standby can never hold records its primary forgets.
func (l *Log) CommittedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// WaitCommitted blocks until the committed watermark reaches seq, the
// timeout d elapses, or the log is closed or broken; it reports whether the
// watermark made it.
func (l *Log) WaitCommitted(seq uint64, d time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.commit >= seq {
		return true
	}
	if d <= 0 || l.closed || l.broken != nil {
		return false
	}
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		l.mu.Lock()
		l.commitCond.Broadcast()
		l.mu.Unlock()
	})
	defer timer.Stop()
	for l.commit < seq && !l.closed && l.broken == nil && time.Now().Before(deadline) {
		l.commitCond.Wait()
	}
	return l.commit >= seq
}

// TruncateBefore removes sealed segments every record of which has
// seq < keep (bounded retention after a compaction snapshot covering
// records < keep). The active segment is never removed. Returns how many
// segments were deleted.
func (l *Log) TruncateBefore(keep uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	// An armed PointWALTruncate stands in for a crash after the compaction
	// snapshot is durable but before retention deletes obsolete segments:
	// the failure is non-fatal (segments are re-collected next compaction)
	// and recovery must tolerate the surviving overlap.
	if err := l.opt.Injector.Err(faultinject.PointWALTruncate); err != nil {
		return 0, fmt.Errorf("wal: truncate: %w", err)
	}
	names, err := ListSegments(l.opt.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, name := range names {
		if filepath.Join(l.opt.Dir, name) == l.segPath {
			break
		}
		// A sealed segment's records all precede the next segment's first
		// seq, so it is obsolete iff that next first seq is ≤ keep.
		if i+1 >= len(names) {
			break
		}
		next, _ := segmentSeq(names[i+1])
		if next > keep {
			break
		}
		if err := os.Remove(filepath.Join(l.opt.Dir, name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		syncDir(l.opt.Dir)
		l.metric("_truncated_segments_total").Add(int64(removed))
		l.gaugeSegments()
	}
	return removed, nil
}

// Close syncs dirty data (unless the log is broken) and releases the files.
// Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if l.broken == nil && l.dirty {
		err = l.syncLocked()
	}
	l.closed = true
	l.commitCond.Broadcast()
	if l.seg != nil {
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg = nil
	}
	tick, done := l.stopTick, l.tickDone
	l.mu.Unlock()
	if tick != nil {
		close(tick)
		<-done
	}
	return err
}

// Closed reports whether Close has run.
func (l *Log) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}
