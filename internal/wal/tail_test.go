package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

func openTail(t *testing.T, opt Options) *Log {
	t.Helper()
	l, _, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestCommittedSeqTracksSync(t *testing.T) {
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncBatch})
	if got := l.CommittedSeq(); got != 0 {
		t.Fatalf("empty log CommittedSeq = %d, want 0", got)
	}
	seq, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	// SyncBatch fsyncs on return, so the batch is committed immediately.
	if got := l.CommittedSeq(); got != seq {
		t.Fatalf("CommittedSeq = %d, want %d", got, seq)
	}
	if !l.WaitCommitted(seq, 0) {
		t.Fatal("WaitCommitted(committed seq) = false")
	}
	if l.WaitCommitted(seq+1, 10*time.Millisecond) {
		t.Fatal("WaitCommitted past the log end = true")
	}
}

func TestCommittedSeqLagsUnderIntervalSync(t *testing.T) {
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: time.Hour})
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := l.CommittedSeq(); got != 0 {
		t.Fatalf("CommittedSeq before fsync = %d, want 0", got)
	}
	done := make(chan bool, 1)
	go func() { done <- l.WaitCommitted(1, 5*time.Second) }()
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if !<-done {
		t.Fatal("WaitCommitted did not observe the explicit Sync")
	}
}

func TestWaitCommittedUnblocksOnClose(t *testing.T) {
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncBatch})
	done := make(chan bool, 1)
	go func() { done <- l.WaitCommitted(99, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("WaitCommitted = true after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCommitted still blocked after Close")
	}
}

func TestAppendRecordSeqCheck(t *testing.T) {
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncBatch})
	if err := l.AppendRecord(1, []byte("r1")); err != nil {
		t.Fatalf("AppendRecord(1): %v", err)
	}
	if err := l.AppendRecord(5, []byte("gap")); err == nil {
		t.Fatal("AppendRecord with a sequence gap succeeded")
	}
	if err := l.AppendRecord(1, []byte("dup")); err == nil {
		t.Fatal("AppendRecord with a duplicate sequence succeeded")
	}
	if err := l.AppendRecord(2, []byte("r2")); err != nil {
		t.Fatalf("AppendRecord(2): %v", err)
	}
	// AppendRecord defers durability to an explicit Sync.
	if got := l.CommittedSeq(); got != 0 {
		t.Fatalf("CommittedSeq before Sync = %d, want 0", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := l.CommittedSeq(); got != 2 {
		t.Fatalf("CommittedSeq after Sync = %d, want 2", got)
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	payload := []byte("hello frames")
	b := EncodeFrame(7, payload)
	seq, got, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if seq != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("DecodeFrame = (%d, %q), want (7, %q)", seq, got, payload)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeFrame(b[:cut]); err == nil {
			t.Fatalf("DecodeFrame accepted a frame truncated to %d bytes", cut)
		}
	}
	for i := range b {
		flip := bytes.Clone(b)
		flip[i] ^= 0x40
		if _, _, err := DecodeFrame(flip); err == nil {
			// A flip in the payload-length byte could still parse iff the
			// CRC also matched — astronomically unlikely; any nil error here
			// is a codec bug.
			t.Fatalf("DecodeFrame accepted a frame with byte %d flipped", i)
		}
	}
}

func TestTailerFollowsWriter(t *testing.T) {
	const records = 200
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncBatch, SegmentBytes: MinSegmentBytes})
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < records; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("payload-%04d", i))); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	tl := l.TailFrom(0)
	defer tl.Close()
	for i := 0; i < records; i++ {
		seq, payload, err := tl.Next(5 * time.Second)
		if err != nil {
			t.Fatalf("Next (record %d): %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("Next seq = %d, want %d", seq, want)
		}
		if want := fmt.Sprintf("payload-%04d", i); string(payload) != want {
			t.Fatalf("Next payload = %q, want %q", payload, want)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, _, err := tl.Next(20 * time.Millisecond); !errors.Is(err, ErrTailTimeout) {
		t.Fatalf("Next past the end = %v, want ErrTailTimeout", err)
	}
}

func TestTailerStartsMidLogAndAcrossRotation(t *testing.T) {
	// Tiny segments force many rotations; the tailer must cross them.
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncBatch, SegmentBytes: MinSegmentBytes})
	const records = 300
	for i := 0; i < records; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	const start = 123
	tl := l.TailFrom(start)
	defer tl.Close()
	for want := uint64(start + 1); want <= records; want++ {
		seq, payload, err := tl.Next(time.Second)
		if err != nil {
			t.Fatalf("Next (seq %d): %v", want, err)
		}
		if seq != want {
			t.Fatalf("Next seq = %d, want %d", seq, want)
		}
		if wantB := bytes.Repeat([]byte{byte(want - 1)}, 64); !bytes.Equal(payload, wantB) {
			t.Fatalf("seq %d payload mismatch", seq)
		}
	}
}

func TestTailerDoesNotShipUncommitted(t *testing.T) {
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: time.Hour})
	if _, err := l.Append([]byte("unsynced")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	tl := l.TailFrom(0)
	defer tl.Close()
	if seq, _, err := tl.Next(30 * time.Millisecond); !errors.Is(err, ErrTailTimeout) {
		t.Fatalf("Next over unsynced data = (%d, %v), want ErrTailTimeout", seq, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if seq, _, err := tl.Next(time.Second); err != nil || seq != 1 {
		t.Fatalf("Next after Sync = (%d, %v), want (1, nil)", seq, err)
	}
}

func TestTailerSeqGoneAfterTruncate(t *testing.T) {
	l := openTail(t, Options{Dir: t.TempDir(), Sync: SyncBatch, SegmentBytes: MinSegmentBytes})
	const records = 300
	var last uint64
	for i := 0; i < records; i++ {
		var err error
		if last, err = l.Append(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	removed, err := l.TruncateBefore(last)
	if err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing; segment sizing is off")
	}
	tl := l.TailFrom(0)
	defer tl.Close()
	if _, _, err := tl.Next(time.Second); !errors.Is(err, ErrSeqGone) {
		t.Fatalf("Next from a truncated position = %v, want ErrSeqGone", err)
	}
}

func TestTruncateFaultLeavesSegments(t *testing.T) {
	inj := faultinject.New()
	dir := t.TempDir()
	l := openTail(t, Options{Dir: dir, Sync: SyncBatch, SegmentBytes: MinSegmentBytes, Injector: inj})
	var last uint64
	for i := 0; i < 300; i++ {
		var err error
		if last, err = l.Append(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before, _ := ListSegments(dir)
	inj.ArmErr(faultinject.PointWALTruncate, errors.New("crash before delete"), 1)
	if _, err := l.TruncateBefore(last); err == nil {
		t.Fatal("TruncateBefore with armed fault succeeded")
	}
	after, _ := ListSegments(dir)
	if len(after) != len(before) {
		t.Fatalf("faulted truncate removed segments: %d -> %d", len(before), len(after))
	}
	// The fault is non-fatal: the log still appends and a retry collects.
	if _, err := l.Append([]byte("still alive")); err != nil {
		t.Fatalf("Append after faulted truncate: %v", err)
	}
	if removed, err := l.TruncateBefore(last); err != nil || removed == 0 {
		t.Fatalf("retried TruncateBefore = (%d, %v), want removals", removed, err)
	}
}

// replicate copies src's records into a standby log via the replication
// primitives (TailFrom + AppendRecord), stopping after n records.
func replicate(t *testing.T, src *Log, dstDir string, n int) {
	t.Helper()
	dst, _, err := Open(Options{Dir: dstDir, Sync: SyncBatch})
	if err != nil {
		t.Fatalf("Open standby: %v", err)
	}
	defer dst.Close()
	tl := src.TailFrom(0)
	defer tl.Close()
	for i := 0; i < n; i++ {
		seq, payload, err := tl.Next(time.Second)
		if err != nil {
			t.Fatalf("tail record %d: %v", i, err)
		}
		if err := dst.AppendRecord(seq, payload); err != nil {
			t.Fatalf("AppendRecord %d: %v", seq, err)
		}
	}
	if err := dst.Sync(); err != nil {
		t.Fatalf("standby Sync: %v", err)
	}
}

func TestVerifyPrefix(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	l := openTail(t, Options{Dir: primaryDir, Sync: SyncBatch, SegmentBytes: MinSegmentBytes})
	const records = 120
	for i := 0; i < records; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// A standby holding a strict prefix verifies.
	replicate(t, l, standbyDir, records/2)
	if err := VerifyPrefix(standbyDir, primaryDir); err != nil {
		t.Fatalf("VerifyPrefix(prefix) = %v", err)
	}
	// Equal logs verify both ways.
	fullDir := t.TempDir()
	replicate(t, l, fullDir, records)
	if err := VerifyPrefix(fullDir, primaryDir); err != nil {
		t.Fatalf("VerifyPrefix(equal) = %v", err)
	}
	// A standby that ran ahead of the primary is not a prefix.
	ahead, _, err := Open(Options{Dir: fullDir, Sync: SyncBatch})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := ahead.Append([]byte("divergent")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ahead.Close()
	if err := VerifyPrefix(fullDir, primaryDir); !errors.Is(err, ErrNotPrefix) {
		t.Fatalf("VerifyPrefix(ahead) = %v, want ErrNotPrefix", err)
	}
	// A payload mismatch at the same seq is not a prefix either.
	divergedDir := t.TempDir()
	d, _, err := Open(Options{Dir: divergedDir, Sync: SyncBatch})
	if err != nil {
		t.Fatalf("Open diverged: %v", err)
	}
	if _, err := d.Append([]byte("not-record-0000")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	d.Close()
	if err := VerifyPrefix(divergedDir, primaryDir); !errors.Is(err, ErrNotPrefix) {
		t.Fatalf("VerifyPrefix(diverged) = %v, want ErrNotPrefix", err)
	}
	// Records the primary compacted away are exempt on the standby side.
	if _, err := l.TruncateBefore(100); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if err := VerifyPrefix(standbyDir, primaryDir); err != nil {
		t.Fatalf("VerifyPrefix(after primary compaction) = %v", err)
	}
}
