package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
	"github.com/cascade-ml/cascade/internal/resilience/faultinject"
)

// collect replays the whole log in dir into (seqs, payloads).
func collect(t *testing.T, dir string) ([]uint64, [][]byte) {
	t.Helper()
	var seqs []uint64
	var payloads [][]byte
	_, err := Scan(dir, 0, func(seq uint64, p []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.Segments != 0 {
		t.Fatalf("fresh log recovery %+v", rec)
	}
	want := [][]byte{[]byte("a"), bytes.Repeat([]byte("b"), 100), {}, []byte("final")}
	for i, p := range want {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Records != 4 || rec2.FirstSeq != 1 || rec2.LastSeq != 4 || rec2.TornBytes != 0 {
		t.Fatalf("recovery %+v", rec2)
	}
	var got [][]byte
	n, err := l2.Replay(0, func(seq uint64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil || n != 4 {
		t.Fatalf("replay n=%d err=%v", n, err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// Replay from a watermark skips the covered prefix.
	n, err = l2.Replay(2, func(uint64, []byte) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("replay from 2: n=%d err=%v", n, err)
	}
	if l2.NextSeq() != 5 {
		t.Fatalf("NextSeq %d", l2.NextSeq())
	}
}

func TestRotationProducesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: MinSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1500)
	const n = 9
	for i := 0; i < n; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected ≥3 segments after %d large appends, got %v", n, names)
	}
	seqs, _ := collect(t, dir)
	if len(seqs) != n {
		t.Fatalf("replayed %d records, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d]=%d", i, s)
		}
	}
}

func TestTruncateBeforeRetention(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: MinSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("y"), 1500)
	for i := 0; i < 9; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := ListSegments(dir)
	if len(before) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(before))
	}
	// Snapshot covers records ≤ 6: segments wholly below survive only if
	// they hold later records.
	removed, err := l.TruncateBefore(7)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no segments removed")
	}
	seqs, _ := collect(t, dir)
	if len(seqs) == 0 || seqs[len(seqs)-1] != 9 {
		t.Fatalf("replay after truncate: %v", seqs)
	}
	// Everything from the watermark on must survive.
	var have []uint64
	for _, s := range seqs {
		if s >= 7 {
			have = append(have, s)
		}
	}
	if len(have) != 3 {
		t.Fatalf("records ≥7 after truncate: %v", seqs)
	}
	// The log keeps appending after retention trims.
	if _, err := l.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		lastSeq, _ = l.Append([]byte(fmt.Sprintf("record-%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_ = lastSeq
	names, _ := ListSegments(dir)
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the 4th record: records 0–2 must survive,
	// 3 and 4 are truncated away (4 follows the bad frame).
	off := segHeaderSize + 3*(frameHeaderSize+len("record-0")) + frameHeaderSize + 2
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 3 || rec.TornBytes == 0 || rec.TornSegment == "" {
		t.Fatalf("recovery %+v", rec)
	}
	// The log resumes at the truncation point.
	seq, err := l2.Append([]byte("after-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("resumed seq %d, want 4", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, payloads := collect(t, dir)
	if len(seqs) != 4 || string(payloads[3]) != "after-recovery" {
		t.Fatalf("post-recovery log: seqs %v", seqs)
	}
}

func TestCorruptionBeforeTailFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: MinSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("z"), 1500)
	for i := 0; i < 9; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := ListSegments(dir)
	if len(names) < 2 {
		t.Fatalf("need ≥2 segments, got %v", names)
	}
	first := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(first)
	data[segHeaderSize+frameHeaderSize+7] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption: %v, want ErrCorrupt", err)
	}
	if _, err := Scan(dir, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan over mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		reg := obs.NewRegistry()
		l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncAlways, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("wal_syncs_total").Value(); got != 3 {
			t.Fatalf("always: %d syncs for 3 records", got)
		}
	})
	t.Run("batch", func(t *testing.T) {
		reg := obs.NewRegistry()
		l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncBatch, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("wal_syncs_total").Value(); got != 1 {
			t.Fatalf("batch: %d syncs for 1 batch", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		reg := obs.NewRegistry()
		l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: 5 * time.Millisecond, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for reg.Counter("wal_syncs_total").Value() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("interval sync never fired")
			}
			time.Sleep(time.Millisecond)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInjectedWriteFailureBreaksLog(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New()
	reg := obs.NewRegistry()
	l, _, err := Open(Options{Dir: dir, Injector: inj, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	inj.Arm(faultinject.PointWALWrite) // next write fails short
	if _, err := l.Append([]byte("doomed-record")); err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	if l.Broken() == nil {
		t.Fatal("log not marked broken")
	}
	if got := reg.Gauge("wal_broken").Value(); got != 1 {
		t.Fatalf("wal_broken gauge %v", got)
	}
	// Fails fast from here, without consulting the injector again.
	if _, err := l.Append([]byte("later")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log: %v", err)
	}
	l.Close()
	// The short write left a torn frame on disk; recovery truncates it and
	// the three acked records survive.
	l2, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != 3 || rec.TornBytes == 0 {
		t.Fatalf("recovery after torn write: %+v", rec)
	}
}

func TestInjectedSyncFailureBreaksLog(t *testing.T) {
	inj := faultinject.New()
	l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncBatch, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.PointWALSync)
	if _, err := l.Append([]byte("lost")); err == nil {
		t.Fatal("injected sync failure not surfaced")
	}
	if _, err := l.Append([]byte("later")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log: %v", err)
	}
}

func TestInjectedRotateFailure(t *testing.T) {
	inj := faultinject.New()
	l, _, err := Open(Options{Dir: t.TempDir(), SegmentBytes: MinSegmentBytes, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("r"), 1500)
	if _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.PointWALRotate) // next segment creation = disk full
	var rotateErr error
	for i := 0; i < 8 && rotateErr == nil; i++ {
		_, rotateErr = l.Append(payload)
	}
	if rotateErr == nil {
		t.Fatal("rotation never failed under injected disk-full")
	}
	if !errors.Is(l.Broken(), faultinject.ErrInjected) {
		t.Fatalf("broken error %v", l.Broken())
	}
}

func TestMinSeqPinsEmptyLog(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), MinSeq: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("first seq %d, want 42", seq)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "Batch": SyncBatch, " interval ": SyncInterval} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("yolo"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestClosedLogRefusesOperations(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !l.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}
