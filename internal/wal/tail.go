package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Tailing errors; match with errors.Is.
var (
	// ErrTailTimeout is returned by Tailer.Next when no committed record
	// past the tailer's position appeared within the wait budget.
	ErrTailTimeout = errors.New("wal: tail timeout")
	// ErrSeqGone means the record the tailer needs next has been compacted
	// away (or the log skipped past it under a newer MinSeq watermark); the
	// reader must fall back to a snapshot and resume from its watermark.
	ErrSeqGone = errors.New("wal: tail sequence truncated away")
	// ErrNotPrefix is returned by VerifyPrefix when the candidate log is not
	// a prefix of the reference log.
	ErrNotPrefix = errors.New("wal: not a prefix")
)

// EncodeFrame encodes one record with the CASCWAL1 frame codec — the unit the
// replication protocol ships, so a standby appends the primary's bytes
// verbatim and CRC-checks them with the same table.
func EncodeFrame(seq uint64, payload []byte) []byte {
	return frame(nil, seq, payload)
}

// DecodeFrame validates and decodes one CASCWAL1 frame produced by
// EncodeFrame. The returned payload aliases b.
func DecodeFrame(b []byte) (seq uint64, payload []byte, err error) {
	if len(b) < frameHeaderSize {
		return 0, nil, fmt.Errorf("wal: frame truncated at %d bytes", len(b))
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	seq = binary.LittleEndian.Uint64(b[4:12])
	want := binary.LittleEndian.Uint32(b[12:16])
	if plen > MaxRecordBytes {
		return 0, nil, fmt.Errorf("wal: implausible frame payload length %d", plen)
	}
	if len(b) != frameHeaderSize+int(plen) {
		return 0, nil, fmt.Errorf("wal: frame length %d, header declares %d", len(b), frameHeaderSize+plen)
	}
	payload = b[frameHeaderSize:]
	crc := crc32.Checksum(b[0:12], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, fmt.Errorf("wal: frame checksum %08x, computed %08x", want, crc)
	}
	return seq, payload, nil
}

// Tailer reads committed records out of a live log, following the writer —
// the primary side of WAL-shipping replication. It owns read-only file
// handles, so tailing never contends with appends beyond the commit-watermark
// lookups. Not safe for concurrent use by multiple goroutines.
type Tailer struct {
	l        *Log
	last     uint64 // last seq handed out
	f        *os.File
	segFirst uint64
	off      int64
	hdr      [frameHeaderSize]byte
}

// TailFrom returns a Tailer positioned after last: the first Next returns
// record last+1 (or ErrSeqGone if compaction already dropped it).
func (l *Log) TailFrom(last uint64) *Tailer {
	return &Tailer{l: l, last: last}
}

// Last returns the sequence number of the last record Next handed out.
func (t *Tailer) Last() uint64 { return t.last }

// Close releases the tailer's file handle. The log itself is untouched.
func (t *Tailer) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// errors internal to the read loop: a frame that is not (yet) fully on disk.
var (
	errTailEOF     = errors.New("wal: tail at segment end")     // clean frame boundary
	errTailPartial = errors.New("wal: tail mid-write")          // bytes still landing
)

// Next returns the next committed record, waiting up to wait for one to
// appear. Only records at or below the log's committed (fsynced) watermark
// are ever returned — a crash cannot un-write what a tailer has shipped.
// Returns ErrTailTimeout when the budget expires, ErrSeqGone when compaction
// outran the tailer, ErrClosed when the log closed.
func (t *Tailer) Next(wait time.Duration) (uint64, []byte, error) {
	deadline := time.Now().Add(wait)
	for {
		// Gate on the commit watermark: never read a frame the writer has
		// not fsynced, so a primary crash cannot leave this reader (and the
		// standby behind it) holding records the restarted primary forgot.
		committed := t.l.CommittedSeq()
		if committed <= t.last {
			if !t.l.WaitCommitted(t.last+1, time.Until(deadline)) {
				if t.l.Closed() {
					return 0, nil, ErrClosed
				}
				return 0, nil, ErrTailTimeout
			}
			continue
		}
		if t.f == nil {
			if err := t.openSegmentFor(t.last + 1); err != nil {
				if errors.Is(err, errTailPartial) {
					if !t.pause(deadline) {
						return 0, nil, ErrTailTimeout
					}
					continue
				}
				return 0, nil, err
			}
		}
		seq, payload, n, err := t.readFrame()
		switch {
		case err == nil:
			t.off += n
			if seq <= t.last {
				continue // catching up inside the segment
			}
			if seq != t.last+1 {
				// A gap inside a segment: appends resumed above a newer
				// MinSeq watermark. The skipped range is unrecoverable here.
				return 0, nil, fmt.Errorf("%w: want %d, found %d", ErrSeqGone, t.last+1, seq)
			}
			t.last = seq
			return seq, payload, nil
		case errors.Is(err, errTailEOF):
			next, nerr := t.nextSegmentName()
			if nerr != nil {
				return 0, nil, nerr
			}
			if next == "" {
				// Active segment, writer just hasn't appended yet (commit
				// can lead the read position right after a seal).
				if !t.pause(deadline) {
					return 0, nil, ErrTailTimeout
				}
				continue
			}
			// A later segment exists, so the current one is sealed and this
			// EOF is final: advance.
			t.Close()
			if err := t.openSegmentPath(next); err != nil {
				if errors.Is(err, errTailPartial) {
					if !t.pause(deadline) {
						return 0, nil, ErrTailTimeout
					}
					continue
				}
				return 0, nil, err
			}
		case errors.Is(err, errTailPartial):
			if !t.pause(deadline) {
				return 0, nil, ErrTailTimeout
			}
		default:
			return 0, nil, err
		}
	}
}

// pause sleeps briefly within the deadline; reports false once it has passed.
func (t *Tailer) pause(deadline time.Time) bool {
	if !time.Now().Before(deadline) {
		return false
	}
	time.Sleep(time.Millisecond)
	return true
}

// readFrame parses the frame at the current offset without advancing it.
// A clean EOF at a frame boundary is errTailEOF; anything that looks like a
// concurrent append still landing (short header, short payload, checksum over
// half-written bytes) is errTailPartial — the commit gate guarantees the
// frame this tailer needs is durable, so partial reads always resolve.
func (t *Tailer) readFrame() (seq uint64, payload []byte, size int64, err error) {
	n, rerr := t.f.ReadAt(t.hdr[:], t.off)
	if n == 0 && errors.Is(rerr, io.EOF) {
		return 0, nil, 0, errTailEOF
	}
	if n < frameHeaderSize {
		return 0, nil, 0, errTailPartial
	}
	plen := binary.LittleEndian.Uint32(t.hdr[0:4])
	seq = binary.LittleEndian.Uint64(t.hdr[4:12])
	want := binary.LittleEndian.Uint32(t.hdr[12:16])
	if plen > MaxRecordBytes {
		return 0, nil, 0, errTailPartial
	}
	payload = make([]byte, plen)
	if n, rerr := t.f.ReadAt(payload, t.off+frameHeaderSize); rerr != nil && n < int(plen) {
		return 0, nil, 0, errTailPartial
	}
	crc := crc32.Checksum(t.hdr[0:12], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, 0, errTailPartial
	}
	return seq, payload, frameHeaderSize + int64(plen), nil
}

// openSegmentFor opens the segment whose name-floor covers seq: the last
// segment whose first-seq is ≤ seq. If every segment starts after seq, that
// record was compacted away (ErrSeqGone).
func (t *Tailer) openSegmentFor(seq uint64) error {
	names, err := ListSegments(t.l.Dir())
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return errTailPartial // first segment still being created
	}
	idx := -1
	for i, name := range names {
		s, _ := segmentSeq(name)
		if s <= seq {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		first, _ := segmentSeq(names[0])
		return fmt.Errorf("%w: want %d, oldest segment starts at %d", ErrSeqGone, seq, first)
	}
	return t.openSegmentPath(names[idx])
}

// openSegmentPath opens one segment read-only and validates its header.
func (t *Tailer) openSegmentPath(name string) error {
	f, err := os.Open(filepath.Join(t.l.Dir(), name))
	if err != nil {
		if os.IsNotExist(err) {
			return errTailPartial // raced a truncation; re-list next pass
		}
		return err
	}
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return errTailPartial // header still being written
	}
	first, err := parseSegHeader(hdr)
	if err != nil {
		f.Close()
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	t.f, t.segFirst, t.off = f, first, segHeaderSize
	return nil
}

// nextSegmentName returns the first segment after the current one, "" when
// the current segment is the newest.
func (t *Tailer) nextSegmentName() (string, error) {
	names, err := ListSegments(t.l.Dir())
	if err != nil {
		return "", err
	}
	for _, name := range names {
		if s, _ := segmentSeq(name); s > t.segFirst {
			return name, nil
		}
	}
	return "", nil
}

// VerifyPrefix checks that the log in subDir (a standby's) is a prefix of the
// log in superDir (its primary's): every record the standby holds that the
// primary still retains must be byte-identical, and the standby must not
// extend past the primary. Records the primary compacted away (below its
// oldest retained seq) are exempt. Torn tails on either side are recovered
// exactly as Open would.
func VerifyPrefix(subDir, superDir string) error {
	superCRC := make(map[uint64]uint32)
	superRec, err := Scan(superDir, 0, func(seq uint64, payload []byte) error {
		superCRC[seq] = crc32.Checksum(payload, castagnoli)
		return nil
	})
	if err != nil {
		return fmt.Errorf("reference log %s: %w", superDir, err)
	}
	subRec, err := Scan(subDir, 0, func(seq uint64, payload []byte) error {
		if superRec.Records > 0 && seq < superRec.FirstSeq {
			return nil // compacted away on the reference side
		}
		want, ok := superCRC[seq]
		if !ok {
			return fmt.Errorf("%w: record %d in %s is absent from %s", ErrNotPrefix, seq, subDir, superDir)
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return fmt.Errorf("%w: record %d differs (payload crc %08x vs %08x)", ErrNotPrefix, seq, got, want)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if subRec.LastSeq > superRec.LastSeq {
		return fmt.Errorf("%w: %s ends at seq %d, past %s at %d",
			ErrNotPrefix, subDir, subRec.LastSeq, superDir, superRec.LastSeq)
	}
	return nil
}
