package load

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
)

// fakeClock is a manually-advanced clock shared by the rate-limit and
// breaker tests so nothing depends on wall time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestAdmissionBoundsInflightAndQueue: MaxInflight requests run, QueueDepth
// wait, and arrivals beyond that are shed with ErrQueueFull — the queue can
// never grow without bound.
func TestAdmissionBoundsInflightAndQueue(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Limits{MaxInflight: 2, QueueDepth: 2}, reg)

	// Fill the inflight slots.
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}

	// Fill the wait queue.
	queued := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			queued <- rel
		}()
	}
	waitFor(t, func() bool { return c.QueueLen() == 2 })
	if !c.Saturated() {
		t.Fatal("full queue not reported as saturated")
	}

	// The next arrival must be shed, not queued.
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire: %v, want ErrQueueFull", err)
	}
	var shed *ShedError
	_, err := c.Acquire(context.Background())
	if !errors.As(err, &shed) || shed.RetryAfter <= 0 {
		t.Fatalf("shed error %v lacks a Retry-After hint", err)
	}

	// Releasing lets the queued callers through.
	for _, rel := range releases {
		rel()
		rel() // release is idempotent
	}
	for i := 0; i < 2; i++ {
		select {
		case rel := <-queued:
			defer rel()
		case <-time.After(5 * time.Second):
			t.Fatal("queued caller never admitted after release")
		}
	}
	if got := reg.Counter("load_shed_total").Value(); got != 2 {
		t.Fatalf("load_shed_total = %d, want 2", got)
	}
	if got := reg.Counter("load_admitted_total").Value(); got != 4 {
		t.Fatalf("load_admitted_total = %d, want 4", got)
	}
}

// TestLowClassShedsFirst: with the inflight slots busy, low-class callers
// only get half the wait queue — the rest stays reserved for high-class
// traffic.
func TestLowClassShedsFirst(t *testing.T) {
	c := NewController(Limits{MaxInflight: 1, QueueDepth: 4}, nil)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Two low-class waiters fill the low half of the queue.
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := c.AcquireClass(context.Background(), ClassLow)
			if err == nil {
				rel()
			}
		}()
	}
	waitFor(t, func() bool { return c.QueueLen() == 2 })
	if _, err := c.AcquireClass(context.Background(), ClassLow); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third low-class acquire: %v, want ErrQueueFull", err)
	}
	// High-class still has headroom.
	done := make(chan struct{})
	go func() {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Errorf("high-class acquire shed: %v", err)
		} else {
			rel()
		}
		close(done)
	}()
	waitFor(t, func() bool { return c.QueueLen() == 3 })
	rel() // free the slot; the queue drains
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("high-class caller never admitted")
	}
}

// TestAcquireHonorsDeadline: a queued caller whose context expires is shed
// with the context's error instead of waiting forever.
func TestAcquireHonorsDeadline(t *testing.T) {
	c := NewController(Limits{MaxInflight: 1, QueueDepth: 1}, nil)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: %v, want DeadlineExceeded", err)
	}
	// Dead on arrival: an already-expired context never queues.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.Acquire(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired acquire: %v, want Canceled", err)
	}
}

// TestTokenBucketRateLimits: the bucket admits Burst immediately, sheds the
// next arrival with ErrRateLimited + a retry hint, and refills with time.
func TestTokenBucketRateLimits(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewController(Limits{MaxInflight: 8, Rate: 1, Burst: 2}, nil)
	c.SetClock(clk.now)

	for i := 0; i < 2; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
		rel()
	}
	var shed *ShedError
	_, err := c.Acquire(context.Background())
	if !errors.As(err, &shed) || !errors.Is(err, ErrRateLimited) {
		t.Fatalf("empty-bucket acquire: %v, want ErrRateLimited", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s]", shed.RetryAfter)
	}
	clk.advance(time.Second) // one token accrues
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("post-refill acquire: %v", err)
	}
	rel()
}

// TestNilControllerAdmitsEverything: production default (no limits
// configured) must be a true no-op.
func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if c.Saturated() || c.Inflight() != 0 || c.QueueLen() != 0 {
		t.Fatal("nil controller reports load")
	}
}

// TestBreakerLifecycle walks closed → open → half-open → open → half-open
// → closed on a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	reg := obs.NewRegistry()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2, Cooldown: 10 * time.Second, Now: clk.now, Obs: reg,
	})
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside cooldown")
	}
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed in half-open")
	}
	b.RecordFailure() // probe failed → straight back to open
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.RecordSuccess()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close")
	}
	if got := reg.Gauge("breaker_state").Value(); got != float64(BreakerClosed) {
		t.Fatalf("breaker_state gauge %v, want %v", got, float64(BreakerClosed))
	}
}

// TestBreakerSuccessResetsStreak: intervening successes keep a flaky-but-
// mostly-healthy dependency's breaker closed.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	b.RecordFailure()
	b.RecordSuccess()
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

// TestRetryBackoffDeterministic: the sleep sequence is exponential with
// bounded jitter and identical across runs with the same seed.
func TestRetryBackoffDeterministic(t *testing.T) {
	run := func() ([]time.Duration, error) {
		var sleeps []time.Duration
		calls := 0
		r := Retry{
			Attempts: 4, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond,
			Seed:  7,
			Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
		}
		err := r.Do("op", func(int) error {
			calls++
			if calls < 4 {
				return errors.New("transient")
			}
			return nil
		})
		return sleeps, err
	}
	s1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 3 {
		t.Fatalf("%d sleeps, want 3", len(s1))
	}
	for i, d := range s1 {
		lo := 10 * time.Millisecond << uint(i) / 2
		hi := 10 * time.Millisecond << uint(i)
		if i == 2 { // capped at Max=40ms
			hi = 40 * time.Millisecond
		}
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
	s2, _ := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("jitter not deterministic: run1 %v vs run2 %v", s1, s2)
		}
	}
}

// TestRetryExhaustionWrapsLastError: the final error is typed and reports
// the attempt count.
func TestRetryExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("still down")
	r := Retry{Attempts: 3, Sleep: func(time.Duration) {}}
	err := r.Do("ping", func(int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhaustion error %v does not wrap the cause", err)
	}
}

// TestRetryContextCanceled: cancellation mid-backoff returns promptly with
// the context error instead of sitting out the jitter interval. The After
// channel never fires, so only the ctx.Done arm can unblock the wait.
func TestRetryContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan struct{}, 1)
	blocked := make(chan time.Time) // never fires: a stuck clock
	r := Retry{
		Attempts: 3, Base: time.Hour, // a real sleep here would hang the test
		After: func(time.Duration) <-chan time.Time {
			waiting <- struct{}{}
			return blocked
		},
	}
	sentinel := errors.New("transient")
	done := make(chan error, 1)
	go func() {
		done <- r.DoContext(ctx, "op", func(int) error { return sentinel })
	}()
	<-waiting // first attempt failed; DoContext is parked in backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("error %v does not wrap the last attempt error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoContext still blocked in backoff after cancellation")
	}
}

// TestRetryContextPreCanceled: an already-dead context never runs fn.
func TestRetryContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry{}.DoContext(ctx, "op", func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times under a pre-canceled context", calls)
	}
}

// TestControllerConcurrentHammer drives many more clients than capacity
// through Acquire under -race: every admitted request must release, counts
// must balance, and the controller must end idle.
func TestControllerConcurrentHammer(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Limits{MaxInflight: 4, QueueDepth: 4}, reg)
	const clients = 200
	var admitted, shedCount int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background())
			if err != nil {
				mu.Lock()
				shedCount++
				mu.Unlock()
				return
			}
			time.Sleep(time.Millisecond)
			rel()
			mu.Lock()
			admitted++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if admitted+shedCount != clients {
		t.Fatalf("admitted %d + shed %d != %d clients", admitted, shedCount, clients)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted under load")
	}
	if c.Inflight() != 0 || c.QueueLen() != 0 {
		t.Fatalf("controller not idle after drain: inflight %d queue %d", c.Inflight(), c.QueueLen())
	}
	if got := reg.Counter("load_admitted_total").Value(); got != admitted {
		t.Fatalf("load_admitted_total %d, want %d", got, admitted)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
