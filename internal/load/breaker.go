package load

import (
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states. The numeric values are exported as the breaker's state
// gauge (0 = closed, 1 = open, 2 = half-open).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. Zero fields take defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting one probe
	// through half-open (default 5s).
	Cooldown time.Duration
	// Now injects a clock. The distributed layer passes a synthetic
	// epoch-based clock so breaker behavior is deterministic per epoch;
	// default time.Now.
	Now func() time.Time
	// Gauge names the obs state gauge (default "breaker_state").
	Gauge string
	// Obs receives the state gauge; nil disables.
	Obs *obs.Registry
	// OnOpen fires on every closed/half-open → open transition (trip). It
	// runs under the breaker's mutex, so it must be fast and must not call
	// back into this breaker. Typical use: flight-recorder dump.
	OnOpen func()
}

// Breaker is a three-state circuit breaker: Closed (all calls pass;
// FailureThreshold consecutive failures trip it), Open (calls refused until
// Cooldown elapses), HalfOpen (exactly one probe passes; its outcome closes
// or re-opens the breaker). A nil Breaker always allows.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Gauge == "" {
		cfg.Gauge = "breaker_state"
	}
	b := &Breaker{cfg: cfg}
	b.export(BreakerClosed)
	return b
}

func (b *Breaker) export(s BreakerState) {
	b.state = s
	b.cfg.Obs.Gauge(b.cfg.Gauge).Set(float64(s))
}

// Allow reports whether a call may proceed, performing the open→half-open
// transition when the cooldown has elapsed. In half-open only one probe is
// admitted at a time. Nil-safe: a nil breaker always allows.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.export(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// RecordSuccess reports a successful call: closes a half-open breaker and
// clears the failure streak. Nil-safe.
func (b *Breaker) RecordSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.export(BreakerClosed)
	}
}

// RecordFailure reports a failed call: re-opens a half-open breaker
// immediately, trips a closed one at the failure threshold. Nil-safe.
func (b *Breaker) RecordFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	default: // already open (e.g. a straggler reporting) — restart cooldown
		b.openedAt = b.cfg.Now()
	}
}

// Trip forces the breaker open regardless of the failure count (used when
// the caller has out-of-band proof the dependency is down, e.g. a replica
// evicted at the epoch barrier). Nil-safe.
func (b *Breaker) Trip() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trip()
}

func (b *Breaker) trip() {
	wasOpen := b.state == BreakerOpen
	b.failures = 0
	b.probing = false
	b.openedAt = b.cfg.Now()
	b.export(BreakerOpen)
	if !wasOpen && b.cfg.OnOpen != nil {
		b.cfg.OnOpen()
	}
}

// State reports the breaker's stored position (no lazy transition — Allow
// performs those). Nil-safe: nil reads as closed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
