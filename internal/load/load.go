// Package load implements the overload-resilience primitives shared by the
// serving and distributed layers: a bounded admission controller with
// token-bucket rate limiting and explicit load shedding (Controller), a
// three-state circuit breaker (Breaker), and retry with jittered
// exponential backoff (Retry).
//
// The design goal is shed-don't-collapse. Under a burst the server keeps a
// bounded amount of work in flight plus a bounded wait queue and rejects
// everything beyond that immediately with a typed ShedError the HTTP layer
// maps to 429 + Retry-After — latency for admitted requests stays bounded
// because the queue cannot grow without bound. Every policy decision is
// observable through an obs.Registry (load_shed_total, load_queue_depth,
// breaker_state, …), and everything is deterministic under test: clocks and
// sleeps are injectable, jitter is seeded.
package load

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
)

// Shed reasons, matched with errors.Is through ShedError.
var (
	// ErrQueueFull means the wait queue behind the inflight limit is full.
	ErrQueueFull = errors.New("load: admission queue full")
	// ErrRateLimited means the token bucket is empty.
	ErrRateLimited = errors.New("load: rate limited")
)

// DefaultRetryAfter is the retry hint for queue-full sheds, where (unlike
// rate-limit sheds) there is no token-accrual time to compute.
const DefaultRetryAfter = time.Second

// ShedError reports a shed request together with a hint for when the
// client should retry (the Retry-After header value).
type ShedError struct {
	Reason     error
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Reason, e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return e.Reason }

// Limits bounds the work a Controller admits. Zero fields take defaults.
type Limits struct {
	// MaxInflight is the number of concurrently admitted requests
	// (default 16).
	MaxInflight int
	// QueueDepth is how many callers may wait behind the inflight limit
	// before further arrivals are shed (default 4×MaxInflight).
	QueueDepth int
	// Rate is the sustained admission rate in requests/second through the
	// token bucket; 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity (default max(Rate, 1)).
	Burst float64
}

func (l *Limits) fillDefaults() {
	if l.MaxInflight <= 0 {
		l.MaxInflight = 16
	}
	if l.QueueDepth <= 0 {
		l.QueueDepth = 4 * l.MaxInflight
	}
	if l.Burst <= 0 {
		l.Burst = math.Max(l.Rate, 1)
	}
}

// Class is an admission priority. Under saturation low-class work is shed
// first: it sees only half the wait queue, so interactive traffic (scoring)
// keeps queue headroom that bulk traffic (ingest) cannot consume.
type Class int

// Admission classes.
const (
	ClassHigh Class = iota
	ClassLow
)

// Controller is the admission gate in front of a bounded resource: a
// semaphore of MaxInflight slots, a bounded two-class priority wait queue,
// and an optional token bucket. A nil Controller admits everything (call
// sites stay unconditional).
type Controller struct {
	lim     Limits
	sem     chan struct{}
	metrics *obs.Registry

	mu      sync.Mutex
	waiters int
	tokens  float64
	last    time.Time
	now     func() time.Time
}

// NewController builds an admission controller. reg may be nil (metrics
// become no-ops via the registry's nil-safety).
func NewController(lim Limits, reg *obs.Registry) *Controller {
	lim.fillDefaults()
	c := &Controller{
		lim:     lim,
		sem:     make(chan struct{}, lim.MaxInflight),
		metrics: reg,
		now:     time.Now,
	}
	c.tokens = lim.Burst
	c.last = c.now()
	return c
}

// SetClock injects a deterministic clock (tests). Not safe to call once the
// controller is in use.
func (c *Controller) SetClock(now func() time.Time) {
	c.now = now
	c.last = now()
}

// Limits reports the controller's effective (default-filled) limits.
func (c *Controller) Limits() Limits { return c.lim }

// Acquire admits a high-class caller or sheds it. On admission the returned
// release function MUST be called exactly once when the work finishes (it
// is idempotent). On shed the error is a *ShedError (queue full / rate
// limited) or the context's error when the caller's deadline expired while
// queued. Nil-safe: a nil controller admits everything.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	return c.AcquireClass(ctx, ClassHigh)
}

// AcquireClass is Acquire with an explicit priority class.
func (c *Controller) AcquireClass(ctx context.Context, cl Class) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err // dead on arrival: deadline already expired
	}
	if wait, limited := c.takeToken(); limited {
		c.metrics.Counter("load_rate_limited_total").Inc()
		c.metrics.Counter("load_shed_total").Inc()
		return nil, &ShedError{Reason: ErrRateLimited, RetryAfter: wait}
	}
	select {
	case c.sem <- struct{}{}:
		return c.admitted(), nil
	default:
	}
	// Inflight slots are busy: join the bounded wait queue or shed. Low-
	// class callers see only half the queue, so they shed first and the
	// remaining headroom stays reserved for high-class traffic.
	depth := c.lim.QueueDepth
	if cl == ClassLow {
		depth = (depth + 1) / 2
	}
	c.mu.Lock()
	if c.waiters >= depth {
		c.mu.Unlock()
		c.metrics.Counter("load_queue_full_total").Inc()
		c.metrics.Counter("load_shed_total").Inc()
		return nil, &ShedError{Reason: ErrQueueFull, RetryAfter: DefaultRetryAfter}
	}
	c.waiters++
	c.metrics.Gauge("load_queue_depth").Set(float64(c.waiters))
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.waiters--
		c.metrics.Gauge("load_queue_depth").Set(float64(c.waiters))
		c.mu.Unlock()
	}()
	select {
	case c.sem <- struct{}{}:
		return c.admitted(), nil
	case <-ctx.Done():
		c.metrics.Counter("load_deadline_shed_total").Inc()
		c.metrics.Counter("load_shed_total").Inc()
		return nil, ctx.Err()
	}
}

func (c *Controller) admitted() func() {
	c.metrics.Counter("load_admitted_total").Inc()
	c.metrics.Gauge("load_inflight").Set(float64(len(c.sem)))
	var once sync.Once
	return func() {
		once.Do(func() {
			<-c.sem
			c.metrics.Gauge("load_inflight").Set(float64(len(c.sem)))
		})
	}
}

// takeToken draws one token from the bucket; when empty it returns the time
// until the next token accrues and true.
func (c *Controller) takeToken() (time.Duration, bool) {
	if c.lim.Rate <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.tokens = math.Min(c.lim.Burst, c.tokens+now.Sub(c.last).Seconds()*c.lim.Rate)
	c.last = now
	if c.tokens >= 1 {
		c.tokens--
		return 0, false
	}
	wait := time.Duration((1 - c.tokens) / c.lim.Rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, true
}

// Saturated reports whether the wait queue is full — the readiness probe's
// definition of "overloaded". Nil-safe.
func (c *Controller) Saturated() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiters >= c.lim.QueueDepth
}

// Inflight reports currently admitted requests. Nil-safe.
func (c *Controller) Inflight() int {
	if c == nil {
		return 0
	}
	return len(c.sem)
}

// QueueLen reports callers currently waiting for an inflight slot. Nil-safe.
func (c *Controller) QueueLen() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiters
}
