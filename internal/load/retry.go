package load

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/cascade-ml/cascade/internal/obs"
)

// Retry runs an operation with jittered exponential backoff. The jitter is
// seeded, and the sleep is injectable, so tests replay exactly. The zero
// value is usable (3 attempts, 10ms base, 1s cap, real sleeps).
type Retry struct {
	// Attempts is the total number of tries, including the first
	// (default 3).
	Attempts int
	// Base is the backoff before the second attempt; it doubles per attempt
	// (default 10ms).
	Base time.Duration
	// Max caps the pre-jitter backoff (default 1s).
	Max time.Duration
	// Seed drives the jitter PRNG (deterministic per Retry value).
	Seed int64
	// Sleep is injectable for tests (default: a context-aware timer wait).
	// A custom Sleep cannot be interrupted mid-sleep by DoContext — prefer
	// After when the test needs cancellation during backoff.
	Sleep func(time.Duration)
	// After is the injectable clock for DoContext's backoff wait (default
	// time.After). Ignored when Sleep is set.
	After func(time.Duration) <-chan time.Time
	// Obs counts retry_attempts_total / retry_recovered_total; nil disables.
	Obs *obs.Registry
}

// Do runs fn until it succeeds or the attempt budget is exhausted, sleeping
// a jittered exponential backoff between tries. name labels the operation
// in the returned error. fn receives the 0-based attempt index.
func (r Retry) Do(name string, fn func(attempt int) error) error {
	return r.DoContext(context.Background(), name, fn)
}

// DoContext is Do with cancellation: a canceled context interrupts the
// backoff sleep immediately (instead of sitting out a full jitter interval)
// and stops before the next attempt. The context error is returned wrapped,
// alongside fn's last error when at least one attempt ran.
func (r Retry) DoContext(ctx context.Context, name string, fn func(attempt int) error) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	base := r.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxBackoff := r.Max
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	after := r.After
	if after == nil {
		after = time.After
	}
	rng := rand.New(rand.NewSource(r.Seed))
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("load: %s canceled after %d attempts: %w (last error: %w)", name, a, cerr, err)
			}
			return fmt.Errorf("load: %s canceled: %w", name, cerr)
		}
		if err = fn(a); err == nil {
			if a > 0 {
				r.Obs.Counter("retry_recovered_total").Inc()
			}
			return nil
		}
		if a == attempts-1 {
			break
		}
		r.Obs.Counter("retry_attempts_total").Inc()
		d := maxBackoff
		if a < 30 { // beyond 2^30×base the shift is past any sane cap anyway
			if shifted := base << uint(a); shifted < maxBackoff {
				d = shifted
			}
		}
		// Equal jitter: [d/2, d). Decorrelates replicas retrying the same
		// dependency while keeping a floor so backoff still backs off.
		d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
		if r.Sleep != nil {
			r.Sleep(d) // legacy injectable sleep: uninterruptible by design
			continue
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("load: %s canceled after %d attempts: %w (last error: %w)", name, a+1, ctx.Err(), err)
		case <-after(d):
		}
	}
	return fmt.Errorf("load: %s failed after %d attempts: %w", name, attempts, err)
}
