package nn

import (
	"math"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba), the optimizer the paper
// trains every TGNN with (§2.3).
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	// GradClip, when > 0, clips each parameter's gradient to the given
	// global L2 norm before the update (standard practice for RNN-family
	// memory updaters).
	GradClip float32

	params []Param
	m, v   []*tensor.Matrix
	step   int
}

// NewAdam builds an optimizer over params with the given learning rate and
// default betas (0.9, 0.999).
func NewAdam(params []Param, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([]*tensor.Matrix, len(params))
	a.v = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.m[i] = tensor.NewMatrix(p.T.Value.Rows, p.T.Value.Cols)
		a.v[i] = tensor.NewMatrix(p.T.Value.Rows, p.T.Value.Cols)
	}
	return a
}

// ZeroGrad clears every parameter gradient; call before each Backward.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		if p.T.Grad != nil {
			p.T.Grad.Zero()
		}
	}
}

// Step applies one Adam update using the gradients accumulated in the
// parameters. Parameters with nil gradients (untouched this step) are
// skipped.
func (a *Adam) Step() {
	a.step++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for i, p := range a.params {
		g := p.T.Grad
		if g == nil {
			continue
		}
		if a.GradClip > 0 {
			clipGrad(g, a.GradClip)
		}
		m, v := a.m[i], a.v[i]
		w := p.T.Value
		for j := range w.Data {
			gj := g.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mHat := m.Data[j] / b1c
			vHat := v.Data[j] / b2c
			w.Data[j] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
		}
	}
}

// StepCount returns the number of optimizer steps taken so far.
func (a *Adam) StepCount() int { return a.step }

func clipGrad(g *tensor.Matrix, maxNorm float32) {
	var sq float64
	for _, v := range g.Data {
		sq += float64(v) * float64(v)
	}
	norm := float32(math.Sqrt(sq))
	if norm > maxNorm && norm > 0 {
		tensor.ScaleInto(g, g, maxNorm/norm)
	}
}
