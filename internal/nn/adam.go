package nn

import (
	"fmt"
	"math"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba), the optimizer the paper
// trains every TGNN with (§2.3).
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	// GradClip, when > 0, clips each parameter's gradient to the given
	// global L2 norm before the update (standard practice for RNN-family
	// memory updaters).
	GradClip float32

	params []Param
	m, v   []*tensor.Matrix
	step   int
}

// NewAdam builds an optimizer over params with the given learning rate and
// default betas (0.9, 0.999).
func NewAdam(params []Param, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([]*tensor.Matrix, len(params))
	a.v = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.m[i] = tensor.NewMatrix(p.T.Value.Rows, p.T.Value.Cols)
		a.v[i] = tensor.NewMatrix(p.T.Value.Rows, p.T.Value.Cols)
	}
	return a
}

// ZeroGrad clears every parameter gradient; call before each Backward.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		if p.T.Grad != nil {
			p.T.Grad.Zero()
		}
	}
}

// Step applies one Adam update using the gradients accumulated in the
// parameters. Parameters with nil gradients (untouched this step) are
// skipped.
func (a *Adam) Step() {
	a.step++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for i, p := range a.params {
		g := p.T.Grad
		if g == nil {
			continue
		}
		if a.GradClip > 0 {
			clipGrad(g, a.GradClip)
		}
		m, v := a.m[i], a.v[i]
		w := p.T.Value
		for j := range w.Data {
			gj := g.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mHat := m.Data[j] / b1c
			vHat := v.Data[j] / b2c
			w.Data[j] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
		}
	}
}

// StepCount returns the number of optimizer steps taken so far.
func (a *Adam) StepCount() int { return a.step }

func clipGrad(g *tensor.Matrix, maxNorm float32) {
	var sq float64
	for _, v := range g.Data {
		sq += float64(v) * float64(v)
	}
	norm := float32(math.Sqrt(sq))
	if norm > maxNorm && norm > 0 {
		tensor.ScaleInto(g, g, maxNorm/norm)
	}
}

// AdamCheckpoint is the serializable optimizer state: step count, first and
// second moments per parameter, and the (possibly backed-off) learning rate.
type AdamCheckpoint struct {
	Step int
	LR   float32
	// M and V hold each parameter's moment matrices flattened row-major, in
	// params order.
	M, V [][]float32
}

// Checkpoint deep-copies the optimizer state for a full-state training
// checkpoint.
func (a *Adam) Checkpoint() *AdamCheckpoint {
	c := &AdamCheckpoint{
		Step: a.step,
		LR:   a.LR,
		M:    make([][]float32, len(a.m)),
		V:    make([][]float32, len(a.v)),
	}
	for i := range a.m {
		c.M[i] = append([]float32(nil), a.m[i].Data...)
		c.V[i] = append([]float32(nil), a.v[i].Data...)
	}
	return c
}

// RestoreCheckpoint overwrites the optimizer state with a checkpoint taken
// from an optimizer over the same parameter list.
func (a *Adam) RestoreCheckpoint(c *AdamCheckpoint) error {
	if len(c.M) != len(a.m) || len(c.V) != len(a.v) {
		return fmt.Errorf("nn: optimizer checkpoint has %d/%d moment tensors, optimizer holds %d", len(c.M), len(c.V), len(a.m))
	}
	for i := range a.m {
		if len(c.M[i]) != len(a.m[i].Data) || len(c.V[i]) != len(a.v[i].Data) {
			return fmt.Errorf("nn: optimizer checkpoint moment %d has %d/%d values, parameter %q holds %d", i, len(c.M[i]), len(c.V[i]), a.params[i].Name, len(a.m[i].Data))
		}
	}
	a.step = c.Step
	a.LR = c.LR
	for i := range a.m {
		copy(a.m[i].Data, c.M[i])
		copy(a.v[i].Data, c.V[i])
	}
	return nil
}

// GradNorm returns the global L2 norm over every parameter gradient (nil
// gradients contribute zero) — the trainer's numerical-health monitor reads
// it after each backward pass, before clipping.
func (a *Adam) GradNorm() float64 {
	var sq float64
	for _, p := range a.params {
		g := p.T.Grad
		if g == nil {
			continue
		}
		for _, v := range g.Data {
			sq += float64(v) * float64(v)
		}
	}
	return math.Sqrt(sq)
}
