package nn

import (
	"math"
	"math/rand"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// GATLayer is a single-head graph attention layer over a fixed number of
// sampled neighbors, the GNN(·) of Eq. 4 used by TGN and DySAT (Table 1).
//
// For each of B target nodes with K sampled neighbors, the layer projects
// self and neighbor features, scores each neighbor with the additive GAT
// mechanism a·[Wh_i ‖ Wh_j] passed through LeakyReLU(0.2), softmax-normalizes
// the K scores, aggregates neighbors by the attention weights, and combines
// with the self projection through a ReLU.
type GATLayer struct {
	InDim, OutDim int
	WSelf, WNeigh *Linear
	ASelf, ANeigh *tensor.Tensor // attention vectors (OutDim × 1)

	fused bool
}

// SetFused toggles the fused forward path: the projections collapse to
// single linear nodes, the broadcast/LeakyReLU/mask/softmax score chain to
// one tensor.GATScoresT node, and the residual combine to tensor.AddReLUT.
// Bitwise identical to the eager chain.
func (g *GATLayer) SetFused(on bool) {
	g.fused = on
	g.WSelf.SetFused(on)
	g.WNeigh.SetFused(on)
}

// NewGATLayer builds a Glorot-initialized GAT layer.
func NewGATLayer(rng *rand.Rand, inDim, outDim int) *GATLayer {
	return &GATLayer{
		InDim:  inDim,
		OutDim: outDim,
		WSelf:  NewLinear(rng, inDim, outDim),
		WNeigh: NewLinear(rng, inDim, outDim),
		ASelf:  tensor.Var(xavier(rng, outDim, 1)),
		ANeigh: tensor.Var(xavier(rng, outDim, 1)),
	}
}

// Forward embeds B target nodes. self is (B × InDim); neigh is (B·K × InDim)
// with the K neighbors of target i in rows [i·K, (i+1)·K); mask is an
// optional (B × K) 0/1 matrix marking which neighbor slots are real (nil
// means all real). Padded slots receive −∞ scores before the softmax so they
// draw no attention weight.
func (g *GATLayer) Forward(self, neigh *tensor.Tensor, k int, mask *tensor.Matrix) *tensor.Tensor {
	b := self.Rows()
	hSelf := g.WSelf.Forward(self)    // (B × Out)
	hNeigh := g.WNeigh.Forward(neigh) // (B·K × Out)

	// Additive attention: score[i,k] = LeakyReLU(a_s·h_i + a_n·h_{ik}).
	sSelf := tensor.MatMulT(hSelf, g.ASelf)    // (B × 1)
	sNeigh := tensor.MatMulT(hNeigh, g.ANeigh) // (B·K × 1)
	if g.fused {
		alpha := tensor.GATScoresT(sSelf, sNeigh, k, 0.2, mask) // (B × K)
		agg := tensor.WeightedSumGroupsT(hNeigh, alpha, k)      // (B × Out)
		return tensor.AddReLUT(hSelf, agg)
	}
	sSelfB := tensor.ColBroadcastT(sSelf, k) // (B × K)
	sNeighB := reshapeColumn(sNeigh, b, k)   // (B × K)
	scores := tensor.LeakyReLUT(tensor.AddT(sSelfB, sNeighB), 0.2)
	if mask != nil {
		scores = tensor.AddT(scores, tensor.ConstScratch(maskToNegInf(mask)))
	}
	alpha := tensor.SoftmaxRowsT(scores)               // (B × K)
	agg := tensor.WeightedSumGroupsT(hNeigh, alpha, k) // (B × Out)
	return tensor.ReLUT(tensor.AddT(hSelf, agg))
}

// Params implements Module.
func (g *GATLayer) Params() []Param {
	out := prefixed("wself", g.WSelf.Params())
	out = append(out, prefixed("wneigh", g.WNeigh.Params())...)
	out = append(out, Param{Name: "aself", T: g.ASelf}, Param{Name: "aneigh", T: g.ANeigh})
	return out
}

// TransformerLayer is the scaled-dot-product attention block APAN uses for
// its message module (Table 1): queries from the target, keys/values from a
// group of inputs (mailbox entries or neighbors), followed by a position-wise
// feed-forward with a residual connection.
type TransformerLayer struct {
	Dim        int
	WQ, WK, WV *Linear
	FF         *MLP
	Norm       *LayerNorm

	fused bool
}

// SetFused toggles the fused forward path: projections collapse to single
// linear nodes and the dot/scale/mask/softmax score chain to one
// tensor.AttnScoresT node. Bitwise identical to the eager chain.
func (t *TransformerLayer) SetFused(on bool) {
	t.fused = on
	t.WQ.SetFused(on)
	t.WK.SetFused(on)
	t.WV.SetFused(on)
	t.FF.SetFused(on)
}

// NewTransformerLayer builds a single-head transformer block with model
// width dim.
func NewTransformerLayer(rng *rand.Rand, dim int) *TransformerLayer {
	return &TransformerLayer{
		Dim:  dim,
		WQ:   NewLinear(rng, dim, dim),
		WK:   NewLinear(rng, dim, dim),
		WV:   NewLinear(rng, dim, dim),
		FF:   NewMLP(rng, ActReLU, dim, dim, dim),
		Norm: NewLayerNorm(dim),
	}
}

// Forward attends each of the B queries over its K grouped inputs.
// query is (B × Dim); kv is (B·K × Dim); mask is optional (B × K).
func (t *TransformerLayer) Forward(query, kv *tensor.Tensor, k int, mask *tensor.Matrix) *tensor.Tensor {
	q := t.WQ.Forward(query)
	keys := t.WK.Forward(kv)
	vals := t.WV.Forward(kv)
	scale := float32(1 / math.Sqrt(float64(t.Dim)))
	if t.fused {
		alpha := tensor.AttnScoresT(q, keys, k, scale, mask)
		agg := tensor.WeightedSumGroupsT(vals, alpha, k) // (B × Dim)
		return t.Norm.Forward(tensor.AddT(q, t.FF.Forward(agg)))
	}
	scores := tensor.ScaleT(tensor.RowDotGroupsT(q, keys, k), scale) // (B × K)
	if mask != nil {
		scores = tensor.AddT(scores, tensor.ConstScratch(maskToNegInf(mask)))
	}
	alpha := tensor.SoftmaxRowsT(scores)
	agg := tensor.WeightedSumGroupsT(vals, alpha, k) // (B × Dim)
	// The post-residual LayerNorm keeps feedback loops through persistent
	// state (APAN: memory → mailbox → memory) bounded across batches.
	return t.Norm.Forward(tensor.AddT(q, t.FF.Forward(agg)))
}

// Params implements Module.
func (t *TransformerLayer) Params() []Param {
	out := prefixed("wq", t.WQ.Params())
	out = append(out, prefixed("wk", t.WK.Params())...)
	out = append(out, prefixed("wv", t.WV.Params())...)
	out = append(out, prefixed("ff", t.FF.Params())...)
	out = append(out, prefixed("norm", t.Norm.Params())...)
	return out
}

// reshapeColumn views a (B·K × 1) column as a (B × K) matrix, preserving
// gradients: a pure re-indexing, so gradients copy straight through.
func reshapeColumn(col *tensor.Tensor, b, k int) *tensor.Tensor {
	return tensor.ReshapeT(col, b, k)
}

// maskToNegInf converts a 0/1 validity mask into an additive score mask:
// 0 where valid, a large negative number where padded.
func maskToNegInf(mask *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(mask.Rows, mask.Cols)
	for i, v := range mask.Data {
		if v == 0 {
			out.Data[i] = -1e9
		}
	}
	return out
}
