package nn

import (
	"math/rand"
	"testing"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// BenchmarkGRUStep measures one full memory-updater step — GRU forward over
// a training-sized batch plus backward through the tape — the inner loop of
// every BeginBatch, on the fused kernel the trainer's compile mode enables
// by default. -benchmem makes the allocator traffic visible; the tensor
// arena is judged on driving B/op toward zero here.
func BenchmarkGRUStep(b *testing.B)      { benchGRUStep(b, true) }
func BenchmarkGRUStepEager(b *testing.B) { benchGRUStep(b, false) }

func benchGRUStep(b *testing.B, fused bool) {
	const (
		batch  = 256
		msgIn  = 172 // memory 100 + time 8 + edge feats 64
		hidden = 100
	)
	rng := rand.New(rand.NewSource(1))
	cell := NewGRUCell(rng, msgIn, hidden)
	cell.SetFused(fused)
	x := tensor.NewMatrix(batch, msgIn)
	h := tensor.NewMatrix(batch, hidden)
	for i := range x.Data {
		x.Data[i] = rng.Float32() - 0.5
	}
	for i := range h.Data {
		h.Data[i] = rng.Float32() - 0.5
	}
	params := cell.Params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := tensor.MeanT(cell.Forward(tensor.Const(x), tensor.Const(h)))
		loss.Backward()
		for _, p := range params {
			if p.T.Grad != nil {
				p.T.Grad.Zero()
			}
		}
		tensor.FreeGraph(loss)
	}
}
