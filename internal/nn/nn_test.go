package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cascade-ml/cascade/internal/tensor"
)

func randConst(rng *rand.Rand, rows, cols int) *tensor.Tensor {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return tensor.Const(m)
}

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 5, 3)
	x := randConst(rng, 4, 5)
	y := l.Forward(x)
	if y.Rows() != 4 || y.Cols() != 3 {
		t.Fatalf("linear output %dx%d, want 4x3", y.Rows(), y.Cols())
	}
	if n := NumParams(l); n != 5*3+3 {
		t.Fatalf("param count %d, want 18", n)
	}
}

func TestMLPReducesLossOnToyRegression(t *testing.T) {
	// Train y = sigmoid-separable toy targets; loss must shrink.
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, ActReLU, 4, 16, 1)
	opt := NewAdam(CollectParams(mlp), 0.01)
	x := randConst(rng, 32, 4)
	targets := tensor.NewMatrix(32, 1)
	for i := 0; i < 32; i++ {
		if x.Value.At(i, 0)+x.Value.At(i, 1) > 0 {
			targets.Set(i, 0, 1)
		}
	}
	yT := tensor.Const(targets)
	var first, last float32
	for step := 0; step < 200; step++ {
		opt.ZeroGrad()
		loss := tensor.BCEWithLogitsT(mlp.Forward(x), yT)
		loss.Backward()
		opt.Step()
		if step == 0 {
			first = loss.Item()
		}
		last = loss.Item()
	}
	if last >= first*0.5 {
		t.Fatalf("MLP did not learn: first loss %v, last %v", first, last)
	}
}

func TestGRUCellGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cell := NewGRUCell(rng, 4, 3)
	x := randConst(rng, 2, 4)
	h := randConst(rng, 2, 3)
	build := func() *tensor.Tensor {
		out := cell.Forward(x, h)
		return tensor.SumT(tensor.MulT(out, out))
	}
	loss := build()
	loss.Backward()
	// Numerical check on a few weights of each parameter.
	for _, p := range cell.Params() {
		if p.T.Grad == nil {
			t.Fatalf("param %s got no grad", p.Name)
		}
		for _, i := range []int{0, len(p.T.Value.Data) / 2} {
			const eps = 1e-2
			orig := p.T.Value.Data[i]
			p.T.Value.Data[i] = orig + eps
			up := build().Item()
			p.T.Value.Data[i] = orig - eps
			down := build().Item()
			p.T.Value.Data[i] = orig
			want := (up - down) / (2 * eps)
			got := p.T.Grad.Data[i]
			if d := float64(got - want); math.Abs(d) > 0.05*(1+math.Abs(float64(want))) {
				t.Fatalf("GRU %s[%d]: grad %v vs numerical %v", p.Name, i, got, want)
			}
		}
	}
}

func TestGRUCellGateBehavior(t *testing.T) {
	// With an all-zero input projection and strongly negative update-gate
	// bias, the GRU must keep its state nearly unchanged (z ≈ 0 → h' ≈ h).
	rng := rand.New(rand.NewSource(4))
	cell := NewGRUCell(rng, 2, 3)
	cell.Wf.Value.Zero()
	cell.Uzr.Value.Zero()
	cell.Uh.Value.Zero()
	cell.Bz.Value.Fill(-30) // update gate ≈ 0
	x := randConst(rng, 1, 2)
	h := randConst(rng, 1, 3)
	out := cell.Forward(x, h)
	for j := 0; j < 3; j++ {
		if d := out.Value.At(0, j) - h.Value.At(0, j); d > 1e-4 || d < -1e-4 {
			t.Fatalf("GRU with closed update gate moved state: %v vs %v", out.Value.Row(0), h.Value.Row(0))
		}
	}
}

func TestRNNCellBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cell := NewRNNCell(rng, 4, 6)
	x := randConst(rng, 3, 4)
	h := randConst(rng, 3, 6)
	out := cell.Forward(x, h)
	for _, v := range out.Value.Data {
		if v < -1 || v > 1 {
			t.Fatalf("tanh RNN output out of [-1,1]: %v", v)
		}
	}
}

func TestGATLayerShapesAndMask(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const b, k, in, out = 3, 4, 5, 6
	gat := NewGATLayer(rng, in, out)
	self := randConst(rng, b, in)
	neigh := randConst(rng, b*k, in)
	y := gat.Forward(self, neigh, k, nil)
	if y.Rows() != b || y.Cols() != out {
		t.Fatalf("GAT output %dx%d, want %dx%d", y.Rows(), y.Cols(), b, out)
	}

	// With a mask hiding neighbor slots 2,3 the output must not depend on
	// their features.
	mask := tensor.NewMatrix(b, k)
	for i := 0; i < b; i++ {
		mask.Set(i, 0, 1)
		mask.Set(i, 1, 1)
	}
	y1 := gat.Forward(self, neigh, k, mask)
	neigh2 := tensor.Const(neigh.Value.Clone())
	for i := 0; i < b; i++ {
		for kk := 2; kk < k; kk++ {
			row := neigh2.Value.Row(i*k + kk)
			for j := range row {
				row[j] = 99 // garbage in masked slots
			}
		}
	}
	y2 := gat.Forward(self, neigh2, k, mask)
	for i := range y1.Value.Data {
		if d := y1.Value.Data[i] - y2.Value.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("masked neighbors leaked into GAT output at %d", i)
		}
	}
}

func TestTransformerLayerShapesAndMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const b, k, dim = 2, 3, 8
	tr := NewTransformerLayer(rng, dim)
	q := randConst(rng, b, dim)
	kv := randConst(rng, b*k, dim)
	y := tr.Forward(q, kv, k, nil)
	if y.Rows() != b || y.Cols() != dim {
		t.Fatalf("transformer output %dx%d", y.Rows(), y.Cols())
	}
	mask := tensor.NewMatrix(b, k)
	for i := 0; i < b; i++ {
		mask.Set(i, 0, 1)
	}
	y1 := tr.Forward(q, kv, k, mask)
	kv2 := tensor.Const(kv.Value.Clone())
	for i := 0; i < b; i++ {
		for kk := 1; kk < k; kk++ {
			row := kv2.Value.Row(i*k + kk)
			for j := range row {
				row[j] = -55
			}
		}
	}
	y2 := tr.Forward(q, kv2, k, mask)
	for i := range y1.Value.Data {
		if d := y1.Value.Data[i] - y2.Value.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("masked kv leaked into transformer output at %d", i)
		}
	}
}

func TestTimeEncoderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	te := NewTimeEncoder(rng, 16)
	enc := te.Forward([]float32{0, 1, 100, 1e6})
	if enc.Rows() != 4 || enc.Cols() != 16 {
		t.Fatalf("time encoding %dx%d", enc.Rows(), enc.Cols())
	}
	// cos of anything is bounded.
	for _, v := range enc.Value.Data {
		if v < -1 || v > 1 {
			t.Fatalf("time encoding out of range: %v", v)
		}
	}
	// Δt = 0 with zero phase encodes to all ones.
	for j := 0; j < 16; j++ {
		if d := enc.Value.At(0, j) - 1; d > 1e-5 || d < -1e-5 {
			t.Fatalf("φ(0)[%d] = %v, want 1", j, enc.Value.At(0, j))
		}
	}
	// Frequencies are log-spaced decreasing.
	for j := 1; j < 16; j++ {
		if te.Omega.Value.Data[j] >= te.Omega.Value.Data[j-1] {
			t.Fatalf("omega not decreasing at %d", j)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² starting at 0: Adam must approach 3.
	w := tensor.Var(tensor.NewMatrix(1, 1))
	opt := NewAdam([]Param{{Name: "w", T: w}}, 0.1)
	target := tensor.Const(tensor.FromSlice(1, 1, []float32{3}))
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		diff := tensor.SubT(w, target)
		loss := tensor.SumT(tensor.MulT(diff, diff))
		loss.Backward()
		opt.Step()
	}
	if got := w.Value.Data[0]; got < 2.8 || got > 3.2 {
		t.Fatalf("Adam converged to %v, want ≈3", got)
	}
	if opt.StepCount() != 500 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

func TestAdamGradClip(t *testing.T) {
	g := tensor.FromSlice(1, 2, []float32{30, 40}) // norm 50
	clipGrad(g, 5)
	var norm float64
	for _, v := range g.Data {
		norm += float64(v) * float64(v)
	}
	if n := math.Sqrt(norm); n > 5.0001 {
		t.Fatalf("clipped norm %v > 5", n)
	}
	// Direction preserved: ratio 3:4.
	if r := g.Data[0] / g.Data[1]; r < 0.74 || r > 0.76 {
		t.Fatalf("clip changed direction: %v", r)
	}
}

func TestAdamSkipsNilGrads(t *testing.T) {
	w := tensor.Var(tensor.FromSlice(1, 1, []float32{1}))
	opt := NewAdam([]Param{{Name: "w", T: w}}, 0.1)
	opt.Step() // no grad accumulated; must not panic or move the weight
	if w.Value.Data[0] != 1 {
		t.Fatalf("weight moved without gradient: %v", w.Value.Data[0])
	}
}

func TestCollectParamsSkipsNil(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear(rng, 2, 2)
	ps := CollectParams(nil, l, Identity{})
	if len(ps) != 2 {
		t.Fatalf("collected %d params, want 2", len(ps))
	}
}

func TestIdentityPassthrough(t *testing.T) {
	x := tensor.Const(tensor.FromSlice(1, 2, []float32{1, 2}))
	if y := (Identity{}).Forward(x); y != x {
		t.Fatal("Identity must return its input")
	}
}

func TestMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-dim MLP")
		}
	}()
	NewMLP(rand.New(rand.NewSource(0)), ActReLU, 4)
}

func TestMultiHeadGATShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const b, k, in, out, heads = 3, 4, 5, 6, 2
	m := NewMultiHeadGAT(rng, in, out, heads)
	self := randConst(rng, b, in)
	neigh := randConst(rng, b*k, in)
	y := m.Forward(self, neigh, k, nil)
	if y.Rows() != b || y.Cols() != out {
		t.Fatalf("multi-head GAT output %dx%d", y.Rows(), y.Cols())
	}
	loss := tensor.SumT(tensor.MulT(y, y))
	loss.Backward()
	grads := 0
	for _, p := range m.Params() {
		if p.T.Grad != nil {
			grads++
		}
	}
	if grads == 0 {
		t.Fatal("no gradients reached multi-head GAT params")
	}
	if len(m.Params()) <= len(NewGATLayer(rng, in, out).Params()) {
		t.Fatal("multi-head has no more params than single head")
	}
}

func TestMultiHeadTransformerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const b, k, dim, heads = 2, 3, 8, 2
	m := NewMultiHeadTransformer(rng, dim, heads)
	q := randConst(rng, b, dim)
	kv := randConst(rng, b*k, dim)
	y := m.Forward(q, kv, k, nil)
	if y.Rows() != b || y.Cols() != dim {
		t.Fatalf("multi-head transformer output %dx%d", y.Rows(), y.Cols())
	}
	// Repeated application stays bounded (LayerNorm), the property the
	// single-head block needed for APAN.
	for i := 0; i < 20; i++ {
		y = m.Forward(y, kv, k, nil)
	}
	for _, v := range y.Value.Data {
		if v > 50 || v < -50 {
			t.Fatalf("unbounded multi-head output %v", v)
		}
	}
}

func TestMultiHeadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero heads")
		}
	}()
	NewMultiHeadGAT(rand.New(rand.NewSource(0)), 4, 4, 0)
}

func TestLayerNormModule(t *testing.T) {
	ln := NewLayerNorm(4)
	x := randConst(rand.New(rand.NewSource(33)), 3, 4)
	y := ln.Forward(x)
	if y.Rows() != 3 || y.Cols() != 4 {
		t.Fatalf("layernorm shape %dx%d", y.Rows(), y.Cols())
	}
	if len(ln.Params()) != 2 {
		t.Fatalf("layernorm params %d", len(ln.Params()))
	}
}

func TestTimeEncoderLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	te := NewTimeEncoder(rng, 6)
	loss := func() *tensor.Tensor {
		enc := te.Forward([]float32{0.5, 2, 7})
		return tensor.SumT(tensor.MulT(enc, enc))
	}
	l := loss()
	l.Backward()
	gotOmega, gotPhase := false, false
	if te.Omega.Grad != nil {
		for _, g := range te.Omega.Grad.Data {
			if g != 0 {
				gotOmega = true
			}
		}
	}
	if te.Phase.Grad != nil {
		for _, g := range te.Phase.Grad.Data {
			if g != 0 {
				gotPhase = true
			}
		}
	}
	if !gotOmega || !gotPhase {
		t.Fatalf("time encoder grads: omega %v phase %v", gotOmega, gotPhase)
	}
}
