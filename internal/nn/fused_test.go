package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Golden tests pinning the fused module paths bitwise against the eager
// chains: same loss, same parameter gradients, down to the last ULP. The
// compile mode's correctness story rests on this equivalence.

// fusable is the module-level toggle every compiled module implements.
type fusable interface {
	SetFused(on bool)
	Params() []Param
}

// runFusedGolden runs forward+backward eager, snapshots loss and grads,
// zeroes grads, reruns fused, and requires bitwise identity.
func runFusedGolden(t *testing.T, name string, mod fusable, forward func() *tensor.Tensor) {
	t.Helper()
	opt := NewAdam(mod.Params(), 0.01)

	mod.SetFused(false)
	opt.ZeroGrad()
	eagerLoss := forward()
	eagerLoss.Backward()
	wantLoss := eagerLoss.Item()
	wantGrads := make([]*tensor.Matrix, len(mod.Params()))
	for i, p := range mod.Params() {
		if p.T.Grad != nil {
			wantGrads[i] = p.T.Grad.Clone()
		}
	}
	tensor.FreeGraph(eagerLoss)

	mod.SetFused(true)
	opt.ZeroGrad()
	fusedLoss := forward()
	fusedLoss.Backward()
	if got := fusedLoss.Item(); got != wantLoss {
		t.Fatalf("%s: fused loss %v (bits %#x) != eager %v (bits %#x)",
			name, got, math.Float32bits(got), wantLoss, math.Float32bits(wantLoss))
	}
	for i, p := range mod.Params() {
		want := wantGrads[i]
		if want == nil {
			continue
		}
		if p.T.Grad == nil {
			t.Fatalf("%s: param %s lost its grad under fusion", name, p.Name)
		}
		for j, g := range p.T.Grad.Data {
			if g != want.Data[j] {
				t.Fatalf("%s: grad %s[%d] fused %v (bits %#x) != eager %v (bits %#x)",
					name, p.Name, j, g, math.Float32bits(g), want.Data[j], math.Float32bits(want.Data[j]))
			}
		}
	}
	tensor.FreeGraph(fusedLoss)
	mod.SetFused(false)
}

// scalarizeNN reduces out to a loss that is sensitive to every element.
func scalarizeNN(rng *rand.Rand, out *tensor.Tensor) *tensor.Tensor {
	c := tensor.NewMatrix(out.Rows(), out.Cols())
	for i := range c.Data {
		c.Data[i] = float32(rng.NormFloat64())
	}
	return tensor.SumT(tensor.MulT(out, tensor.Const(c)))
}

func TestMLPFusedGolden(t *testing.T) {
	for _, act := range []Activation{ActReLU, ActTanh, ActSigmoid} {
		rng := rand.New(rand.NewSource(41 + int64(act)))
		mlp := NewMLP(rng, act, 5, 11, 7, 3)
		x := randConst(rng, 9, 5)
		runFusedGolden(t, "mlp", mlp, func() *tensor.Tensor {
			return scalarizeNN(rand.New(rand.NewSource(7)), mlp.Forward(x))
		})
	}
}

func TestRNNCellFusedGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cell := NewRNNCell(rng, 6, 8)
	x := randConst(rng, 5, 6)
	h := randConst(rng, 5, 8)
	runFusedGolden(t, "rnncell", cell, func() *tensor.Tensor {
		return scalarizeNN(rand.New(rand.NewSource(8)), cell.Forward(x, h))
	})
}

func TestGRUCellFusedGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cell := NewGRUCell(rng, 6, 8)
	x := randConst(rng, 5, 6)
	h := randConst(rng, 5, 8)
	runFusedGolden(t, "grucell", cell, func() *tensor.Tensor {
		return scalarizeNN(rand.New(rand.NewSource(9)), cell.Forward(x, h))
	})
}

func TestTimeEncoderFusedGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	te := NewTimeEncoder(rng, 12)
	deltas := []float32{0, 0.5, 3, 1e4, 0, 77}
	runFusedGolden(t, "timeenc", te, func() *tensor.Tensor {
		return scalarizeNN(rand.New(rand.NewSource(10)), te.Forward(deltas))
	})
}

func TestGATLayerFusedGolden(t *testing.T) {
	const b, k, in, out = 4, 3, 5, 6
	for _, masked := range []bool{false, true} {
		rng := rand.New(rand.NewSource(45))
		gat := NewGATLayer(rng, in, out)
		self := randConst(rng, b, in)
		neigh := randConst(rng, b*k, in)
		var mask *tensor.Matrix
		if masked {
			mask = tensor.NewMatrix(b, k)
			for i := 0; i < b; i++ {
				mask.Set(i, 0, 1)
				if i%2 == 0 {
					mask.Set(i, 1, 1)
				}
			}
		}
		runFusedGolden(t, "gat", gat, func() *tensor.Tensor {
			return scalarizeNN(rand.New(rand.NewSource(11)), gat.Forward(self, neigh, k, mask))
		})
	}
}

func TestTransformerLayerFusedGolden(t *testing.T) {
	const b, k, dim = 3, 4, 8
	for _, masked := range []bool{false, true} {
		rng := rand.New(rand.NewSource(46))
		tr := NewTransformerLayer(rng, dim)
		q := randConst(rng, b, dim)
		kv := randConst(rng, b*k, dim)
		var mask *tensor.Matrix
		if masked {
			mask = tensor.NewMatrix(b, k)
			for i := 0; i < b; i++ {
				mask.Set(i, i%k, 1)
			}
		}
		runFusedGolden(t, "transformer", tr, func() *tensor.Tensor {
			return scalarizeNN(rand.New(rand.NewSource(12)), tr.Forward(q, kv, k, mask))
		})
	}
}

func TestMultiHeadFusedGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const b, k, in, out, heads = 3, 4, 5, 6, 2
	mg := NewMultiHeadGAT(rng, in, out, heads)
	self := randConst(rng, b, in)
	neigh := randConst(rng, b*k, in)
	runFusedGolden(t, "multihead-gat", mg, func() *tensor.Tensor {
		return scalarizeNN(rand.New(rand.NewSource(13)), mg.Forward(self, neigh, k, nil))
	})

	const dim = 8
	mt := NewMultiHeadTransformer(rng, dim, heads)
	q := randConst(rng, b, dim)
	kv := randConst(rng, b*k, dim)
	runFusedGolden(t, "multihead-transformer", mt, func() *tensor.Tensor {
		return scalarizeNN(rand.New(rand.NewSource(14)), mt.Forward(q, kv, k, nil))
	})
}
