package nn

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	In, Out int
	W, B    *tensor.Tensor

	// fused routes Forward through the single-node fused kernel
	// (tensor.LinearT). Bitwise identical to the eager chain; enabled by the
	// trainer's compile mode (see SetFused).
	fused bool
}

// SetFused toggles the fused forward path.
func (l *Linear) SetFused(on bool) { l.fused = on }

// NewLinear builds a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		In:  in,
		Out: out,
		W:   tensor.Var(xavier(rng, in, out)),
		B:   tensor.Var(tensor.NewMatrix(1, out)),
	}
}

// Forward applies the layer to a (batch × In) tensor.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if l.fused {
		return tensor.LinearT(x, l.W, l.B)
	}
	return tensor.AddRowT(tensor.MatMulT(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []Param {
	return []Param{{Name: "W", T: l.W}, {Name: "b", T: l.B}}
}

// Activation selects the nonlinearity applied between MLP layers.
type Activation int

// Supported activations.
const (
	ActReLU Activation = iota
	ActTanh
	ActSigmoid
)

func applyAct(a Activation, x *tensor.Tensor) *tensor.Tensor {
	switch a {
	case ActTanh:
		return tensor.TanhT(x)
	case ActSigmoid:
		return tensor.SigmoidT(x)
	default:
		return tensor.ReLUT(x)
	}
}

// actKind maps an nn activation to the tensor-level fused activation kind.
func actKind(a Activation) tensor.Act {
	switch a {
	case ActTanh:
		return tensor.ActTanh
	case ActSigmoid:
		return tensor.ActSigmoid
	default:
		return tensor.ActReLU
	}
}

// MLP is a stack of Linear layers with an activation between them (none
// after the last layer). The paper's msg(·) module and the final edge
// predictor are MLPs (§2.2).
type MLP struct {
	Layers []*Linear
	Act    Activation

	fused bool
}

// SetFused toggles the fused forward path: each hidden layer collapses to a
// single linear+activation node (tensor.LinearActT), the last layer to
// tensor.LinearT. Bitwise identical to the eager chain.
func (m *MLP) SetFused(on bool) {
	m.fused = on
	for _, l := range m.Layers {
		l.SetFused(on)
	}
}

// NewMLP builds an MLP with the given layer widths, e.g. dims = [in, hidden,
// out].
func NewMLP(rng *rand.Rand, act Activation, dims ...int) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{Act: act}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, dims[i], dims[i+1]))
	}
	return m
}

// Forward applies the stack.
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	if m.fused {
		for i, l := range m.Layers {
			if i+1 < len(m.Layers) {
				x = tensor.LinearActT(x, l.W, l.B, actKind(m.Act))
			} else {
				x = tensor.LinearT(x, l.W, l.B)
			}
		}
		return x
	}
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = applyAct(m.Act, x)
		}
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []Param {
	var out []Param
	for i, l := range m.Layers {
		out = append(out, prefixed(layerName(i), l.Params())...)
	}
	return out
}

func layerName(i int) string {
	return "layer" + string(rune('0'+i))
}

// Identity is a Module with no parameters whose Forward returns its input.
// Table 1 uses Identity for JODIE/APAN node embedding and TGAT message.
type Identity struct{}

// Forward returns x unchanged.
func (Identity) Forward(x *tensor.Tensor) *tensor.Tensor { return x }

// Params implements Module.
func (Identity) Params() []Param { return nil }

// LayerNorm is a learnable row-normalization layer (gain initialized to 1,
// bias to 0).
type LayerNorm struct {
	Dim        int
	Gain, Bias *tensor.Tensor
}

// NewLayerNorm builds a LayerNorm over dim-wide rows.
func NewLayerNorm(dim int) *LayerNorm {
	g := tensor.NewMatrix(1, dim)
	g.Fill(1)
	return &LayerNorm{Dim: dim, Gain: tensor.Var(g), Bias: tensor.Var(tensor.NewMatrix(1, dim))}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.LayerNormT(x, l.Gain, l.Bias)
}

// Params implements Module.
func (l *LayerNorm) Params() []Param {
	return []Param{{Name: "gain", T: l.Gain}, {Name: "bias", T: l.Bias}}
}
