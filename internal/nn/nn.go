// Package nn provides the neural-network building blocks the five TGNN
// models of Table 1 are assembled from: linear/MLP layers, RNN and GRU
// memory updaters, graph-attention and transformer embedding modules, the
// Bochner time encoder, and the Adam optimizer.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Param is a named trainable tensor.
type Param struct {
	Name string
	T    *tensor.Tensor
}

// Module is anything owning trainable parameters.
type Module interface {
	Params() []Param
}

// CollectParams flattens the parameters of several modules, prefixing names.
func CollectParams(mods ...Module) []Param {
	var out []Param
	for _, m := range mods {
		if m == nil {
			continue
		}
		out = append(out, m.Params()...)
	}
	return out
}

// xavier initializes a rows×cols matrix with Glorot-uniform values.
func xavier(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	limit := float32(math.Sqrt(6.0 / float64(rows+cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
	return m
}

// NumParams returns the total scalar parameter count of a module.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.T.Value.Data)
	}
	return n
}

// ParamBytes returns the parameter memory footprint in bytes (float32).
func ParamBytes(m Module) int { return 4 * NumParams(m) }

func prefixed(prefix string, params []Param) []Param {
	out := make([]Param, len(params))
	for i, p := range params {
		out[i] = Param{Name: fmt.Sprintf("%s.%s", prefix, p.Name), T: p.T}
	}
	return out
}
