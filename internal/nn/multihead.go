package nn

import (
	"fmt"
	"math/rand"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Multi-head variants of the attention layers. The paper's Table 1
// configurations are single-head; the original GAT and transformer papers
// (and TGAT's reference implementation) use several heads whose outputs
// concatenate, so the library offers both.

// MultiHeadGAT runs H independent GAT heads and projects the concatenated
// head outputs back to OutDim.
type MultiHeadGAT struct {
	Heads         int
	InDim, OutDim int
	heads         []*GATLayer
	proj          *Linear
}

// SetFused propagates the fused-path toggle to every head and the output
// projection.
func (m *MultiHeadGAT) SetFused(on bool) {
	for _, h := range m.heads {
		h.SetFused(on)
	}
	m.proj.SetFused(on)
}

// NewMultiHeadGAT builds heads GAT layers of width outDim each plus the
// output projection.
func NewMultiHeadGAT(rng *rand.Rand, inDim, outDim, heads int) *MultiHeadGAT {
	if heads <= 0 {
		panic(fmt.Sprintf("nn: MultiHeadGAT with %d heads", heads))
	}
	m := &MultiHeadGAT{Heads: heads, InDim: inDim, OutDim: outDim}
	for h := 0; h < heads; h++ {
		m.heads = append(m.heads, NewGATLayer(rng, inDim, outDim))
	}
	m.proj = NewLinear(rng, heads*outDim, outDim)
	return m
}

// Forward has GATLayer.Forward's contract.
func (m *MultiHeadGAT) Forward(self, neigh *tensor.Tensor, k int, mask *tensor.Matrix) *tensor.Tensor {
	outs := make([]*tensor.Tensor, m.Heads)
	for h, layer := range m.heads {
		outs[h] = layer.Forward(self, neigh, k, mask)
	}
	if m.Heads == 1 {
		return m.proj.Forward(outs[0])
	}
	return m.proj.Forward(tensor.ConcatColsT(outs...))
}

// Params implements Module.
func (m *MultiHeadGAT) Params() []Param {
	var out []Param
	for h, layer := range m.heads {
		out = append(out, prefixed(fmt.Sprintf("head%d", h), layer.Params())...)
	}
	return append(out, prefixed("proj", m.proj.Params())...)
}

// MultiHeadTransformer runs H independent attention heads and projects the
// concatenation, with the same post-residual LayerNorm as TransformerLayer.
type MultiHeadTransformer struct {
	Heads int
	Dim   int
	heads []*TransformerLayer
	proj  *Linear
	norm  *LayerNorm
}

// SetFused propagates the fused-path toggle to every head and the output
// projection.
func (m *MultiHeadTransformer) SetFused(on bool) {
	for _, h := range m.heads {
		h.SetFused(on)
	}
	m.proj.SetFused(on)
}

// NewMultiHeadTransformer builds heads transformer blocks of width dim.
func NewMultiHeadTransformer(rng *rand.Rand, dim, heads int) *MultiHeadTransformer {
	if heads <= 0 {
		panic(fmt.Sprintf("nn: MultiHeadTransformer with %d heads", heads))
	}
	m := &MultiHeadTransformer{Heads: heads, Dim: dim}
	for h := 0; h < heads; h++ {
		m.heads = append(m.heads, NewTransformerLayer(rng, dim))
	}
	m.proj = NewLinear(rng, heads*dim, dim)
	m.norm = NewLayerNorm(dim)
	return m
}

// Forward has TransformerLayer.Forward's contract.
func (m *MultiHeadTransformer) Forward(query, kv *tensor.Tensor, k int, mask *tensor.Matrix) *tensor.Tensor {
	outs := make([]*tensor.Tensor, m.Heads)
	for h, layer := range m.heads {
		outs[h] = layer.Forward(query, kv, k, mask)
	}
	var cat *tensor.Tensor
	if m.Heads == 1 {
		cat = outs[0]
	} else {
		cat = tensor.ConcatColsT(outs...)
	}
	return m.norm.Forward(tensor.AddT(query, m.proj.Forward(cat)))
}

// Params implements Module.
func (m *MultiHeadTransformer) Params() []Param {
	var out []Param
	for h, layer := range m.heads {
		out = append(out, prefixed(fmt.Sprintf("head%d", h), layer.Params())...)
	}
	out = append(out, prefixed("proj", m.proj.Params())...)
	return append(out, prefixed("norm", m.norm.Params())...)
}
