package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// Checkpointing serializes a module's parameters by name so a trained TGNN
// (plus its predictor head) can be saved and restored. The format is
// little-endian: magic, count, then per parameter {nameLen, name, rows,
// cols, float32 data}.

var checkpointMagic = [8]byte{'C', 'A', 'S', 'C', 'C', 'K', 'P', '1'}

// UniqueNames returns a copy of params with duplicate names disambiguated by
// an "#<occurrence>" suffix, in order. Models that stack identical layers
// (TGAT's two GAT blocks, DySAT's attention stack) repeat parameter names, and
// LoadParams matches by name — feed it (and SaveParams, so names align) the
// deduplicated list.
func UniqueNames(params []Param) []Param {
	seen := make(map[string]int, len(params))
	out := make([]Param, len(params))
	for i, p := range params {
		n := seen[p.Name]
		seen[p.Name] = n + 1
		if n > 0 {
			p.Name = fmt.Sprintf("%s#%d", p.Name, n)
		}
		out[i] = p
	}
	return out
}

// SaveParams writes every parameter of params to w.
func SaveParams(w io.Writer, params []Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		v := p.T.Value
		if err := binary.Write(bw, binary.LittleEndian, uint32(v.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(v.Cols)); err != nil {
			return err
		}
		for _, x := range v.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(x)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ScanParams walks a checkpoint written by SaveParams without needing a live
// model: visit receives every stored parameter's name, shape, and data in
// order. Tooling uses it to lint checkpoints (shape plausibility, non-finite
// weights) when the producing model is not available to LoadParams into.
func ScanParams(r io.Reader, visit func(name string, rows, cols int, data []float32) error) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic[:])
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading checkpoint count: %w", err)
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: param %d name length: %w", i, err)
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: param %d name implausibly long (%d)", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: param %d name: %w", i, err)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("nn: param %q rows: %w", name, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("nn: param %q cols: %w", name, err)
		}
		const sane = 1 << 24
		if rows > sane || cols > sane {
			return fmt.Errorf("nn: param %q implausible shape %dx%d", name, rows, cols)
		}
		data := make([]float32, int(rows)*int(cols))
		for j := range data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: param %q data[%d]: %w", name, j, err)
			}
			data[j] = math.Float32frombits(bits)
		}
		if err := visit(string(name), int(rows), int(cols), data); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams into params: every
// stored parameter must match a live parameter by name and shape, and every
// live parameter must be present in the checkpoint.
func LoadParams(r io.Reader, params []Param) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic[:])
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading checkpoint count: %w", err)
	}
	byName := make(map[string]*tensor.Tensor, len(params))
	for _, p := range params {
		if _, dup := byName[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		byName[p.Name] = p.T
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: param %d name length: %w", i, err)
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: param %d name implausibly long (%d)", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: param %d name: %w", i, err)
		}
		tns, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in model", name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("nn: param %q rows: %w", name, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("nn: param %q cols: %w", name, err)
		}
		if int(rows) != tns.Value.Rows || int(cols) != tns.Value.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d, model has %dx%d", name, rows, cols, tns.Value.Rows, tns.Value.Cols)
		}
		for j := range tns.Value.Data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: param %q data[%d]: %w", name, j, err)
			}
			tns.Value.Data[j] = math.Float32frombits(bits)
		}
	}
	return nil
}
