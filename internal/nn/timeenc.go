package nn

import (
	"math"
	"math/rand"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// TimeEncoder maps scalar time deltas to d-dimensional features with the
// Bochner/functional encoding used by TGAT and TGN:
//
//	φ(Δt) = cos(Δt·ω + b)
//
// ω is initialized log-spaced (so the encoder covers short- and long-range
// dynamics) and, like b, is trainable.
type TimeEncoder struct {
	Dim   int
	Omega *tensor.Tensor // (1 × Dim) frequencies
	Phase *tensor.Tensor // (1 × Dim) phases

	fused bool
}

// SetFused toggles the fused forward path (tensor.TimeEncodeT): outer
// product, phase add, and cosine in one tape node. Bitwise identical to the
// eager chain.
func (te *TimeEncoder) SetFused(on bool) { te.fused = on }

// NewTimeEncoder builds a time encoder with log-spaced initial frequencies
// ω_j = 1/10^(j·9/(d−1)) spanning [1, 1e−9].
func NewTimeEncoder(rng *rand.Rand, dim int) *TimeEncoder {
	_ = rng
	om := tensor.NewMatrix(1, dim)
	for j := 0; j < dim; j++ {
		exp := 0.0
		if dim > 1 {
			exp = float64(j) * 9.0 / float64(dim-1)
		}
		om.Data[j] = float32(1.0 / math.Pow(10, exp))
	}
	return &TimeEncoder{
		Dim:   dim,
		Omega: tensor.Var(om),
		Phase: tensor.Var(tensor.NewMatrix(1, dim)),
	}
}

// Forward encodes a batch of deltas (length B) into a (B × Dim) tensor.
func (te *TimeEncoder) Forward(deltas []float32) *tensor.Tensor {
	if te.fused {
		return tensor.TimeEncodeT(deltas, te.Omega, te.Phase)
	}
	cm := tensor.NewMatrix(len(deltas), 1)
	copy(cm.Data, deltas)
	col := tensor.ConstScratch(cm)
	// (B×1)·(1×D) = outer product Δt_i · ω_j, then add phase and take cos.
	return tensor.CosT(tensor.AddRowT(tensor.MatMulT(col, te.Omega), te.Phase))
}

// Params implements Module.
func (te *TimeEncoder) Params() []Param {
	return []Param{{Name: "omega", T: te.Omega}, {Name: "phase", T: te.Phase}}
}
