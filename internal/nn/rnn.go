package nn

import (
	"math/rand"

	"github.com/cascade-ml/cascade/internal/tensor"
)

// RNNCell is the vanilla recurrent cell JODIE and DySAT use to update node
// memories (Table 1): h' = tanh(x·Wx + h·Wh + b).
type RNNCell struct {
	InDim, HiddenDim int
	Wx, Wh           *tensor.Tensor
	B                *tensor.Tensor

	fused bool
}

// SetFused toggles the fused forward path (tensor.RNNStepT): two GEMMs plus a
// single add+bias+tanh pass in one tape node. Bitwise identical to the eager
// chain, including when x and h alias the same tensor.
func (c *RNNCell) SetFused(on bool) { c.fused = on }

// NewRNNCell builds a Glorot-initialized RNN cell.
func NewRNNCell(rng *rand.Rand, inDim, hiddenDim int) *RNNCell {
	return &RNNCell{
		InDim:     inDim,
		HiddenDim: hiddenDim,
		Wx:        tensor.Var(xavier(rng, inDim, hiddenDim)),
		Wh:        tensor.Var(xavier(rng, hiddenDim, hiddenDim)),
		B:         tensor.Var(tensor.NewMatrix(1, hiddenDim)),
	}
}

// Forward computes the next hidden state for a batch: x is (B × InDim),
// h is (B × HiddenDim).
func (c *RNNCell) Forward(x, h *tensor.Tensor) *tensor.Tensor {
	if c.fused {
		return tensor.RNNStepT(x, h, c.Wx, c.Wh, c.B)
	}
	pre := tensor.AddRowT(tensor.AddT(tensor.MatMulT(x, c.Wx), tensor.MatMulT(h, c.Wh)), c.B)
	return tensor.TanhT(pre)
}

// Params implements Module.
func (c *RNNCell) Params() []Param {
	return []Param{{Name: "Wx", T: c.Wx}, {Name: "Wh", T: c.Wh}, {Name: "b", T: c.B}}
}

// GRUCell is the gated recurrent unit TGN uses as its memory updater
// (Eq. 3, UPDT = GRU):
//
//	z = σ(x·Wz + h·Uz + bz)
//	r = σ(x·Wr + h·Ur + br)
//	ĥ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
//	h' = (1 − z) ⊙ h + z ⊙ ĥ
//
// The three input projections are fused into one (InDim × 3·Hidden) matrix
// and likewise for the hidden projections, so a cell forward is two GEMMs
// plus elementwise work.
type GRUCell struct {
	InDim, HiddenDim int
	Wf               *tensor.Tensor // fused input weights  (InDim × 3H): [z | r | h]
	Uzr              *tensor.Tensor // fused hidden weights (H × 2H): [z | r]
	Uh               *tensor.Tensor // candidate hidden weights (H × H)
	Bz, Br, Bh       *tensor.Tensor

	fused bool
}

// SetFused toggles the fused forward path (tensor.GRUStepT): three GEMMs plus
// two fused gate passes in one tape node. Bitwise identical to the eager
// slice/sigmoid/tanh chain.
func (c *GRUCell) SetFused(on bool) { c.fused = on }

// NewGRUCell builds a Glorot-initialized GRU cell.
func NewGRUCell(rng *rand.Rand, inDim, hiddenDim int) *GRUCell {
	return &GRUCell{
		InDim:     inDim,
		HiddenDim: hiddenDim,
		Wf:        tensor.Var(xavier(rng, inDim, 3*hiddenDim)),
		Uzr:       tensor.Var(xavier(rng, hiddenDim, 2*hiddenDim)),
		Uh:        tensor.Var(xavier(rng, hiddenDim, hiddenDim)),
		Bz:        tensor.Var(tensor.NewMatrix(1, hiddenDim)),
		Br:        tensor.Var(tensor.NewMatrix(1, hiddenDim)),
		Bh:        tensor.Var(tensor.NewMatrix(1, hiddenDim)),
	}
}

// Forward computes the next hidden state for a batch: x is (B × InDim),
// h is (B × HiddenDim).
func (c *GRUCell) Forward(x, h *tensor.Tensor) *tensor.Tensor {
	if c.fused {
		return tensor.GRUStepT(x, h, c.Wf, c.Uzr, c.Uh, c.Bz, c.Br, c.Bh)
	}
	hd := c.HiddenDim
	xw := tensor.MatMulT(x, c.Wf)           // (B × 3H)
	hu := tensor.MatMulT(h, c.Uzr)          // (B × 2H)
	xz := tensor.SliceColsT(xw, 0, hd)      // input → update gate
	xr := tensor.SliceColsT(xw, hd, 2*hd)   // input → reset gate
	xh := tensor.SliceColsT(xw, 2*hd, 3*hd) // input → candidate
	hz := tensor.SliceColsT(hu, 0, hd)      // hidden → update gate
	hr := tensor.SliceColsT(hu, hd, 2*hd)   // hidden → reset gate

	z := tensor.SigmoidT(tensor.AddRowT(tensor.AddT(xz, hz), c.Bz))
	r := tensor.SigmoidT(tensor.AddRowT(tensor.AddT(xr, hr), c.Br))
	rh := tensor.MulT(r, h)
	cand := tensor.TanhT(tensor.AddRowT(tensor.AddT(xh, tensor.MatMulT(rh, c.Uh)), c.Bh))
	// h' = h + z ⊙ (ĥ − h) ≡ (1−z)⊙h + z⊙ĥ
	return tensor.AddT(h, tensor.MulT(z, tensor.SubT(cand, h)))
}

// Params implements Module.
func (c *GRUCell) Params() []Param {
	return []Param{
		{Name: "Wf", T: c.Wf}, {Name: "Uzr", T: c.Uzr}, {Name: "Uh", T: c.Uh},
		{Name: "bz", T: c.Bz}, {Name: "br", T: c.Br}, {Name: "bh", T: c.Bh},
	}
}
