package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewMLP(rng, ActReLU, 4, 8, 2)
	dst := NewMLP(rand.New(rand.NewSource(2)), ActReLU, 4, 8, 2)

	var buf bytes.Buffer
	if err := SaveParams(&buf, CollectParams(src)); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, CollectParams(dst)); err != nil {
		t.Fatal(err)
	}
	sp, dp := CollectParams(src), CollectParams(dst)
	for i := range sp {
		for j := range sp[i].T.Value.Data {
			if sp[i].T.Value.Data[j] != dp[i].T.Value.Data[j] {
				t.Fatalf("param %s[%d] differs after round trip", sp[i].Name, j)
			}
		}
	}
}

func TestCheckpointShapeMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	if err := SaveParams(&buf, CollectParams(NewLinear(rng, 4, 4))); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, CollectParams(NewLinear(rng, 4, 5))); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCheckpointCountMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	if err := SaveParams(&buf, CollectParams(NewLinear(rng, 2, 2))); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, CollectParams(NewMLP(rng, ActReLU, 2, 2, 2))); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestCheckpointNameMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(rng, 2, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, []Param{{Name: "other", T: l.W}, {Name: "b", T: l.B}}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, l.Params()); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestCheckpointTruncationRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLinear(rng, 3, 3)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 5 {
		if err := LoadParams(bytes.NewReader(full[:cut]), l.Params()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCheckpointBadMagicRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(rng, 2, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xFF
	if err := LoadParams(bytes.NewReader(data), l.Params()); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCheckpointDuplicateNamesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLinear(rng, 2, 2)
	params := []Param{{Name: "w", T: l.W}, {Name: "w", T: l.B}}
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, params); err == nil {
		t.Fatal("duplicate names accepted")
	}
}
