// Package datagen generates synthetic CTDG datasets whose statistical shape
// matches the paper's Table 2 benchmarks. Real WIKI/REDDIT/MOOC/WIKI-TALK/
// SX-FULL/GDELT/MAG dumps are not available offline, and Cascade's behaviour
// depends only on distributional properties of the event stream:
//
//   - degree skew — a few hot nodes absorb many events while most nodes see
//     few (Fig. 3), which is what makes spatial independence exploitable;
//   - repeat affinity — sources re-touch recent destinations, creating the
//     temporal locality that stabilizes node memories (Fig. 5);
//   - average degree — the paper correlates Cascade's speedup with graph
//     sparsity (§5.2).
//
// Each named profile reproduces the paper dataset's node/event ratio, edge
// feature width, and average degree at a configurable scale.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/cascade-ml/cascade/internal/graph"
)

// Profile describes a synthetic dataset family.
type Profile struct {
	// Name matches the paper's dataset name with a -sim suffix applied at
	// generation time.
	Name string
	// Nodes and Events are the full-scale counts from Table 2.
	Nodes, Events int
	// FeatDim is the edge feature width from Table 2 (paper-random features
	// are marked * there; all of ours are synthetic).
	FeatDim int
	// Bipartite marks user→item graphs (WIKI/REDDIT/MOOC): sources and
	// destinations are disjoint halves.
	Bipartite bool
	// SrcSkew and DstSkew are Zipf exponents for endpoint popularity: higher
	// values concentrate events on fewer hot nodes.
	SrcSkew, DstSkew float64
	// RepeatProb is the probability a source re-interacts with one of its
	// recent destinations instead of sampling a fresh one — the temporal
	// locality knob.
	RepeatProb float64
	// LabelFrac, when > 0, generates per-event binary labels in the style
	// of MOOC's drop-out prediction: LabelFrac of destinations are
	// "risky" (hard course items); events touching them are labeled 1
	// with high probability, others rarely.
	LabelFrac float64
}

// Profiles built from Table 2. Average degree 2E/N follows from Nodes/Events;
// skews are tuned so the per-batch degree histogram matches Figure 3's
// "mostly 0–25, hot nodes capped near 140–175 per 900-event batch" shape.
var (
	Wiki     = Profile{Name: "WIKI", Nodes: 9227, Events: 157474, FeatDim: 172, Bipartite: true, SrcSkew: 0.9, DstSkew: 0.8, RepeatProb: 0.55}
	Reddit   = Profile{Name: "REDDIT", Nodes: 11000, Events: 672447, FeatDim: 172, Bipartite: true, SrcSkew: 1.0, DstSkew: 0.9, RepeatProb: 0.65}
	Mooc     = Profile{Name: "MOOC", Nodes: 7047, Events: 411749, FeatDim: 128, Bipartite: true, SrcSkew: 0.8, DstSkew: 1.1, RepeatProb: 0.6, LabelFrac: 0.25}
	WikiTalk = Profile{Name: "WIKI-TALK", Nodes: 2394385, Events: 5021410, FeatDim: 32, Bipartite: false, SrcSkew: 1.1, DstSkew: 1.0, RepeatProb: 0.3}
	SxFull   = Profile{Name: "SX-FULL", Nodes: 2601977, Events: 63497050, FeatDim: 32, Bipartite: false, SrcSkew: 1.0, DstSkew: 1.0, RepeatProb: 0.45}
	Gdelt    = Profile{Name: "GDELT", Nodes: 16682, Events: 191290882, FeatDim: 186, Bipartite: false, SrcSkew: 0.9, DstSkew: 0.9, RepeatProb: 0.5}
	Mag      = Profile{Name: "MAG", Nodes: 121751665, Events: 1297748926, FeatDim: 32, Bipartite: false, SrcSkew: 1.2, DstSkew: 1.2, RepeatProb: 0.35}
)

// ByName maps paper dataset names to profiles.
var ByName = map[string]Profile{
	"WIKI": Wiki, "REDDIT": Reddit, "MOOC": Mooc,
	"WIKI-TALK": WikiTalk, "SX-FULL": SxFull, "GDELT": Gdelt, "MAG": Mag,
}

// ModerateNames lists the five moderate-scale benchmarks of Table 2 in paper
// order.
var ModerateNames = []string{"WIKI", "REDDIT", "MOOC", "WIKI-TALK", "SX-FULL"}

// LargeNames lists the two billion-edge benchmarks.
var LargeNames = []string{"GDELT", "MAG"}

// Options controls generation.
type Options struct {
	// Scale multiplies node and event counts (1.0 = paper scale). The
	// default experiments run at small scales so a pure-Go training stack
	// finishes in seconds; because batch sizes are scaled alongside, the
	// per-batch degree profile is preserved.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
	// FeatDimOverride, when > 0, replaces the profile's feature width.
	FeatDimOverride int
	// MinNodes floors the scaled node count.
	MinNodes int
	// MinEvents floors the scaled event count.
	MinEvents int
}

// Generate synthesizes a dataset from the profile.
func (p Profile) Generate(opt Options) *graph.Dataset {
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if opt.MinNodes <= 0 {
		opt.MinNodes = 64
	}
	if opt.MinEvents <= 0 {
		opt.MinEvents = 256
	}
	nodes := int(float64(p.Nodes) * opt.Scale)
	events := int(float64(p.Events) * opt.Scale)
	if nodes < opt.MinNodes {
		nodes = opt.MinNodes
	}
	if events < opt.MinEvents {
		events = opt.MinEvents
	}
	featDim := p.FeatDim
	if opt.FeatDimOverride > 0 {
		featDim = opt.FeatDimOverride
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	nSrc, nDst, dstBase := nodes, nodes, 0
	if p.Bipartite {
		// User:item split roughly 80:20, the shape of WIKI/REDDIT (many
		// users, fewer pages/subreddits).
		nSrc = nodes * 4 / 5
		if nSrc < 1 {
			nSrc = 1
		}
		nDst = nodes - nSrc
		if nDst < 1 {
			nDst = 1
			nSrc = nodes - 1
		}
		dstBase = nSrc
	}

	srcSampler := newZipfSampler(rng, nSrc, p.SrcSkew)
	dstSampler := newZipfSampler(rng, nDst, p.DstSkew)

	// Shared edge-feature pool: destinations act as "topics"; events on the
	// same destination reuse a correlated feature row, so features carry
	// learnable signal without one row per event.
	poolSize := events
	if poolSize > 4096 {
		poolSize = 4096
	}
	var feats []float32
	if featDim > 0 {
		feats = make([]float32, poolSize*featDim)
		for i := range feats {
			feats[i] = float32(rng.NormFloat64()) * 0.5
		}
	}

	// recent[src] holds the source's last few destinations for repeat
	// affinity.
	const recentCap = 4
	recent := make([][]int32, nSrc)

	evts := make([]graph.Event, 0, events)
	t := 0.0
	for i := 0; i < events; i++ {
		t += rng.ExpFloat64()
		src := int32(srcSampler.sample(rng))
		var dst int32
		if r := recent[src]; len(r) > 0 && rng.Float64() < p.RepeatProb {
			dst = r[rng.Intn(len(r))]
		} else {
			dst = int32(dstBase + dstSampler.sample(rng))
			if !p.Bipartite {
				for dst == src {
					dst = int32(dstBase + dstSampler.sample(rng))
				}
			}
		}
		r := recent[src]
		if len(r) < recentCap {
			recent[src] = append(r, dst)
		} else {
			r[i%recentCap] = dst
		}
		featIdx := int32(-1)
		if featDim > 0 {
			// Topic-correlated feature row with occasional noise rows.
			if rng.Float64() < 0.9 {
				featIdx = int32(int(dst) % poolSize)
			} else {
				featIdx = int32(rng.Intn(poolSize))
			}
		}
		evts = append(evts, graph.Event{Src: src, Dst: dst, Time: t, FeatIdx: featIdx})
	}

	d := &graph.Dataset{
		Name:        fmt.Sprintf("%s-sim", p.Name),
		NumNodes:    nodes,
		Events:      evts,
		EdgeFeatDim: featDim,
		EdgeFeats:   feats,
	}
	if p.LabelFrac > 0 {
		// Risky destinations: a LabelFrac slice of the destination range.
		risky := make(map[int32]bool)
		nRisky := int(float64(nDst) * p.LabelFrac)
		if nRisky < 1 {
			nRisky = 1
		}
		for _, i := range rng.Perm(nDst)[:nRisky] {
			risky[int32(dstBase+i)] = true
		}
		d.Labels = make([]uint8, len(evts))
		for i, e := range evts {
			pPos := 0.05
			if risky[e.Dst] {
				pPos = 0.8
			}
			if rng.Float64() < pPos {
				d.Labels[i] = 1
			}
		}
	}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("datagen: generated invalid dataset: %v", err))
	}
	return d
}

// zipfSampler draws indices in [0, n) with P(i) ∝ (i+1)^−skew, then maps
// them through a fixed permutation so hot nodes are scattered over the id
// space (as in real datasets, where id order carries no popularity
// information).
type zipfSampler struct {
	cum  []float64
	perm []int
}

func newZipfSampler(rng *rand.Rand, n int, skew float64) *zipfSampler {
	if n <= 0 {
		panic("datagen: zipf over empty domain")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -skew)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfSampler{cum: cum, perm: rng.Perm(n)}
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.perm) {
		i = len(z.perm) - 1
	}
	return z.perm[i]
}
