package datagen

import (
	"math"
	"testing"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	opt := Options{Scale: 0.01, Seed: 42}
	d1 := Wiki.Generate(opt)
	d2 := Wiki.Generate(opt)
	if err := d1.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if d1.NumEvents() != d2.NumEvents() {
		t.Fatal("non-deterministic event count")
	}
	for i := range d1.Events {
		if d1.Events[i] != d2.Events[i] {
			t.Fatalf("non-deterministic at event %d", i)
		}
	}
}

func TestGenerateSeedChangesStream(t *testing.T) {
	a := Wiki.Generate(Options{Scale: 0.01, Seed: 1})
	b := Wiki.Generate(Options{Scale: 0.01, Seed: 2})
	same := true
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestProfilesMatchTable2Shape(t *testing.T) {
	// At scale 1 the profile counts are exactly Table 2's.
	cases := []struct {
		p       Profile
		nodes   int
		events  int
		featDim int
	}{
		{Wiki, 9227, 157474, 172},
		{Reddit, 11000, 672447, 172},
		{Mooc, 7047, 411749, 128},
		{WikiTalk, 2394385, 5021410, 32},
		{SxFull, 2601977, 63497050, 32},
		{Gdelt, 16682, 191290882, 186},
		{Mag, 121751665, 1297748926, 32},
	}
	for _, c := range cases {
		if c.p.Nodes != c.nodes || c.p.Events != c.events || c.p.FeatDim != c.featDim {
			t.Fatalf("%s profile mismatch with Table 2: %+v", c.p.Name, c.p)
		}
	}
}

func TestScaledAverageDegreePreserved(t *testing.T) {
	// Average degree 2E/N must be roughly preserved under scaling, because
	// both N and E scale linearly. Allow slack for flooring and isolated
	// nodes.
	for _, name := range []string{"WIKI", "REDDIT", "MOOC"} {
		p := ByName[name]
		d := p.Generate(Options{Scale: 0.02, Seed: 7})
		want := 2 * float64(p.Events) / float64(p.Nodes)
		got := d.ComputeStats().AvgDegree
		if got < want*0.5 || got > want*2.5 {
			t.Fatalf("%s: scaled avg degree %.1f vs full-scale %.1f", name, got, want)
		}
	}
}

func TestSparsityOrderingMatchesPaper(t *testing.T) {
	// The paper orders the moderate datasets by average degree:
	// WIKI-TALK (≈2.5) < WIKI (≈17.5) < SX-FULL (≈24.4) < MOOC (≈58.4)
	// ≲ REDDIT (≈61.1). The generated datasets must preserve the ordering
	// between the clearly separated ones.
	deg := func(p Profile) float64 {
		return p.Generate(Options{Scale: 0.004, Seed: 3, MinNodes: 256, MinEvents: 2048}).ComputeStats().AvgDegree
	}
	wikiTalk := deg(WikiTalk)
	wiki := deg(Wiki)
	reddit := deg(Reddit)
	if !(wikiTalk < wiki && wiki < reddit) {
		t.Fatalf("sparsity ordering broken: WIKI-TALK %.1f, WIKI %.1f, REDDIT %.1f", wikiTalk, wiki, reddit)
	}
}

func TestDegreeSkewProducesHotNodes(t *testing.T) {
	d := Wiki.Generate(Options{Scale: 0.02, Seed: 9})
	s := d.ComputeStats()
	// Hot nodes must be far above average (Fig. 3's long tail)…
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Fatalf("no hot nodes: max %d avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestBipartiteSplit(t *testing.T) {
	d := Wiki.Generate(Options{Scale: 0.01, Seed: 5})
	// In a bipartite profile, sources and destinations never overlap:
	srcMax, dstMin := int32(-1), int32(1<<30)
	for _, e := range d.Events {
		if e.Src > srcMax {
			srcMax = e.Src
		}
		if e.Dst < dstMin {
			dstMin = e.Dst
		}
	}
	if srcMax >= dstMin {
		t.Fatalf("bipartite halves overlap: srcMax %d dstMin %d", srcMax, dstMin)
	}
}

func TestNonBipartiteAvoidsSelfLoops(t *testing.T) {
	d := WikiTalk.Generate(Options{Scale: 0.0005, Seed: 11, MinEvents: 5000})
	for i, e := range d.Events {
		if e.Src == e.Dst {
			t.Fatalf("self loop at %d", i)
		}
	}
}

func TestFeatDimOverrideAndFloors(t *testing.T) {
	d := Reddit.Generate(Options{Scale: 1e-9, Seed: 1, FeatDimOverride: 8})
	if d.EdgeFeatDim != 8 {
		t.Fatalf("feat dim %d", d.EdgeFeatDim)
	}
	if d.NumNodes < 64 || d.NumEvents() < 256 {
		t.Fatalf("floors not applied: %d nodes %d events", d.NumNodes, d.NumEvents())
	}
}

func TestZipfSamplerDistribution(t *testing.T) {
	// The most popular rank must receive clearly more mass than the median
	// rank under skew 1.0.
	p := Profile{Name: "T", Nodes: 100, Events: 20000, SrcSkew: 1.0, DstSkew: 1.0, RepeatProb: 0}
	d := p.Generate(Options{Scale: 1, Seed: 13})
	counts := make([]int, d.NumNodes)
	for _, e := range d.Events {
		counts[e.Src]++
	}
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(counts))
	if float64(max) < 4*mean {
		t.Fatalf("zipf skew too flat: max %d mean %.1f", max, mean)
	}
}

func TestTimestampsStrictlyIncreasing(t *testing.T) {
	d := Mooc.Generate(Options{Scale: 0.01, Seed: 17})
	for i := 1; i < len(d.Events); i++ {
		if !(d.Events[i].Time > d.Events[i-1].Time) {
			t.Fatalf("timestamps not strictly increasing at %d", i)
		}
	}
	if math.IsNaN(d.Events[len(d.Events)-1].Time) {
		t.Fatal("NaN timestamp")
	}
}

func TestRepeatAffinityCalibration(t *testing.T) {
	// The generator's RepeatProb must be visible in the measured
	// recent-repeat ratio: REDDIT (0.65) clearly above WIKI-TALK (0.3).
	hi := Reddit.Generate(Options{Scale: 0.004, Seed: 23, MinEvents: 3000})
	lo := WikiTalk.Generate(Options{Scale: 0.0006, Seed: 23, MinEvents: 3000})
	rHi := hi.ComputeTemporalStats().RecentRepeatRatio
	rLo := lo.ComputeTemporalStats().RecentRepeatRatio
	if rHi <= rLo {
		t.Fatalf("repeat affinity not calibrated: REDDIT %.2f vs WIKI-TALK %.2f", rHi, rLo)
	}
}

func TestDegreeGiniPositive(t *testing.T) {
	// Zipf-skewed generation must produce a clearly unequal degree
	// distribution.
	d := Wiki.Generate(Options{Scale: 0.01, Seed: 29})
	if g := d.GiniDegree(); g < 0.3 {
		t.Fatalf("degree Gini %.2f too uniform for a Zipf stream", g)
	}
}

func TestMoocLabelsCalibration(t *testing.T) {
	d := Mooc.Generate(Options{Scale: 0.003, Seed: 37, MinEvents: 2000})
	if d.Labels == nil {
		t.Fatal("MOOC profile must generate labels")
	}
	pos := 0
	for _, l := range d.Labels {
		pos += int(l)
	}
	frac := float64(pos) / float64(len(d.Labels))
	// With 25% risky destinations at 0.8 positive rate plus 5% noise, the
	// positive fraction lands in a broad but clearly non-degenerate band.
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("label positive fraction %.2f out of band", frac)
	}
	if wiki := Wiki.Generate(Options{Scale: 0.002, Seed: 37}); wiki.Labels != nil {
		t.Fatal("WIKI profile should not generate labels")
	}
}
